//! The batch alignment engine — the `bwa mem` analogue.
//!
//! Input flows in **batches** (like Bwa's read-and-parse loop): the engine
//! finds per-read candidates, estimates insert statistics *from the
//! batch*, resolves pairs, and emits SAM records. The multi-threaded path
//! mirrors Bwa's structure — a serial read/parse step, a parallel compute
//! step over the batch, and a serial write step — which is exactly the
//! synchronisation point the paper profiles in Fig. 5(c).

use crate::index::ReferenceIndex;
use crate::pairing::{estimate_insert_stats, select_pair, PairChoice, PairConfig};
use crate::single::{find_candidates, Candidate, SingleConfig};
use gesall_formats::dna::reverse_complement;
use gesall_formats::fastq::ReadPair;
use gesall_formats::sam::record::NO_REF;
use gesall_formats::sam::{Cigar, Flags, SamRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Full aligner configuration.
#[derive(Debug, Clone)]
pub struct AlignerConfig {
    pub single: SingleConfig,
    pub pairing: PairConfig,
    /// Pairs per batch. Batch composition is what couples output to input
    /// partitioning.
    pub batch_size: usize,
    /// Global RNG seed; per-pair streams derive from it.
    pub seed: u64,
}

impl Default for AlignerConfig {
    fn default() -> AlignerConfig {
        AlignerConfig {
            single: SingleConfig::default(),
            pairing: PairConfig::default(),
            batch_size: 2000,
            seed: 0x6573_6131,
        }
    }
}

/// The aligner: an immutable index plus configuration. Cheap to share
/// across threads by reference.
pub struct Aligner {
    index: ReferenceIndex,
    config: AlignerConfig,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Aligner {
    pub fn new(index: ReferenceIndex, config: AlignerConfig) -> Aligner {
        Aligner { index, config }
    }

    pub fn index(&self) -> &ReferenceIndex {
        &self.index
    }

    pub fn config(&self) -> &AlignerConfig {
        &self.config
    }

    /// Toggle every aligner-side bit-parallel kernel at once: the
    /// packed-rank occ on the FM-index and the banded Smith–Waterman in
    /// seed extension. Off is the scalar-twin benchmark configuration;
    /// alignments are identical either way.
    pub fn set_kernels(&mut self, on: bool) {
        self.index.set_kernels(on);
        self.config.single.banded_sw = on;
    }

    /// Align pairs serially (single thread). Deterministic.
    pub fn align_pairs(&self, pairs: &[ReadPair]) -> Vec<(SamRecord, SamRecord)> {
        self.align_pairs_threaded(pairs, 1)
    }

    /// Align pairs with `threads` compute threads per batch. The output is
    /// identical for any thread count (per-pair RNG streams); what changes
    /// output is *batch composition*, i.e. input partitioning.
    pub fn align_pairs_threaded(
        &self,
        pairs: &[ReadPair],
        threads: usize,
    ) -> Vec<(SamRecord, SamRecord)> {
        let threads = threads.max(1);
        let mut out = Vec::with_capacity(pairs.len());
        for (batch_ord, batch) in pairs.chunks(self.config.batch_size.max(1)).enumerate() {
            out.extend(self.align_batch(batch, batch_ord as u64, threads));
        }
        out
    }

    fn align_batch(
        &self,
        batch: &[ReadPair],
        batch_ord: u64,
        threads: usize,
    ) -> Vec<(SamRecord, SamRecord)> {
        // Phase 1 (parallel compute): per-read candidates.
        let candidates: Vec<(Vec<Candidate>, Vec<Candidate>)> = if threads <= 1 {
            batch.iter().map(|p| self.pair_candidates(p)).collect()
        } else {
            let chunk = batch.len().div_ceil(threads);
            let mut results: Vec<Vec<(Vec<Candidate>, Vec<Candidate>)>> =
                Vec::with_capacity(threads);
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = batch
                    .chunks(chunk.max(1))
                    .map(|part| {
                        s.spawn(move |_| {
                            part.iter()
                                .map(|p| self.pair_candidates(p))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    results.push(h.join().expect("aligner worker panicked"));
                }
            })
            .expect("aligner thread scope failed");
            results.into_iter().flatten().collect()
        };

        // Phase 2 (serial): batch statistics — the data-dependent step.
        let stats = estimate_insert_stats(&candidates, &self.config.pairing);

        // Phase 3: pair resolution with per-pair RNG streams.
        let batch_seed = splitmix(self.config.seed ^ splitmix(batch_ord));
        batch
            .iter()
            .zip(candidates)
            .enumerate()
            .map(|(i, (pair, (c1, c2)))| {
                let mut rng = StdRng::seed_from_u64(splitmix(batch_seed ^ (i as u64)));
                let choice = select_pair(&c1, &c2, &stats, &self.config.pairing, &mut rng);
                self.emit_pair(pair, &choice)
            })
            .collect()
    }

    fn pair_candidates(&self, pair: &ReadPair) -> (Vec<Candidate>, Vec<Candidate>) {
        (
            find_candidates(&self.index, &self.config.single, &pair.r1.seq),
            find_candidates(&self.index, &self.config.single, &pair.r2.seq),
        )
    }

    /// Build the two SAM records for one resolved pair.
    fn emit_pair(&self, pair: &ReadPair, choice: &PairChoice) -> (SamRecord, SamRecord) {
        let mut rec1 = self.emit_one(
            &pair.r1.name,
            &pair.r1.seq,
            &pair.r1.qual,
            choice.c1.as_ref(),
            choice.mapq1,
            true,
        );
        let mut rec2 = self.emit_one(
            &pair.r2.name,
            &pair.r2.seq,
            &pair.r2.qual,
            choice.c2.as_ref(),
            choice.mapq2,
            false,
        );
        cross_link_mates(&mut rec1, &mut rec2, choice.proper);
        (rec1, rec2)
    }

    fn emit_one(
        &self,
        name: &str,
        seq: &[u8],
        qual: &[u8],
        cand: Option<&Candidate>,
        mapq: u8,
        first: bool,
    ) -> SamRecord {
        let mut flags = Flags(Flags::PAIRED);
        flags.set(
            if first {
                Flags::FIRST_IN_PAIR
            } else {
                Flags::SECOND_IN_PAIR
            },
            true,
        );
        match cand {
            None => {
                let mut rec = SamRecord::unmapped(name, seq.to_vec(), qual.to_vec());
                rec.flags = flags;
                rec.flags.set(Flags::UNMAPPED, true);
                rec
            }
            Some(c) => {
                // SAM convention: SEQ/QUAL are stored in forward-reference
                // orientation.
                let (s, q) = if c.reverse {
                    let mut q = qual.to_vec();
                    q.reverse();
                    (reverse_complement(seq), q)
                } else {
                    (seq.to_vec(), qual.to_vec())
                };
                flags.set(Flags::REVERSE, c.reverse);
                SamRecord {
                    name: name.to_string(),
                    flags,
                    ref_id: c.chrom as i32,
                    pos: c.pos,
                    mapq,
                    cigar: c.cigar.clone(),
                    mate_ref_id: NO_REF,
                    mate_pos: 0,
                    tlen: 0,
                    seq: s,
                    qual: q,
                    read_group: String::new(),
                    alignment_score: c.score,
                    edit_distance: c.edit_distance,
                }
            }
        }
    }
}

/// Fill mate fields and pair flags in both records of a pair. Also public
/// machinery for FixMateInformation to reuse.
pub fn cross_link_mates(a: &mut SamRecord, b: &mut SamRecord, proper: bool) {
    let a_mapped = a.is_mapped();
    let b_mapped = b.is_mapped();
    a.flags.set(Flags::MATE_UNMAPPED, !b_mapped);
    b.flags.set(Flags::MATE_UNMAPPED, !a_mapped);
    a.flags.set(Flags::MATE_REVERSE, b.flags.is_reverse());
    b.flags.set(Flags::MATE_REVERSE, a.flags.is_reverse());
    a.flags.set(Flags::PROPER_PAIR, proper && a_mapped && b_mapped);
    b.flags.set(Flags::PROPER_PAIR, proper && a_mapped && b_mapped);

    match (a_mapped, b_mapped) {
        (true, true) => {
            a.mate_ref_id = b.ref_id;
            a.mate_pos = b.pos;
            b.mate_ref_id = a.ref_id;
            b.mate_pos = a.pos;
            if a.ref_id == b.ref_id {
                let left = a.pos.min(b.pos);
                let right = a.end_pos().max(b.end_pos());
                let frag = right - left + 1;
                let (first, second) = if a.pos <= b.pos { (a, b) } else { (b, a) };
                first.tlen = frag;
                second.tlen = -frag;
            } else {
                a.tlen = 0;
                b.tlen = 0;
            }
        }
        (true, false) => {
            // Convention: an unmapped read is *placed* at its mapped
            // mate's position (this is what makes MarkDuplicates' partial
            // matchings co-locate with complete ones).
            b.ref_id = a.ref_id;
            b.pos = a.pos;
            b.cigar = Cigar::unmapped();
            a.mate_ref_id = b.ref_id;
            a.mate_pos = b.pos;
            b.mate_ref_id = a.ref_id;
            b.mate_pos = a.pos;
            a.tlen = 0;
            b.tlen = 0;
        }
        (false, true) => {
            a.ref_id = b.ref_id;
            a.pos = b.pos;
            a.cigar = Cigar::unmapped();
            a.mate_ref_id = b.ref_id;
            a.mate_pos = b.pos;
            b.mate_ref_id = a.ref_id;
            b.mate_pos = a.pos;
            a.tlen = 0;
            b.tlen = 0;
        }
        (false, false) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_datagen::{
        donor::DonorConfig, reads::ReadSimConfig, DonorGenome, GenomeConfig, ReadSimulator,
        ReferenceGenome,
    };
    use gesall_formats::fastq::FastqRecord;

    fn build_world(
        n_pairs: usize,
    ) -> (ReferenceGenome, Vec<ReadPair>, Aligner) {
        let genome = ReferenceGenome::generate(&GenomeConfig::tiny());
        let donor = DonorGenome::generate(&genome, &DonorConfig::default());
        let simcfg = ReadSimConfig {
            n_pairs,
            duplicate_rate: 0.03,
            ..ReadSimConfig::default()
        };
        let (pairs, _) = ReadSimulator::new(&genome, &donor, simcfg).simulate();
        let chroms: Vec<(String, Vec<u8>)> = genome
            .chromosomes
            .iter()
            .map(|c| (c.name.clone(), c.seq.clone()))
            .collect();
        let index = ReferenceIndex::build(&chroms);
        let aligner = Aligner::new(index, AlignerConfig::default());
        (genome, pairs, aligner)
    }

    #[test]
    fn aligns_simulated_pairs_mostly_proper() {
        let (_, pairs, aligner) = build_world(300);
        let recs = aligner.align_pairs(&pairs);
        assert_eq!(recs.len(), 300);
        let mapped = recs
            .iter()
            .filter(|(a, b)| a.is_mapped() && b.is_mapped())
            .count();
        assert!(
            mapped as f64 > 0.95 * 300.0,
            "only {mapped}/300 pairs fully mapped"
        );
        let proper = recs
            .iter()
            .filter(|(a, _)| a.flags.is_proper_pair())
            .count();
        assert!(
            proper as f64 > 0.85 * 300.0,
            "only {proper}/300 proper pairs"
        );
        for (a, b) in &recs {
            a.validate().unwrap();
            b.validate().unwrap();
            assert!(a.flags.is_first_in_pair());
            assert!(b.flags.is_second_in_pair());
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn mapped_positions_match_simulated_origins() {
        let (genome, pairs, aligner) = build_world(200);
        let recs = aligner.align_pairs(&pairs);
        let mut close = 0;
        let mut total = 0;
        for (a, _) in &recs {
            if !a.is_mapped() || a.mapq < 30 {
                continue;
            }
            total += 1;
            // Read name encodes "sim{serial}_{chrom}_{refpos1based}".
            let parts: Vec<&str> = a.name.split('_').collect();
            let true_chrom = parts[1];
            let true_pos: i64 = parts[2].parse().unwrap();
            let rec_chrom = genome.chromosomes[a.ref_id as usize].name.clone();
            if rec_chrom == true_chrom && (a.cigar.unclipped_start(a.pos) - true_pos).abs() <= 12 {
                close += 1;
            }
        }
        assert!(total > 100);
        assert!(
            close as f64 > 0.97 * total as f64,
            "{close}/{total} confident reads at true positions"
        );
    }

    #[test]
    fn threaded_output_identical_to_serial() {
        let (_, pairs, aligner) = build_world(150);
        let a = aligner.align_pairs(&pairs);
        let b = aligner.align_pairs_threaded(&pairs, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn partitioned_input_produces_slightly_different_output() {
        // The headline nondeterminism result (paper §4.5.2): running the
        // aligner over partitions differs slightly from the serial run.
        let (_, pairs, aligner) = build_world(600);
        let serial: Vec<(SamRecord, SamRecord)> = aligner.align_pairs(&pairs);
        // Parallel: two partitions, aligned independently, concatenated.
        let (p1, p2) = pairs.split_at(300);
        let mut parallel = aligner.align_pairs(p1);
        parallel.extend(aligner.align_pairs(p2));
        assert_eq!(serial.len(), parallel.len());
        let discordant = serial
            .iter()
            .zip(&parallel)
            .filter(|(s, p)| s != p)
            .count();
        // Most records agree; the high-quality ones almost all agree.
        let frac = discordant as f64 / serial.len() as f64;
        assert!(
            frac < 0.2,
            "discordance should be a small minority, got {frac}"
        );
        let confident_discordant = serial
            .iter()
            .zip(&parallel)
            .filter(|(s, p)| s != p && s.0.mapq >= 55 && p.0.mapq >= 55 && s.0.pos != p.0.pos)
            .count();
        assert!(
            (confident_discordant as f64) < 0.01 * serial.len() as f64,
            "confident position flips should be rare: {confident_discordant}"
        );
    }

    #[test]
    fn tlen_signs_and_mate_fields() {
        let (_, pairs, aligner) = build_world(100);
        let recs = aligner.align_pairs(&pairs);
        for (a, b) in &recs {
            if a.is_mapped() && b.is_mapped() && a.ref_id == b.ref_id {
                assert_eq!(a.tlen, -b.tlen);
                assert_ne!(a.tlen, 0);
                assert_eq!(a.mate_pos, b.pos);
                assert_eq!(b.mate_pos, a.pos);
                assert_eq!(a.mate_ref_id, b.ref_id);
            }
        }
    }

    #[test]
    fn garbage_pair_is_unmapped_pair() {
        let (_, _, aligner) = build_world(1);
        // Reads that exist nowhere in the genome (pure N is skipped by
        // seeding; a random other alphabet segment also works).
        let junk = ReadPair {
            r1: FastqRecord {
                name: "junk".into(),
                seq: vec![b'N'; 100],
                qual: vec![2; 100],
            },
            r2: FastqRecord {
                name: "junk".into(),
                seq: vec![b'N'; 100],
                qual: vec![2; 100],
            },
        };
        let recs = aligner.align_pairs(&[junk]);
        assert!(!recs[0].0.is_mapped());
        assert!(!recs[0].1.is_mapped());
        assert!(recs[0].0.flags.is_mate_unmapped());
    }

    #[test]
    fn unmapped_mate_placed_at_mapped_read() {
        let (_, pairs, aligner) = build_world(40);
        // Corrupt r2 of the first pair into junk so only r1 maps.
        let mut pairs = pairs;
        pairs[0].r2.seq = vec![b'N'; 100];
        let recs = aligner.align_pairs(&pairs);
        let (a, b) = &recs[0];
        assert!(a.is_mapped());
        assert!(!b.is_mapped());
        assert_eq!(b.pos, a.pos, "unmapped mate placed at mate's position");
        assert_eq!(b.ref_id, a.ref_id);
        assert!(a.flags.is_mate_unmapped());
    }
}
