//! FM-index: BWT + checkpointed rank, backward search, sampled locate.
//!
//! Alphabet: sentinel (0), A (1), C (2), G (3), T (4). Reads containing
//! `N` never reach the index — seeding skips seeds with ambiguous bases.

use crate::suffix::{bwt_from_sa, suffix_array};
use std::collections::HashMap;

const ALPHABET: usize = 5;
/// Rank checkpoint spacing (rows).
const OCC_SAMPLE: usize = 128;
/// SA sampling spacing (text positions).
const SA_SAMPLE: u32 = 32;

#[inline]
fn code(b: u8) -> Option<u8> {
    match b {
        0 => Some(0),
        b'A' | b'a' => Some(1),
        b'C' | b'c' => Some(2),
        b'G' | b'g' => Some(3),
        b'T' | b't' => Some(4),
        _ => None,
    }
}

/// The FM-index over a text (no 0 bytes; sentinel added internally).
pub struct FmIndex {
    /// BWT as alphabet codes, length `text_len + 1`.
    bwt: Vec<u8>,
    /// `c_table[c]` = number of BWT symbols strictly smaller than `c`.
    c_table: [u64; ALPHABET + 1],
    /// Rank checkpoints: counts of each code in `bwt[0..k*OCC_SAMPLE)`.
    checkpoints: Vec<[u32; ALPHABET]>,
    /// Sampled suffix array: BWT row → text position, for rows whose text
    /// position is a multiple of [`SA_SAMPLE`].
    sampled: HashMap<u32, u32>,
    text_len: usize,
}

impl FmIndex {
    /// Build the index. `text` must contain only `ACGT` bytes.
    pub fn build(text: &[u8]) -> FmIndex {
        let sa = suffix_array(text);
        let bwt_ascii = bwt_from_sa(text, &sa);
        let bwt: Vec<u8> = bwt_ascii
            .iter()
            .map(|&b| code(b).expect("text must be ACGT-only"))
            .collect();

        // C table.
        let mut counts = [0u64; ALPHABET];
        for &c in &bwt {
            counts[c as usize] += 1;
        }
        let mut c_table = [0u64; ALPHABET + 1];
        for i in 0..ALPHABET {
            c_table[i + 1] = c_table[i] + counts[i];
        }

        // Rank checkpoints.
        let m = bwt.len();
        let n_cp = m / OCC_SAMPLE + 1;
        let mut checkpoints = Vec::with_capacity(n_cp);
        let mut running = [0u32; ALPHABET];
        for (i, &c) in bwt.iter().enumerate() {
            if i % OCC_SAMPLE == 0 {
                checkpoints.push(running);
            }
            running[c as usize] += 1;
        }
        if m.is_multiple_of(OCC_SAMPLE) {
            checkpoints.push(running);
        }

        // Sampled SA over the extended text: row 0 is the sentinel suffix
        // (text position = text_len); row r+1 corresponds to sa[r].
        let mut sampled = HashMap::new();
        let n = text.len() as u32;
        if n.is_multiple_of(SA_SAMPLE) {
            sampled.insert(0u32, n);
        }
        for (r, &pos) in sa.iter().enumerate() {
            if pos % SA_SAMPLE == 0 {
                sampled.insert(r as u32 + 1, pos);
            }
        }

        FmIndex {
            bwt,
            c_table,
            checkpoints,
            sampled,
            text_len: text.len(),
        }
    }

    /// Length of the indexed text (without sentinel).
    pub fn text_len(&self) -> usize {
        self.text_len
    }

    /// Approximate heap size of the index in bytes (for the per-mapper
    /// index-load cost model, Fig. 5a).
    pub fn heap_bytes(&self) -> usize {
        self.bwt.len()
            + self.checkpoints.len() * ALPHABET * 4
            + self.sampled.len() * 8
    }

    /// Number of occurrences of `c` in `bwt[0..i)`.
    #[inline]
    fn occ(&self, c: u8, i: usize) -> u64 {
        let cp = i / OCC_SAMPLE;
        let mut count = self.checkpoints[cp][c as usize] as u64;
        for &b in &self.bwt[cp * OCC_SAMPLE..i] {
            count += u64::from(b == c);
        }
        count
    }

    #[inline]
    fn lf(&self, row: usize) -> usize {
        let c = self.bwt[row];
        (self.c_table[c as usize] + self.occ(c, row)) as usize
    }

    /// Backward search: the half-open BWT row interval of suffixes
    /// prefixed by `pattern`, or `None` if the pattern is absent or holds
    /// a non-ACGT byte.
    pub fn search(&self, pattern: &[u8]) -> Option<(u64, u64)> {
        if pattern.is_empty() {
            return None;
        }
        let mut l = 0u64;
        let mut r = self.bwt.len() as u64;
        for &b in pattern.iter().rev() {
            let c = code(b).filter(|&c| c != 0)?;
            l = self.c_table[c as usize] + self.occ(c, l as usize);
            r = self.c_table[c as usize] + self.occ(c, r as usize);
            if l >= r {
                return None;
            }
        }
        Some((l, r))
    }

    /// Number of occurrences of `pattern` in the text.
    pub fn count(&self, pattern: &[u8]) -> u64 {
        self.search(pattern).map(|(l, r)| r - l).unwrap_or(0)
    }

    /// Text position of the suffix at BWT `row`, via LF-walking to a
    /// sampled row.
    pub fn locate_row(&self, mut row: u64) -> u64 {
        let mut steps = 0u64;
        loop {
            if let Some(&pos) = self.sampled.get(&(row as u32)) {
                let n = self.text_len as u64 + 1;
                return (pos as u64 + steps) % n;
            }
            row = self.lf(row as usize) as u64;
            steps += 1;
        }
    }

    /// All text positions where `pattern` occurs, capped at `max_hits`
    /// (returns `None` if there are more — the repeat-region bail-out).
    pub fn locate(&self, pattern: &[u8], max_hits: usize) -> Option<Vec<u64>> {
        let (l, r) = self.search(pattern)?;
        if (r - l) as usize > max_hits {
            return None;
        }
        let mut hits: Vec<u64> = (l..r).map(|row| self.locate_row(row)).collect();
        hits.sort_unstable();
        Some(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_find(text: &[u8], pat: &[u8]) -> Vec<u64> {
        if pat.is_empty() || pat.len() > text.len() {
            return Vec::new();
        }
        (0..=text.len() - pat.len())
            .filter(|&i| &text[i..i + pat.len()] == pat)
            .map(|i| i as u64)
            .collect()
    }

    fn pseudo_dna(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize % 4]
            })
            .collect()
    }

    #[test]
    fn count_matches_naive() {
        let text = pseudo_dna(5000, 3);
        let fm = FmIndex::build(&text);
        for (start, len) in [(0usize, 12usize), (100, 20), (4988, 12), (37, 8), (2500, 15)] {
            let pat = &text[start..start + len];
            assert_eq!(fm.count(pat), naive_find(&text, pat).len() as u64);
        }
        assert_eq!(fm.count(b"ACGTACGTACGTACGTACGTACGTACGTAC"), {
            naive_find(&text, b"ACGTACGTACGTACGTACGTACGTACGTAC").len() as u64
        });
    }

    #[test]
    fn locate_matches_naive() {
        let text = pseudo_dna(4000, 17);
        let fm = FmIndex::build(&text);
        for (start, len) in [(0usize, 14usize), (1234, 16), (3986, 14), (50, 10)] {
            let pat = &text[start..start + len];
            let got = fm.locate(pat, 1000).unwrap();
            assert_eq!(got, naive_find(&text, pat), "pattern at {start}+{len}");
        }
    }

    #[test]
    fn locate_in_repetitive_text() {
        // Tandem repeat: every offset of the unit matches many times.
        let text = b"ACGGT".repeat(300);
        let fm = FmIndex::build(&text);
        let pat = b"ACGGTACGGT";
        let naive = naive_find(&text, pat);
        assert!(naive.len() > 200);
        let got = fm.locate(pat, 10_000).unwrap();
        assert_eq!(got, naive);
        // Bail-out on too many hits.
        assert!(fm.locate(pat, 10).is_none());
    }

    #[test]
    fn absent_and_invalid_patterns() {
        let text = pseudo_dna(1000, 5);
        let fm = FmIndex::build(&text);
        assert_eq!(fm.count(b""), 0);
        assert_eq!(fm.count(b"ACGTN"), 0); // N never matches
        // A pattern guaranteed absent: longer than text.
        let long = pseudo_dna(2000, 6);
        assert_eq!(fm.count(&long), 0);
    }

    #[test]
    fn single_character_counts() {
        let text = b"AACCCGGGGT".to_vec();
        let fm = FmIndex::build(&text);
        assert_eq!(fm.count(b"A"), 2);
        assert_eq!(fm.count(b"C"), 3);
        assert_eq!(fm.count(b"G"), 4);
        assert_eq!(fm.count(b"T"), 1);
        assert_eq!(fm.locate(b"T", 10).unwrap(), vec![9]);
    }

    #[test]
    fn full_text_is_found_at_origin() {
        let text = pseudo_dna(500, 11);
        let fm = FmIndex::build(&text);
        assert_eq!(fm.locate(&text, 5).unwrap(), vec![0]);
    }

    #[test]
    fn heap_bytes_is_sane() {
        let text = pseudo_dna(10_000, 1);
        let fm = FmIndex::build(&text);
        let bytes = fm.heap_bytes();
        assert!(bytes > 10_000, "index smaller than text? {bytes}");
        assert!(bytes < 10 * 10_000, "index blew up: {bytes}");
    }
}
