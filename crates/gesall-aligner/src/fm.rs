//! FM-index: 2-bit packed BWT + word-popcount rank, backward search,
//! sampled locate.
//!
//! Alphabet: sentinel (0), A (1), C (2), G (3), T (4). Reads containing
//! `N` never reach the index — seeding skips seeds with ambiguous bases.
//!
//! The BWT is stored as a [`PackedSeq`]: 2-bit codes, 32 symbols per
//! `u64` word. The sentinel is the one "N" of the BWT string, so the
//! packer records its row out-of-band (`n_positions()[0]`) and its
//! packed slot holds code 0 — rank queries for `A` subtract it back
//! out. `occ()` — the innermost loop of every backward-search step —
//! counts whole words with XOR-splat + popcount
//! ([`count_code_in_word`]) from a checkpoint aligned to a word
//! boundary, instead of the historical byte-at-a-time scan (which
//! survives as [`FmIndex::occ_scalar`], the proptest oracle and the
//! `kernels=false` twin path for bench-smoke). The sampled suffix array
//! is a row-sorted vec probed by a branchless binary search, replacing
//! the old `HashMap`.

use crate::kernels;
use crate::suffix::{bwt_from_sa, suffix_array};
use gesall_formats::dna::{count_code_in_word, PackedSeq};

const ALPHABET: usize = 5;
/// Rank checkpoint spacing (rows). A multiple of 32 so every checkpoint
/// sits on a packed-word boundary and the residual scan is whole words
/// plus at most one masked partial word.
const OCC_SAMPLE: usize = 128;
const WORDS_PER_CP: usize = OCC_SAMPLE / 32;
/// SA sampling spacing (text positions).
const SA_SAMPLE: u32 = 32;

#[inline]
fn code(b: u8) -> Option<u8> {
    match b {
        0 => Some(0),
        b'A' | b'a' => Some(1),
        b'C' | b'c' => Some(2),
        b'G' | b'g' => Some(3),
        b'T' | b't' => Some(4),
        _ => None,
    }
}

/// The FM-index over a text (no 0 bytes; sentinel added internally).
pub struct FmIndex {
    /// BWT as a 2-bit packed sequence, length `text_len + 1`. The
    /// sentinel row is the packer's single recorded "N".
    bwt: PackedSeq,
    /// BWT row holding the sentinel (cached from `bwt.n_positions()`).
    sentinel_row: u32,
    /// `c_table[c]` = number of BWT symbols strictly smaller than `c`.
    c_table: [u64; ALPHABET + 1],
    /// Rank checkpoints: counts of each 2-bit code in
    /// `bwt[0..k*OCC_SAMPLE)`, sentinel slot counted in bucket 0 (the
    /// `A` adjustment happens at query time).
    checkpoints: Vec<[u32; 4]>,
    /// Sampled suffix array: `(row, text position)` sorted by row, for
    /// rows whose text position is a multiple of [`SA_SAMPLE`].
    sampled: Vec<(u32, u32)>,
    text_len: usize,
    /// Bit-parallel rank on (default). Off, `occ` runs the scalar
    /// symbol-at-a-time oracle — the bench-smoke twin path.
    kernels: bool,
}

impl FmIndex {
    /// Build the index. `text` must contain only `ACGT` bytes.
    pub fn build(text: &[u8]) -> FmIndex {
        let sa = suffix_array(text);
        let bwt_ascii = bwt_from_sa(text, &sa);
        debug_assert!(bwt_ascii.iter().all(|&b| code(b).is_some()));
        // The sentinel is byte 0 — not ACGT — so the packer records its
        // row as the sequence's one "N" position.
        let bwt = PackedSeq::from_ascii(&bwt_ascii);
        assert_eq!(
            bwt.n_positions().len(),
            1,
            "text must be ACGT-only (exactly one sentinel in the BWT)"
        );
        let sentinel_row = bwt.n_positions()[0];

        // C table from the packed histogram: `count_bases()` returns
        // [A, C, G, T, N] and the sentinel is the single N.
        let hist = bwt.count_bases();
        let counts = [hist[4] as u64, hist[0] as u64, hist[1] as u64, hist[2] as u64, hist[3] as u64];
        let mut c_table = [0u64; ALPHABET + 1];
        for i in 0..ALPHABET {
            c_table[i + 1] = c_table[i] + counts[i];
        }

        // Word-aligned rank checkpoints over raw packed codes.
        let m = bwt.len();
        let mut checkpoints = Vec::with_capacity(m / OCC_SAMPLE + 1);
        let mut running = [0u32; 4];
        checkpoints.push(running);
        for (w, &word) in bwt.words().iter().enumerate() {
            let n = (m - w * 32).min(32);
            let valid: u64 = if n == 32 { !0 } else { (1u64 << (n * 2)) - 1 };
            for c2 in 0..4u64 {
                running[c2 as usize] += count_code_in_word(word, c2, valid);
            }
            if (w + 1) % WORDS_PER_CP == 0 && (w + 1) * 32 <= m {
                checkpoints.push(running);
            }
        }

        // Sampled SA over the extended text: row 0 is the sentinel suffix
        // (text position = text_len); row r+1 corresponds to sa[r]. Rows
        // are pushed in increasing order, so the vec is already sorted.
        let mut sampled = Vec::new();
        let n = text.len() as u32;
        if n.is_multiple_of(SA_SAMPLE) {
            sampled.push((0u32, n));
        }
        for (r, &pos) in sa.iter().enumerate() {
            if pos % SA_SAMPLE == 0 {
                sampled.push((r as u32 + 1, pos));
            }
        }

        FmIndex {
            bwt,
            sentinel_row,
            c_table,
            checkpoints,
            sampled,
            text_len: text.len(),
            kernels: true,
        }
    }

    /// Length of the indexed text (without sentinel).
    pub fn text_len(&self) -> usize {
        self.text_len
    }

    /// Toggle the bit-parallel rank kernel (on by default). Off, `occ`
    /// runs the scalar oracle — the knob bench-smoke's twin run uses.
    pub fn set_kernels(&mut self, on: bool) {
        self.kernels = on;
    }

    /// Heap size of the index in bytes, capacity-accurate (the
    /// per-mapper index-load cost model, Fig. 5a, shouldn't be
    /// flattered by ignoring allocator reality): packed BWT words at
    /// `capacity`, checkpoint rows at `capacity`, and the sorted-vec SA
    /// at `capacity × entry size` — which, unlike the old `HashMap`
    /// estimate, has no hidden bucket/control-byte overhead to ignore.
    pub fn heap_bytes(&self) -> usize {
        self.bwt.words().len().max(self.bwt.len().div_ceil(32)) * 8
            + self.bwt.n_positions().len() * 4
            + self.checkpoints.capacity() * std::mem::size_of::<[u32; 4]>()
            + self.sampled.capacity() * std::mem::size_of::<(u32, u32)>()
    }

    /// Alphabet code of the BWT symbol at `row`.
    #[inline]
    fn symbol_at(&self, row: usize) -> u8 {
        if row == self.sentinel_row as usize {
            0
        } else {
            self.bwt.code_at(row) + 1
        }
    }

    /// Number of occurrences of `c` in `bwt[0..i)`, plus the whole words
    /// popcounted answering it (0 on the scalar path). `c` is a nonzero
    /// alphabet code; the sentinel's rank is just "is its row before
    /// `i`" and is handled by the callers that can see it (`lf_words`).
    /// Public (hidden) so the proptests can pin it to the oracle.
    #[doc(hidden)]
    #[inline]
    pub fn occ_words(&self, c: u8, i: usize) -> (u64, u32) {
        debug_assert!((1..=4).contains(&c));
        if !self.kernels {
            return (self.occ_scalar(c, i), 0);
        }
        let c2 = (c - 1) as u64;
        let cp = i / OCC_SAMPLE;
        let mut count = self.checkpoints[cp][c2 as usize] as u64;
        let words = self.bwt.words();
        let end_w = i / 32;
        let mut touched = 0u32;
        for &word in &words[cp * WORDS_PER_CP..end_w] {
            count += count_code_in_word(word, c2, !0) as u64;
            touched += 1;
        }
        let rem = i % 32;
        if rem != 0 {
            let mask = (1u64 << (rem * 2)) - 1;
            count += count_code_in_word(words[end_w], c2, mask) as u64;
            touched += 1;
        }
        // The sentinel slot is packed as code 0 and so was absorbed into
        // the `A` bucket; subtract it back out.
        if c == 1 && (self.sentinel_row as usize) < i {
            count -= 1;
        }
        (count, touched)
    }

    /// Scalar rank oracle: symbol-at-a-time scan from the checkpoint,
    /// exactly the pre-kernel behaviour. Public (hidden) for the
    /// proptests pinning [`FmIndex::occ_words`] to it.
    #[doc(hidden)]
    #[inline]
    pub fn occ_scalar(&self, c: u8, i: usize) -> u64 {
        debug_assert!((1..=4).contains(&c));
        let c2 = c - 1;
        let cp = i / OCC_SAMPLE;
        let mut count = self.checkpoints[cp][c2 as usize] as u64;
        for pos in cp * OCC_SAMPLE..i {
            count += u64::from(self.bwt.code_at(pos) == c2);
        }
        if c == 1 && (self.sentinel_row as usize) < i {
            count -= 1;
        }
        count
    }

    #[inline]
    fn lf_words(&self, row: usize) -> (usize, u32) {
        let c = self.symbol_at(row);
        if c == 0 {
            // occ(sentinel, row) is 0: there is exactly one sentinel and
            // this is its row.
            return (self.c_table[0] as usize, 0);
        }
        let (count, words) = self.occ_words(c, row);
        ((self.c_table[c as usize] + count) as usize, words)
    }

    /// Backward search: the half-open BWT row interval of suffixes
    /// prefixed by `pattern`, or `None` if the pattern is absent or holds
    /// a non-ACGT byte.
    pub fn search(&self, pattern: &[u8]) -> Option<(u64, u64)> {
        if pattern.is_empty() {
            return None;
        }
        let mut l = 0u64;
        let mut r = self.bwt.len() as u64;
        // Words popcounted accumulate locally; one relaxed atomic add per
        // search keeps the metric off the innermost loop.
        let mut words = 0u64;
        let mut valid = true;
        for &b in pattern.iter().rev() {
            let Some(c) = code(b).filter(|&c| c != 0) else {
                valid = false;
                break;
            };
            let (lc, lw) = self.occ_words(c, l as usize);
            let (rc, rw) = self.occ_words(c, r as usize);
            words += (lw + rw) as u64;
            l = self.c_table[c as usize] + lc;
            r = self.c_table[c as usize] + rc;
            if l >= r {
                break;
            }
        }
        kernels::add_occ_words(words);
        (valid && l < r).then_some((l, r))
    }

    /// Number of occurrences of `pattern` in the text.
    pub fn count(&self, pattern: &[u8]) -> u64 {
        self.search(pattern).map(|(l, r)| r - l).unwrap_or(0)
    }

    /// Text position sampled for `row`, if any: branchless binary search
    /// over the row-sorted vec (the comparison feeds a conditional move,
    /// not a branch — no misprediction on random probe rows).
    #[inline]
    fn sampled_pos(&self, row: u32) -> Option<u32> {
        if self.sampled.is_empty() {
            return None;
        }
        let mut lo = 0usize;
        let mut size = self.sampled.len();
        while size > 1 {
            let half = size / 2;
            let mid = lo + half;
            lo = if self.sampled[mid].0 <= row { mid } else { lo };
            size -= half;
        }
        let (r, pos) = self.sampled[lo];
        (r == row).then_some(pos)
    }

    /// Text position of the suffix at BWT `row`, via LF-walking to a
    /// sampled row.
    pub fn locate_row(&self, mut row: u64) -> u64 {
        let mut steps = 0u64;
        let mut words = 0u64;
        let pos = loop {
            if let Some(pos) = self.sampled_pos(row as u32) {
                break pos;
            }
            let (next, w) = self.lf_words(row as usize);
            row = next as u64;
            words += w as u64;
            steps += 1;
        };
        kernels::add_occ_words(words);
        let n = self.text_len as u64 + 1;
        (pos as u64 + steps) % n
    }

    /// All text positions where `pattern` occurs, capped at `max_hits`
    /// (returns `None` if there are more — the repeat-region bail-out).
    pub fn locate(&self, pattern: &[u8], max_hits: usize) -> Option<Vec<u64>> {
        let (l, r) = self.search(pattern)?;
        if (r - l) as usize > max_hits {
            return None;
        }
        let mut hits: Vec<u64> = (l..r).map(|row| self.locate_row(row)).collect();
        hits.sort_unstable();
        Some(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_find(text: &[u8], pat: &[u8]) -> Vec<u64> {
        if pat.is_empty() || pat.len() > text.len() {
            return Vec::new();
        }
        (0..=text.len() - pat.len())
            .filter(|&i| &text[i..i + pat.len()] == pat)
            .map(|i| i as u64)
            .collect()
    }

    fn pseudo_dna(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize % 4]
            })
            .collect()
    }

    #[test]
    fn count_matches_naive() {
        let text = pseudo_dna(5000, 3);
        let fm = FmIndex::build(&text);
        for (start, len) in [(0usize, 12usize), (100, 20), (4988, 12), (37, 8), (2500, 15)] {
            let pat = &text[start..start + len];
            assert_eq!(fm.count(pat), naive_find(&text, pat).len() as u64);
        }
        assert_eq!(fm.count(b"ACGTACGTACGTACGTACGTACGTACGTAC"), {
            naive_find(&text, b"ACGTACGTACGTACGTACGTACGTACGTAC").len() as u64
        });
    }

    #[test]
    fn locate_matches_naive() {
        let text = pseudo_dna(4000, 17);
        let fm = FmIndex::build(&text);
        for (start, len) in [(0usize, 14usize), (1234, 16), (3986, 14), (50, 10)] {
            let pat = &text[start..start + len];
            let got = fm.locate(pat, 1000).unwrap();
            assert_eq!(got, naive_find(&text, pat), "pattern at {start}+{len}");
        }
    }

    #[test]
    fn locate_in_repetitive_text() {
        // Tandem repeat: every offset of the unit matches many times.
        let text = b"ACGGT".repeat(300);
        let fm = FmIndex::build(&text);
        let pat = b"ACGGTACGGT";
        let naive = naive_find(&text, pat);
        assert!(naive.len() > 200);
        let got = fm.locate(pat, 10_000).unwrap();
        assert_eq!(got, naive);
        // Bail-out on too many hits.
        assert!(fm.locate(pat, 10).is_none());
    }

    #[test]
    fn absent_and_invalid_patterns() {
        let text = pseudo_dna(1000, 5);
        let fm = FmIndex::build(&text);
        assert_eq!(fm.count(b""), 0);
        assert_eq!(fm.count(b"ACGTN"), 0); // N never matches
        // A pattern guaranteed absent: longer than text.
        let long = pseudo_dna(2000, 6);
        assert_eq!(fm.count(&long), 0);
    }

    #[test]
    fn single_character_counts() {
        let text = b"AACCCGGGGT".to_vec();
        let fm = FmIndex::build(&text);
        assert_eq!(fm.count(b"A"), 2);
        assert_eq!(fm.count(b"C"), 3);
        assert_eq!(fm.count(b"G"), 4);
        assert_eq!(fm.count(b"T"), 1);
        assert_eq!(fm.locate(b"T", 10).unwrap(), vec![9]);
    }

    #[test]
    fn full_text_is_found_at_origin() {
        let text = pseudo_dna(500, 11);
        let fm = FmIndex::build(&text);
        assert_eq!(fm.locate(&text, 5).unwrap(), vec![0]);
    }

    #[test]
    fn packed_rank_matches_scalar_oracle() {
        // Deterministic sweep: every code at checkpoint/word-boundary
        // offsets plus a scatter of interior positions. (The randomized
        // version lives in tests/proptest_aligner.rs.)
        let text = pseudo_dna(3000, 23);
        let fm = FmIndex::build(&text);
        let m = text.len() + 1;
        let mut probes: Vec<usize> = vec![0, 1, 31, 32, 33, 127, 128, 129, m - 1, m];
        probes.extend((0..200).map(|k| (k * 7919) % (m + 1)));
        for c in 1..=4u8 {
            for &i in &probes {
                let (packed, _) = fm.occ_words(c, i);
                assert_eq!(packed, fm.occ_scalar(c, i), "occ({c}, {i})");
            }
        }
    }

    #[test]
    fn scalar_twin_is_byte_identical() {
        let text = pseudo_dna(2000, 41);
        let mut scalar = FmIndex::build(&text);
        scalar.set_kernels(false);
        let fast = FmIndex::build(&text);
        for (start, len) in [(0usize, 12usize), (700, 18), (1988, 12), (5, 9)] {
            let pat = &text[start..start + len];
            assert_eq!(fast.search(pat), scalar.search(pat));
            assert_eq!(fast.locate(pat, 1000), scalar.locate(pat, 1000));
        }
    }

    #[test]
    fn rank_kernel_reports_words_popcounted() {
        let text = pseudo_dna(4000, 29);
        let fm = FmIndex::build(&text);
        let before = crate::kernels::snapshot();
        assert!(fm.count(&text[1000..1020]) > 0);
        let delta = crate::kernels::snapshot().delta(&before);
        assert!(delta.occ_words_popcounted > 0, "kernel ran no words?");
    }

    #[test]
    fn heap_bytes_reflects_packing() {
        let text = pseudo_dna(10_000, 1);
        let fm = FmIndex::build(&text);
        let bytes = fm.heap_bytes();
        // 2-bit packing plus word-aligned checkpoints plus the sorted-vec
        // SA lands well under one byte per text base ...
        assert!(bytes < 10_000, "packed index not smaller than text? {bytes}");
        // ... but the structure is real: more than the ~2500 bytes of
        // packed words alone, and at least text/8.
        assert!(bytes > 10_000 / 8, "index implausibly small: {bytes}");
    }
}
