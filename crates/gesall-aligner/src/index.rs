//! The reference index: concatenated genome + FM-index + coordinate
//! translation. This is the large in-memory object every alignment mapper
//! must load (the per-mapper cost that makes small logical partitions
//! expensive in the paper's Table 4 / Fig. 5a).

use crate::fm::FmIndex;
use gesall_formats::sam::header::{ReferenceSeq, SamHeader};

/// An immutable, shareable alignment index over a set of chromosomes.
pub struct ReferenceIndex {
    names: Vec<String>,
    /// Start offset of each chromosome within `text`.
    offsets: Vec<usize>,
    lens: Vec<usize>,
    text: Vec<u8>,
    fm: FmIndex,
}

impl ReferenceIndex {
    /// Build from (name, sequence) pairs. Sequences must be `ACGT`-only.
    pub fn build(chromosomes: &[(String, Vec<u8>)]) -> ReferenceIndex {
        let mut names = Vec::with_capacity(chromosomes.len());
        let mut offsets = Vec::with_capacity(chromosomes.len());
        let mut lens = Vec::with_capacity(chromosomes.len());
        let mut text = Vec::new();
        for (name, seq) in chromosomes {
            names.push(name.clone());
            offsets.push(text.len());
            lens.push(seq.len());
            text.extend_from_slice(seq);
        }
        let fm = FmIndex::build(&text);
        ReferenceIndex {
            names,
            offsets,
            lens,
            text,
            fm,
        }
    }

    /// The FM-index for seed search.
    pub fn fm(&self) -> &FmIndex {
        &self.fm
    }

    /// Toggle the packed-rank kernel on the underlying FM-index (off =
    /// the symbol-at-a-time scalar twin, for benchmarking; results are
    /// identical either way).
    pub fn set_kernels(&mut self, on: bool) {
        self.fm.set_kernels(on);
    }

    /// Total concatenated length.
    pub fn text_len(&self) -> usize {
        self.text.len()
    }

    /// Number of chromosomes.
    pub fn n_chromosomes(&self) -> usize {
        self.names.len()
    }

    /// Chromosome name by id.
    pub fn name(&self, chrom_id: usize) -> &str {
        &self.names[chrom_id]
    }

    /// Approximate resident size — models the "load the reference genome
    /// index into memory" cost from §4.2.
    pub fn heap_bytes(&self) -> usize {
        self.text.len() + self.fm.heap_bytes()
    }

    /// SAM header describing this reference dictionary.
    pub fn sam_header(&self) -> SamHeader {
        SamHeader::new(
            self.names
                .iter()
                .zip(&self.lens)
                .map(|(name, &len)| ReferenceSeq {
                    name: name.clone(),
                    len: len as u64,
                })
                .collect(),
        )
    }

    /// Translate a global (concatenated) 0-based position to
    /// (chromosome id, 0-based local position).
    pub fn global_to_local(&self, gpos: usize) -> Option<(usize, usize)> {
        if gpos >= self.text.len() {
            return None;
        }
        // offsets is sorted; find the chromosome containing gpos.
        let idx = match self.offsets.binary_search(&gpos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        Some((idx, gpos - self.offsets[idx]))
    }

    /// Translate (chromosome id, 0-based local position) to a global one.
    pub fn local_to_global(&self, chrom_id: usize, pos: usize) -> usize {
        self.offsets[chrom_id] + pos
    }

    /// The full sequence of one chromosome.
    pub fn chromosome_seq(&self, chrom_id: usize) -> &[u8] {
        let start = self.offsets[chrom_id];
        &self.text[start..start + self.lens[chrom_id]]
    }

    /// A reference window `[start, end)` in global coordinates, **clamped
    /// to the chromosome containing `anchor`** — alignments must never
    /// cross chromosome boundaries (CleanSam would drop them anyway).
    /// Returns (window slice, global start of the slice, chromosome id).
    pub fn window_within_chromosome(
        &self,
        anchor: usize,
        start: i64,
        end: i64,
    ) -> Option<(&[u8], usize, usize)> {
        let (chrom, _) = self.global_to_local(anchor)?;
        let c_start = self.offsets[chrom] as i64;
        let c_end = c_start + self.lens[chrom] as i64;
        let s = start.max(c_start) as usize;
        let e = end.min(c_end) as usize;
        if s >= e {
            return None;
        }
        Some((&self.text[s..e], s, chrom))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> ReferenceIndex {
        ReferenceIndex::build(&[
            ("chr1".into(), b"ACGTACGTACGTACGTACGT".to_vec()),
            ("chr2".into(), b"GGGGCCCCGGGGCCCC".to_vec()),
        ])
    }

    #[test]
    fn coordinate_translation_roundtrip() {
        let idx = index();
        assert_eq!(idx.global_to_local(0), Some((0, 0)));
        assert_eq!(idx.global_to_local(19), Some((0, 19)));
        assert_eq!(idx.global_to_local(20), Some((1, 0)));
        assert_eq!(idx.global_to_local(35), Some((1, 15)));
        assert_eq!(idx.global_to_local(36), None);
        for g in 0..36 {
            let (c, p) = idx.global_to_local(g).unwrap();
            assert_eq!(idx.local_to_global(c, p), g);
        }
    }

    #[test]
    fn window_clamps_to_chromosome() {
        let idx = index();
        // Anchor on chr2 near its start; requested window leaks into chr1.
        let (w, gstart, chrom) = idx.window_within_chromosome(22, 15, 30).unwrap();
        assert_eq!(chrom, 1);
        assert_eq!(gstart, 20);
        assert_eq!(w, &b"GGGGCCCCGG"[..]);
        // Window past chromosome end clamps too.
        let (w2, _, _) = idx.window_within_chromosome(34, 30, 99).unwrap();
        assert_eq!(w2.len(), 6);
        // Fully out-of-chromosome window is None.
        assert!(idx.window_within_chromosome(5, 20, 30).is_none());
    }

    #[test]
    fn header_and_names() {
        let idx = index();
        let h = idx.sam_header();
        assert_eq!(h.references.len(), 2);
        assert_eq!(h.references[1].name, "chr2");
        assert_eq!(h.references[1].len, 16);
        assert_eq!(idx.name(0), "chr1");
    }

    #[test]
    fn fm_index_spans_both_chromosomes() {
        let idx = index();
        // "GT" occurs in chr1 many times but also across positions; just
        // verify a chr2-only pattern locates inside chr2's range.
        let hits = idx.fm().locate(b"GGGGCCCC", 10).unwrap();
        assert!(!hits.is_empty());
        for h in hits {
            let (c, _) = idx.global_to_local(h as usize).unwrap();
            assert_eq!(c, 1);
        }
    }
}
