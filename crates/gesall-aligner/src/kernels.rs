//! Process-wide activity counters for the bit-parallel map-phase
//! kernels (DESIGN.md §5).
//!
//! The kernels are exact — proptests pin each to its scalar oracle — so
//! these counters exist to prove the fast paths actually ran and to
//! size the work they did. They are monotone relaxed atomics shared by
//! every index/aligner in the process; callers that need per-run
//! numbers take a [`snapshot`] before and after and subtract
//! ([`Snapshot::delta`]). Hot loops accumulate locally and flush one
//! `fetch_add` per search / extension, so the counters stay off the
//! innermost paths.

use std::sync::atomic::{AtomicU64, Ordering};

static OCC_WORDS_POPCOUNTED: AtomicU64 = AtomicU64::new(0);
static SW_BANDED_HITS: AtomicU64 = AtomicU64::new(0);
static SW_FULL_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// Whole `u64` words popcounted by packed-BWT rank since process start.
#[inline]
pub fn add_occ_words(n: u64) {
    if n != 0 {
        OCC_WORDS_POPCOUNTED.fetch_add(n, Ordering::Relaxed);
    }
}

/// One seed extension answered inside the band.
#[inline]
pub fn add_banded_hit() {
    SW_BANDED_HITS.fetch_add(1, Ordering::Relaxed);
}

/// One seed extension that touched a band edge and re-ran the full DP.
#[inline]
pub fn add_full_fallback() {
    SW_FULL_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time reading of the kernel counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub occ_words_popcounted: u64,
    pub sw_banded_hits: u64,
    pub sw_full_fallbacks: u64,
}

impl Snapshot {
    /// Activity since `earlier` (counters are monotone, so saturating is
    /// only defensive).
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            occ_words_popcounted: self
                .occ_words_popcounted
                .saturating_sub(earlier.occ_words_popcounted),
            sw_banded_hits: self.sw_banded_hits.saturating_sub(earlier.sw_banded_hits),
            sw_full_fallbacks: self
                .sw_full_fallbacks
                .saturating_sub(earlier.sw_full_fallbacks),
        }
    }
}

/// Read all kernel counters.
pub fn snapshot() -> Snapshot {
    Snapshot {
        occ_words_popcounted: OCC_WORDS_POPCOUNTED.load(Ordering::Relaxed),
        sw_banded_hits: SW_BANDED_HITS.load(Ordering::Relaxed),
        sw_full_fallbacks: SW_FULL_FALLBACKS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_delta() {
        let before = snapshot();
        add_occ_words(7);
        add_occ_words(0); // no-op, avoids the atomic entirely
        add_banded_hit();
        add_full_fallback();
        let d = snapshot().delta(&before);
        // Other tests may run concurrently, so deltas are lower-bounded.
        assert!(d.occ_words_popcounted >= 7);
        assert!(d.sw_banded_hits >= 1);
        assert!(d.sw_full_fallbacks >= 1);
    }
}
