//! # gesall-aligner
//!
//! An FM-index based paired-end short-read aligner — the workspace's
//! from-scratch analogue of **Bwa-mem** (Li & Durbin), the first and most
//! CPU-intensive step of the paper's pipeline (Table 2 step 1: 24.5 h on a
//! single server).
//!
//! Architecture, bottom-up:
//!
//! * [`suffix`] — suffix-array construction (prefix doubling);
//! * [`fm`] — BWT + checkpointed rank structure: backward search
//!   (`count`) and sampled-SA `locate`;
//! * [`sw`] — banded local alignment with traceback → CIGAR, soft clips,
//!   alignment score, edit distance;
//! * [`index`] — the reference index: concatenated chromosomes + FM-index
//!   + coordinate translation;
//! * [`single`] — per-read alignment: seeding, candidate generation on
//!   both strands, scoring, mapping quality;
//! * [`pairing`] — per-**batch** paired-end resolution: insert-size
//!   statistics estimated from the batch itself, a step-function pair
//!   score, and seeded random tie-breaking.
//!
//! The last two items are deliberate reproductions of the Bwa behaviours
//! the paper traces parallel/serial discordance to (Appendix B.2):
//! *batch statistics change with data partitions* and *random choice among
//! equal-scoring alignments*. Partition the input differently and this
//! aligner — like real Bwa — produces slightly different output for
//! low-quality, repetitive-region mappings.

pub mod engine;
pub mod fm;
pub mod index;
pub mod kernels;
pub mod pairing;
pub mod single;
pub mod suffix;
pub mod sw;

pub use engine::{Aligner, AlignerConfig};
pub use index::ReferenceIndex;
