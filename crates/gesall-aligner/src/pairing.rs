//! Paired-end resolution with batch-local statistics.
//!
//! This module deliberately reproduces the two Bwa implementation
//! behaviours the paper identifies as the root cause of serial/parallel
//! discordance (Appendix B.2):
//!
//! 1. **Batch statistics** — the insert-size distribution is estimated
//!    from the current batch of reads and then used to score pair
//!    placements in that same batch. Different partitionings make
//!    different batches ⇒ slightly different (mean, sd) ⇒ pair choices
//!    near the distribution's edges can flip (Fig. 11c).
//! 2. **Random choice among equal pair scores** — common around
//!    repetitive regions, resolved by a seeded RNG whose stream position
//!    depends on where the read sits in its batch.

use crate::single::{mapping_quality, Candidate};
use rand::rngs::StdRng;
use rand::Rng;

/// Insert-size distribution estimated from a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsertStats {
    pub mean: f64,
    pub sd: f64,
    /// Number of observations behind the estimate (0 ⇒ prior used).
    pub n: usize,
}

/// Pairing parameters.
#[derive(Debug, Clone)]
pub struct PairConfig {
    /// Prior (mean, sd) used when a batch yields too few observations.
    pub insert_prior: (f64, f64),
    /// Minimum confident observations before trusting batch statistics.
    pub min_observations: usize,
    /// Pairs within `mean ± z_range * sd` are "proper" (the step
    /// function's cliff).
    pub z_range: f64,
    /// Score penalty for a combo that is not a proper pair.
    pub unpaired_penalty: i32,
    /// Consider at most this many candidates per end when pairing.
    pub candidate_cap: usize,
    /// Min single-end score (forwarded to mapq computation).
    pub min_score: i32,
}

impl Default for PairConfig {
    fn default() -> PairConfig {
        PairConfig {
            insert_prior: (400.0, 100.0),
            min_observations: 8,
            z_range: 4.0,
            unpaired_penalty: 17,
            candidate_cap: 8,
            min_score: 30,
        }
    }
}

/// Observed fragment length of a (fwd, rev) candidate pair, if they are in
/// the proper forward/reverse orientation on the same chromosome.
pub fn observed_insert(a: &Candidate, b: &Candidate) -> Option<i64> {
    if a.chrom != b.chrom || a.reverse == b.reverse {
        return None;
    }
    let (fwd, rev) = if a.reverse { (b, a) } else { (a, b) };
    let insert = rev.end_pos() - fwd.pos + 1;
    if insert > 0 {
        Some(insert)
    } else {
        None
    }
}

/// Estimate insert statistics from the confident pairs of a batch —
/// both ends uniquely mapped (clear score gap), proper orientation,
/// sane distance.
pub fn estimate_insert_stats(
    candidates: &[(Vec<Candidate>, Vec<Candidate>)],
    cfg: &PairConfig,
) -> InsertStats {
    let mut observations: Vec<f64> = Vec::new();
    for (c1, c2) in candidates {
        let (Some(a), Some(b)) = (c1.first(), c2.first()) else {
            continue;
        };
        // Uniqueness: runner-up clearly worse on both ends.
        let unique = |cs: &[Candidate]| cs.len() == 1 || cs[0].score - cs[1].score >= 10;
        if !unique(c1) || !unique(c2) {
            continue;
        }
        if let Some(ins) = observed_insert(a, b) {
            if ins < 10_000 {
                observations.push(ins as f64);
            }
        }
    }
    if observations.len() < cfg.min_observations {
        return InsertStats {
            mean: cfg.insert_prior.0,
            sd: cfg.insert_prior.1,
            n: 0,
        };
    }
    let (mut mean, mut sd) = mean_sd(&observations);
    // One outlier-trimming pass, as Bwa does.
    let lo = mean - 4.0 * sd;
    let hi = mean + 4.0 * sd;
    observations.retain(|&x| (lo..=hi).contains(&x));
    if observations.len() >= cfg.min_observations {
        (mean, sd) = mean_sd(&observations);
    }
    InsertStats {
        mean,
        sd: sd.max(1.0),
        n: observations.len(),
    }
}

fn mean_sd(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n.max(1.0);
    (mean, var.sqrt())
}

/// The outcome of pairing one read pair.
#[derive(Debug, Clone)]
pub struct PairChoice {
    /// Chosen placement of read 1 (`None` = unmapped).
    pub c1: Option<Candidate>,
    /// Chosen placement of read 2.
    pub c2: Option<Candidate>,
    /// Proper-pair flag (orientation + insert within range).
    pub proper: bool,
    pub mapq1: u8,
    pub mapq2: u8,
    /// True when an equal-score tie was broken randomly.
    pub tie_broken: bool,
}

/// Is the combo a proper pair under the batch statistics?
fn is_proper(a: &Candidate, b: &Candidate, stats: &InsertStats, z: f64) -> bool {
    match observed_insert(a, b) {
        Some(ins) => {
            let dev = (ins as f64 - stats.mean).abs();
            dev <= z * stats.sd
        }
        None => false,
    }
}

/// Select the best joint placement for one read pair. `rng` breaks exact
/// score ties — the stream position (and hence the choice) depends on the
/// read's location within its batch.
pub fn select_pair(
    c1: &[Candidate],
    c2: &[Candidate],
    stats: &InsertStats,
    cfg: &PairConfig,
    rng: &mut StdRng,
) -> PairChoice {
    let c1 = &c1[..c1.len().min(cfg.candidate_cap)];
    let c2 = &c2[..c2.len().min(cfg.candidate_cap)];

    match (c1.is_empty(), c2.is_empty()) {
        (true, true) => {
            return PairChoice {
                c1: None,
                c2: None,
                proper: false,
                mapq1: 0,
                mapq2: 0,
                tie_broken: false,
            }
        }
        (false, true) => {
            let (chosen, mapq, tie) = pick_single(c1, cfg, rng);
            return PairChoice {
                c1: Some(chosen),
                c2: None,
                proper: false,
                mapq1: mapq,
                mapq2: 0,
                tie_broken: tie,
            };
        }
        (true, false) => {
            let (chosen, mapq, tie) = pick_single(c2, cfg, rng);
            return PairChoice {
                c1: None,
                c2: Some(chosen),
                proper: false,
                mapq1: 0,
                mapq2: mapq,
                tie_broken: tie,
            };
        }
        (false, false) => {}
    }

    // Score every combo; the pair score is a step function of the insert
    // deviation (proper ⇒ no penalty; improper ⇒ flat penalty).
    let mut best_score = i32::MIN;
    let mut best: Vec<(usize, usize, bool)> = Vec::new();
    for (i, a) in c1.iter().enumerate() {
        for (j, b) in c2.iter().enumerate() {
            let proper = is_proper(a, b, stats, cfg.z_range);
            let score = a.score + b.score - if proper { 0 } else { cfg.unpaired_penalty };
            match score.cmp(&best_score) {
                std::cmp::Ordering::Greater => {
                    best_score = score;
                    best.clear();
                    best.push((i, j, proper));
                }
                std::cmp::Ordering::Equal => best.push((i, j, proper)),
                std::cmp::Ordering::Less => {}
            }
        }
    }
    let tie_broken = best.len() > 1;
    let (i, j, proper) = best[rng.gen_range(0..best.len())];
    let chosen1 = c1[i].clone();
    let chosen2 = c2[j].clone();

    // Per-end mapq: separation between the chosen placement and the best
    // alternative placement of the same end.
    let mapq_for = |cs: &[Candidate], pick: usize| {
        let alt = cs
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != pick)
            .map(|(_, c)| c.score)
            .max();
        mapping_quality(cs[pick].score, alt, cfg.min_score)
    };
    let mut mapq1 = mapq_for(c1, i);
    let mut mapq2 = mapq_for(c2, j);
    // A proper pair lends confidence to a weak end (mate rescue effect).
    if proper {
        mapq1 = mapq1.max(mapq2.min(20));
        mapq2 = mapq2.max(mapq1.min(20));
    }
    PairChoice {
        c1: Some(chosen1),
        c2: Some(chosen2),
        proper,
        mapq1,
        mapq2,
        tie_broken,
    }
}

fn pick_single(cs: &[Candidate], cfg: &PairConfig, rng: &mut StdRng) -> (Candidate, u8, bool) {
    let top = cs[0].score;
    let ties: Vec<&Candidate> = cs.iter().filter(|c| c.score == top).collect();
    let tie = ties.len() > 1;
    let chosen = ties[rng.gen_range(0..ties.len())].clone();
    let alt = cs.iter().map(|c| c.score).filter(|&s| s < top).max();
    let mapq = if tie {
        0
    } else {
        mapping_quality(top, alt, cfg.min_score)
    };
    (chosen, mapq, tie)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_formats::sam::cigar::Cigar;
    use rand::SeedableRng;

    fn cand(chrom: usize, pos: i64, reverse: bool, score: i32) -> Candidate {
        Candidate {
            chrom,
            pos,
            reverse,
            score,
            cigar: Cigar::full_match(100),
            edit_distance: 0,
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn observed_insert_fr_orientation() {
        let f = cand(0, 1000, false, 100);
        let r = cand(0, 1301, true, 100);
        // rev end = 1301+99 = 1400 → insert 401.
        assert_eq!(observed_insert(&f, &r), Some(401));
        assert_eq!(observed_insert(&r, &f), Some(401)); // order-insensitive
        // Same strand: no insert.
        assert_eq!(observed_insert(&f, &cand(0, 1300, false, 100)), None);
        // Different chromosome: no insert.
        assert_eq!(observed_insert(&f, &cand(1, 1300, true, 100)), None);
        // Negative span: no insert.
        assert_eq!(observed_insert(&cand(0, 5000, false, 100), &cand(0, 100, true, 100)), None);
    }

    #[test]
    fn stats_fall_back_to_prior() {
        let cfg = PairConfig::default();
        let stats = estimate_insert_stats(&[], &cfg);
        assert_eq!(stats.mean, 400.0);
        assert_eq!(stats.sd, 100.0);
        assert_eq!(stats.n, 0);
    }

    #[test]
    fn stats_estimated_from_confident_pairs() {
        let cfg = PairConfig::default();
        let mut batch = Vec::new();
        for k in 0..50i64 {
            let f = cand(0, 1000 + k * 10, false, 100);
            let r = cand(0, 1000 + k * 10 + 280 + (k % 5) * 10, true, 100);
            batch.push((vec![f], vec![r]));
        }
        let stats = estimate_insert_stats(&batch, &cfg);
        assert!(stats.n >= 40);
        assert!(
            (395.0..405.0).contains(&stats.mean),
            "mean {} (insert = gap + 100 + 20 avg)",
            stats.mean
        );
    }

    #[test]
    fn ambiguous_pairs_excluded_from_stats() {
        let cfg = PairConfig::default();
        // Two near-equal candidates on end 1 ⇒ not confident.
        let batch = vec![(
            vec![cand(0, 1000, false, 100), cand(0, 5000, false, 98)],
            vec![cand(0, 1301, true, 100)],
        )];
        let stats = estimate_insert_stats(&batch, &cfg);
        assert_eq!(stats.n, 0);
    }

    #[test]
    fn proper_pair_beats_higher_single_scores_apart() {
        let cfg = PairConfig::default();
        let stats = InsertStats {
            mean: 400.0,
            sd: 50.0,
            n: 100,
        };
        // End1: one placement. End2: a proper placement scoring 90 and a
        // distant placement scoring 100.
        let c1 = vec![cand(0, 1000, false, 100)];
        let c2 = vec![
            cand(0, 900_000, true, 100),
            cand(0, 1301, true, 95),
        ];
        let choice = select_pair(&c1, &c2, &stats, &cfg, &mut rng());
        assert!(choice.proper);
        assert_eq!(choice.c2.as_ref().unwrap().pos, 1301);
        // 100+95+0 > 100+100-17.
    }

    #[test]
    fn improper_kept_when_gap_exceeds_penalty() {
        let cfg = PairConfig::default();
        let stats = InsertStats {
            mean: 400.0,
            sd: 50.0,
            n: 100,
        };
        let c1 = vec![cand(0, 1000, false, 100)];
        let c2 = vec![
            cand(0, 900_000, true, 100),
            cand(0, 1301, true, 70),
        ];
        let choice = select_pair(&c1, &c2, &stats, &cfg, &mut rng());
        assert!(!choice.proper);
        assert_eq!(choice.c2.as_ref().unwrap().pos, 900_000);
    }

    #[test]
    fn one_end_unmapped() {
        let cfg = PairConfig::default();
        let stats = estimate_insert_stats(&[], &cfg);
        let c1 = vec![cand(0, 1000, false, 100)];
        let choice = select_pair(&c1, &[], &stats, &cfg, &mut rng());
        assert!(choice.c1.is_some());
        assert!(choice.c2.is_none());
        assert!(!choice.proper);
        assert_eq!(choice.mapq2, 0);
        assert!(choice.mapq1 > 0);
    }

    #[test]
    fn tie_break_depends_on_rng_stream() {
        let cfg = PairConfig::default();
        let stats = InsertStats {
            mean: 400.0,
            sd: 50.0,
            n: 100,
        };
        // Two exactly-equal combos (segmental duplication scenario).
        let c1 = vec![cand(0, 1000, false, 100), cand(0, 50_000, false, 100)];
        let c2 = vec![cand(0, 1301, true, 100), cand(0, 50_301, true, 100)];
        let mut choices = std::collections::HashSet::new();
        for seed in 0..32 {
            let mut r = StdRng::seed_from_u64(seed);
            let choice = select_pair(&c1, &c2, &stats, &cfg, &mut r);
            assert!(choice.tie_broken);
            choices.insert(choice.c1.unwrap().pos);
        }
        assert_eq!(
            choices.len(),
            2,
            "both tie outcomes should occur across seeds"
        );
    }

    #[test]
    fn tied_singles_get_mapq_zero() {
        let cfg = PairConfig::default();
        let c = vec![cand(0, 10, false, 80), cand(0, 999, false, 80)];
        let (_, mapq, tie) = pick_single(&c, &cfg, &mut rng());
        assert!(tie);
        assert_eq!(mapq, 0);
    }

    #[test]
    fn proper_pair_rescues_weak_end_mapq() {
        let cfg = PairConfig::default();
        let stats = InsertStats {
            mean: 400.0,
            sd: 50.0,
            n: 100,
        };
        // End2 alone is ambiguous (two similar placements) but pairing
        // disambiguates.
        let c1 = vec![cand(0, 1000, false, 100)];
        let c2 = vec![cand(0, 1301, true, 100), cand(0, 77_000, true, 99)];
        let choice = select_pair(&c1, &c2, &stats, &cfg, &mut rng());
        assert!(choice.proper);
        assert!(choice.mapq2 >= 6);
    }
}
