//! Per-read alignment: seeding, candidate generation, mapping quality.

use crate::index::ReferenceIndex;
use crate::sw::{self, Band, Scoring};
use gesall_formats::dna::reverse_complement;
use gesall_formats::sam::cigar::Cigar;

/// Seeding/alignment parameters for a single read.
#[derive(Debug, Clone)]
pub struct SingleConfig {
    /// Exact-match seed length.
    pub seed_len: usize,
    /// Stride between seed start offsets.
    pub seed_stride: usize,
    /// Seeds hitting more than this many locations are discarded
    /// (repeat-region bail-out — those reads end up mapq 0 or unmapped).
    pub max_seed_hits: usize,
    /// Extra reference bases on each side of the implied window.
    pub window_margin: usize,
    /// Minimum Smith–Waterman score to keep a candidate.
    pub min_score: i32,
    /// Keep at most this many candidates per strand pass.
    pub max_candidates: usize,
    pub scoring: Scoring,
    /// Run seed extension through the banded Smith–Waterman kernel
    /// (DESIGN.md §5). The band is centered on the seed diagonal with
    /// `window_margin` diagonals of slack each side and falls back to
    /// the full DP whenever it can't prove its answer, so turning this
    /// off changes speed, not results.
    pub banded_sw: bool,
}

impl Default for SingleConfig {
    fn default() -> SingleConfig {
        SingleConfig {
            seed_len: 19,
            seed_stride: 12,
            max_seed_hits: 64,
            window_margin: 16,
            min_score: 30,
            max_candidates: 16,
            scoring: Scoring::default(),
            banded_sw: true,
        }
    }
}

/// One candidate alignment of a read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Chromosome id (index into the reference dictionary).
    pub chrom: usize,
    /// 1-based leftmost mapping position.
    pub pos: i64,
    /// Mapped to the reverse strand?
    pub reverse: bool,
    /// Smith–Waterman score.
    pub score: i32,
    /// CIGAR in *aligned-strand* orientation (soft clips included).
    pub cigar: Cigar,
    /// Edit distance of the aligned segment.
    pub edit_distance: u32,
}

impl Candidate {
    /// 1-based inclusive end position on the reference.
    pub fn end_pos(&self) -> i64 {
        self.pos + self.cigar.reference_len() as i64 - 1
    }
}

/// Find candidate alignments of `seq` on both strands, best first.
pub fn find_candidates(
    index: &ReferenceIndex,
    cfg: &SingleConfig,
    seq: &[u8],
) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = Vec::new();
    let rc = reverse_complement(seq);
    for (reverse, s) in [(false, seq), (true, rc.as_slice())] {
        collect_strand_candidates(index, cfg, s, reverse, &mut out);
    }
    // Dedup by (chrom, pos, strand), keep best score.
    out.sort_by(|a, b| {
        (a.chrom, a.pos, a.reverse)
            .cmp(&(b.chrom, b.pos, b.reverse))
            .then(b.score.cmp(&a.score))
    });
    out.dedup_by(|a, b| a.chrom == b.chrom && a.pos == b.pos && a.reverse == b.reverse);
    out.sort_by(|a, b| b.score.cmp(&a.score).then(a.pos.cmp(&b.pos)));
    out.truncate(cfg.max_candidates);
    out
}

fn collect_strand_candidates(
    index: &ReferenceIndex,
    cfg: &SingleConfig,
    s: &[u8],
    reverse: bool,
    out: &mut Vec<Candidate>,
) {
    let m = s.len();
    if m < cfg.seed_len {
        return;
    }
    // Seed offsets: 0, stride, 2*stride, ..., and always the final window.
    let mut seed_offsets: Vec<usize> = (0..=(m - cfg.seed_len))
        .step_by(cfg.seed_stride.max(1))
        .collect();
    if *seed_offsets.last().unwrap() != m - cfg.seed_len {
        seed_offsets.push(m - cfg.seed_len);
    }

    // Gather implied window anchor positions.
    let mut anchors: Vec<i64> = Vec::new();
    for &off in &seed_offsets {
        let seed = &s[off..off + cfg.seed_len];
        if seed.iter().any(|&b| !matches!(b, b'A' | b'C' | b'G' | b'T')) {
            continue;
        }
        let Some(hits) = index.fm().locate(seed, cfg.max_seed_hits) else {
            continue; // too repetitive
        };
        for h in hits {
            anchors.push(h as i64 - off as i64);
        }
    }
    anchors.sort_unstable();
    // Collapse anchors within a small tolerance (same implied alignment).
    anchors.dedup_by(|a, b| (*a - *b).abs() <= 8);

    for anchor in anchors {
        let start = anchor - cfg.window_margin as i64;
        let end = anchor + m as i64 + cfg.window_margin as i64;
        let anchor_probe = anchor.clamp(0, index.text_len() as i64 - 1) as usize;
        let Some((window, gstart, chrom)) =
            index.window_within_chromosome(anchor_probe, start, end)
        else {
            continue;
        };
        // Expected diagonal of the read inside the window: the read
        // should start `anchor - gstart` columns in (≈ window_margin,
        // less when the window was clamped at a chromosome edge).
        let aln = sw::with_workspace(|ws| {
            if cfg.banded_sw {
                let off = (anchor - gstart as i64) as isize;
                let band = Band::around_offset(off, cfg.window_margin);
                sw::local_align_banded(s, window, &cfg.scoring, band, ws)
            } else {
                sw::local_align_with(s, window, &cfg.scoring, ws)
            }
        });
        let Some(aln) = aln else {
            continue;
        };
        if aln.score < cfg.min_score {
            continue;
        }
        let global_pos = gstart + aln.ref_start;
        let (c2, local) = match index.global_to_local(global_pos) {
            Some(v) => v,
            None => continue,
        };
        debug_assert_eq!(c2, chrom);
        out.push(Candidate {
            chrom,
            pos: local as i64 + 1,
            reverse,
            score: aln.score,
            cigar: aln.cigar,
            edit_distance: aln.edit_distance,
        });
    }
}

/// Mapping quality from the best and second-best candidate scores, in the
/// spirit of Bwa-mem: ~6 points of mapq per score point of separation,
/// capped at 60; ties ⇒ 0.
pub fn mapping_quality(best: i32, second: Option<i32>, min_score: i32) -> u8 {
    if best <= 0 {
        return 0;
    }
    let second = second.unwrap_or(min_score - 1).max(0);
    if second >= best {
        return 0;
    }
    let q = 6 * (best - second);
    q.clamp(0, 60) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_dna(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize % 4]
            })
            .collect()
    }

    fn build_index() -> (ReferenceIndex, Vec<u8>, Vec<u8>) {
        let chr1 = pseudo_dna(20_000, 77);
        let chr2 = pseudo_dna(15_000, 78);
        let idx = ReferenceIndex::build(&[
            ("chr1".into(), chr1.clone()),
            ("chr2".into(), chr2.clone()),
        ]);
        (idx, chr1, chr2)
    }

    #[test]
    fn perfect_forward_read_maps_uniquely() {
        let (idx, chr1, _) = build_index();
        let read = chr1[5000..5100].to_vec();
        let cands = find_candidates(&idx, &SingleConfig::default(), &read);
        assert!(!cands.is_empty());
        let best = &cands[0];
        assert_eq!(best.chrom, 0);
        assert_eq!(best.pos, 5001);
        assert!(!best.reverse);
        assert_eq!(best.score, 100);
        assert_eq!(best.cigar.to_string(), "100M");
        // Unique → big score gap to any runner-up.
        if cands.len() > 1 {
            assert!(cands[1].score < 60);
        }
    }

    #[test]
    fn reverse_strand_read_maps() {
        let (idx, _, chr2) = build_index();
        let read = reverse_complement(&chr2[7000..7100]);
        let cands = find_candidates(&idx, &SingleConfig::default(), &read);
        let best = &cands[0];
        assert_eq!(best.chrom, 1);
        assert_eq!(best.pos, 7001);
        assert!(best.reverse);
        assert_eq!(best.score, 100);
    }

    #[test]
    fn read_with_errors_still_maps() {
        let (idx, chr1, _) = build_index();
        let mut read = chr1[9000..9100].to_vec();
        read[20] = match read[20] {
            b'A' => b'C',
            _ => b'A',
        };
        read[70] = match read[70] {
            b'G' => b'T',
            _ => b'G',
        };
        let cands = find_candidates(&idx, &SingleConfig::default(), &read);
        let best = &cands[0];
        assert_eq!(best.pos, 9001);
        assert_eq!(best.edit_distance, 2);
        assert!(best.score >= 100 - 2 * 5);
    }

    #[test]
    fn read_with_insertion_maps_with_indel_cigar() {
        let (idx, chr1, _) = build_index();
        let mut read = chr1[3000..3096].to_vec();
        read.splice(48..48, [b'A', b'C', b'G', b'T']);
        let cands = find_candidates(&idx, &SingleConfig::default(), &read);
        let best = &cands[0];
        assert_eq!(best.pos, 3001);
        let t = best.cigar.to_string();
        assert!(t.contains('I') || t.contains('S'), "cigar {t}");
    }

    #[test]
    fn duplicated_segment_yields_multiple_candidates() {
        // Build a reference where a segment appears twice.
        let mut chr = pseudo_dna(10_000, 5);
        let copy: Vec<u8> = chr[2000..2500].to_vec();
        chr.splice(7000..7500, copy.iter().copied());
        let idx = ReferenceIndex::build(&[("chr1".into(), chr.clone())]);
        let read = chr[2100..2200].to_vec();
        let cands = find_candidates(&idx, &SingleConfig::default(), &read);
        assert!(cands.len() >= 2, "expected 2 placements, got {cands:?}");
        assert_eq!(cands[0].score, cands[1].score, "equal-score tie expected");
        let positions: Vec<i64> = cands.iter().take(2).map(|c| c.pos).collect();
        assert!(positions.contains(&2101));
        assert!(positions.contains(&7101));
    }

    #[test]
    fn garbage_read_has_no_candidates() {
        let (idx, _, _) = build_index();
        // A read from a different random stream is (overwhelmingly)
        // absent; seeds won't hit, so no candidates.
        let read = pseudo_dna(100, 999_999);
        let cands = find_candidates(&idx, &SingleConfig::default(), &read);
        assert!(
            cands.iter().all(|c| c.score < 60),
            "random read should not align well: {cands:?}"
        );
    }

    #[test]
    fn mapq_behaviour() {
        assert_eq!(mapping_quality(100, None, 30), 60);
        assert_eq!(mapping_quality(100, Some(100), 30), 0); // tie
        assert_eq!(mapping_quality(100, Some(99), 30), 6);
        assert_eq!(mapping_quality(100, Some(90), 30), 60);
        assert_eq!(mapping_quality(0, None, 30), 0);
        assert_eq!(mapping_quality(50, Some(45), 30), 30);
    }

    #[test]
    fn banded_candidates_match_scalar_twin() {
        // The full scalar twin (banded SW off, packed rank off) must
        // produce identical candidates for a mix of read shapes.
        let (mut idx, chr1, chr2) = build_index();
        let mut reads: Vec<Vec<u8>> = vec![
            chr1[5000..5100].to_vec(),
            reverse_complement(&chr2[7000..7100]),
            pseudo_dna(100, 999_999),
        ];
        let mut erry = chr1[9000..9100].to_vec();
        erry[20] = match erry[20] {
            b'A' => b'C',
            _ => b'A',
        };
        reads.push(erry);
        let mut indel = chr1[3000..3096].to_vec();
        indel.splice(48..48, [b'A', b'C', b'G', b'T']);
        reads.push(indel);
        let mut deleted = chr1[11000..11104].to_vec();
        deleted.drain(50..54);
        reads.push(deleted);

        let banded_cfg = SingleConfig::default();
        let scalar_cfg = SingleConfig {
            banded_sw: false,
            ..SingleConfig::default()
        };
        let with_kernels: Vec<Vec<Candidate>> = reads
            .iter()
            .map(|r| find_candidates(&idx, &banded_cfg, r))
            .collect();
        idx.set_kernels(false);
        let scalar: Vec<Vec<Candidate>> = reads
            .iter()
            .map(|r| find_candidates(&idx, &scalar_cfg, r))
            .collect();
        assert_eq!(with_kernels, scalar);
    }

    #[test]
    fn short_read_rejected() {
        let (idx, _, _) = build_index();
        let cands = find_candidates(&idx, &SingleConfig::default(), b"ACGT");
        assert!(cands.is_empty());
    }
}
