//! Suffix-array construction by prefix doubling.
//!
//! O(n log² n) worst case — far from SA-IS, but the synthetic genomes in
//! this workspace are ≤ tens of megabases, where doubling with
//! `sort_unstable` is perfectly serviceable and trivially correct
//! (see DESIGN.md §6 for the substitution note).

/// Build the suffix array of `text`. The text must not contain the byte
/// value 0 (reserved as an implicit terminal sentinel smaller than every
/// other byte; the sentinel itself gets index `text.len()` and is *not*
/// included in the returned array).
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    debug_assert!(
        !text.contains(&0),
        "byte 0 is reserved for the sentinel"
    );
    // rank[i] = equivalence class of suffix i by its first k chars.
    let mut rank: Vec<u32> = text.iter().map(|&b| b as u32).collect();
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut tmp = vec![0u32; n];
    let mut k = 1usize;

    // Key of suffix i at doubling width k: (rank[i], rank[i+k] or 0).
    let key = |rank: &[u32], i: u32, k: usize| -> (u32, u32) {
        let second = rank.get(i as usize + k).copied().unwrap_or(0);
        (rank[i as usize] + 1, second.wrapping_add(u32::from((i as usize + k) < rank.len())))
    };

    loop {
        sa.sort_unstable_by_key(|&i| key(&rank, i, k));
        // Re-rank.
        tmp[sa[0] as usize] = 1;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            let bump = u32::from(key(&rank, prev, k) != key(&rank, cur, k));
            tmp[cur as usize] = tmp[prev as usize] + bump;
        }
        std::mem::swap(&mut rank, &mut tmp);
        if rank[sa[n - 1] as usize] as usize == n {
            break; // all ranks distinct
        }
        k *= 2;
        if k >= 2 * n {
            break;
        }
    }
    sa
}

/// Burrows–Wheeler transform from a suffix array. The returned BWT has
/// length `n + 1` (it includes the sentinel rotation): `bwt[0]` is the
/// last character of the text (the sentinel's predecessor), and byte 0
/// marks the sentinel position itself.
pub fn bwt_from_sa(text: &[u8], sa: &[u32]) -> Vec<u8> {
    let n = text.len();
    let mut bwt = Vec::with_capacity(n + 1);
    // Row 0 of the sorted rotations is the sentinel suffix; its BWT char
    // is the text's last byte.
    bwt.push(if n == 0 { 0 } else { text[n - 1] });
    for &s in sa {
        if s == 0 {
            bwt.push(0); // sentinel
        } else {
            bwt.push(text[s as usize - 1]);
        }
    }
    bwt
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sa(text: &[u8]) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..text.len() as u32).collect();
        idx.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        idx
    }

    #[test]
    fn matches_naive_on_classics() {
        for text in [
            b"banana".to_vec(),
            b"mississippi".to_vec(),
            b"AAAAAA".to_vec(),
            b"ACGTACGTACGT".to_vec(),
            b"G".to_vec(),
            b"TA".to_vec(),
        ] {
            assert_eq!(
                suffix_array(&text),
                naive_sa(&text),
                "failed on {:?}",
                String::from_utf8_lossy(&text)
            );
        }
    }

    #[test]
    fn empty_text() {
        assert!(suffix_array(b"").is_empty());
    }

    #[test]
    fn matches_naive_on_pseudorandom_dna() {
        let mut x = 99u64;
        let text: Vec<u8> = (0..3000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize % 4]
            })
            .collect();
        assert_eq!(suffix_array(&text), naive_sa(&text));
    }

    #[test]
    fn matches_naive_on_highly_repetitive() {
        let text = b"ACGT".repeat(500);
        assert_eq!(suffix_array(&text), naive_sa(&text));
        let text2 = [b"TTAGGG".repeat(200), b"CCCTAA".repeat(200)].concat();
        assert_eq!(suffix_array(&text2), naive_sa(&text2));
    }

    #[test]
    fn bwt_roundtrip_structure() {
        let text = b"ACGTTGCAACGT";
        let sa = suffix_array(text);
        let bwt = bwt_from_sa(text, &sa);
        assert_eq!(bwt.len(), text.len() + 1);
        // Exactly one sentinel byte.
        assert_eq!(bwt.iter().filter(|&&b| b == 0).count(), 1);
        // Character multiset preserved (+ sentinel).
        let mut a = bwt.clone();
        a.retain(|&b| b != 0);
        a.sort_unstable();
        let mut b = text.to_vec();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
