//! Smith–Waterman local alignment with affine gaps and traceback.
//!
//! Aligns a read against a small reference window around a seed hit.
//! Unaligned read ends become soft clips — which is why the 5′ *unclipped*
//! end exists as a derived attribute downstream (MarkDuplicates).
//!
//! Two engines share one [`SwWorkspace`] (reusable rolling rows +
//! traceback, so the hot path never allocates): the full DP
//! ([`local_align`]) and a **banded** variant ([`local_align_banded`])
//! that only fills the diagonal band a seed hit implies, with traceback
//! storage proportional to band×rows instead of `(m+1)×(w+1)`. The band
//! is exact-with-fallback: if the banded best path touches a band edge
//! (where out-of-band neighbors were clamped to −∞ and the full DP might
//! have done better), the extension silently re-runs through the full DP
//! — so callers always see the full-DP answer for every path the band
//! can't prove (DESIGN.md §5).

use crate::kernels;
use gesall_formats::sam::cigar::{Cigar, CigarOp};
use std::cell::RefCell;

/// Alignment scoring parameters (Bwa-mem defaults).
#[derive(Debug, Clone, Copy)]
pub struct Scoring {
    pub match_score: i32,
    pub mismatch: i32,
    /// Penalty charged once per gap (negative).
    pub gap_open: i32,
    /// Penalty per gap base (negative).
    pub gap_extend: i32,
}

impl Default for Scoring {
    fn default() -> Scoring {
        Scoring {
            match_score: 1,
            mismatch: -4,
            gap_open: -6,
            gap_extend: -1,
        }
    }
}

/// Result of a local alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAlignment {
    /// Smith–Waterman score of the aligned segment.
    pub score: i32,
    /// 0-based start of the alignment within the reference window.
    pub ref_start: usize,
    /// CIGAR covering the *whole* query: soft clips for unaligned ends.
    pub cigar: Cigar,
    /// Mismatches + inserted + deleted bases in the aligned segment.
    pub edit_distance: u32,
    /// First aligned query base (= leading soft clip length).
    pub query_start: usize,
    /// One past the last aligned query base.
    pub query_end: usize,
}

// Traceback states.
const TB_STOP: u8 = 0;
const TB_DIAG: u8 = 1;
const TB_FROM_E: u8 = 2; // H came from E (insertion run just ended)
const TB_FROM_F: u8 = 3; // H came from F (deletion run just ended)
const E_OPEN: u8 = 0; // E run opened here (came from H above)
const E_EXT: u8 = 1;
const F_OPEN: u8 = 0;
const F_EXT: u8 = 1;

const NEG: i32 = i32::MIN / 4;

/// Reusable DP scratch: rolling score rows and traceback matrices, grown
/// on demand and recycled across calls so the per-extension cost is a
/// `memset`, not a malloc. One lives per thread behind
/// [`with_workspace`]; tests and benches may hold their own.
#[derive(Default)]
pub struct SwWorkspace {
    h_prev: Vec<i32>,
    h_cur: Vec<i32>,
    e_prev: Vec<i32>,
    e_cur: Vec<i32>,
    f_cur: Vec<i32>,
    tb_h: Vec<u8>,
    tb_e: Vec<u8>,
    tb_f: Vec<u8>,
}

impl SwWorkspace {
    pub fn new() -> SwWorkspace {
        SwWorkspace::default()
    }
}

#[inline]
fn reset_i32(v: &mut Vec<i32>, len: usize, fill: i32) {
    v.clear();
    v.resize(len, fill);
}

#[inline]
fn reset_u8(v: &mut Vec<u8>, len: usize, fill: u8) {
    v.clear();
    v.resize(len, fill);
}

thread_local! {
    static WORKSPACE: RefCell<SwWorkspace> = RefCell::new(SwWorkspace::new());
}

/// Run `f` with this thread's shared [`SwWorkspace`]. Do not call
/// [`local_align`] (which borrows the same workspace) from inside `f` —
/// use [`local_align_with`] / [`local_align_banded`] on the borrowed
/// workspace instead.
pub fn with_workspace<R>(f: impl FnOnce(&mut SwWorkspace) -> R) -> R {
    WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

/// A diagonal band: cells `(i, j)` (1-based query row, window column)
/// with `j − i ∈ [d_min, d_max]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Band {
    pub d_min: isize,
    pub d_max: isize,
    /// Noise floor for the edge-potential fallback check: band-edge
    /// cells scoring below this are ignored when deciding whether a
    /// path crossing the band could beat the banded best. On random DNA
    /// the best noise fragment over a band of ~10⁴ cells scores
    /// ≈ log₄(cells) ≈ 8, so the default of 16 sits well above noise
    /// yet far below any real alignment fragment riding the edge.
    pub edge_cutoff: i32,
}

/// See [`Band::edge_cutoff`].
pub const DEFAULT_EDGE_CUTOFF: i32 = 16;

impl Band {
    /// The band around an expected query-start offset in the window
    /// (`j ≈ i + offset` along the seed diagonal), widened by `slack`
    /// diagonals on each side for indels.
    pub fn around_offset(offset: isize, slack: usize) -> Band {
        Band {
            d_min: offset - slack as isize,
            d_max: offset + slack as isize,
            edge_cutoff: DEFAULT_EDGE_CUTOFF,
        }
    }

    fn width(&self) -> usize {
        (self.d_max - self.d_min + 1).max(0) as usize
    }
}

/// Local alignment of `query` against `window`. Returns `None` when no
/// positive-scoring alignment exists. Uses the thread's shared
/// workspace; see [`local_align_with`] to supply your own.
pub fn local_align(query: &[u8], window: &[u8], scoring: &Scoring) -> Option<LocalAlignment> {
    with_workspace(|ws| local_align_with(query, window, scoring, ws))
}

/// Shared traceback walker over whichever traceback matrices the fill
/// produced; `idx` maps a cell to its slot and `visit` observes every
/// cell on the path (the banded caller's edge detector).
#[allow(clippy::too_many_arguments)]
fn trace_path(
    query: &[u8],
    window: &[u8],
    tb_h: &[u8],
    tb_e: &[u8],
    tb_f: &[u8],
    mut idx: impl FnMut(usize, usize) -> usize,
    mut visit: impl FnMut(usize, usize),
    best_i: usize,
    best_j: usize,
) -> (Vec<CigarOp>, u32, usize, usize) {
    let mut i = best_i;
    let mut j = best_j;
    let mut ops_rev: Vec<CigarOp> = Vec::new();
    let mut edit = 0u32;
    let push = |ops: &mut Vec<CigarOp>, op: CigarOp| {
        if let (Some(last), op_n) = (ops.last_mut(), op) {
            match (last, op_n) {
                (CigarOp::Match(a), CigarOp::Match(b)) => {
                    *a += b;
                    return;
                }
                (CigarOp::Ins(a), CigarOp::Ins(b)) => {
                    *a += b;
                    return;
                }
                (CigarOp::Del(a), CigarOp::Del(b)) => {
                    *a += b;
                    return;
                }
                _ => {}
            }
        }
        ops.push(op);
    };
    // State machine over (H/E/F).
    #[derive(PartialEq)]
    enum St {
        H,
        E,
        F,
    }
    let mut st = St::H;
    loop {
        visit(i, j);
        let slot = idx(i, j);
        match st {
            St::H => match tb_h[slot] {
                TB_STOP => break,
                TB_DIAG => {
                    if query[i - 1] != window[j - 1] {
                        edit += 1;
                    }
                    push(&mut ops_rev, CigarOp::Match(1));
                    i -= 1;
                    j -= 1;
                }
                TB_FROM_E => st = St::E,
                TB_FROM_F => st = St::F,
                _ => unreachable!(),
            },
            St::E => {
                push(&mut ops_rev, CigarOp::Ins(1));
                edit += 1;
                let was_open = tb_e[slot] == E_OPEN;
                i -= 1;
                if was_open {
                    st = St::H;
                }
            }
            St::F => {
                push(&mut ops_rev, CigarOp::Del(1));
                edit += 1;
                let was_open = tb_f[slot] == F_OPEN;
                j -= 1;
                if was_open {
                    st = St::H;
                }
            }
        }
    }
    (ops_rev, edit, i, j)
}

fn assemble(
    m: usize,
    ops_rev: Vec<CigarOp>,
    edit: u32,
    stop_i: usize,
    stop_j: usize,
    best: i32,
    best_i: usize,
) -> LocalAlignment {
    let query_start = stop_i;
    let query_end = best_i;
    let ref_start = stop_j;
    let mut ops: Vec<CigarOp> = Vec::new();
    if query_start > 0 {
        ops.push(CigarOp::SoftClip(query_start as u32));
    }
    ops.extend(ops_rev.into_iter().rev());
    if query_end < m {
        ops.push(CigarOp::SoftClip((m - query_end) as u32));
    }
    LocalAlignment {
        score: best,
        ref_start,
        cigar: Cigar(ops),
        edit_distance: edit,
        query_start,
        query_end,
    }
}

/// The full DP, on a caller-supplied workspace.
pub fn local_align_with(
    query: &[u8],
    window: &[u8],
    scoring: &Scoring,
    ws: &mut SwWorkspace,
) -> Option<LocalAlignment> {
    let m = query.len();
    let w = window.len();
    if m == 0 || w == 0 {
        return None;
    }
    let cols = w + 1;
    let SwWorkspace {
        h_prev,
        h_cur,
        e_prev,
        e_cur,
        f_cur,
        tb_h,
        tb_e,
        tb_f,
    } = ws;
    reset_i32(h_prev, cols, 0);
    reset_i32(h_cur, cols, 0);
    reset_i32(e_prev, cols, NEG);
    reset_i32(e_cur, cols, NEG);
    reset_i32(f_cur, cols, NEG);
    reset_u8(tb_h, (m + 1) * cols, TB_STOP);
    reset_u8(tb_e, (m + 1) * cols, E_OPEN);
    reset_u8(tb_f, (m + 1) * cols, F_OPEN);

    let mut best = 0i32;
    let mut best_i = 0usize;
    let mut best_j = 0usize;

    for i in 1..=m {
        h_cur[0] = 0;
        f_cur[0] = NEG;
        let qi = query[i - 1];
        for j in 1..=w {
            let idx = i * cols + j;
            // E: gap in reference (insertion to the read).
            let e_open = h_prev[j] + scoring.gap_open + scoring.gap_extend;
            let e_ext = e_prev[j] + scoring.gap_extend;
            let e = if e_ext > e_open {
                tb_e[idx] = E_EXT;
                e_ext
            } else {
                tb_e[idx] = E_OPEN;
                e_open
            };
            e_cur[j] = e;
            // F: gap in query (deletion from the read).
            let f_open = h_cur[j - 1] + scoring.gap_open + scoring.gap_extend;
            let f_ext = f_cur[j - 1] + scoring.gap_extend;
            let f = if f_ext > f_open {
                tb_f[idx] = F_EXT;
                f_ext
            } else {
                tb_f[idx] = F_OPEN;
                f_open
            };
            f_cur[j] = f;
            // H.
            let sub = if qi == window[j - 1] {
                scoring.match_score
            } else {
                scoring.mismatch
            };
            let diag = h_prev[j - 1] + sub;
            let mut h = 0;
            let mut tb = TB_STOP;
            if diag > h {
                h = diag;
                tb = TB_DIAG;
            }
            if e > h {
                h = e;
                tb = TB_FROM_E;
            }
            if f > h {
                h = f;
                tb = TB_FROM_F;
            }
            h_cur[j] = h;
            tb_h[idx] = tb;
            if h > best {
                best = h;
                best_i = i;
                best_j = j;
            }
        }
        std::mem::swap(h_prev, h_cur);
        std::mem::swap(e_prev, e_cur);
        for v in f_cur.iter_mut() {
            *v = NEG;
        }
    }

    if best <= 0 {
        return None;
    }

    let (ops_rev, edit, stop_i, stop_j) = trace_path(
        query,
        window,
        tb_h,
        tb_e,
        tb_f,
        |i, j| i * cols + j,
        |_, _| {},
        best_i,
        best_j,
    );
    Some(assemble(m, ops_rev, edit, stop_i, stop_j, best, best_i))
}

/// Banded local alignment, exact-with-fallback: fills only cells with
/// `j − i` inside `band`, treating out-of-band neighbors as −∞. The
/// call transparently re-runs the full DP when the band can't prove its
/// answer: no positive cell found, the best path's traceback touches a
/// band-edge diagonal, or any edge cell scored ≥ [`Band::edge_cutoff`]
/// during the fill (a path crossing the band — e.g. an indel wider than
/// the slack — shows up as real score riding the edge even when the
/// *banded* optimum stays interior). Residual caveat: an alignment
/// wholly outside the band (a repeat elsewhere in the window, unseen by
/// every band cell) cannot be detected here; the bench-smoke
/// byte-identity gate is the backstop for that case. Kernel counters
/// record which way each call went.
pub fn local_align_banded(
    query: &[u8],
    window: &[u8],
    scoring: &Scoring,
    band: Band,
    ws: &mut SwWorkspace,
) -> Option<LocalAlignment> {
    let m = query.len();
    let w = window.len();
    if m == 0 || w == 0 {
        return None;
    }
    let band_w = band.width();
    // A band that misses the matrix or isn't actually narrower than it
    // proves nothing worth the second pass: go straight to the full DP.
    if band_w == 0
        || band.d_max < 1 - m as isize
        || band.d_min > w as isize - 1
        || band_w >= w
    {
        kernels::add_full_fallback();
        return local_align_with(query, window, scoring, ws);
    }
    let (d_min, d_max) = (band.d_min, band.d_max);
    let SwWorkspace {
        h_prev,
        h_cur,
        e_prev,
        e_cur,
        f_cur,
        tb_h,
        tb_e,
        tb_f,
    } = ws;
    // Row slots 0..band_w hold band cells; slot band_w is a permanent −∞
    // sentinel so the `b + 1` up-neighbor read needs no branch.
    reset_i32(h_prev, band_w + 1, NEG);
    reset_i32(h_cur, band_w + 1, NEG);
    reset_i32(e_prev, band_w + 1, NEG);
    reset_i32(e_cur, band_w + 1, NEG);
    reset_i32(f_cur, band_w + 1, NEG);
    reset_u8(tb_h, (m + 1) * band_w, TB_STOP);
    reset_u8(tb_e, (m + 1) * band_w, E_OPEN);
    reset_u8(tb_f, (m + 1) * band_w, F_OPEN);

    let mut best = 0i32;
    let mut best_i = 0usize;
    let mut best_j = 0usize;
    // Best case any path crossing a band edge could still reach: the
    // edge cell's score plus a perfect-match continuation outside.
    let mut edge_potential = NEG;

    for i in 1..=m {
        for b in 0..band_w {
            h_cur[b] = NEG;
            e_cur[b] = NEG;
            f_cur[b] = NEG;
        }
        let jlo = (i as isize + d_min).max(1);
        let jhi = (i as isize + d_max).min(w as isize);
        if jlo <= jhi {
            let qi = query[i - 1];
            for j in jlo..=jhi {
                let b = (j - i as isize - d_min) as usize;
                let idx = i * band_w + b;
                // Up neighbor (i−1, j): band slot b+1 of the previous
                // row; the matrix's top boundary is H=0 / E=−∞.
                let (up_h, up_e) = if i == 1 {
                    (0, NEG)
                } else {
                    (h_prev[b + 1], e_prev[b + 1])
                };
                let e_open = up_h + scoring.gap_open + scoring.gap_extend;
                let e_ext = up_e + scoring.gap_extend;
                let e = if e_ext > e_open {
                    tb_e[idx] = E_EXT;
                    e_ext
                } else {
                    tb_e[idx] = E_OPEN;
                    e_open
                };
                e_cur[b] = e;
                // Left neighbor (i, j−1): band slot b−1 of this row; the
                // matrix's left boundary is H=0 / F=−∞; off-band is −∞.
                let (left_h, left_f) = if j == 1 {
                    (0, NEG)
                } else if b == 0 {
                    (NEG, NEG)
                } else {
                    (h_cur[b - 1], f_cur[b - 1])
                };
                let f_open = left_h + scoring.gap_open + scoring.gap_extend;
                let f_ext = left_f + scoring.gap_extend;
                let f = if f_ext > f_open {
                    tb_f[idx] = F_EXT;
                    f_ext
                } else {
                    tb_f[idx] = F_OPEN;
                    f_open
                };
                f_cur[b] = f;
                // Diag neighbor (i−1, j−1): same band slot b of the
                // previous row (always structurally in-band).
                let diag_h = if i == 1 || j == 1 { 0 } else { h_prev[b] };
                let sub = if qi == window[j as usize - 1] {
                    scoring.match_score
                } else {
                    scoring.mismatch
                };
                let diag = diag_h + sub;
                let mut h = 0;
                let mut tb = TB_STOP;
                if diag > h {
                    h = diag;
                    tb = TB_DIAG;
                }
                if e > h {
                    h = e;
                    tb = TB_FROM_E;
                }
                if f > h {
                    h = f;
                    tb = TB_FROM_F;
                }
                h_cur[b] = h;
                tb_h[idx] = tb;
                if h > best {
                    best = h;
                    best_i = i;
                    best_j = j as usize;
                }
                // Real score riding an edge diagonal (b==0 ⟺ d==d_min,
                // b==band_w−1 ⟺ d==d_max) may be a path crossing the
                // band; what it could still earn outside is bounded by a
                // perfect-match continuation over the remaining rows.
                // Gap-shadows of an interior optimum also reach the edge
                // (at optimum − gap cost), but their potential stays
                // below the optimum, so they don't fire this.
                if (b == 0 || b == band_w - 1) && h >= band.edge_cutoff {
                    let pot = h + (m - i) as i32 * scoring.match_score;
                    edge_potential = edge_potential.max(pot);
                }
            }
        }
        std::mem::swap(h_prev, h_cur);
        std::mem::swap(e_prev, e_cur);
    }

    if best <= 0 || edge_potential >= best {
        // Either the band found nothing positive, or a band-crossing
        // path could plausibly match or beat the banded best — both
        // mean the full matrix may hold an answer the band can't see.
        kernels::add_full_fallback();
        return local_align_with(query, window, scoring, ws);
    }

    let mut edge_touched = false;
    let (ops_rev, edit, stop_i, stop_j) = trace_path(
        query,
        window,
        tb_h,
        tb_e,
        tb_f,
        |i, j| {
            let b = (j as isize - i as isize - d_min) as usize;
            debug_assert!(b < band_w, "traceback left the band");
            i * band_w + b
        },
        |i, j| {
            let d = j as isize - i as isize;
            if d == d_min || d == d_max {
                edge_touched = true;
            }
        },
        best_i,
        best_j,
    );
    if edge_touched {
        kernels::add_full_fallback();
        return local_align_with(query, window, scoring, ws);
    }
    kernels::add_banded_hit();
    Some(assemble(m, ops_rev, edit, stop_i, stop_j, best, best_i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Scoring {
        Scoring::default()
    }

    #[test]
    fn perfect_match() {
        let q = b"ACGTACGTAC";
        let w = b"TTTACGTACGTACTTT";
        let a = local_align(q, w, &s()).unwrap();
        assert_eq!(a.score, 10);
        assert_eq!(a.ref_start, 3);
        assert_eq!(a.cigar.to_string(), "10M");
        assert_eq!(a.edit_distance, 0);
        assert_eq!(a.query_start, 0);
        assert_eq!(a.query_end, 10);
    }

    #[test]
    fn single_mismatch_in_middle() {
        let q = b"ACGTACGTACGTACGTACGT";
        let mut wv = q.to_vec();
        wv[10] = b'A'; // was C
        let a = local_align(q, &wv, &s()).unwrap();
        assert_eq!(a.cigar.to_string(), "20M");
        assert_eq!(a.edit_distance, 1);
        assert_eq!(a.score, 19 - 4);
    }

    #[test]
    fn insertion_in_read() {
        // read has 2 extra bases vs reference
        let reference = b"ACGTACGTTGCATGCAACGT";
        let mut q = reference.to_vec();
        q.splice(10..10, [b'G', b'G']);
        let a = local_align(&q, reference, &s()).unwrap();
        assert!(a.cigar.to_string().contains('I'), "cigar {}", a.cigar);
        let ins: u32 = a
            .cigar
            .0
            .iter()
            .filter_map(|op| match op {
                CigarOp::Ins(n) => Some(*n),
                _ => None,
            })
            .sum();
        // The 2-base insertion may be absorbed as clips, but the best
        // scoring path keeps both flanks: 20 matches - gap cost.
        assert_eq!(ins, 2);
        assert_eq!(a.score, 20 - 6 - 2);
    }

    #[test]
    fn deletion_from_read() {
        // Long flanks so bridging the 3-base deletion (gap cost 9) clearly
        // beats soft-clipping a whole flank.
        let reference = b"ACGTACGTTGCATGCAACGTCCATGGTTCAGGACTTACAG";
        let mut q = reference.to_vec();
        q.drain(18..21);
        let a = local_align(&q, reference, &s()).unwrap();
        let del: u32 = a
            .cigar
            .0
            .iter()
            .filter_map(|op| match op {
                CigarOp::Del(n) => Some(*n),
                _ => None,
            })
            .sum();
        assert_eq!(del, 3);
        assert_eq!(a.edit_distance, 3);
    }

    #[test]
    fn low_quality_tail_is_soft_clipped() {
        // First 30 bases match; last 10 are garbage relative to window.
        let window = b"GGATCCGGAACCTTGGAACCGGTTAACCGGAATT";
        let mut q = window[2..32].to_vec();
        q.extend_from_slice(b"CACACACACA"); // unrelated tail
        let a = local_align(&q, window, &s()).unwrap();
        assert_eq!(a.query_start, 0);
        assert!(a.query_end <= 32);
        let t = a.cigar.to_string();
        assert!(t.ends_with('S'), "expected trailing soft clip: {t}");
        assert_eq!(a.cigar.query_len() as usize, q.len());
    }

    #[test]
    fn no_alignment_for_disjoint_sequences() {
        let a = local_align(b"AAAAAAAA", b"TTTTTTTT", &s());
        // Single-base matches score 1; local alignment of A vs T text has
        // no positive cells at all.
        assert!(a.is_none());
    }

    #[test]
    fn empty_inputs() {
        assert!(local_align(b"", b"ACGT", &s()).is_none());
        assert!(local_align(b"ACGT", b"", &s()).is_none());
    }

    #[test]
    fn cigar_query_len_invariant() {
        // Whatever the alignment, the CIGAR must account for every query
        // base (softclips + M + I).
        let window = b"ACGGTTACAGGATACCATGGTTCAGGACTTACA";
        for q in [
            b"GGTTACAGGATACC".to_vec(),
            b"GGTTACAGGAAACC".to_vec(),
            b"TTTTGGTTACAGGATACC".to_vec(),
        ] {
            if let Some(a) = local_align(&q, window, &s()) {
                assert_eq!(a.cigar.query_len() as usize, q.len(), "query {:?}", q);
            }
        }
    }

    #[test]
    fn alignment_score_prefers_gap_over_many_mismatches() {
        // Reference has 1-base deletion relative to read: aligning with a
        // gap (cost 7) beats forcing 10+ mismatches.
        let reference = b"ACGTAGCCTAGGATCAGGTTACGATTACGGAT";
        let mut q = reference.to_vec();
        q.remove(15);
        let a = local_align(&q, reference, &s()).unwrap();
        assert!(a.cigar.to_string().contains('D'), "{}", a.cigar);
    }

    // ---- banded kernel ----

    fn pseudo_dna(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize % 4]
            })
            .collect()
    }

    /// The seed-extension shape: window = read context ± margin, read cut
    /// from the middle with point errors/indels.
    fn seeded_pair(seed: u64, margin: usize, mutate: impl Fn(&mut Vec<u8>)) -> (Vec<u8>, Vec<u8>) {
        let ctx = pseudo_dna(100 + 2 * margin, seed);
        let mut read = ctx[margin..margin + 100].to_vec();
        mutate(&mut read);
        (read, ctx)
    }

    #[test]
    fn banded_equals_full_on_seeded_pairs() {
        let margin = 16;
        let band = Band::around_offset(margin as isize, margin);
        let mut ws = SwWorkspace::new();
        for seed in 0..40u64 {
            let (read, window) = seeded_pair(seed, margin, |r| {
                // A couple of point errors.
                r[10] = b"ACGT"[(seed % 4) as usize];
                r[77] = b"ACGT"[((seed + 1) % 4) as usize];
                if seed % 3 == 0 {
                    // Small deletion (3bp), well inside the band slack.
                    r.drain(40..43);
                }
                if seed % 5 == 0 {
                    // Small insertion.
                    r.splice(60..60, [b'A', b'C']);
                }
            });
            let full = local_align(&read, &window, &s());
            let banded = local_align_banded(&read, &window, &s(), band, &mut ws);
            assert_eq!(banded, full, "seed {seed}");
        }
    }

    #[test]
    fn banded_hits_are_counted() {
        let margin = 16;
        let band = Band::around_offset(margin as isize, margin);
        let mut ws = SwWorkspace::new();
        let (read, window) = seeded_pair(7, margin, |_| {});
        let before = crate::kernels::snapshot();
        let a = local_align_banded(&read, &window, &s(), band, &mut ws).unwrap();
        assert_eq!(a.score, 100);
        let delta = crate::kernels::snapshot().delta(&before);
        assert!(delta.sw_banded_hits >= 1);
    }

    #[test]
    fn band_edge_falls_back_to_full() {
        // An indel bigger than the band slack pushes the best path onto /
        // past the band edge; the fallback must hand back the full answer.
        let margin = 16;
        let band = Band::around_offset(margin as isize, 4); // slack 4 only
        let mut ws = SwWorkspace::new();
        let (read, window) = seeded_pair(11, margin, |r| {
            r.drain(30..40); // 10bp deletion > slack 4
        });
        let before = crate::kernels::snapshot();
        let full = local_align(&read, &window, &s());
        let banded = local_align_banded(&read, &window, &s(), band, &mut ws);
        assert_eq!(banded, full);
        let delta = crate::kernels::snapshot().delta(&before);
        assert!(delta.sw_full_fallbacks >= 1, "expected an edge fallback");
    }

    #[test]
    fn degenerate_bands_fall_back() {
        let mut ws = SwWorkspace::new();
        let q = b"ACGTACGTAC";
        let w = b"TTTACGTACGTACTTT";
        let full = local_align(q, w, &s());
        // Band wider than the window: full DP, same answer.
        assert_eq!(
            local_align_banded(q, w, &s(), Band::around_offset(0, 100), &mut ws),
            full
        );
        // Band entirely off-matrix: full DP, same answer.
        let off_matrix = Band {
            d_min: 500,
            d_max: 510,
            edge_cutoff: DEFAULT_EDGE_CUTOFF,
        };
        assert_eq!(local_align_banded(q, w, &s(), off_matrix, &mut ws), full);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        // A big alignment followed by a small one: stale workspace
        // contents must not leak into the second result.
        let mut ws = SwWorkspace::new();
        let big_q = pseudo_dna(200, 3);
        let big_w = pseudo_dna(300, 3);
        let _ = local_align_with(&big_q, &big_w, &s(), &mut ws);
        let a = local_align_with(b"ACGTACGTAC", b"TTTACGTACGTACTTT", &s(), &mut ws).unwrap();
        assert_eq!(a.cigar.to_string(), "10M");
        assert_eq!(a.score, 10);
        let band = Band::around_offset(3, 4);
        let b = local_align_banded(b"ACGTACGTAC", b"TTTACGTACGTACTTT", &s(), band, &mut ws).unwrap();
        assert_eq!(b, a);
    }

    #[test]
    fn banded_none_matches_full_none() {
        let mut ws = SwWorkspace::new();
        let band = Band::around_offset(0, 4);
        assert!(local_align_banded(b"AAAAAAAA", b"TTTTTTTT", &s(), band, &mut ws).is_none());
        assert!(local_align_banded(b"", b"ACGT", &s(), band, &mut ws).is_none());
        assert!(local_align_banded(b"ACGT", b"", &s(), band, &mut ws).is_none());
    }
}

