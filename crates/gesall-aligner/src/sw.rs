//! Smith–Waterman local alignment with affine gaps and traceback.
//!
//! Aligns a read against a small reference window around a seed hit.
//! Unaligned read ends become soft clips — which is why the 5′ *unclipped*
//! end exists as a derived attribute downstream (MarkDuplicates).

use gesall_formats::sam::cigar::{Cigar, CigarOp};

/// Alignment scoring parameters (Bwa-mem defaults).
#[derive(Debug, Clone, Copy)]
pub struct Scoring {
    pub match_score: i32,
    pub mismatch: i32,
    /// Penalty charged once per gap (negative).
    pub gap_open: i32,
    /// Penalty per gap base (negative).
    pub gap_extend: i32,
}

impl Default for Scoring {
    fn default() -> Scoring {
        Scoring {
            match_score: 1,
            mismatch: -4,
            gap_open: -6,
            gap_extend: -1,
        }
    }
}

/// Result of a local alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAlignment {
    /// Smith–Waterman score of the aligned segment.
    pub score: i32,
    /// 0-based start of the alignment within the reference window.
    pub ref_start: usize,
    /// CIGAR covering the *whole* query: soft clips for unaligned ends.
    pub cigar: Cigar,
    /// Mismatches + inserted + deleted bases in the aligned segment.
    pub edit_distance: u32,
    /// First aligned query base (= leading soft clip length).
    pub query_start: usize,
    /// One past the last aligned query base.
    pub query_end: usize,
}

// Traceback states.
const TB_STOP: u8 = 0;
const TB_DIAG: u8 = 1;
const TB_FROM_E: u8 = 2; // H came from E (insertion run just ended)
const TB_FROM_F: u8 = 3; // H came from F (deletion run just ended)
const E_OPEN: u8 = 0; // E run opened here (came from H above)
const E_EXT: u8 = 1;
const F_OPEN: u8 = 0;
const F_EXT: u8 = 1;

/// Local alignment of `query` against `window`. Returns `None` when no
/// positive-scoring alignment exists.
pub fn local_align(query: &[u8], window: &[u8], scoring: &Scoring) -> Option<LocalAlignment> {
    let m = query.len();
    let w = window.len();
    if m == 0 || w == 0 {
        return None;
    }
    let cols = w + 1;
    let neg = i32::MIN / 4;
    // DP rows (rolling) + full traceback matrices.
    let mut h_prev = vec![0i32; cols];
    let mut h_cur = vec![0i32; cols];
    let mut e_prev = vec![neg; cols];
    let mut e_cur = vec![neg; cols];
    let mut f_cur = vec![neg; cols];
    let mut tb_h = vec![TB_STOP; (m + 1) * cols];
    let mut tb_e = vec![E_OPEN; (m + 1) * cols];
    let mut tb_f = vec![F_OPEN; (m + 1) * cols];

    let mut best = 0i32;
    let mut best_i = 0usize;
    let mut best_j = 0usize;

    for i in 1..=m {
        h_cur[0] = 0;
        f_cur[0] = neg;
        let qi = query[i - 1];
        for j in 1..=w {
            let idx = i * cols + j;
            // E: gap in reference (insertion to the read).
            let e_open = h_prev[j] + scoring.gap_open + scoring.gap_extend;
            let e_ext = e_prev[j] + scoring.gap_extend;
            let e = if e_ext > e_open {
                tb_e[idx] = E_EXT;
                e_ext
            } else {
                tb_e[idx] = E_OPEN;
                e_open
            };
            e_cur[j] = e;
            // F: gap in query (deletion from the read).
            let f_open = h_cur[j - 1] + scoring.gap_open + scoring.gap_extend;
            let f_ext = f_cur[j - 1] + scoring.gap_extend;
            let f = if f_ext > f_open {
                tb_f[idx] = F_EXT;
                f_ext
            } else {
                tb_f[idx] = F_OPEN;
                f_open
            };
            f_cur[j] = f;
            // H.
            let sub = if qi == window[j - 1] {
                scoring.match_score
            } else {
                scoring.mismatch
            };
            let diag = h_prev[j - 1] + sub;
            let mut h = 0;
            let mut tb = TB_STOP;
            if diag > h {
                h = diag;
                tb = TB_DIAG;
            }
            if e > h {
                h = e;
                tb = TB_FROM_E;
            }
            if f > h {
                h = f;
                tb = TB_FROM_F;
            }
            h_cur[j] = h;
            tb_h[idx] = tb;
            if h > best {
                best = h;
                best_i = i;
                best_j = j;
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut e_prev, &mut e_cur);
        for v in f_cur.iter_mut() {
            *v = neg;
        }
    }

    if best <= 0 {
        return None;
    }

    // Traceback from (best_i, best_j).
    let mut i = best_i;
    let mut j = best_j;
    let mut ops_rev: Vec<CigarOp> = Vec::new();
    let mut edit = 0u32;
    let push = |ops: &mut Vec<CigarOp>, op: CigarOp| {
        if let (Some(last), op_n) = (ops.last_mut(), op) {
            match (last, op_n) {
                (CigarOp::Match(a), CigarOp::Match(b)) => {
                    *a += b;
                    return;
                }
                (CigarOp::Ins(a), CigarOp::Ins(b)) => {
                    *a += b;
                    return;
                }
                (CigarOp::Del(a), CigarOp::Del(b)) => {
                    *a += b;
                    return;
                }
                _ => {}
            }
        }
        ops.push(op);
    };
    // State machine over (H/E/F).
    #[derive(PartialEq)]
    enum St {
        H,
        E,
        F,
    }
    let mut st = St::H;
    loop {
        let idx = i * cols + j;
        match st {
            St::H => match tb_h[idx] {
                TB_STOP => break,
                TB_DIAG => {
                    if query[i - 1] != window[j - 1] {
                        edit += 1;
                    }
                    push(&mut ops_rev, CigarOp::Match(1));
                    i -= 1;
                    j -= 1;
                }
                TB_FROM_E => st = St::E,
                TB_FROM_F => st = St::F,
                _ => unreachable!(),
            },
            St::E => {
                push(&mut ops_rev, CigarOp::Ins(1));
                edit += 1;
                let was_open = tb_e[idx] == E_OPEN;
                i -= 1;
                if was_open {
                    st = St::H;
                }
            }
            St::F => {
                push(&mut ops_rev, CigarOp::Del(1));
                edit += 1;
                let was_open = tb_f[idx] == F_OPEN;
                j -= 1;
                if was_open {
                    st = St::H;
                }
            }
        }
    }

    let query_start = i;
    let query_end = best_i;
    let ref_start = j;
    let mut ops: Vec<CigarOp> = Vec::new();
    if query_start > 0 {
        ops.push(CigarOp::SoftClip(query_start as u32));
    }
    ops.extend(ops_rev.into_iter().rev());
    if query_end < m {
        ops.push(CigarOp::SoftClip((m - query_end) as u32));
    }

    Some(LocalAlignment {
        score: best,
        ref_start,
        cigar: Cigar(ops),
        edit_distance: edit,
        query_start,
        query_end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Scoring {
        Scoring::default()
    }

    #[test]
    fn perfect_match() {
        let q = b"ACGTACGTAC";
        let w = b"TTTACGTACGTACTTT";
        let a = local_align(q, w, &s()).unwrap();
        assert_eq!(a.score, 10);
        assert_eq!(a.ref_start, 3);
        assert_eq!(a.cigar.to_string(), "10M");
        assert_eq!(a.edit_distance, 0);
        assert_eq!(a.query_start, 0);
        assert_eq!(a.query_end, 10);
    }

    #[test]
    fn single_mismatch_in_middle() {
        let q = b"ACGTACGTACGTACGTACGT";
        let mut wv = q.to_vec();
        wv[10] = b'A'; // was C
        let a = local_align(q, &wv, &s()).unwrap();
        assert_eq!(a.cigar.to_string(), "20M");
        assert_eq!(a.edit_distance, 1);
        assert_eq!(a.score, 19 - 4);
    }

    #[test]
    fn insertion_in_read() {
        // read has 2 extra bases vs reference
        let reference = b"ACGTACGTTGCATGCAACGT";
        let mut q = reference.to_vec();
        q.splice(10..10, [b'G', b'G']);
        let a = local_align(&q, reference, &s()).unwrap();
        assert!(a.cigar.to_string().contains('I'), "cigar {}", a.cigar);
        let ins: u32 = a
            .cigar
            .0
            .iter()
            .filter_map(|op| match op {
                CigarOp::Ins(n) => Some(*n),
                _ => None,
            })
            .sum();
        // The 2-base insertion may be absorbed as clips, but the best
        // scoring path keeps both flanks: 20 matches - gap cost.
        assert_eq!(ins, 2);
        assert_eq!(a.score, 20 - 6 - 2);
    }

    #[test]
    fn deletion_from_read() {
        // Long flanks so bridging the 3-base deletion (gap cost 9) clearly
        // beats soft-clipping a whole flank.
        let reference = b"ACGTACGTTGCATGCAACGTCCATGGTTCAGGACTTACAG";
        let mut q = reference.to_vec();
        q.drain(18..21);
        let a = local_align(&q, reference, &s()).unwrap();
        let del: u32 = a
            .cigar
            .0
            .iter()
            .filter_map(|op| match op {
                CigarOp::Del(n) => Some(*n),
                _ => None,
            })
            .sum();
        assert_eq!(del, 3);
        assert_eq!(a.edit_distance, 3);
    }

    #[test]
    fn low_quality_tail_is_soft_clipped() {
        // First 30 bases match; last 10 are garbage relative to window.
        let window = b"GGATCCGGAACCTTGGAACCGGTTAACCGGAATT";
        let mut q = window[2..32].to_vec();
        q.extend_from_slice(b"CACACACACA"); // unrelated tail
        let a = local_align(&q, window, &s()).unwrap();
        assert_eq!(a.query_start, 0);
        assert!(a.query_end <= 32);
        let t = a.cigar.to_string();
        assert!(t.ends_with('S'), "expected trailing soft clip: {t}");
        assert_eq!(a.cigar.query_len() as usize, q.len());
    }

    #[test]
    fn no_alignment_for_disjoint_sequences() {
        let a = local_align(b"AAAAAAAA", b"TTTTTTTT", &s());
        // Single-base matches score 1; local alignment of A vs T text has
        // no positive cells at all.
        assert!(a.is_none());
    }

    #[test]
    fn empty_inputs() {
        assert!(local_align(b"", b"ACGT", &s()).is_none());
        assert!(local_align(b"ACGT", b"", &s()).is_none());
    }

    #[test]
    fn cigar_query_len_invariant() {
        // Whatever the alignment, the CIGAR must account for every query
        // base (softclips + M + I).
        let window = b"ACGGTTACAGGATACCATGGTTCAGGACTTACA";
        for q in [
            b"GGTTACAGGATACC".to_vec(),
            b"GGTTACAGGAAACC".to_vec(),
            b"TTTTGGTTACAGGATACC".to_vec(),
        ] {
            if let Some(a) = local_align(&q, window, &s()) {
                assert_eq!(a.cigar.query_len() as usize, q.len(), "query {:?}", q);
            }
        }
    }

    #[test]
    fn alignment_score_prefers_gap_over_many_mismatches() {
        // Reference has 1-base deletion relative to read: aligning with a
        // gap (cost 7) beats forcing 10+ mismatches.
        let reference = b"ACGTAGCCTAGGATCAGGTTACGATTACGGAT";
        let mut q = reference.to_vec();
        q.remove(15);
        let a = local_align(&q, reference, &s()).unwrap();
        assert!(a.cigar.to_string().contains('D'), "{}", a.cigar);
    }
}
