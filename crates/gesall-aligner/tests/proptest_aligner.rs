//! Property-based tests of the alignment substrate: suffix array /
//! FM-index correctness against naive reference implementations, and
//! Smith–Waterman structural invariants.

use gesall_aligner::fm::FmIndex;
use gesall_aligner::suffix::suffix_array;
use gesall_aligner::sw::{local_align, Scoring};
use proptest::prelude::*;

fn arb_dna(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')],
        min..max,
    )
}

fn naive_sa(text: &[u8]) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..text.len() as u32).collect();
    idx.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    idx
}

fn naive_count(text: &[u8], pat: &[u8]) -> u64 {
    if pat.is_empty() || pat.len() > text.len() {
        return 0;
    }
    (0..=text.len() - pat.len())
        .filter(|&i| &text[i..i + pat.len()] == pat)
        .count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn suffix_array_matches_naive(text in arb_dna(1, 400)) {
        prop_assert_eq!(suffix_array(&text), naive_sa(&text));
    }

    #[test]
    fn suffix_array_handles_low_complexity(unit in arb_dna(1, 6), reps in 1usize..80) {
        let text: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        prop_assert_eq!(suffix_array(&text), naive_sa(&text));
    }

    #[test]
    fn fm_count_matches_naive(text in arb_dna(20, 600), start in 0usize..500, len in 1usize..20) {
        let fm = FmIndex::build(&text);
        // A pattern cut from the text (guaranteed ≥1 occurrence).
        let start = start % text.len();
        let len = len.min(text.len() - start).max(1);
        let pat = &text[start..start + len];
        prop_assert_eq!(fm.count(pat), naive_count(&text, pat));
        // And a probably-absent random pattern.
        let absent = b"ACGTTGCAACGTTGCAACGTT";
        prop_assert_eq!(fm.count(absent), naive_count(&text, absent));
    }

    #[test]
    fn fm_locate_matches_naive(text in arb_dna(30, 400), start in 0usize..300, len in 4usize..16) {
        let fm = FmIndex::build(&text);
        let start = start % text.len();
        let len = len.min(text.len() - start).max(1);
        let pat = &text[start..start + len];
        let expected: Vec<u64> = (0..=text.len() - pat.len())
            .filter(|&i| &text[i..i + pat.len()] == pat)
            .map(|i| i as u64)
            .collect();
        if let Some(hits) = fm.locate(pat, 10_000) {
            prop_assert_eq!(hits, expected);
        } else {
            prop_assert!(expected.len() > 10_000);
        }
    }

    #[test]
    fn smith_waterman_invariants(query in arb_dna(5, 120), window in arb_dna(5, 160)) {
        if let Some(a) = local_align(&query, &window, &Scoring::default()) {
            // CIGAR accounts for every query base.
            prop_assert_eq!(a.cigar.query_len() as usize, query.len());
            // Score bounded by perfect match.
            prop_assert!(a.score <= query.len() as i32);
            prop_assert!(a.score > 0);
            // Alignment fits in the window.
            prop_assert!(a.ref_start + a.cigar.reference_len() as usize <= window.len());
            // Clip bookkeeping is consistent.
            prop_assert_eq!(a.cigar.leading_clip() as usize, a.query_start);
            prop_assert_eq!(a.cigar.trailing_clip() as usize, query.len() - a.query_end);
            prop_assert!(a.cigar.validate().is_ok());
        }
    }

    #[test]
    fn smith_waterman_finds_planted_exact_match(
        window in arb_dna(60, 200),
        qlen in 20usize..50,
        offset in 0usize..150,
    ) {
        let offset = offset % (window.len().saturating_sub(qlen).max(1));
        let qlen = qlen.min(window.len() - offset);
        let query = window[offset..offset + qlen].to_vec();
        let a = local_align(&query, &window, &Scoring::default()).expect("planted match");
        // An exact substring must achieve the perfect score.
        prop_assert_eq!(a.score, qlen as i32);
        prop_assert_eq!(a.edit_distance, 0);
    }
}
