//! Property-based tests of the alignment substrate: suffix array /
//! FM-index correctness against naive reference implementations, and
//! Smith–Waterman structural invariants.

use gesall_aligner::fm::FmIndex;
use gesall_aligner::suffix::suffix_array;
use gesall_aligner::sw::{self, local_align, Band, Scoring};
use proptest::prelude::*;

fn arb_dna(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')],
        min..max,
    )
}

fn naive_sa(text: &[u8]) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..text.len() as u32).collect();
    idx.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    idx
}

fn naive_count(text: &[u8], pat: &[u8]) -> u64 {
    if pat.is_empty() || pat.len() > text.len() {
        return 0;
    }
    (0..=text.len() - pat.len())
        .filter(|&i| &text[i..i + pat.len()] == pat)
        .count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn suffix_array_matches_naive(text in arb_dna(1, 400)) {
        prop_assert_eq!(suffix_array(&text), naive_sa(&text));
    }

    #[test]
    fn suffix_array_handles_low_complexity(unit in arb_dna(1, 6), reps in 1usize..80) {
        let text: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        prop_assert_eq!(suffix_array(&text), naive_sa(&text));
    }

    #[test]
    fn fm_count_matches_naive(text in arb_dna(20, 600), start in 0usize..500, len in 1usize..20) {
        let fm = FmIndex::build(&text);
        // A pattern cut from the text (guaranteed ≥1 occurrence).
        let start = start % text.len();
        let len = len.min(text.len() - start).max(1);
        let pat = &text[start..start + len];
        prop_assert_eq!(fm.count(pat), naive_count(&text, pat));
        // And a probably-absent random pattern.
        let absent = b"ACGTTGCAACGTTGCAACGTT";
        prop_assert_eq!(fm.count(absent), naive_count(&text, absent));
    }

    #[test]
    fn fm_locate_matches_naive(text in arb_dna(30, 400), start in 0usize..300, len in 4usize..16) {
        let fm = FmIndex::build(&text);
        let start = start % text.len();
        let len = len.min(text.len() - start).max(1);
        let pat = &text[start..start + len];
        let expected: Vec<u64> = (0..=text.len() - pat.len())
            .filter(|&i| &text[i..i + pat.len()] == pat)
            .map(|i| i as u64)
            .collect();
        if let Some(hits) = fm.locate(pat, 10_000) {
            prop_assert_eq!(hits, expected);
        } else {
            prop_assert!(expected.len() > 10_000);
        }
    }

    #[test]
    fn smith_waterman_invariants(query in arb_dna(5, 120), window in arb_dna(5, 160)) {
        if let Some(a) = local_align(&query, &window, &Scoring::default()) {
            // CIGAR accounts for every query base.
            prop_assert_eq!(a.cigar.query_len() as usize, query.len());
            // Score bounded by perfect match.
            prop_assert!(a.score <= query.len() as i32);
            prop_assert!(a.score > 0);
            // Alignment fits in the window.
            prop_assert!(a.ref_start + a.cigar.reference_len() as usize <= window.len());
            // Clip bookkeeping is consistent.
            prop_assert_eq!(a.cigar.leading_clip() as usize, a.query_start);
            prop_assert_eq!(a.cigar.trailing_clip() as usize, query.len() - a.query_end);
            prop_assert!(a.cigar.validate().is_ok());
        }
    }

    #[test]
    fn smith_waterman_finds_planted_exact_match(
        window in arb_dna(60, 200),
        qlen in 20usize..50,
        offset in 0usize..150,
    ) {
        let offset = offset % (window.len().saturating_sub(qlen).max(1));
        let qlen = qlen.min(window.len() - offset);
        let query = window[offset..offset + qlen].to_vec();
        let a = local_align(&query, &window, &Scoring::default()).expect("planted match");
        // An exact substring must achieve the perfect score.
        prop_assert_eq!(a.score, qlen as i32);
        prop_assert_eq!(a.edit_distance, 0);
    }
}

// ---------------------------------------------------------------------
// Bit-parallel kernel oracles (DESIGN.md §5): every kernel is pinned to
// its scalar twin on arbitrary inputs, including the band's forced
// fallbacks.

fn mutate(seq: &mut [u8], positions: &[usize]) {
    for &p in positions {
        let p = p % seq.len();
        seq[p] = match seq[p] {
            b'A' => b'C',
            b'C' => b'G',
            b'G' => b'T',
            _ => b'A',
        };
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn occ_packed_matches_scalar(text in arb_dna(20, 900), probes in proptest::collection::vec(0usize..1000, 1..12)) {
        let fm = FmIndex::build(&text);
        let n = text.len() + 1; // BWT length includes the sentinel row
        for c in 1u8..=4 {
            // Scattered probes plus every structurally interesting row:
            // word boundaries, checkpoint boundaries, the extremes.
            let mut rows: Vec<usize> = probes.iter().map(|&p| p % (n + 1)).collect();
            rows.extend([0, 1, n.min(31), n.min(32), n.min(33), n.min(127), n.min(128), n.min(129), n]);
            for i in rows {
                let (packed, _) = fm.occ_words(c, i);
                prop_assert_eq!(packed, fm.occ_scalar(c, i), "occ(c={}, i={})", c, i);
            }
        }
    }

    #[test]
    fn banded_alignment_matches_full_dp(
        window in arb_dna(80, 250),
        qlen in 24usize..60,
        offset in 0usize..200,
        subs in proptest::collection::vec(0usize..256, 0..4),
        slack in 4usize..20,
    ) {
        let offset = offset % (window.len().saturating_sub(qlen).max(1));
        let qlen = qlen.min(window.len() - offset);
        let mut query = window[offset..offset + qlen].to_vec();
        mutate(&mut query, &subs);
        let scoring = Scoring::default();
        let full = local_align(&query, &window, &scoring);
        let banded = sw::with_workspace(|ws| {
            sw::local_align_banded(&query, &window, &scoring, Band::around_offset(offset as isize, slack), ws)
        });
        prop_assert_eq!(banded, full);
    }

    #[test]
    fn banded_matches_full_dp_across_band_crossing_indels(
        window in arb_dna(130, 250),
        qlen in 62usize..80,
        offset in 0usize..120,
        del_len in 1usize..24,
        slack in 2usize..9,
    ) {
        // A deletion wider than the slack forces the true path out of
        // the band. Exactness is guaranteed when the crossing carries at
        // least `edge_cutoff` score at the band edge: the prefix before
        // the cut is qlen/2 ≥ 31 matches, so the edge cell scores
        // ≥ 31 − gap_open − (slack−1) ≥ 31 − 6 − 8 = 17 > 16 and the
        // edge-potential trigger must fire the full-DP fallback.
        let offset = offset % (window.len().saturating_sub(qlen + del_len).max(1));
        let qlen = qlen.min(window.len() - offset - del_len);
        let cut = qlen / 2;
        let mut query = window[offset..offset + cut].to_vec();
        query.extend_from_slice(&window[offset + cut + del_len..offset + del_len + qlen]);
        let scoring = Scoring::default();
        let full = local_align(&query, &window, &scoring);
        let banded = sw::with_workspace(|ws| {
            sw::local_align_banded(&query, &window, &scoring, Band::around_offset(offset as isize, slack), ws)
        });
        prop_assert_eq!(banded, full);
    }

    #[test]
    fn banded_never_beats_full_dp_on_unrelated_sequences(
        query in arb_dna(10, 80),
        window in arb_dna(40, 200),
        offset in -30isize..120,
        slack in 1usize..16,
    ) {
        // No planted relationship: the band has no seed to justify it,
        // so exact equality is not promised (a chance hit wholly outside
        // the band is invisible to every band cell — the documented
        // residual caveat). What *is* promised: a banded miss falls back
        // to the full DP (so None implies full None), and a banded hit
        // can never score above the true optimum.
        let scoring = Scoring::default();
        let full = local_align(&query, &window, &scoring);
        let banded = sw::with_workspace(|ws| {
            sw::local_align_banded(&query, &window, &scoring, Band::around_offset(offset, slack), ws)
        });
        match (&banded, &full) {
            (None, f) => prop_assert!(f.is_none(), "banded None must mean full None"),
            (Some(b), Some(f)) => prop_assert!(b.score <= f.score),
            (Some(_), None) => prop_assert!(false, "banded found a hit the full DP missed"),
        }
    }
}
