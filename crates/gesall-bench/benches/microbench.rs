//! Criterion micro-benchmarks of the performance-critical substrate
//! components: FM-index construction/search, the block codec, the
//! shuffle sort-spill-merge path, MarkDuplicates key machinery, bloom
//! filters, and pileup construction.
//!
//! These complement the `experiments` binary (which regenerates the
//! paper's tables/figures): the micro-benches measure OUR substrate so
//! regressions in the hot paths are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gesall_aligner::fm::FmIndex;
use gesall_aligner::suffix::suffix_array;
use gesall_aligner::sw::{local_align, Scoring};
use gesall_core::gdpt::BloomFilter;
use gesall_formats::compress::{compress, decompress};
use gesall_formats::sam::{Cigar, Flags, SamRecord};
use gesall_formats::wire::Wire;
use gesall_mapreduce::counters::Counters;
use gesall_mapreduce::shuffle::{reduce_merge, Segment, SortSpillBuffer};
use gesall_mapreduce::task::HashPartitioner;
use gesall_tools::pileup::{Pileup, PileupFilter};

fn pseudo_dna(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            b"ACGT"[(x >> 33) as usize % 4]
        })
        .collect()
}

fn sample_records(n: usize) -> Vec<SamRecord> {
    (0..n)
        .map(|i| {
            let mut r = SamRecord::unmapped(
                format!("read{i:07}"),
                pseudo_dna(100, i as u64),
                vec![30 + (i % 10) as u8; 100],
            );
            r.flags = Flags(Flags::PAIRED);
            r.flags.set(Flags::UNMAPPED, false);
            r.ref_id = 0;
            r.pos = (i as i64 * 37) % 900_000 + 1;
            r.mapq = 60;
            r.cigar = Cigar::full_match(100);
            r
        })
        .collect()
}

fn bench_suffix_array(c: &mut Criterion) {
    let mut g = c.benchmark_group("suffix_array");
    for size in [64 * 1024usize, 256 * 1024] {
        let text = pseudo_dna(size, 7);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &text, |b, t| {
            b.iter(|| suffix_array(t));
        });
    }
    g.finish();
}

fn bench_fm_search(c: &mut Criterion) {
    let text = pseudo_dna(1 << 20, 11);
    let fm = FmIndex::build(&text);
    let patterns: Vec<&[u8]> = (0..64).map(|i| &text[i * 1000..i * 1000 + 19]).collect();
    c.bench_function("fm_index/count_19mer_x64", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for p in &patterns {
                total += fm.count(p);
            }
            total
        });
    });
    c.bench_function("fm_index/locate_19mer_x64", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for p in &patterns {
                total += fm.locate(p, 64).map(|v| v.len()).unwrap_or(0);
            }
            total
        });
    });
}

fn bench_smith_waterman(c: &mut Criterion) {
    let window = pseudo_dna(140, 3);
    let mut query = window[16..116].to_vec();
    query[50] = b'A';
    query[51] = b'C';
    c.bench_function("smith_waterman/100x140", |b| {
        b.iter(|| local_align(&query, &window, &Scoring::default()));
    });
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    // BAM-like payload: serialized records compress like real chunks.
    let records = sample_records(500);
    let mut raw = Vec::new();
    for r in &records {
        r.encode(&mut raw);
    }
    g.throughput(Throughput::Bytes(raw.len() as u64));
    g.bench_function("compress_records", |b| {
        b.iter(|| compress(&raw));
    });
    let compressed = compress(&raw);
    g.bench_function("decompress_records", |b| {
        b.iter(|| decompress(&compressed).unwrap());
    });
    g.finish();
}

fn bench_sam_wire(c: &mut Criterion) {
    let records = sample_records(1000);
    let mut g = c.benchmark_group("sam_wire");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("encode_1k_records", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            for r in &records {
                r.encode(&mut buf);
            }
            buf
        });
    });
    let bytes = records.to_wire_bytes();
    g.bench_function("decode_1k_records", |b| {
        b.iter(|| Vec::<SamRecord>::from_wire_bytes(&bytes).unwrap());
    });
    g.finish();
}

fn bench_shuffle(c: &mut Criterion) {
    let mut g = c.benchmark_group("shuffle");
    g.sample_size(20);
    g.bench_function("sort_spill_merge_20k", |b| {
        b.iter(|| {
            let counters = Counters::new();
            let p = HashPartitioner;
            let mut buf: SortSpillBuffer<'_, u64, u64> =
                SortSpillBuffer::new(64 * 1024, 4, &p, true, counters);
            for i in 0..20_000u64 {
                buf.emit(i % 977, i);
            }
            buf.finish()
        });
    });
    // Reduce-side multipass merge over 24 segments.
    let segments: Vec<Segment> = (0..24u64)
        .map(|s| {
            let pairs: Vec<(u64, u64)> = (0..2000).map(|i| (i * 24 + s, i)).collect();
            Segment::from_pairs(&pairs, true)
        })
        .collect();
    g.bench_function("reduce_multipass_merge_24x2k", |b| {
        b.iter(|| {
            let counters = Counters::new();
            reduce_merge::<u64, u64>(segments.clone(), 6, &counters)
        });
    });
    g.finish();
}

fn bench_markdup_keys(c: &mut Criterion) {
    let records = sample_records(2000);
    c.bench_function("markdup/end_keys_2k", |b| {
        b.iter(|| {
            records
                .iter()
                .map(gesall_tools::mark_duplicates::end_key)
                .fold(0i64, |acc, k| acc ^ k.1)
        });
    });
}

fn bench_bloom(c: &mut Criterion) {
    let mut bloom = BloomFilter::with_capacity(100_000);
    for i in 0..50_000i64 {
        bloom.insert(&(0, i * 3, b'F'));
    }
    c.bench_function("bloom/query_x1000", |b| {
        b.iter(|| {
            (0..1000i64)
                .filter(|&i| bloom.maybe_contains(&(0, i * 7, b'F')))
                .count()
        });
    });
}

fn bench_pileup(c: &mut Criterion) {
    let records = sample_records(5000);
    c.bench_function("pileup/100kb_5k_reads", |b| {
        b.iter(|| {
            Pileup::build(&records, 0, 1, 100_000, &PileupFilter::default())
                .columns
                .len()
        });
    });
}

criterion_group!(
    benches,
    bench_suffix_array,
    bench_fm_search,
    bench_smith_waterman,
    bench_codec,
    bench_sam_wire,
    bench_shuffle,
    bench_markdup_keys,
    bench_bloom,
    bench_pileup,
);
criterion_main!(benches);
