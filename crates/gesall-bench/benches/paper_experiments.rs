//! Criterion targets that regenerate each model-driven table/figure of
//! the paper — one bench per artifact, so `cargo bench` demonstrably
//! covers the full experiment surface (and tracks the cost of the models
//! themselves). The real-execution experiments (Table 8, Fig. 11,
//! Tables 9/10, Fig. 6a) run minutes of pipeline work and live in the
//! `experiments` binary instead.

use criterion::{criterion_group, criterion_main, Criterion};
use gesall_bench::sim_experiments as sim;

fn bench_paper_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_artifacts");
    g.sample_size(10);
    g.bench_function("table2_single_server", |b| b.iter(sim::table2));
    g.bench_function("table4_partition_sweep", |b| b.iter(sim::table4));
    g.bench_function("fig5a_alignment_cost", |b| b.iter(sim::fig5a));
    g.bench_function("fig5b_phase_breakdown", |b| b.iter(sim::fig5b));
    g.bench_function("fig5c_thread_speedup", |b| b.iter(sim::fig5c));
    g.bench_function("table5_scaleup", |b| b.iter(sim::table5));
    g.bench_function("table6_three_rounds", |b| b.iter(sim::table6));
    g.bench_function("fig6b_invocation_overhead", |b| b.iter(sim::fig6b));
    g.bench_function("fig7_task_progress", |b| b.iter(sim::fig7));
    g.bench_function("table7_production_cluster", |b| b.iter(sim::table7));
    g.bench_function("fig10_disk_utilisation", |b| b.iter(sim::fig10));
    g.finish();
}

criterion_group!(paper, bench_paper_tables);
criterion_main!(paper);
