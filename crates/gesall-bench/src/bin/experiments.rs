//! The experiment harness binary: regenerates every table and figure of
//! the paper's evaluation.
//!
//! ```text
//! cargo run -p gesall-bench --release --bin experiments -- <id | all | sim | real>
//! ```
//!
//! ids: table2 table4 fig5a fig5b fig5c table5 table6 fig6a fig6b fig7
//!      table7 fig10 table8 fig11 table9_10
//!
//! `experiments -- smoke [out_dir]` runs the tiny traced end-to-end
//! pipeline, prints the per-phase breakdown / Gantt / straggler /
//! shuffle-matrix reports, and appends a record to `BENCH_smoke.json`
//! in `out_dir` (default `.`). Exits nonzero if any phase timing is
//! missing — the telemetry CI gate.

use gesall_bench::real_experiments::{self, ExperimentWorld, Scale};
use gesall_bench::sim_experiments as sim;

fn print_sim(id: &str) -> bool {
    let report = match id {
        "table2" => sim::table2(),
        "table4" => sim::table4(),
        "fig5a" => sim::fig5a(),
        "fig5b" => sim::fig5b(),
        "fig5c" => sim::fig5c(),
        "table5" => sim::table5(),
        "table6" => sim::table6(),
        "fig6b" => sim::fig6b(),
        "fig7" => sim::fig7(),
        "table7" => sim::table7(),
        "fig10" => sim::fig10(),
        "round45" => sim::round45_note(),
        _ => return false,
    };
    println!("{report}");
    true
}

fn run_real(ids: &[&str]) {
    eprintln!("[experiments] building mini-scale world and running serial + parallel pipelines...");
    let t0 = std::time::Instant::now();
    let world = ExperimentWorld::run(Scale::standard());
    eprintln!(
        "[experiments] world ready in {:.1}s ({} pairs, {} bp genome)",
        t0.elapsed().as_secs_f64(),
        world.pairs.len(),
        world.genome.total_len()
    );
    for id in ids {
        let report = match *id {
            "table8" => real_experiments::table8(&world),
            "fig11" => real_experiments::fig11(&world),
            "table9_10" => real_experiments::table9_10(&world),
            "substrate" => real_experiments::substrate(&world),
            "fig6a" => real_experiments::fig6a(&world),
            other => {
                eprintln!("unknown real experiment {other}");
                continue;
            }
        };
        println!("{report}");
    }
}

const SIM_IDS: &[&str] = &[
    "table2", "table4", "fig5a", "fig5b", "fig5c", "table5", "table6", "fig6b", "fig7",
    "table7", "fig10", "round45",
];
const REAL_IDS: &[&str] = &["fig6a", "table8", "fig11", "table9_10", "substrate"];

fn run_smoke(out_dir: &str) -> ! {
    eprintln!("[smoke] running tiny traced pipeline (records land in {out_dir})...");
    match gesall_bench::smoke::run_smoke(Some(std::path::Path::new(out_dir))) {
        Ok(outcome) => {
            println!("{}", outcome.report);
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("[smoke] FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments <id|all|sim|real|smoke> ...");
        eprintln!("sim ids:  {SIM_IDS:?}");
        eprintln!("real ids: {REAL_IDS:?}");
        std::process::exit(2);
    }
    if args[0] == "smoke" {
        run_smoke(args.get(1).map(String::as_str).unwrap_or("."));
    }
    let mut reals: Vec<&str> = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "all" => {
                for id in SIM_IDS {
                    print_sim(id);
                }
                reals.extend(REAL_IDS);
            }
            "sim" => {
                for id in SIM_IDS {
                    print_sim(id);
                }
            }
            "real" => reals.extend(REAL_IDS),
            id if REAL_IDS.contains(&id) => {
                let owned = REAL_IDS.iter().find(|r| **r == id).unwrap();
                reals.push(owned);
            }
            id => {
                if !print_sim(id) {
                    eprintln!("unknown experiment id {id:?}");
                    std::process::exit(2);
                }
            }
        }
    }
    if !reals.is_empty() {
        reals.dedup();
        run_real(&reals);
    }
}
