//! # gesall-bench
//!
//! The experiment harness: one function per table/figure of the paper's
//! evaluation (§4 + appendices), each returning a printable report.
//!
//! Two kinds of experiments:
//!
//! * [`sim_experiments`] — paper-scale timing studies (Tables 2, 4–7;
//!   Figures 5, 6b, 7, 10) reproduced through the `gesall-sim` cost
//!   model parameterised by the paper's cluster/workload specs;
//! * [`real_experiments`] — correctness/accuracy studies (Table 8,
//!   Fig. 11, Tables 9/10, Fig. 6a) executed for real at mini scale on
//!   synthetic genomes through the full platform stack.
//!
//! Plus [`smoke`] — the tiny traced end-to-end run behind
//! `just bench-smoke`, which emits `BENCH_smoke.json` and fails if any
//! of the six phase timings is missing.
//!
//! Run everything with `cargo run -p gesall-bench --release --bin
//! experiments -- all`.

pub mod real_experiments;
pub mod report;
pub mod sim_experiments;
pub mod smoke;
