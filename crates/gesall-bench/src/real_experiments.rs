//! Real-execution accuracy experiments at mini scale (Table 8, Fig. 11,
//! Tables 9/10, Fig. 6a): synthetic genome in, the full platform stack
//! exercised for real, serial vs parallel outputs diffed with the
//! error-diagnosis toolkit.

use crate::report::Table;
use gesall_aligner::{Aligner, AlignerConfig, ReferenceIndex};
use gesall_core::diagnosis::{diff_alignments, diff_variants};
use gesall_core::pipeline::{
    serial_pipeline, serial_tail_from_aligned, serial_tail_from_markdup, GesallPlatform,
    PlatformConfig,
};
use gesall_core::PipelineOutput;
use gesall_datagen::donor::DonorConfig;
use gesall_datagen::reads::ReadSimConfig;
use gesall_datagen::{DonorGenome, GenomeConfig, ReadSimulator, ReferenceGenome};
use gesall_dfs::{Dfs, DfsConfig};
use gesall_formats::fastq::ReadPair;
use gesall_formats::sam::SamRecord;
use gesall_formats::vcf::VariantRecord;
use gesall_mapreduce::{ClusterResources, MapReduceEngine};
use gesall_tools::vcf_metrics::{precision_sensitivity, variant_set_metrics, SiteKey};
use std::collections::HashSet;

/// Scale of a real-execution experiment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    pub chromosome_lengths: [usize; 2],
    pub n_pairs: usize,
    pub n_partitions: usize,
}

impl Scale {
    /// The default experiment scale: ~1.8 Mb diploid genome at ~5×.
    pub fn standard() -> Scale {
        Scale {
            chromosome_lengths: [1_000_000, 800_000],
            n_pairs: 45_000,
            n_partitions: 6,
        }
    }

    /// A small scale for unit tests.
    pub fn tiny() -> Scale {
        Scale {
            chromosome_lengths: [60_000, 40_000],
            n_pairs: 2_500,
            n_partitions: 3,
        }
    }
}

/// Everything the accuracy experiments need, built once.
pub struct ExperimentWorld {
    pub genome: ReferenceGenome,
    pub donor: DonorGenome,
    pub pairs: Vec<ReadPair>,
    pub aligner: Aligner,
    pub references: Vec<Vec<u8>>,
    pub chrom_names: Vec<String>,
    pub config: PlatformConfig,
    // Computed outputs (filled by `run`).
    pub serial_records: Vec<SamRecord>,
    pub serial_variants: Vec<VariantRecord>,
    pub parallel: PipelineOutput,
    pub serial_aligned: Vec<SamRecord>,
    pub parallel_aligned: Vec<SamRecord>,
}

impl ExperimentWorld {
    /// Build the world and run serial + parallel pipelines.
    pub fn run(scale: Scale) -> ExperimentWorld {
        let genome = ReferenceGenome::generate(&GenomeConfig {
            chromosome_lengths: scale.chromosome_lengths.to_vec(),
            ..GenomeConfig::default()
        });
        let donor = DonorGenome::generate(&genome, &DonorConfig::default());
        let (pairs, _) = ReadSimulator::new(
            &genome,
            &donor,
            ReadSimConfig {
                n_pairs: scale.n_pairs,
                duplicate_rate: 0.05,
                ..ReadSimConfig::default()
            },
        )
        .simulate();
        let chroms: Vec<(String, Vec<u8>)> = genome
            .chromosomes
            .iter()
            .map(|c| (c.name.clone(), c.seq.clone()))
            .collect();
        let references: Vec<Vec<u8>> = chroms.iter().map(|(_, s)| s.clone()).collect();
        let chrom_names: Vec<String> = chroms.iter().map(|(n, _)| n.clone()).collect();
        let aligner = Aligner::new(ReferenceIndex::build(&chroms), AlignerConfig::default());
        let config = PlatformConfig {
            n_round1_partitions: scale.n_partitions,
            n_reducers: scale.n_partitions,
            ..PlatformConfig::default()
        };

        // Serial pipeline (the gold standard).
        let (serial_records, serial_variants) = serial_pipeline(
            &aligner,
            &references,
            &chrom_names,
            &pairs,
            &config.read_group,
            config.seed,
            &config.hc,
        );
        // Serial alignment only (pre-cleaning), for the Bwa-stage diff.
        let serial_aligned: Vec<SamRecord> = aligner
            .align_pairs(&pairs)
            .into_iter()
            .flat_map(|(a, b)| [a, b])
            .collect();
        // Parallel alignment only: partitioned input, as Round 1 does.
        let parts =
            gesall_formats::fastq::split_pairs_into_partitions(pairs.clone(), scale.n_partitions);
        let parallel_aligned: Vec<SamRecord> = parts
            .iter()
            .flat_map(|p| {
                aligner
                    .align_pairs(p)
                    .into_iter()
                    .flat_map(|(a, b)| [a, b])
            })
            .collect();

        // Full parallel platform.
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 4,
            block_size: 256 * 1024,
            replication: 1,
            ..DfsConfig::default()
        });
        let engine = MapReduceEngine::new(ClusterResources::uniform(4, 2, 16 * 1024));
        let platform = GesallPlatform::new(dfs, engine, config.clone());
        let parallel = platform
            .run_pipeline(&aligner, pairs.clone())
            .expect("parallel pipeline failed");

        ExperimentWorld {
            genome,
            donor,
            pairs,
            aligner,
            references,
            chrom_names,
            config,
            serial_records,
            serial_variants,
            parallel,
            serial_aligned,
            parallel_aligned,
        }
    }

    /// Truth-set site keys.
    pub fn truth_keys(&self) -> HashSet<SiteKey> {
        self.donor
            .truth
            .iter()
            .map(|t| {
                (
                    t.chrom.clone(),
                    t.pos,
                    t.ref_allele.clone(),
                    t.alt_allele.clone(),
                )
            })
            .collect()
    }
}

/// Table 8: D-count / weighted D-count / D-impact for the parallel
/// pipeline up to Bwa (P̄₁), MarkDuplicates (P̄₂), HaplotypeCaller (P̄₃).
pub fn table8(world: &ExperimentWorld) -> String {
    let total_reads = world.serial_aligned.len() as u64;

    // P1: parallel Bwa.
    let bwa_diff = diff_alignments(&world.serial_aligned, &world.parallel_aligned);
    let (_, hybrid1_variants) = serial_tail_from_aligned(
        &world.aligner,
        &world.references,
        &world.chrom_names,
        world.parallel_aligned.clone(),
        &world.config.read_group,
        world.config.seed,
        &world.config.hc,
    );
    let impact1 = diff_variants(&world.serial_variants, &hybrid1_variants);

    // P2: parallel pipeline through MarkDuplicates (= the platform's
    // sorted, dup-marked records), serial HC tail.
    let md_diff = diff_alignments(&world.serial_records, &world.parallel.records);
    let (_, hybrid2_variants) = serial_tail_from_markdup(
        &world.references,
        &world.chrom_names,
        world.parallel.records.clone(),
        &world.config.hc,
    );
    let impact2 = diff_variants(&world.serial_variants, &hybrid2_variants);

    // P3: fully parallel.
    let hc_diff = diff_variants(&world.serial_variants, &world.parallel.variants);

    let mut t = Table::new(&[
        "Stage",
        "D count",
        "Weighted D count",
        "Weighted D count (%)",
        "D impact",
        "Weighted D impact",
    ]);
    t.row(&[
        "Bwa".into(),
        bwa_diff.d_count().to_string(),
        format!("{:.1}", bwa_diff.weighted_d_count()),
        format!("{:.4}", bwa_diff.weighted_d_count_pct(total_reads)),
        impact1.d_impact().to_string(),
        format!("{:.1}", impact1.weighted_d_impact()),
    ]);
    t.row(&[
        "Mark Duplicates".into(),
        md_diff.d_count().to_string(),
        format!("{:.1}", md_diff.weighted_d_count()),
        format!("{:.4}", md_diff.weighted_d_count_pct(total_reads)),
        impact2.d_impact().to_string(),
        format!("{:.1}", impact2.weighted_d_impact()),
    ]);
    t.row(&[
        "Haplotype Caller".into(),
        hc_diff.d_impact().to_string(),
        format!("{:.1}", hc_diff.weighted_d_impact()),
        format!("{:.4}", hc_diff.weighted_d_impact_pct()),
        "-".into(),
        "-".into(),
    ]);
    // The §3.2 HaplotypeCaller partitioning study: chromosome-level
    // partitioning (what the platform uses, above) is exact here; the
    // fine-grained positional scheme shifts active windows at the cut.
    let fine_grained = {
        use gesall_core::diagnosis::diff_variants as dv;
        use gesall_tools::haplotype_caller::call_range;
        use gesall_tools::refview::RefView;
        let rv = RefView::new(&world.references);
        let len = world.references[0].len() as i64;
        let mid = len / 2;
        let recs = &world.serial_records;
        let whole = call_range(recs, 0, "chr1", 1, len, rv, &world.config.hc);
        let mut split = call_range(recs, 0, "chr1", 1, mid, rv, &world.config.hc).variants;
        split.extend(call_range(recs, 0, "chr1", mid + 1, len, rv, &world.config.hc).variants);
        split.sort_by_key(|v| (v.pos, v.ref_allele.clone()));
        split.dedup_by(|a, b| a.site_key() == b.site_key());
        let d = dv(&whole.variants, &split);
        (whole.windows.len(), d.concordant, d.d_impact())
    };

    let concordant_variants = hc_diff.concordant;
    format!(
        "== Table 8: discordance of the parallel pipeline (real mini-scale run) ==\n\
         reads compared: {total_reads}; concordant variants: {concordant_variants}\n{}\
         Shape check (paper): discordance concentrates in low-quality reads, so the\n\
         weighted D-count is a tiny percentage; final variant impact ~0.1%.\n\
         Low-quality fraction of Bwa discordants: {:.0}%\n\
         Fine-grained HC partitioning probe (chr1 halved mid-chromosome):\n\
           {} active windows whole-chromosome; {} concordant, {} discordant calls\n\
           vs the sequential walk — positional cuts perturb the greedy\n\
           segmentation, which is why the paper only accepts chromosome-level\n\
           partitioning for HaplotypeCaller (§3.2).\n",
        t.render(),
        100.0 * bwa_diff.low_quality_fraction(),
        fine_grained.0,
        fine_grained.1,
        fine_grained.2
    )
}

/// Fig 11: where do Bwa disagreements live?
pub fn fig11(world: &ExperimentWorld) -> String {
    let diff = diff_alignments(&world.serial_aligned, &world.parallel_aligned);
    let mut out = String::from("== Fig 11: diagnosis of Bwa serial/parallel disagreements ==\n");

    // (a) Are disagreements enriched in repetitive / hard-to-map regions?
    // "Hard" = centromeres + blacklisted regions + segmental
    // duplications (the paper's "anomalous and highly repetitive genome
    // fragments", Appendix B.2).
    let hard_len: usize = world
        .genome
        .chromosomes
        .iter()
        .map(|c| {
            c.centromere.len()
                + c.blacklist.iter().map(|r| r.len()).sum::<usize>()
                + c.seg_dups
                    .iter()
                    .map(|(s, d)| s.len() + d.len())
                    .sum::<usize>()
        })
        .sum();
    let total_len = world.genome.total_len();
    let in_hard = |rec_chrom: i32, pos: i64| -> bool {
        if rec_chrom < 0 || pos < 1 {
            return false;
        }
        let p = (pos - 1) as usize;
        world
            .genome
            .chromosomes
            .get(rec_chrom as usize)
            .map(|c| {
                c.is_hard_to_map(p)
                    || c.seg_dups
                        .iter()
                        .any(|(s, d)| s.contains(p) || d.contains(p))
            })
            .unwrap_or(false)
    };
    let hard_disagreements = diff
        .discordant
        .iter()
        .filter(|d| in_hard(d.serial.ref_id, d.serial.pos) || in_hard(d.parallel.ref_id, d.parallel.pos))
        .count();
    let hard_frac_genome = hard_len as f64 / total_len as f64;
    let hard_frac_disc = hard_disagreements as f64 / diff.discordant.len().max(1) as f64;
    out.push_str(&format!(
        "(a) hard-to-map regions cover {:.1}% of the genome but host {:.1}% of\n    disagreeing reads (enrichment {:.1}x)\n",
        100.0 * hard_frac_genome,
        100.0 * hard_frac_disc,
        hard_frac_disc / hard_frac_genome.max(1e-9)
    ));

    // (b) Mapping-quality distribution of disagreeing reads.
    let mut quad = [[0usize; 2]; 2]; // [serial<30][parallel<30]
    for d in &diff.discordant {
        quad[usize::from(d.serial_mapq < 30)][usize::from(d.parallel_mapq < 30)] += 1;
    }
    let mut t = Table::new(&["", "parallel mapq >= 30", "parallel mapq < 30"]);
    t.row(&[
        "serial mapq >= 30".into(),
        quad[0][0].to_string(),
        quad[0][1].to_string(),
    ]);
    t.row(&[
        "serial mapq < 30".into(),
        quad[1][0].to_string(),
        quad[1][1].to_string(),
    ]);
    out.push_str(&format!("(b) mapq quadrants of disagreeing reads:\n{}", t.render()));

    // (c) Insert-size profile: disagreement rate by |tlen| deviation from
    // the sample mean, in sd units.
    // Restrict to plausible fragment lengths so outliers (improper
    // pairs) do not inflate the standard deviation.
    let inserts: Vec<f64> = world
        .serial_aligned
        .iter()
        .filter(|r| r.tlen > 0 && r.tlen < 2000)
        .map(|r| r.tlen as f64)
        .collect();
    let mean = inserts.iter().sum::<f64>() / inserts.len().max(1) as f64;
    let sd = (inserts.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
        / inserts.len().max(1) as f64)
        .sqrt()
        .max(1.0);
    let discordant_names: HashSet<&str> =
        diff.discordant.iter().map(|d| d.id.0.as_str()).collect();
    let mut buckets = [(0usize, 0usize); 5]; // (discordant, total) by z bucket
    for r in world.serial_aligned.iter().filter(|r| r.tlen > 0 && r.tlen < 2000) {
        let z = ((r.tlen as f64 - mean).abs() / sd) as usize;
        let b = z.min(4);
        buckets[b].1 += 1;
        if discordant_names.contains(r.name.as_str()) {
            buckets[b].0 += 1;
        }
    }
    out.push_str("(c) disagreement rate by insert-size deviation (z-score bucket):\n");
    let mut t = Table::new(&["|z|", "pairs", "disagreeing", "rate (%)"]);
    for (z, (d, n)) in buckets.iter().enumerate() {
        let label = if z == 4 { "4+".into() } else { format!("{z}-{}", z + 1) };
        t.row(&[
            label,
            n.to_string(),
            d.to_string(),
            format!("{:.2}", 100.0 * *d as f64 / (*n).max(1) as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "Paper shape: disagreements cluster in repetitive regions and at low mapq.\n\
         At this scale, random tie-breaks in duplicated regions dominate (insert-\n\
         size independent); the paper's insert-edge effect needs batch statistics\n\
         to differ more, i.e. paper-scale data volumes.\n",
    );
    out
}

/// Tables 9/10: variant-quality metrics for Intersection / Serial-only /
/// Hybrid-only sets, plus GIAB-style precision/sensitivity.
pub fn table9_10(world: &ExperimentWorld) -> String {
    // Hybrid pipeline: parallel through MarkDuplicates, serial HC.
    let (_, hybrid_variants) = serial_tail_from_markdup(
        &world.references,
        &world.chrom_names,
        world.parallel.records.clone(),
        &world.config.hc,
    );
    let d = diff_variants(&world.serial_variants, &hybrid_variants);
    let (inter, serial_only, hybrid_only) =
        d.metric_rows(&world.serial_variants, &hybrid_variants);

    let mut t = Table::new(&[
        "Set", "N", "QUAL", "MQ", "DP", "FS", "AB", "Ti/Tv", "Het/Hom",
    ]);
    for (name, m) in [
        ("Intersection", inter),
        ("Serial only", serial_only),
        ("Hybrid only", hybrid_only),
    ] {
        t.row(&[
            name.into(),
            m.n.to_string(),
            format!("{:.1}", m.mean_qual),
            format!("{:.1}", m.mean_mq),
            format!("{:.1}", m.mean_dp),
            format!("{:.2}", m.mean_fs),
            format!("{:.2}", m.mean_ab),
            format!("{:.2}", m.ti_tv),
            format!("{:.2}", m.het_hom),
        ]);
    }

    // Precision/sensitivity against the spiked truth set (the paper's
    // Genome-in-a-Bottle comparison).
    let truth = world.truth_keys();
    let ps_serial = precision_sensitivity(&world.serial_variants, &truth);
    let ps_hybrid = precision_sensitivity(&hybrid_variants, &truth);
    let mut t2 = Table::new(&["Pipeline", "Precision", "Sensitivity", "TP", "FP", "FN"]);
    for (name, ps) in [("Serial", ps_serial), ("Hybrid", ps_hybrid)] {
        t2.row(&[
            name.into(),
            format!("{:.4}", ps.precision),
            format!("{:.4}", ps.sensitivity),
            ps.true_positives.to_string(),
            ps.false_positives.to_string(),
            ps.false_negatives.to_string(),
        ]);
    }
    let _ = variant_set_metrics(&world.serial_variants); // keep linkage obvious
    format!(
        "== Tables 9/10: variant-set quality metrics (real mini-scale run) ==\n{}\n\
         Truth-set comparison (GIAB analogue):\n{}\
         Paper shape: the discordant sets are small and lower quality than the\n\
         intersection; serial and hybrid score identically against the truth set.\n",
        t.render(),
        t2.render()
    )
}

/// Fig 6a: data transformation vs external-program time per round, from
/// the real platform run's counters.
pub fn fig6a(world: &ExperimentWorld) -> String {
    let mut out =
        String::from("== Fig 6a: data-transformation share of wrapper work (real run) ==\n");
    let mut t = Table::new(&["Round", "Transform ms", "External ms", "Transform share"]);
    let mut prev_t = 0u64;
    let mut prev_e = 0u64;
    for r in &world.parallel.rounds {
        let get = |key: &str, snap: &[(String, u64)]| {
            snap.iter().find(|(k, _)| k == key).map(|(_, v)| *v).unwrap_or(0)
        };
        let cum_t = get("wrapper.transform.nanos", &r.counters);
        let cum_e = get("wrapper.external.nanos", &r.counters);
        let dt = cum_t.saturating_sub(prev_t) as f64 / 1e6;
        let de = cum_e.saturating_sub(prev_e) as f64 / 1e6;
        prev_t = cum_t;
        prev_e = cum_e;
        let share = dt / (dt + de).max(1e-9);
        t.row(&[
            r.name.clone(),
            format!("{dt:.0}"),
            format!("{de:.0}"),
            format!("{:.0}%", 100.0 * share),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("The copy-and-convert overhead between framework records and external\nprogram bytes is unavoidable for wrapped programs (paper: 12-49%).\n");
    out
}

/// Real-engine counterparts of Fig 5b/5c: actual sort-spill-merge
/// counters under different sort-buffer sizes, and the measured thread
/// scaling of our aligner (the wrapped "Bwa").
pub fn substrate(world: &ExperimentWorld) -> String {
    use gesall_core::rounds::{Round3MarkDupMapper, Round3MarkDupReducer};
    use gesall_mapreduce::counters::{keys, Counters};
    use gesall_mapreduce::runtime::{InputSplit, JobConfig};
    use gesall_mapreduce::task::HashPartitioner;

    let mut out = String::from("== Substrate measurements (real engine / real aligner) ==\n");

    // -- Fig 5b counterpart: sort-buffer size vs spills/merges ----------
    let header = world.aligner.index().sam_header();
    // Name-grouped partitions (pairs adjacent), as round 3 requires.
    let mut by_name: std::collections::BTreeMap<&str, Vec<&gesall_formats::sam::SamRecord>> =
        std::collections::BTreeMap::new();
    for r in &world.parallel.records {
        if r.flags.is_paired() && r.flags.is_primary() {
            by_name.entry(r.name.as_str()).or_default().push(r);
        }
    }
    let grouped: Vec<gesall_formats::sam::SamRecord> = by_name
        .into_values()
        .flatten()
        .cloned()
        .collect();
    let parts: Vec<Vec<gesall_formats::sam::SamRecord>> = grouped
        .chunks(grouped.len().div_ceil(4).max(2))
        .map(|c| c.to_vec())
        .collect();
    let mut t = Table::new(&[
        "io.sort buffer",
        "map spills",
        "map merge segments",
        "shuffle records",
        "reduce merge passes",
    ]);
    for (label, sort_bytes) in [("256 KiB (tiny)", 256 * 1024usize), ("16 MiB (ample)", 16 << 20)]
    {
        let engine = gesall_mapreduce::MapReduceEngine::local(4);
        let counters = Counters::new();
        let splits: Vec<InputSplit<String, gesall_formats::SharedBytes>> = parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let bytes =
                    gesall_formats::SharedBytes::from_vec(gesall_formats::bam::write_bam(&header, p));
                InputSplit::new(format!("p{i}"), vec![(format!("p{i}"), bytes)])
            })
            .collect();
        let res = engine.run_job(
            JobConfig {
                n_reducers: 4,
                io_sort_bytes: sort_bytes,
                merge_factor: 4,
                ..JobConfig::default()
            },
            &Round3MarkDupMapper {
                bloom: None,
                counters: counters.clone(),
            },
            &Round3MarkDupReducer {
                seed: 1,
                counters: counters.clone(),
            },
            &HashPartitioner,
            splits,
        )
        .expect("markdup round runs without fault injection");
        t.row(&[
            label.into(),
            res.counters.get(keys::MAP_SPILLS).to_string(),
            res.counters.get(keys::MAP_MERGE_SEGMENTS).to_string(),
            res.counters.get(keys::SHUFFLE_RECORDS).to_string(),
            res.counters.get(keys::REDUCE_MERGE_PASSES).to_string(),
        ]);
    }
    out.push_str("Fig 5b counterpart — MarkDup_reg round on the real engine:\n");
    out.push_str(&t.render());
    out.push_str("A starved sort buffer multiplies spills and forces the map-side merge;\nan ample one spills once — the mechanism behind Fig 5b's breakdown.\n\n");

    // -- Fig 5c counterpart: measured aligner thread scaling -------------
    let sample: Vec<gesall_formats::fastq::ReadPair> =
        world.pairs.iter().take(4000).cloned().collect();
    let mut t = Table::new(&["threads", "wall (s)", "speedup"]);
    let mut base = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let t0 = std::time::Instant::now();
        let r = world.aligner.align_pairs_threaded(&sample, threads);
        let secs = t0.elapsed().as_secs_f64();
        std::hint::black_box(&r);
        if threads == 1 {
            base = secs;
        }
        t.row(&[
            threads.to_string(),
            format!("{secs:.2}"),
            format!("{:.2}", base / secs),
        ]);
    }
    out.push_str("Fig 5c counterpart — measured thread scaling of the wrapped aligner\n(batch barrier + serial pairing phase bound it, as with real Bwa):\n");
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn world() -> &'static ExperimentWorld {
        static WORLD: OnceLock<ExperimentWorld> = OnceLock::new();
        WORLD.get_or_init(|| ExperimentWorld::run(Scale::tiny()))
    }

    #[test]
    fn table8_reports_small_discordance() {
        let report = table8(world());
        assert!(report.contains("Bwa"));
        assert!(report.contains("Mark Duplicates"));
        assert!(report.contains("Haplotype Caller"));
    }

    #[test]
    fn fig11_reports_enrichment() {
        let report = fig11(world());
        assert!(report.contains("hard-to-map"));
        assert!(report.contains("mapq quadrants"));
        assert!(report.contains("insert-size"));
    }

    #[test]
    fn table9_10_reports_metrics() {
        let report = table9_10(world());
        assert!(report.contains("Intersection"));
        assert!(report.contains("Precision"));
    }

    #[test]
    fn substrate_reports_spills_and_scaling() {
        let report = substrate(world());
        assert!(report.contains("map spills"));
        assert!(report.contains("speedup"));
    }

    #[test]
    fn fig6a_reports_transform_share() {
        let report = fig6a(world());
        assert!(report.contains("round1-align"));
        assert!(report.contains("Transform share"));
    }
}
