//! Small formatting helpers for the experiment reports.

/// Format seconds as `Hh MMm SSs`.
pub fn hms(seconds: f64) -> String {
    let s = seconds.round() as i64;
    let (h, rem) = (s / 3600, s % 3600);
    let (m, s) = (rem / 60, rem % 60);
    if h > 0 {
        format!("{h}h {m:02}m {s:02}s")
    } else if m > 0 {
        format!("{m}m {s:02}s")
    } else {
        format!("{s}s")
    }
}

/// A plain-text table builder with aligned columns.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    pub fn render(&self) -> String {
        let n = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut out = String::new();
            for i in 0..n {
                let pad = widths[i] - cells[i].chars().count();
                out.push_str("| ");
                out.push_str(&cells[i]);
                out.push_str(&" ".repeat(pad + 1));
            }
            out.push('|');
            out
        };
        let mut out = line(&self.headers);
        out.push('\n');
        let mut sep = String::new();
        for w in &widths {
            sep.push_str("|-");
            sep.push_str(&"-".repeat(w + 1));
        }
        sep.push('|');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// Render an ASCII sparkline-ish bar chart row: label + proportional bar.
pub fn bar(label: &str, value: f64, max: f64, width: usize) -> String {
    let n = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    format!("{label:<28} {:<width$} {value:.1}", "#".repeat(n.min(width)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hms_formats() {
        assert_eq!(hms(0.0), "0s");
        assert_eq!(hms(59.4), "59s");
        assert_eq!(hms(61.0), "1m 01s");
        assert_eq!(hms(3600.0 + 125.0), "1h 02m 05s");
        assert_eq!(hms(17_016.0), "4h 43m 36s");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["a much longer name".into(), "12345".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal length.
        assert!(lines.iter().all(|l| l.chars().count() == lines[0].chars().count()));
        assert!(out.contains("| name"));
    }

    #[test]
    fn bar_is_proportional() {
        let full = bar("x", 10.0, 10.0, 20);
        let half = bar("y", 5.0, 10.0, 20);
        assert_eq!(full.matches('#').count(), 20);
        assert_eq!(half.matches('#').count(), 10);
        assert_eq!(bar("z", 0.0, 0.0, 20).matches('#').count(), 0);
    }
}
