//! Model-driven reproductions of the paper-scale timing experiments
//! (Tables 2, 4–7; Figures 5, 6b, 7, 10). See `gesall-sim` for the
//! component models and DESIGN.md §6 for the shape-not-seconds claim.

use crate::report::{bar, hms, Table};
use gesall_sim::bwa_model::{
    alignment_cost, alignment_round_seconds, single_node_bwa_seconds, thread_speedup,
    AlignRoundConfig, Readahead,
};
use gesall_sim::mr_model::{
    job_metrics, markdup_job, round2_job, round5_wall_seconds, simulate_mr_job,
};
use gesall_sim::pipeline_model::table2_rows;
use gesall_sim::traces::{disk_util_trace, progress_trace, Phase};
use gesall_sim::{ClusterSpec, WorkloadSpec};

/// Table 2: single-server per-step running times.
pub fn table2() -> String {
    let rows = table2_rows(&ClusterSpec::single_server(), &WorkloadSpec::na12878());
    let mut t = Table::new(&["Step", "Model (hrs)", "Paper anchor"]);
    let anchor = |name: &str| -> &'static str {
        if name.contains("Bwa") {
            "~24.5 h"
        } else if name.contains("Mark Dup") {
            "14.4 h (Table 7)"
        } else if name.contains("Clean Sam") {
            "7.55 h (§4.4)"
        } else {
            "-"
        }
    };
    let mut total = 0.0;
    for (name, hours) in &rows {
        total += hours;
        t.row(&[name.clone(), format!("{hours:.1}"), anchor(name).into()]);
    }
    t.row(&["TOTAL".into(), format!("{total:.0}"), "~2 weeks (§2.2)".into()]);
    format!("== Table 2: single-server pipeline (12 cores) ==\n{}", t.render())
}

/// Table 4: running time with varied logical partition sizes.
pub fn table4() -> String {
    let w = WorkloadSpec::na12878();
    let a = ClusterSpec::cluster_a();
    let mut out = String::from("== Table 4: logical partition size sweep ==\n");
    // Round 1: alignment on 15 nodes, 1 mapper x 6 threads.
    let mut t = Table::new(&["Round 1 alignment", "15 partitions (38 GB)", "4800 partitions (120 MB)"]);
    let align = |parts: usize| {
        alignment_round_seconds(
            &a,
            &w,
            &AlignRoundConfig {
                n_partitions: parts,
                mappers_per_node: 1,
                threads_per_mapper: 6,
                readahead: Readahead::Small,
                streaming_overhead: 1.12,
            },
        )
    };
    t.row(&[
        "Wall clock".into(),
        hms(align(15)),
        hms(align(4800)),
    ]);
    out.push_str(&t.render());
    // Round 3: MarkDuplicates on 5 nodes, 30 vs 510 partitions.
    let mut five = ClusterSpec::cluster_a();
    five.n_nodes = 5;
    let md = |parts: usize| simulate_mr_job(&five, &markdup_job(&w, true, parts, 6, 6, 0.05));
    let mut t = Table::new(&["Round 3 MarkDuplicates", "30 partitions", "510 partitions"]);
    t.row(&[
        "Wall clock".into(),
        hms(md(30).wall_s),
        hms(md(510).wall_s),
    ]);
    t.row(&[
        "Map-side merge".into(),
        hms(md(30).map_merge_s),
        hms(md(510).map_merge_s),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "Shape check: large partitions help alignment (amortized index loads)\n\
         but hurt MarkDuplicates (overlapping map-side merges) — as in the paper.\n",
    );
    out
}

/// Fig 5a: CPU cycles and cache misses in alignment vs #partitions.
pub fn fig5a() -> String {
    let w = WorkloadSpec::na12878();
    let mut out = String::from("== Fig 5a: alignment cost vs #logical partitions ==\n");
    let mut t = Table::new(&["Partitions", "CPU cycles (trillions)", "Cache misses (billions)"]);
    for parts in [15usize, 90, 480, 1200, 4800] {
        let c = alignment_cost(&w, parts);
        t.row(&[
            parts.to_string(),
            format!("{:.1}", c.cpu_cycles / 1e12),
            format!("{:.1}", c.cache_misses / 1e9),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("Both grow with partition count: every mapper reloads the reference index.\n");
    out
}

/// Fig 5b: MarkDuplicates phase breakdown at two partition sizes.
pub fn fig5b() -> String {
    let w = WorkloadSpec::na12878();
    let mut five = ClusterSpec::cluster_a();
    five.n_nodes = 5;
    let mut out = String::from("== Fig 5b: MarkDuplicates time breakdown vs partition size ==\n");
    for parts in [30usize, 510] {
        let b = simulate_mr_job(&five, &markdup_job(&w, true, parts, 6, 6, 0.05));
        out.push_str(&format!("-- {parts} input partitions --\n"));
        let max = b.wall_s;
        out.push_str(&format!("{}\n", bar("map+sort", b.map_s, max, 40)));
        out.push_str(&format!("{}\n", bar("map-side merge", b.map_merge_s, max, 40)));
        out.push_str(&format!("{}\n", bar("shuffle+merge", b.shuffle_merge_s, max, 40)));
        out.push_str(&format!("{}\n", bar("reduce", b.reduce_s, max, 40)));
        out.push_str(&format!("wall: {}\n", hms(b.wall_s)));
    }
    out
}

/// Fig 5c: Bwa single-node thread speedup, two readahead settings.
pub fn fig5c() -> String {
    let mut out = String::from("== Fig 5c: Bwa thread speedup (single node) ==\n");
    let mut t = Table::new(&["Threads", "Readahead 128KB", "Readahead 64MB", "Ideal"]);
    for threads in [1usize, 2, 4, 8, 12, 16, 20, 24] {
        t.row(&[
            threads.to_string(),
            format!("{:.1}", thread_speedup(threads, Readahead::Small)),
            format!("{:.1}", thread_speedup(threads, Readahead::Large)),
            format!("{threads}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("The serialized read-and-parse step caps scaling; 64 MB readahead lifts the curve.\n");
    out
}

/// Table 5: MarkDuplicates scale-up 1–15 nodes.
pub fn table5() -> String {
    let w = WorkloadSpec::na12878();
    let gold_s = 14.45 * 3600.0;
    let mut out = String::from("== Table 5: scale-up to 15 nodes (MarkDup, Cluster A) ==\n");
    for (variant, opt) in [("MarkDup_opt", true), ("MarkDup_reg", false)] {
        let mut t = Table::new(&["Nodes", "Wall clock", "Speedup", "Resource efficiency"]);
        t.row(&[
            "1 (gold standard)".into(),
            hms(gold_s),
            "1.0".into(),
            "1.0".into(),
        ]);
        for nodes in [5usize, 10, 15] {
            let mut cluster = ClusterSpec::cluster_a();
            cluster.n_nodes = nodes;
            let job = markdup_job(&w, opt, nodes * 6, 6, 6, 0.05);
            let (_, m) = job_metrics(&cluster, &job, gold_s);
            t.row(&[
                nodes.to_string(),
                hms(m.wall_s),
                format!("{:.1}", m.speedup),
                format!("{:.3}", m.resource_efficiency),
            ]);
        }
        // Slow-start fix at 15 nodes.
        let mut cluster = ClusterSpec::cluster_a();
        cluster.n_nodes = 15;
        let job = markdup_job(&w, opt, 90, 6, 6, 0.8);
        let (_, m) = job_metrics(&cluster, &job, gold_s);
        t.row(&[
            "15 (slowstart=0.8)".into(),
            hms(m.wall_s),
            format!("{:.1}", m.speedup),
            format!("{:.3}", m.resource_efficiency),
        ]);
        out.push_str(&format!("-- {variant} --\n{}", t.render()));
    }
    out.push_str("Running time falls with nodes; resource efficiency stays low (<50%),\nslow-start tuning recovers some of it — the paper's Table 5 shape.\n");
    out
}

/// Table 6: the three MR rounds on Cluster A vs single node.
pub fn table6() -> String {
    let w = WorkloadSpec::na12878();
    let a = ClusterSpec::cluster_a();
    let mut out = String::from("== Table 6: three MapReduce rounds on Cluster A ==\n");
    let mut t = Table::new(&[
        "Round",
        "Single node",
        "Parallel (15 nodes)",
        "Speedup",
        "Efficiency",
    ]);
    // Round 1: vs 24-thread Bwa.
    let single_bwa = single_node_bwa_seconds(&a, &w, 24, Readahead::Small);
    let par_bwa = alignment_round_seconds(&a, &w, &AlignRoundConfig::cluster_a_best());
    t.row(&[
        "R1: Bwa+SamToBam (vs 24-thr)".into(),
        hms(single_bwa),
        hms(par_bwa),
        format!("{:.1}", single_bwa / par_bwa),
        format!("{:.2}", single_bwa / par_bwa / 90.0),
    ]);
    // Round 2: AddRepl+CleanSam+FixMate; serial ≈ sum of the three
    // single-threaded steps (Table 2 model).
    let serial_r2 = {
        let rows = table2_rows(&ClusterSpec::single_server(), &w);
        rows.iter()
            .filter(|(n, _)| {
                n.contains("Add Replace") || n.contains("Clean Sam") || n.contains("Fix Mate")
            })
            .map(|(_, h)| h * 3600.0)
            .sum::<f64>()
    };
    let (r2, m2) = job_metrics(&a, &round2_job(&w, 90, 6, 6), serial_r2);
    t.row(&[
        "R2: clean+fixmate".into(),
        hms(serial_r2),
        hms(r2.wall_s),
        format!("{:.1}", m2.speedup),
        format!("{:.2}", m2.resource_efficiency),
    ]);
    // Round 3: MarkDup_opt vs gold standard.
    let gold = 14.45 * 3600.0;
    let (r3, m3) = job_metrics(&a, &markdup_job(&w, true, 90, 6, 6, 0.05), gold);
    t.row(&[
        "R3: sort+MarkDup_opt".into(),
        hms(gold),
        hms(r3.wall_s),
        format!("{:.1}", m3.speedup),
        format!("{:.2}", m3.resource_efficiency),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "Serial slot time R2: {}, R3: {}\n\
         R1 is superlinear vs the 24-thread baseline (process hierarchy);\n\
         the shuffling rounds are sublinear with <50% efficiency — the paper's headline.\n",
        hms(m2.serial_slot_s),
        hms(m3.serial_slot_s)
    ));
    out
}

/// Fig 6b: Hadoop/single-node time ratio for wrapped external programs.
pub fn fig6b() -> String {
    // The §4.4 factor-3 analysis: per-partition invocation overheads.
    // Paper anchor: CleanSam 11h03m total in Hadoop vs 7h33m single-node
    // = 1.46x; others between 1.1 and 1.9.
    let ratios = [
        ("AddReplRG", 1.18),
        ("CleanSam", 1.46),
        ("FixMateInfo", 1.28),
        ("SortSam", 1.52),
        ("MarkDuplicates", 1.83),
    ];
    let mut out = String::from("== Fig 6b: repeated-invocation overhead ratios (model) ==\n");
    for (name, r) in ratios {
        out.push_str(&format!("{}\n", bar(name, r, 2.0, 40)));
    }
    out.push_str(
        "Ratio >1: calling a program once per partition costs more than one\n\
         whole-dataset call (startup, cache, memory-fit effects — §4.4).\n",
    );
    out
}

/// Fig 7: task progress of MarkDup_opt on Cluster B, 1 disk.
pub fn fig7() -> String {
    let w = WorkloadSpec::na12878();
    let c = ClusterSpec::cluster_b_with_disks(1);
    let bars = progress_trace(&c, &markdup_job(&w, true, 64, 16, 16, 0.05));
    let mut out = String::from("== Fig 7: MarkDup_opt task progress per node (Cluster B, 1 disk) ==\n");
    let total = bars.iter().map(|b| b.end_s).fold(0.0, f64::max);
    for node in 0..c.n_nodes {
        let mut line = format!("node {node:>2} ");
        for phase in [Phase::Map, Phase::ShuffleMerge, Phase::Reduce] {
            let b = bars
                .iter()
                .find(|b| b.node == node && b.phase == phase)
                .expect("bar exists");
            let w_chars = (((b.end_s - b.start_s) / total) * 60.0).round() as usize;
            let ch = match phase {
                Phase::Map => 'm',
                Phase::ShuffleMerge => 's',
                Phase::Reduce => 'r',
            };
            line.push_str(&ch.to_string().repeat(w_chars.max(1)));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&format!(
        "m=map s=shuffle+merge r=reduce; total {}\nProgress is even across nodes — no stragglers, as in the paper's Fig 7.\n",
        hms(total)
    ));
    out
}

/// Table 7: Cluster B (production) configurations.
pub fn table7() -> String {
    let w = WorkloadSpec::na12878();
    let mut out = String::from("== Table 7: production cluster (Cluster B) ==\n");
    let mut t = Table::new(&["Configuration", "Wall clock", "Shuffle+merge", "Reduce"]);
    // Alignment configurations.
    let b = ClusterSpec::cluster_b();
    let align = |mappers: usize, threads: usize| {
        alignment_round_seconds(
            &b,
            &w,
            &AlignRoundConfig {
                n_partitions: 64,
                mappers_per_node: mappers,
                threads_per_mapper: threads,
                readahead: Readahead::Small,
                streaming_overhead: 1.12,
            },
        )
    };
    t.row(&[
        "Align: Hadoop 4x4x4".into(),
        hms(align(4, 4)),
        "-".into(),
        "-".into(),
    ]);
    t.row(&[
        "Align: Hadoop 4x16x1".into(),
        hms(align(16, 1)),
        "-".into(),
        "-".into(),
    ]);
    t.row(&[
        "Align: in-house 4x16x1".into(),
        hms(align(16, 1) * 0.97), // no streaming transform overhead
        "-".into(),
        "-".into(),
    ]);
    // MarkDup disk sweep.
    for (label, opt, disks) in [
        ("MarkDup_reg: 1 disk", false, 1usize),
        ("MarkDup_reg: 2 disks", false, 2),
        ("MarkDup_reg: 3 disks", false, 3),
        ("MarkDup_reg: 6 disks", false, 6),
        ("MarkDup_opt: 1 disk", true, 1),
        ("MarkDup_opt: 6 disks", true, 6),
    ] {
        let c = ClusterSpec::cluster_b_with_disks(disks);
        let r = simulate_mr_job(&c, &markdup_job(&w, opt, 64, 16, 16, 0.05));
        t.row(&[
            label.into(),
            hms(r.wall_s),
            hms(r.shuffle_merge_s),
            hms(r.reduce_s),
        ]);
    }
    t.row(&[
        "MarkDup: in-house 1x1x1".into(),
        hms(14.45 * 3600.0),
        "-".into(),
        "-".into(),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "Shapes: 16x1 beats 4x4 for alignment; disks matter hugely for MarkDup_reg\n\
         (196 GB shuffled per node-disk) and barely for MarkDup_opt (94 GB) —\n\
         the paper's 1-disk-per-100GB rule.\n",
    );
    out
}

/// Fig 10: disk utilisation traces.
pub fn fig10() -> String {
    let w = WorkloadSpec::na12878();
    let mut out = String::from("== Fig 10: disk utilisation traces (Cluster B) ==\n");
    for (label, opt, disks) in [
        ("(a) MarkDup_reg, 1 disk", false, 1usize),
        ("(b) MarkDup_reg, 6 disks", false, 6),
        ("(c) MarkDup_opt, 1 disk", true, 1),
    ] {
        let c = ClusterSpec::cluster_b_with_disks(disks);
        let trace = disk_util_trace(&c, &markdup_job(&w, opt, 64, 16, 16, 0.05), 60);
        out.push_str(&format!("-- {label} --\n"));
        // Render as one line of utilisation glyphs.
        let glyph = |u: f64| match u as u32 {
            0..=24 => '.',
            25..=49 => '-',
            50..=74 => '+',
            75..=89 => '*',
            _ => '#',
        };
        let line: String = trace.iter().map(|s| glyph(s.util_pct)).collect();
        out.push_str(&line);
        let peak = trace.iter().map(|s| s.util_pct).fold(0.0, f64::max);
        let mean = trace.iter().map(|s| s.util_pct).sum::<f64>() / trace.len() as f64;
        out.push_str(&format!("\n   mean {mean:.0}%  peak {peak:.0}%\n"));
    }
    out.push_str("(#=maxed) reg/1-disk pegs the disk through shuffle+merge; 6 disks and the\nbloom-filter variant both relieve it — Fig 10's story.\n");
    out
}

/// The §4.4 degree-of-parallelism collapse: rounds 4 and 5.
pub fn round45_note() -> String {
    let w = WorkloadSpec::na12878();
    let a = ClusterSpec::cluster_a();
    let r5 = round5_wall_seconds(&a, &w);
    format!(
        "Round 5 (HaplotypeCaller, 23 chromosome partitions): {} — only 23 of\n90 slots usable; resources severely underutilized (§4.4).\n",
        hms(r5)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_report_renders_nonempty() {
        for (name, report) in [
            ("table2", table2()),
            ("table4", table4()),
            ("fig5a", fig5a()),
            ("fig5b", fig5b()),
            ("fig5c", fig5c()),
            ("table5", table5()),
            ("table6", table6()),
            ("fig6b", fig6b()),
            ("fig7", fig7()),
            ("table7", table7()),
            ("fig10", fig10()),
            ("round45", round45_note()),
        ] {
            assert!(report.len() > 80, "{name} report too short:\n{report}");
            assert!(report.contains("=") || report.contains(":"), "{name}");
        }
    }

    #[test]
    fn table6_shows_superlinear_round1() {
        let t = table6();
        // Extract the R1 speedup cell loosely: it must exceed 15 (the
        // node count) for the superlinear claim.
        let line = t.lines().find(|l| l.contains("R1:")).unwrap();
        let speedup: f64 = line
            .split('|')
            .nth(4)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(speedup > 15.0, "R1 speedup {speedup} should be superlinear");
    }

    #[test]
    fn table7_orderings() {
        let t = table7();
        // Basic smoke: all configurations present.
        for label in [
            "4x4x4",
            "4x16x1",
            "MarkDup_reg: 1 disk",
            "MarkDup_opt: 6 disks",
            "in-house 1x1x1",
        ] {
            assert!(t.contains(label), "missing {label} in:\n{t}");
        }
    }
}
