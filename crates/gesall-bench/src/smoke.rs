//! The `bench-smoke` experiment: a tiny end-to-end pipeline run with
//! tracing on, proving the whole telemetry path works — per-phase
//! breakdown covering all six phases, task Gantt, straggler stats,
//! shuffle matrix, and a `BENCH_smoke.json` record on disk.
//!
//! This is the CI gate for the observability subsystem: it fails if any
//! phase timing is missing, so a refactor that silently drops a phase
//! counter breaks the build, not the next perf investigation.

use crate::real_experiments::Scale;
use gesall_aligner::{Aligner, AlignerConfig, ReferenceIndex};
use gesall_core::pipeline::{GesallPlatform, PlatformConfig};
use gesall_datagen::donor::DonorConfig;
use gesall_datagen::reads::ReadSimConfig;
use gesall_datagen::{DonorGenome, GenomeConfig, ReadSimulator, ReferenceGenome};
use gesall_dfs::{Dfs, DfsConfig};
use gesall_mapreduce::{ClusterResources, MapReduceEngine, Recorder, SpanKind};
use gesall_telemetry::report::{
    critical_path, gantt, shuffle_fetch_summary, shuffle_matrix, straggler_report, GanttRow,
};
use gesall_telemetry::{mem_keys, BenchRecord, MemStats};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Bytes copied per shuffled record the tiny pipeline measured **before**
/// the zero-copy record path landed (owned-Vec segments, per-record map
/// clones, copying pipes and DFS reads). The gate requires at least a 2×
/// reduction against this — see DESIGN.md §3⅞.
pub const OLD_PATH_BYTES_PER_RECORD: f64 = 4012.50;

/// The same metric measured on the zero-copy path (the recorded
/// baseline). The byte accounting is deterministic at this scale; the
/// gate allows [`REGRESSION_HEADROOM`] above it before failing.
pub const BASELINE_BYTES_PER_RECORD: f64 = 1969.55;

/// Slack multiplier over [`BASELINE_BYTES_PER_RECORD`] before the smoke
/// run is declared a memory-path regression.
pub const REGRESSION_HEADROOM: f64 = 1.15;

/// Allowed growth of the streaming reduce-merge's peak resident bytes
/// when the number of input runs doubles at a fixed `merge_factor`. The
/// bound is `merge_factor` × run size, independent of run count, so the
/// ratio should be ~1.0; the slack absorbs head-record jitter.
pub const PEAK_RESIDENT_FLATNESS: f64 = 1.25;

/// Allowed wall-clock slowdown of the gray-failure probe's faulty run
/// over its clean twin. The faults are survivable by design; what the
/// gate catches is a retry/hedge path that stalls instead of routing
/// around the damage.
pub const GRAY_FAILURE_SLOWDOWN: f64 = 1.5;

/// Absolute grace added on top of [`GRAY_FAILURE_SLOWDOWN`]: the probe
/// runs in tens of milliseconds, and the injected faults carry a
/// deterministic latency floor (one un-hedged slow read before the
/// latency histogram marks the node, plus a hedge budget per slow read
/// after) that a pure ratio cannot absorb at this scale. A broken
/// retry or hedge path stalls for its 10 s deadline and still trips
/// the gate by two orders of magnitude.
pub const GRAY_FAILURE_GRACE_MS: f64 = 250.0;

/// Allowed wall-clock for two engine jobs run *concurrently* through
/// the job service, as a multiple of the slower job's serial wall. Each
/// job's task count fits in half the cluster, so true concurrency keeps
/// the combined wall near the slower serial run; a scheduler that
/// serializes tenants lands at the *sum* of the serial walls and trips
/// the gate.
pub const JOBSVC_CONCURRENCY_SLOWDOWN: f64 = 1.8;

/// Absolute grace added on top of [`JOBSVC_CONCURRENCY_SLOWDOWN`]: the
/// probe's serial walls are tens of milliseconds, and the staggered
/// submit (tenant B waits until A is provably running so the elastic
/// borrow is deterministic) plus one dispatcher rebalance pass carry a
/// fixed cost a pure ratio cannot absorb at this scale. A serializing
/// scheduler still overshoots by the whole second job's wall.
pub const JOBSVC_CONCURRENCY_GRACE_MS: f64 = 100.0;

/// Required Map-phase speedup of the kernel run over its scalar twin
/// (same pipeline, every bit-parallel kernel switched off via config).
/// The twin runs on a fresh platform so the DAG cache cannot serve it;
/// outputs must be byte-identical — the kernels are exact, so the only
/// thing allowed to change is time.
pub const KERNEL_MAP_SPEEDUP: f64 = 1.3;

/// Allowed wall-clock for the warm DAG re-run as a fraction of the cold
/// pipeline wall. A warm re-run answers every stage from the
/// content-addressed cache — no alignment, no shuffle, no calling — so
/// it should cost a small fraction of the cold run; a warm wall above
/// half the cold wall means stages are re-executing instead of being
/// cache-served.
pub const DAG_WARM_RERUN_MAX_RATIO: f64 = 0.5;

/// Required fraction of shuffle-fetch bytes served by the reducer's own
/// node in the locality probe's affinity-hinted run. The probe topology
/// (2 nodes, replication 2, pinned shuffle placement) keeps a replica of
/// every segment block on the reducer's node, so nearly every byte
/// should be local; requiring a majority catches a hint that is
/// dropped or inverted — without a matching affinity every byte counts
/// as remote.
pub const SHUFFLE_LOCAL_FRACTION: f64 = 0.5;

/// Maximum wire bytes through the transit DFS for the Seq-codec shuffle
/// as a fraction of its Lz twin's, on the codec probe's simulated-read
/// payload. The genomic domain codec (2-bit packed bases, grouped
/// literals, delta-coded positions) must beat the general-purpose
/// compressor by at least this margin at byte-identical reduce output.
pub const SEQ_VS_LZ_MAX_RATIO: f64 = 0.8;

/// What the multi-tenant job-service probe measured.
struct JobsvcProbe {
    serial_a_ms: f64,
    serial_b_ms: f64,
    concurrent_ms: f64,
    queue_wait_p90_nanos: u64,
    slots_borrowed: u64,
    slots_reclaimed: u64,
}

/// Run two small engine jobs twice: serially on a bare platform, then
/// concurrently as two tenants of a `JobService`. Tenant A asks for the
/// whole cluster (an elastic borrow beyond its configured half-share);
/// tenant B's arrival forces the preemption-free reclaim — lease
/// shrink, drain, harvest — before B dispatches. Gates require the
/// concurrent wall to stay near the slower serial run and the reduce
/// outputs to be byte-identical to the serial twins.
fn jobsvc_probe() -> Result<JobsvcProbe, String> {
    use gesall_jobsvc::{
        keys, JobOutput, JobService, JobSpec, JobStatus, JobSvcConfig, TenantConfig,
    };
    use gesall_mapreduce::{
        GesallError, HashPartitioner, InputSplit, JobConfig, MapContext, Mapper, ReduceContext,
        Reducer,
    };

    /// Mapper with a per-record sleep so task walls dwarf scheduler
    /// latency and the concurrency ratio is meaningful at probe scale.
    struct SleepyMod(u64);
    impl Mapper for SleepyMod {
        type InKey = u64;
        type InValue = u64;
        type OutKey = u64;
        type OutValue = u64;
        fn map(&self, k: &u64, v: &u64, ctx: &mut MapContext<'_, u64, u64>) {
            std::thread::sleep(std::time::Duration::from_micros(400));
            ctx.emit(k % self.0, v.wrapping_add(*k));
        }
    }
    struct Sum;
    impl Reducer for Sum {
        type InKey = u64;
        type InValue = u64;
        type OutKey = u64;
        type OutValue = u64;
        fn reduce(&self, k: u64, vs: Vec<u64>, ctx: &mut ReduceContext<'_, u64, u64>) {
            ctx.emit(k, vs.iter().fold(0u64, |a, b| a.wrapping_add(*b)));
        }
    }

    // Four splits per job on a 4-node x 2-slot cluster: each job fills
    // half the slots, so two jobs fit side by side without contention.
    let splits = || -> Vec<InputSplit<u64, u64>> {
        (0..4)
            .map(|s| {
                let records: Vec<(u64, u64)> =
                    (0..30).map(|i| ((s * 30 + i) as u64, i as u64)).collect();
                InputSplit::new(format!("s{s}"), records)
            })
            .collect()
    };
    let probe_platform = || {
        GesallPlatform::new(
            Dfs::new(DfsConfig {
                n_nodes: 4,
                block_size: 1 << 20,
                replication: 1,
                ..DfsConfig::default()
            }),
            MapReduceEngine::new(ClusterResources::uniform(4, 2, 4096)),
            PlatformConfig::default(),
        )
    };
    let cfg = |name: &str| JobConfig {
        name: name.into(),
        n_reducers: 2,
        retry_backoff_ms: 1.0,
        speculative: false,
        ..JobConfig::default()
    };
    let sorted = |res: &gesall_mapreduce::JobResult<u64, u64>| -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = res.outputs.iter().flatten().cloned().collect();
        all.sort_unstable();
        all
    };

    // Serial baseline: both jobs back to back on an unconstrained
    // platform. Distinct key moduli keep the two workloads distinct.
    let serial = probe_platform();
    let t0 = std::time::Instant::now();
    let ref_a = serial
        .engine
        .run_job(cfg("probe-a"), &SleepyMod(31), &Sum, &HashPartitioner, splits())
        .map_err(|e| format!("jobsvc probe: serial job A failed: {e}"))?;
    let serial_a_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = std::time::Instant::now();
    let ref_b = serial
        .engine
        .run_job(cfg("probe-b"), &SleepyMod(53), &Sum, &HashPartitioner, splits())
        .map_err(|e| format!("jobsvc probe: serial job B failed: {e}"))?;
    let serial_b_ms = t1.elapsed().as_secs_f64() * 1e3;
    let (ref_a, ref_b) = (sorted(&ref_a), sorted(&ref_b));

    // Concurrent twin: same jobs as two tenants of one service.
    let svc = JobService::new(
        probe_platform(),
        JobSvcConfig {
            tenants: vec![TenantConfig::new("a", 1), TenantConfig::new("b", 1)],
            ..JobSvcConfig::default()
        },
    );
    let total = svc.total_slots();
    let job = |modulus: u64| {
        let splits = splits();
        move |ctx: &gesall_jobsvc::JobCtx| -> Result<JobOutput, GesallError> {
            let res = ctx.platform().engine.run_job(
                ctx.job_config("probe", 2),
                &SleepyMod(modulus),
                &Sum,
                &HashPartitioner,
                splits,
            )?;
            Ok(Box::new(res) as JobOutput)
        }
    };
    let t2 = std::time::Instant::now();
    // A asks for every slot — granted immediately, half of it an
    // elastic borrow of B's idle entitlement.
    let ha = svc
        .submit("a", JobSpec::new("probe-a", total, job(31)))
        .map_err(|e| format!("jobsvc probe: submit A failed: {e}"))?;
    // Wait until A is provably dispatched so B's arrival always finds
    // the cluster fully granted and must trigger the reclaim path.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while ha.status() == JobStatus::Queued && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let hb = svc
        .submit("b", JobSpec::new("probe-b", total / 2, job(53)))
        .map_err(|e| format!("jobsvc probe: submit B failed: {e}"))?;
    ha.wait()
        .map_err(|e| format!("jobsvc probe: concurrent job A failed: {e}"))?;
    hb.wait()
        .map_err(|e| format!("jobsvc probe: concurrent job B failed: {e}"))?;
    let concurrent_ms = t2.elapsed().as_secs_f64() * 1e3;

    let out = |h: &gesall_jobsvc::JobHandle| -> Result<Vec<(u64, u64)>, String> {
        h.take_output()
            .and_then(|b| b.downcast::<gesall_mapreduce::JobResult<u64, u64>>().ok())
            .map(|r| sorted(&r))
            .ok_or_else(|| "jobsvc probe: job finished without a result".into())
    };
    if out(&ha)? != ref_a || out(&hb)? != ref_b {
        return Err(
            "jobsvc gate: a job's reduce output under the service differs from its \
             serial twin — namespacing or lease throttling corrupted the run"
                .into(),
        );
    }
    let m = svc.metrics();
    let probe = JobsvcProbe {
        serial_a_ms,
        serial_b_ms,
        concurrent_ms,
        queue_wait_p90_nanos: m.histogram(keys::QUEUE_WAIT_NANOS).quantile(0.9).unwrap_or(0),
        slots_borrowed: m.counter(keys::SLOTS_BORROWED).get(),
        slots_reclaimed: m.counter(keys::SLOTS_RECLAIMED).get(),
    };
    drop((ha, hb));
    svc.shutdown();
    Ok(probe)
}

/// What the seeded gray-failure probe measured.
struct GrayFailureProbe {
    clean_ms: f64,
    faulty_ms: f64,
    detected: u64,
    repaired: u64,
    hedged: u64,
    retried: u64,
}

/// Run the same small job twice — once clean, once under a seeded
/// `FaultPlan` combining one corrupt_block, one slow_node, and
/// flaky_read injections — on twin replication-2 transit DFSes, and
/// require byte-identical reduce output. The integrity and gray-failure
/// counters come off the faulty run's DFS registry.
fn gray_failure_probe() -> Result<GrayFailureProbe, String> {
    use gesall_dfs::metrics_keys;
    use gesall_mapreduce::{
        FaultPlan, HashPartitioner, InputSplit, JobConfig, MapContext, Mapper, ReduceContext,
        Reducer,
    };

    struct ModKey;
    impl Mapper for ModKey {
        type InKey = u64;
        type InValue = u64;
        type OutKey = u64;
        type OutValue = u64;
        fn map(&self, k: &u64, v: &u64, ctx: &mut MapContext<'_, u64, u64>) {
            ctx.emit(k % 97, v.wrapping_add(*k));
        }
    }
    struct Sum;
    impl Reducer for Sum {
        type InKey = u64;
        type InValue = u64;
        type OutKey = u64;
        type OutValue = u64;
        fn reduce(&self, k: u64, vs: Vec<u64>, ctx: &mut ReduceContext<'_, u64, u64>) {
            ctx.emit(k, vs.iter().fold(0u64, |a, b| a.wrapping_add(*b)));
        }
    }

    let splits = || -> Vec<InputSplit<u64, u64>> {
        (0..12)
            .map(|s| {
                let records: Vec<(u64, u64)> =
                    (0..40).map(|i| ((s * 40 + i) as u64, i as u64)).collect();
                InputSplit::new(format!("s{s}"), records)
            })
            .collect()
    };
    let cfg = || JobConfig {
        name: "gray-probe".into(),
        n_reducers: 3,
        io_sort_bytes: 4096,
        retry_backoff_ms: 1.0,
        speculative: false,
        ..JobConfig::default()
    };
    // Replication 2 gives every block a verified survivor; the third
    // node hosts the repair. A tightened hedge budget keeps the slow
    // node's tax per read small at probe scale.
    let probe_dfs = || {
        Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 1 << 20,
            replication: 2,
            hedge_after_micros: 2_000,
            ..DfsConfig::default()
        })
    };

    let clean_dfs = probe_dfs();
    let clean_engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096))
        .with_shuffle_dfs(clean_dfs.clone());
    let t0 = std::time::Instant::now();
    let clean = clean_engine
        .run_job(cfg(), &ModKey, &Sum, &HashPartitioner, splits())
        .map_err(|e| format!("gray-failure probe: clean run failed: {e}"))?;
    let clean_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Replica 0 is the primary — the copy reads actually hit — so the
    // corruption is deterministically detected; the slow node's first
    // read seeds its latency histogram and every later read hedges.
    let plan = FaultPlan::seeded(0x6E55)
        .corrupt_block("map-00000", 0, 0)
        .flaky_read(0, 4)
        .flaky_read(1, 4)
        .slow_node(2, 12);
    let faulty_dfs = probe_dfs();
    let faulty_engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096))
        .with_shuffle_dfs(faulty_dfs.clone())
        .with_fault_plan(plan);
    let t1 = std::time::Instant::now();
    let faulty = faulty_engine
        .run_job(cfg(), &ModKey, &Sum, &HashPartitioner, splits())
        .map_err(|e| format!("gray-failure probe: faulty run failed: {e}"))?;
    let faulty_ms = t1.elapsed().as_secs_f64() * 1e3;

    let sorted = |res: &gesall_mapreduce::JobResult<u64, u64>| -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = res.outputs.iter().flatten().cloned().collect();
        all.sort_unstable();
        all
    };
    if sorted(&clean) != sorted(&faulty) {
        return Err(
            "gray-failure gate: faulty run's reduce output differs from the clean run — \
             a damaged or stale byte reached a reducer"
                .into(),
        );
    }
    let get = |k: &str| faulty_dfs.metrics().counter(k).get();
    // A detection from a hedge helper thread can land a beat after the
    // job returns; give it a bounded settle window.
    for _ in 0..200 {
        let d = get(metrics_keys::BLOCKS_CORRUPT_DETECTED);
        if d > 0 && get(metrics_keys::BLOCKS_CORRUPT_REPAIRED) == d {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    Ok(GrayFailureProbe {
        clean_ms,
        faulty_ms,
        detected: get(metrics_keys::BLOCKS_CORRUPT_DETECTED),
        repaired: get(metrics_keys::BLOCKS_CORRUPT_REPAIRED),
        hedged: get(metrics_keys::READS_HEDGED),
        retried: get(metrics_keys::READS_RETRIED),
    })
}

/// What the shuffle-locality probe measured on its affinity-hinted run.
struct ShuffleLocalityProbe {
    local_bytes: u64,
    remote_bytes: u64,
    prefetched: u64,
}

/// Run the same small job twice on twin 2-node replication-2 transit
/// DFSes — once with the reducer's exec node threaded into the fetch
/// path as a read-affinity hint (the default), once with the hint
/// switched off — and require byte-identical reduce output. Pinned
/// shuffle placement plus full replication puts a copy of every segment
/// block on the reducer's node, so the hinted run must serve most fetch
/// bytes from the co-located replica.
fn shuffle_locality_probe() -> Result<ShuffleLocalityProbe, String> {
    use gesall_mapreduce::counters::keys;
    use gesall_mapreduce::{
        HashPartitioner, InputSplit, JobConfig, MapContext, Mapper, ReduceContext, Reducer,
    };

    struct ModKey;
    impl Mapper for ModKey {
        type InKey = u64;
        type InValue = u64;
        type OutKey = u64;
        type OutValue = u64;
        fn map(&self, k: &u64, v: &u64, ctx: &mut MapContext<'_, u64, u64>) {
            ctx.emit(k % 61, v.wrapping_add(*k));
        }
    }
    struct Sum;
    impl Reducer for Sum {
        type InKey = u64;
        type InValue = u64;
        type OutKey = u64;
        type OutValue = u64;
        fn reduce(&self, k: u64, vs: Vec<u64>, ctx: &mut ReduceContext<'_, u64, u64>) {
            ctx.emit(k, vs.iter().fold(0u64, |a, b| a.wrapping_add(*b)));
        }
    }

    let splits = || -> Vec<InputSplit<u64, u64>> {
        (0..8)
            .map(|s| {
                let records: Vec<(u64, u64)> =
                    (0..50).map(|i| ((s * 50 + i) as u64, i as u64)).collect();
                InputSplit::new(format!("s{s}"), records)
            })
            .collect()
    };
    let cfg = |locality: bool| JobConfig {
        name: "locality-probe".into(),
        n_reducers: 2,
        io_sort_bytes: 2048,
        retry_backoff_ms: 1.0,
        speculative: false,
        shuffle_locality: locality,
        ..JobConfig::default()
    };
    let run = |locality: bool| {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 2,
            block_size: 1 << 20,
            replication: 2,
            ..DfsConfig::default()
        });
        let engine =
            MapReduceEngine::new(ClusterResources::uniform(2, 2, 4096)).with_shuffle_dfs(dfs);
        engine
            .run_job(cfg(locality), &ModKey, &Sum, &HashPartitioner, splits())
            .map_err(|e| format!("shuffle-locality probe: run failed: {e}"))
    };
    let hinted = run(true)?;
    let blind = run(false)?;

    let sorted = |res: &gesall_mapreduce::JobResult<u64, u64>| -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = res.outputs.iter().flatten().cloned().collect();
        all.sort_unstable();
        all
    };
    if sorted(&hinted) != sorted(&blind) {
        return Err(
            "shuffle-locality gate: affinity-hinted run's reduce output differs from the \
             no-affinity twin — replica selection changed bytes, not just placement"
                .into(),
        );
    }
    Ok(ShuffleLocalityProbe {
        local_bytes: hinted.counters.get(keys::SHUFFLE_FETCH_BYTES_LOCAL),
        remote_bytes: hinted.counters.get(keys::SHUFFLE_FETCH_BYTES_REMOTE),
        prefetched: hinted.counters.get(keys::SHUFFLE_FETCH_PREFETCHED),
    })
}

/// What the shuffle-codec probe measured.
struct ShuffleCodecProbe {
    lz_dfs_bytes: u64,
    seq_dfs_bytes: u64,
    bytes_saved: u64,
}

/// Run the same simulated-read shuffle twice — alignment-record values
/// from datagen, once with the general-purpose Lz codec forced and once
/// with the genomic Seq codec — and require byte-identical reduce
/// output. The gate compares wire bytes through the transit DFS: the
/// domain codec must shrink the shuffle, not just roundtrip.
fn shuffle_codec_probe() -> Result<ShuffleCodecProbe, String> {
    use gesall_formats::sam::SamRecord;
    use gesall_formats::Codec;
    use gesall_mapreduce::counters::keys;
    use gesall_mapreduce::{
        HashPartitioner, InputSplit, JobConfig, MapContext, Mapper, ReduceContext, Reducer,
    };

    /// Buckets alignment records by position, carrying the record whole
    /// — the payload shape of the pipeline's sort round.
    struct Bucket;
    impl Mapper for Bucket {
        type InKey = u64;
        type InValue = SamRecord;
        type OutKey = u64;
        type OutValue = SamRecord;
        fn map(&self, _k: &u64, v: &SamRecord, ctx: &mut MapContext<'_, u64, SamRecord>) {
            ctx.emit(v.pos as u64 / 256, v.clone());
        }
    }
    struct Collect;
    impl Reducer for Collect {
        type InKey = u64;
        type InValue = SamRecord;
        type OutKey = u64;
        type OutValue = SamRecord;
        fn reduce(&self, k: u64, vs: Vec<SamRecord>, ctx: &mut ReduceContext<'_, u64, SamRecord>) {
            for v in vs {
                ctx.emit(k, v);
            }
        }
    }

    // 150 bp reads (a standard Illumina length) keep the payload honest:
    // real simulated bases and noisy quality strings, wire-encoded
    // exactly as a map-output partition carries them.
    let genome = ReferenceGenome::generate(&GenomeConfig {
        chromosome_lengths: vec![30_000],
        ..GenomeConfig::default()
    });
    let donor = DonorGenome::generate(&genome, &DonorConfig::default());
    let (pairs, _) = ReadSimulator::new(
        &genome,
        &donor,
        ReadSimConfig {
            n_pairs: 400,
            read_len: 150,
            ..ReadSimConfig::default()
        },
    )
    .simulate();
    let mut recs = Vec::new();
    let mut pos = 0i64;
    for (i, p) in pairs.iter().enumerate() {
        for r in [&p.r1, &p.r2] {
            let mut rec = SamRecord::unmapped(r.name.clone(), r.seq.clone(), r.qual.clone());
            // Mostly-sorted positions, like a sorted partition payload.
            pos += (i % 7) as i64;
            rec.pos = pos;
            recs.push(rec);
        }
    }
    let splits = |recs: &[SamRecord]| -> Vec<InputSplit<u64, SamRecord>> {
        recs.chunks(200)
            .enumerate()
            .map(|(s, chunk)| {
                let records: Vec<(u64, SamRecord)> = chunk
                    .iter()
                    .enumerate()
                    .map(|(i, r)| ((s * 200 + i) as u64, r.clone()))
                    .collect();
                InputSplit::new(format!("s{s}"), records)
            })
            .collect()
    };
    let run = |codec: Codec| {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 2,
            block_size: 1 << 20,
            replication: 1,
            ..DfsConfig::default()
        });
        let engine =
            MapReduceEngine::new(ClusterResources::uniform(2, 2, 4096)).with_shuffle_dfs(dfs);
        let cfg = JobConfig {
            name: format!("codec-probe-{}", codec.name()),
            n_reducers: 2,
            io_sort_bytes: 16 * 1024,
            compress_min_bytes: 1,
            retry_backoff_ms: 1.0,
            speculative: false,
            shuffle_codec: Some(codec),
            ..JobConfig::default()
        };
        engine
            .run_job(cfg, &Bucket, &Collect, &HashPartitioner, splits(&recs))
            .map_err(|e| format!("shuffle-codec probe: {} run failed: {e}", codec.name()))
    };
    let lz = run(Codec::Lz)?;
    let seq = run(Codec::Seq)?;
    if lz.outputs != seq.outputs {
        return Err(
            "shuffle-codec gate: reduce output differs between the Lz and Seq shuffles — \
             a codec changed bytes, not just wire size"
                .into(),
        );
    }
    let lz_dfs_bytes = lz.counters.get(keys::SHUFFLE_BYTES_DFS);
    let seq_dfs_bytes = seq.counters.get(keys::SHUFFLE_BYTES_DFS);
    Ok(ShuffleCodecProbe {
        lz_dfs_bytes,
        seq_dfs_bytes,
        bytes_saved: lz_dfs_bytes.saturating_sub(seq_dfs_bytes),
    })
}

/// Peak decoded-side resident bytes of one streaming merge over
/// `n_runs` equal-sized sorted runs at the given fan-in — the
/// flatness-gate probe. Deterministic: same runs, same peak.
fn streaming_merge_peak(n_runs: usize, merge_factor: usize) -> u64 {
    use gesall_mapreduce::counters::{keys, Counters};
    use gesall_mapreduce::shuffle::{reduce_merge, Segment};
    let segments: Vec<Segment> = (0..n_runs as u64)
        .map(|r| {
            let mut pairs: Vec<(u64, u64)> =
                (0..512u64).map(|i| ((i * 131 + r * 17) % 1024, i)).collect();
            pairs.sort_unstable();
            Segment::from_pairs(&pairs, true)
        })
        .collect();
    let bag = Counters::new();
    let _ = reduce_merge::<u64, u64>(segments, merge_factor, &bag);
    bag.get(keys::REDUCE_PEAK_RESIDENT)
}

/// Everything a smoke run produces.
pub struct SmokeOutcome {
    /// Human-readable report (phase table, Gantt, stragglers, shuffle).
    pub report: String,
    /// The machine-readable record appended to `BENCH_smoke.json`.
    pub record: BenchRecord,
    /// Where the record was written (None when no out dir was given).
    pub bench_path: Option<PathBuf>,
}

/// Run the tiny traced pipeline. With an `out_dir`, the bench record is
/// appended to `BENCH_smoke.json` there and the full span trace is
/// streamed to `smoke_trace.jsonl`. Errors if the pipeline fails or any
/// of the six phases recorded no time.
pub fn run_smoke(out_dir: Option<&Path>) -> Result<SmokeOutcome, String> {
    let scale = Scale::tiny();
    let genome = ReferenceGenome::generate(&GenomeConfig {
        chromosome_lengths: scale.chromosome_lengths.to_vec(),
        ..GenomeConfig::default()
    });
    let donor = DonorGenome::generate(&genome, &DonorConfig::default());
    let (pairs, _) = ReadSimulator::new(
        &genome,
        &donor,
        ReadSimConfig {
            n_pairs: scale.n_pairs,
            duplicate_rate: 0.05,
            ..ReadSimConfig::default()
        },
    )
    .simulate();
    let chroms: Vec<(String, Vec<u8>)> = genome
        .chromosomes
        .iter()
        .map(|c| (c.name.clone(), c.seq.clone()))
        .collect();
    let aligner = Aligner::new(ReferenceIndex::build(&chroms), AlignerConfig::default());

    let recorder = match out_dir {
        Some(dir) => Recorder::with_jsonl_sink(&dir.join("smoke_trace.jsonl"))
            .map_err(|e| format!("cannot open trace sink: {e}"))?,
        None => Recorder::new(),
    };
    let dfs = Dfs::new(DfsConfig {
        n_nodes: 4,
        block_size: 64 * 1024,
        replication: 1,
        ..DfsConfig::default()
    });
    let engine = MapReduceEngine::new(ClusterResources::uniform(4, 2, 8192))
        .with_recorder(recorder.clone());
    // A starved sort buffer and minimal merge fan-in force spills and
    // multipass merges even at this scale, so every phase shows up.
    let io_sort_bytes = 2048usize;
    let merge_factor = 2usize;
    let config = PlatformConfig {
        n_round1_partitions: scale.n_partitions,
        n_reducers: scale.n_partitions,
        io_sort_bytes,
        merge_factor,
        ..PlatformConfig::default()
    };
    let dfs_handle = dfs.clone();
    let platform = GesallPlatform::new(dfs, engine, config);
    let t0 = std::time::Instant::now();
    let out = platform
        .run_pipeline(&aligner, pairs.clone())
        .map_err(|e| format!("smoke pipeline failed: {e:?}"))?;
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Aggregate counters across rounds. Phase and engine counters are
    // per-job (sum); wrapper.* counters are pipeline-cumulative — they
    // are merged into every round's snapshot — so take the final value.
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for round in &out.rounds {
        for (k, v) in &round.counters {
            let slot = agg.entry(k.clone()).or_insert(0);
            if k.starts_with("wrapper.") {
                *slot = (*slot).max(*v);
            } else {
                *slot += *v;
            }
        }
    }
    // Whole-pipeline "bytes actually copied" gauge: engine-side copies
    // (summed per job) + streaming-pipe copies (pipeline-cumulative, so
    // max) + DFS/storage copies (on the DFS's own registry).
    let engine_copied = agg.get(mem_keys::BYTES_COPIED).copied().unwrap_or(0);
    let pipe_copied = agg.get("wrapper.bytes.copied").copied().unwrap_or(0);
    let dfs_copied = dfs_handle
        .metrics()
        .counter(gesall_dfs::metrics_keys::BYTES_COPIED)
        .get();
    let total_copied = engine_copied + pipe_copied + dfs_copied;
    agg.insert("mem.bytes.copied.total".into(), total_copied);
    let shuffled = agg.get("shuffle.records").copied().unwrap_or(0);
    let per_record = MemStats {
        bytes_copied: total_copied,
        ..MemStats::default()
    }
    .bytes_copied_per_record(shuffled);

    // DAG warm-rerun probe: the identical pipeline on the same platform
    // must be answered entirely from the content-addressed stage cache
    // the cold run populated, byte-identically. Runs *after* the cold
    // copy counters are captured so the (cache-served) re-run's DFS
    // reads cannot pollute the memory-path gate.
    let warm_t0 = std::time::Instant::now();
    let warm = platform
        .run_pipeline(&aligner, pairs.clone())
        .map_err(|e| format!("smoke warm re-run failed: {e:?}"))?;
    let warm_rerun_wall_nanos = warm_t0.elapsed().as_nanos() as u64;
    let dag_stage_cache_hits = warm.cache_hits();
    if warm.records != out.records || warm.variants != out.variants {
        return Err(
            "dag-cache gate: warm re-run output differs from the cold run — \
             the stage cache is serving wrong bytes"
                .into(),
        );
    }
    // Critical path through the cold run's stage DAG, from the per-stage
    // wall clocks the executor recorded.
    let (_, dag_critical_path_ms) = critical_path(&out.dag_rows());
    let dag_critical_path_nanos = (dag_critical_path_ms * 1e6) as u64;

    // Spill-overlap metric: time the background encoder pool spent
    // sorting spills, over the wall-clock of the map waves it overlapped
    // with. Any positive value proves spills ran off the map thread; at
    // real scales it approaches the fraction of map time the sync path
    // would have serialized.
    let pool_busy_nanos = agg
        .get(gesall_mapreduce::counters::keys::SPILL_POOL_BUSY_NANOS)
        .copied()
        .unwrap_or(0);
    let seg_raw = agg
        .get(gesall_mapreduce::counters::keys::SHUFFLE_SEGMENTS_RAW)
        .copied()
        .unwrap_or(0);
    let seg_compressed = agg
        .get(gesall_mapreduce::counters::keys::SHUFFLE_SEGMENTS_COMPRESSED)
        .copied()
        .unwrap_or(0);
    let map_wave_ms: f64 = recorder
        .spans_of_kind(SpanKind::Wave)
        .iter()
        .filter(|s| s.name == "map-wave")
        .map(|s| s.end_ms - s.start_ms)
        .sum();
    let spill_overlap = if map_wave_ms > 0.0 {
        (pool_busy_nanos as f64 / 1e6) / map_wave_ms
    } else {
        0.0
    };

    // DFS-transit shuffle accounting: with `shuffle_via_dfs` on (the
    // default) every shuffled byte must travel through the DFS and none
    // as an in-memory segment handoff.
    let shuffle_dfs_bytes = agg
        .get(gesall_mapreduce::counters::keys::SHUFFLE_BYTES_DFS)
        .copied()
        .unwrap_or(0);
    let shuffle_memory_bytes = agg
        .get(gesall_mapreduce::counters::keys::SHUFFLE_BYTES_MEMORY)
        .copied()
        .unwrap_or(0);
    let reduce_peak_resident = agg
        .get(mem_keys::REDUCE_PEAK_RESIDENT)
        .copied()
        .unwrap_or(0);
    // Flatness probe: doubling the run count at fixed fan-in must not
    // move the streaming merge's peak resident bytes.
    let peak_n = streaming_merge_peak(8, 4);
    let peak_2n = streaming_merge_peak(16, 4);
    // Gray-failure probe: seeded corruption + slow + flaky injections
    // against a clean twin of the same job.
    let gray = gray_failure_probe()?;
    // Job-service probe: the same two jobs serial vs concurrent under
    // two tenants, with a forced elastic borrow + reclaim in between.
    let jobsvc = jobsvc_probe()?;
    // Shuffle-locality probe: affinity-hinted vs hint-off twins on a
    // pinned replication-2 topology where every segment has a
    // co-located replica.
    let locality = shuffle_locality_probe()?;
    // Shuffle-codec probe: the genomic Seq codec vs the Lz baseline on
    // the same simulated-read shuffle.
    let codec = shuffle_codec_probe()?;

    // Kernel twin: the identical cold pipeline with every bit-parallel
    // kernel (packed rank, banded SW, radix spill sort) switched off via
    // config, on a *fresh* platform — the DAG cache lives on the
    // platform's DFS, so a fresh DFS keeps the twin cache-cold and its
    // Map phase honestly re-executed. Output must match the kernel run
    // byte for byte; the only permitted difference is time.
    let phase_map_nanos = agg
        .get(gesall_telemetry::Phase::Map.counter_key())
        .copied()
        .unwrap_or(0);
    let kernel_occ_words = agg
        .get(gesall_telemetry::kernel_keys::OCC_WORDS_POPCOUNTED)
        .copied()
        .unwrap_or(0);
    let kernel_banded_hits = agg
        .get(gesall_telemetry::kernel_keys::SW_BANDED_HITS)
        .copied()
        .unwrap_or(0);
    let kernel_full_fallbacks = agg
        .get(gesall_telemetry::kernel_keys::SW_FULL_FALLBACKS)
        .copied()
        .unwrap_or(0);
    let kernel_radix_passes = agg
        .get(gesall_telemetry::kernel_keys::SORT_RADIX_PASSES)
        .copied()
        .unwrap_or(0);
    let kernel_comparison_fallbacks = agg
        .get(gesall_telemetry::kernel_keys::SORT_COMPARISON_FALLBACKS)
        .copied()
        .unwrap_or(0);
    let mut scalar_aligner = Aligner::new(ReferenceIndex::build(&chroms), AlignerConfig::default());
    scalar_aligner.set_kernels(false);
    let scalar_platform = GesallPlatform::new(
        Dfs::new(DfsConfig {
            n_nodes: 4,
            block_size: 64 * 1024,
            replication: 1,
            ..DfsConfig::default()
        }),
        MapReduceEngine::new(ClusterResources::uniform(4, 2, 8192)),
        PlatformConfig {
            n_round1_partitions: scale.n_partitions,
            n_reducers: scale.n_partitions,
            io_sort_bytes,
            merge_factor,
            kernels: false,
            ..PlatformConfig::default()
        },
    );
    let scalar_out = scalar_platform
        .run_pipeline(&scalar_aligner, pairs)
        .map_err(|e| format!("smoke scalar twin failed: {e:?}"))?;
    if scalar_out.records != out.records || scalar_out.variants != out.variants {
        return Err(
            "kernel gate: scalar twin's pipeline output differs from the kernel run — \
             a bit-parallel kernel changed results, not just time"
                .into(),
        );
    }
    let phase_map_scalar_nanos: u64 = scalar_out
        .rounds
        .iter()
        .flat_map(|r| r.counters.iter())
        .filter(|(k, _)| k.as_str() == gesall_telemetry::Phase::Map.counter_key())
        .map(|(_, v)| *v)
        .sum();
    let kernel_map_speedup = if phase_map_nanos > 0 {
        phase_map_scalar_nanos as f64 / phase_map_nanos as f64
    } else {
        0.0
    };

    let mut record = BenchRecord::new("smoke").with_counters(agg.into_iter().collect());
    record.wall_ms = wall_ms;
    record.workload = vec![
        ("n_pairs".into(), scale.n_pairs.to_string()),
        ("genome_bp".into(), genome.total_len().to_string()),
        ("n_rounds".into(), out.rounds.len().to_string()),
        ("n_variants".into(), out.variants.len().to_string()),
        ("bytes_copied_per_record".into(), format!("{per_record:.2}")),
        ("spill_overlap".into(), format!("{spill_overlap:.4}")),
        ("shuffle_segments_raw".into(), seg_raw.to_string()),
        (
            "shuffle_segments_compressed".into(),
            seg_compressed.to_string(),
        ),
        ("shuffle_dfs_bytes".into(), shuffle_dfs_bytes.to_string()),
        (
            "reduce_peak_resident_bytes".into(),
            reduce_peak_resident.to_string(),
        ),
        ("reduce_peak_resident_8_runs".into(), peak_n.to_string()),
        ("reduce_peak_resident_16_runs".into(), peak_2n.to_string()),
        ("dfs_reads_hedged".into(), gray.hedged.to_string()),
        ("dfs_corrupt_repaired".into(), gray.repaired.to_string()),
        ("dfs_corrupt_detected".into(), gray.detected.to_string()),
        ("gray_clean_ms".into(), format!("{:.2}", gray.clean_ms)),
        ("gray_faulty_ms".into(), format!("{:.2}", gray.faulty_ms)),
        (
            "shuffle_fetch_local_bytes".into(),
            locality.local_bytes.to_string(),
        ),
        (
            "shuffle_fetch_remote_bytes".into(),
            locality.remote_bytes.to_string(),
        ),
        (
            "shuffle_fetch_prefetched".into(),
            locality.prefetched.to_string(),
        ),
        ("shuffle_lz_dfs_bytes".into(), codec.lz_dfs_bytes.to_string()),
        (
            "shuffle_seq_dfs_bytes".into(),
            codec.seq_dfs_bytes.to_string(),
        ),
        (
            "shuffle_seq_bytes_saved".into(),
            codec.bytes_saved.to_string(),
        ),
        (
            "jobsvc_queue_wait_p90_nanos".into(),
            jobsvc.queue_wait_p90_nanos.to_string(),
        ),
        (
            "jobsvc_slots_borrowed".into(),
            jobsvc.slots_borrowed.to_string(),
        ),
        (
            "jobsvc_slots_reclaimed".into(),
            jobsvc.slots_reclaimed.to_string(),
        ),
        (
            "jobsvc_serial_a_ms".into(),
            format!("{:.2}", jobsvc.serial_a_ms),
        ),
        (
            "jobsvc_serial_b_ms".into(),
            format!("{:.2}", jobsvc.serial_b_ms),
        ),
        (
            "jobsvc_concurrent_ms".into(),
            format!("{:.2}", jobsvc.concurrent_ms),
        ),
        (
            "dag_stage_cache_hits".into(),
            dag_stage_cache_hits.to_string(),
        ),
        (
            "dag_critical_path_nanos".into(),
            dag_critical_path_nanos.to_string(),
        ),
        (
            "warm_rerun_wall_nanos".into(),
            warm_rerun_wall_nanos.to_string(),
        ),
        ("phase_map_nanos".into(), phase_map_nanos.to_string()),
        (
            "phase_map_scalar_nanos".into(),
            phase_map_scalar_nanos.to_string(),
        ),
        (
            "kernel_map_speedup".into(),
            format!("{kernel_map_speedup:.2}"),
        ),
        (
            "kernel_occ_words_popcounted".into(),
            kernel_occ_words.to_string(),
        ),
        (
            "kernel_sw_banded_hits".into(),
            kernel_banded_hits.to_string(),
        ),
        (
            "kernel_sw_full_fallbacks".into(),
            kernel_full_fallbacks.to_string(),
        ),
        (
            "kernel_sort_radix_passes".into(),
            kernel_radix_passes.to_string(),
        ),
        (
            "kernel_sort_comparison_fallbacks".into(),
            kernel_comparison_fallbacks.to_string(),
        ),
    ];
    record.config = vec![
        ("n_partitions".into(), scale.n_partitions.to_string()),
        ("io_sort_bytes".into(), io_sort_bytes.to_string()),
        ("merge_factor".into(), merge_factor.to_string()),
    ];
    if !record.covers_all_phases() {
        return Err(format!(
            "smoke run recorded no time for phases {:?} — the decomposition is broken",
            record.missing_phases()
        ));
    }
    // Memory-path gate: the zero-copy refactor's ≥2× reduction must
    // hold, and the per-record cost must stay near the recorded
    // baseline. Both thresholds are on a deterministic byte count, so a
    // failure is a real code change, not noise.
    if per_record > OLD_PATH_BYTES_PER_RECORD / 2.0 {
        return Err(format!(
            "memory-path gate: {per_record:.2} bytes copied/record loses the 2x \
             reduction over the pre-zero-copy path ({OLD_PATH_BYTES_PER_RECORD} B/rec)"
        ));
    }
    if per_record > BASELINE_BYTES_PER_RECORD * REGRESSION_HEADROOM {
        return Err(format!(
            "memory-path gate: {per_record:.2} bytes copied/record exceeds the \
             recorded baseline {BASELINE_BYTES_PER_RECORD} B/rec by more than \
             {:.0}%",
            (REGRESSION_HEADROOM - 1.0) * 100.0
        ));
    }
    // Overlap gate: async spill is on by default, and the starved sort
    // buffer guarantees spills, so the encoder pool must have done real
    // background work. Zero busy time means spills fell back to the
    // synchronous path — the overlap is broken, not just slow.
    if spill_overlap <= 0.0 {
        return Err(format!(
            "spill-overlap gate: encoder pool recorded no busy time \
             ({pool_busy_nanos} ns over {map_wave_ms:.1} ms of map waves) — \
             spills are running synchronously on the map thread"
        ));
    }
    // DFS-transit gate: shuffle_via_dfs defaults on and the platform
    // attaches its DFS, so every shuffled byte must have traveled
    // through the DFS with zero in-memory segment handoffs.
    if shuffle_dfs_bytes == 0 {
        return Err(
            "dfs-transit gate: no shuffle bytes traveled through the DFS — \
             the transit path is not wired"
                .into(),
        );
    }
    if shuffle_memory_bytes > 0 {
        return Err(format!(
            "dfs-transit gate: {shuffle_memory_bytes} shuffle bytes were handed \
             over in memory despite shuffle_via_dfs being on"
        ));
    }
    // Peak-resident flatness gate: the streaming reduce merge's memory
    // bound is merge_factor × run size, so doubling the run count at a
    // fixed fan-in must leave the peak (nearly) unchanged.
    if peak_n == 0 || (peak_2n as f64) > (peak_n as f64) * PEAK_RESIDENT_FLATNESS {
        return Err(format!(
            "peak-resident gate: doubling input runs moved the streaming \
             merge's peak from {peak_n} to {peak_2n} bytes (> {PEAK_RESIDENT_FLATNESS}x) \
             — the merge is no longer memory-bounded"
        ));
    }
    // Gray-failure gates: the seeded corruption must be detected and
    // fully repaired, the slow node must have driven reads into
    // hedging, and surviving the whole matrix must not have cost more
    // than the allowed slowdown over the clean twin.
    if gray.detected == 0 || gray.repaired != gray.detected {
        return Err(format!(
            "gray-failure gate: {} corrupt blocks detected, {} repaired — \
             every detection must be repaired from a verified survivor",
            gray.detected, gray.repaired
        ));
    }
    if gray.hedged == 0 {
        return Err(
            "gray-failure gate: no reads hedged against the injected slow node — \
             the latency histogram is not driving hedged reads"
                .into(),
        );
    }
    let gray_allowed_ms = gray.clean_ms * GRAY_FAILURE_SLOWDOWN + GRAY_FAILURE_GRACE_MS;
    if gray.faulty_ms > gray_allowed_ms {
        return Err(format!(
            "gray-failure gate: faulty run took {:.1} ms vs {:.1} ms clean \
             (allowed {GRAY_FAILURE_SLOWDOWN}x + {GRAY_FAILURE_GRACE_MS} ms = {:.1} ms) — \
             the retry/hedge path is stalling instead of routing around faults",
            gray.faulty_ms, gray.clean_ms, gray_allowed_ms
        ));
    }
    // Shuffle-locality gates: with a replica of every pinned shuffle
    // block on the reducer's node, the affinity hint must route the
    // majority of fetch bytes to the co-located copy. A dropped or
    // inverted hint lands at zero — without a matching affinity every
    // byte counts as remote.
    let fetch_total = locality.local_bytes + locality.remote_bytes;
    if fetch_total == 0 {
        return Err(
            "shuffle-locality gate: the probe recorded no fetch bytes — \
             the transit fetch path is not being measured"
                .into(),
        );
    }
    let local_fraction = locality.local_bytes as f64 / fetch_total as f64;
    if local_fraction <= SHUFFLE_LOCAL_FRACTION {
        return Err(format!(
            "shuffle-locality gate: only {:.1}% of {fetch_total} fetch bytes were \
             served by the reducer's own node (need > {:.0}%) — the read-affinity \
             hint is not steering replica selection",
            local_fraction * 100.0,
            SHUFFLE_LOCAL_FRACTION * 100.0
        ));
    }
    // Codec gate: at byte-identical reduce output, the Seq shuffle must
    // move meaningfully fewer wire bytes through the DFS than the Lz
    // twin — the domain codec has to pay for itself on alignment
    // records, not just roundtrip.
    if codec.lz_dfs_bytes == 0 || codec.seq_dfs_bytes == 0 {
        return Err(
            "codec gate: a codec-probe run shuffled zero wire bytes through the DFS — \
             the forced codec is not reaching the transit path"
                .into(),
        );
    }
    let seq_vs_lz = codec.seq_dfs_bytes as f64 / codec.lz_dfs_bytes as f64;
    if seq_vs_lz > SEQ_VS_LZ_MAX_RATIO {
        return Err(format!(
            "codec gate: the Seq shuffle moved {} wire bytes vs {} under Lz \
             ({seq_vs_lz:.2}x, need <= {SEQ_VS_LZ_MAX_RATIO}x) — the genomic codec \
             is not beating the general-purpose baseline on alignment records",
            codec.seq_dfs_bytes, codec.lz_dfs_bytes
        ));
    }
    // Job-service gates: tenant A's whole-cluster ask must have been an
    // elastic borrow (and reclaimed when B arrived), and running both
    // jobs through the service must genuinely overlap them — a
    // serializing scheduler lands near the *sum* of the serial walls.
    if jobsvc.slots_borrowed == 0 || jobsvc.slots_reclaimed == 0 {
        return Err(format!(
            "jobsvc gate: {} slots borrowed, {} reclaimed — the whole-cluster ask \
             must borrow the idle tenant's share and give it back on demand",
            jobsvc.slots_borrowed, jobsvc.slots_reclaimed
        ));
    }
    let jobsvc_allowed_ms = jobsvc.serial_a_ms.max(jobsvc.serial_b_ms)
        * JOBSVC_CONCURRENCY_SLOWDOWN
        + JOBSVC_CONCURRENCY_GRACE_MS;
    if jobsvc.concurrent_ms > jobsvc_allowed_ms {
        return Err(format!(
            "jobsvc gate: two concurrent jobs took {:.1} ms vs serial walls \
             {:.1}/{:.1} ms (allowed {JOBSVC_CONCURRENCY_SLOWDOWN}x max + \
             {JOBSVC_CONCURRENCY_GRACE_MS} ms = {:.1} ms) — the scheduler is \
             serializing tenants instead of running them side by side",
            jobsvc.concurrent_ms, jobsvc.serial_a_ms, jobsvc.serial_b_ms, jobsvc_allowed_ms
        ));
    }
    // Kernel gates: the banded SW must have answered real extensions
    // inside the band (a zeroed counter means the fast path silently
    // fell back everywhere), the packed rank and radix sort must have
    // engaged, and the kernel run's Map phase must beat the scalar twin
    // by the required factor. Output equality was already enforced when
    // the twin finished.
    if kernel_banded_hits == 0 {
        return Err(
            "kernel gate: banded Smith-Waterman recorded zero in-band hits — \
             every extension is falling back to the full DP"
                .into(),
        );
    }
    if kernel_occ_words == 0 {
        return Err(
            "kernel gate: packed-BWT rank popcounted zero words — \
             occ is running the scalar path despite kernels being on"
                .into(),
        );
    }
    if kernel_radix_passes + kernel_comparison_fallbacks == 0 {
        return Err(
            "kernel gate: the radix spill sort never engaged — \
             spills are using the comparison sort despite kernels being on"
                .into(),
        );
    }
    if kernel_map_speedup < KERNEL_MAP_SPEEDUP {
        return Err(format!(
            "kernel gate: Map phase with kernels on took {phase_map_nanos} ns vs \
             {phase_map_scalar_nanos} ns scalar ({kernel_map_speedup:.2}x, need \
             {KERNEL_MAP_SPEEDUP}x) — the bit-parallel kernels are not paying for \
             themselves"
        ));
    }
    // DAG-cache gates: the warm re-run must have been answered from the
    // stage cache (every stage a hit) and must cost a small fraction of
    // the cold wall — re-executing stages on a warm cache is the
    // regression this catches.
    if dag_stage_cache_hits == 0 {
        return Err(
            "dag-cache gate: warm re-run recorded zero stage cache hits — \
             the content-addressed store is not serving"
                .into(),
        );
    }
    let warm_ms = warm_rerun_wall_nanos as f64 / 1e6;
    if warm_ms > wall_ms * DAG_WARM_RERUN_MAX_RATIO {
        return Err(format!(
            "dag-cache gate: warm re-run took {warm_ms:.1} ms vs {wall_ms:.1} ms \
             cold (allowed {DAG_WARM_RERUN_MAX_RATIO}x) — stages are re-executing \
             instead of being cache-served"
        ));
    }

    let mut text = String::new();
    text.push_str(&format!(
        "== bench-smoke: traced end-to-end pipeline ({} pairs, {} bp, {:.0} ms) ==\n\n",
        scale.n_pairs,
        genome.total_len(),
        wall_ms
    ));
    text.push_str("Per-phase breakdown (ms, summed across tasks):\n");
    text.push_str(&out.phase_table());
    text.push_str(&format!(
        "\nMemory path: {total_copied} payload bytes copied \
         (engine {engine_copied} + pipes {pipe_copied} + dfs {dfs_copied}), \
         {shuffled} shuffled records -> {per_record:.2} bytes copied/record\n"
    ));
    text.push_str(&format!(
        "Spill overlap: encoder pool busy {:.2} ms across {map_wave_ms:.2} ms \
         of map waves -> {spill_overlap:.4}x overlap; segments shipped: \
         {seg_compressed} compressed, {seg_raw} raw\n",
        pool_busy_nanos as f64 / 1e6
    ));
    text.push_str(&format!(
        "Shuffle transit: {shuffle_dfs_bytes} wire bytes through the DFS, \
         {shuffle_memory_bytes} in-memory handoffs; reduce merge peaked at \
         {reduce_peak_resident} resident bytes (flatness probe: {peak_n} B @ 8 \
         runs vs {peak_2n} B @ 16 runs, fan-in 4)\n"
    ));
    text.push_str(&format!(
        "Gray failures: {} corrupt blocks detected / {} repaired, {} reads \
         hedged, {} retried; faulty twin {:.1} ms vs {:.1} ms clean\n",
        gray.detected, gray.repaired, gray.hedged, gray.retried, gray.faulty_ms, gray.clean_ms
    ));
    text.push_str(&format!(
        "Locality probe: {}",
        shuffle_fetch_summary(locality.local_bytes, locality.remote_bytes, locality.prefetched)
    ));
    text.push_str(&format!(
        "Codec twin: Seq shuffled {} wire bytes vs {} under Lz ({seq_vs_lz:.2}x, \
         {} B saved at byte-identical output)\n",
        codec.seq_dfs_bytes, codec.lz_dfs_bytes, codec.bytes_saved
    ));
    text.push_str(&format!(
        "Job service: 2 tenants concurrent {:.1} ms vs serial {:.1}/{:.1} ms; \
         {} slots borrowed, {} reclaimed, queue-wait p90 {:.2} ms\n",
        jobsvc.concurrent_ms,
        jobsvc.serial_a_ms,
        jobsvc.serial_b_ms,
        jobsvc.slots_borrowed,
        jobsvc.slots_reclaimed,
        jobsvc.queue_wait_p90_nanos as f64 / 1e6
    ));
    text.push_str(&format!(
        "Stage DAG: warm re-run {warm_ms:.1} ms vs {wall_ms:.1} ms cold, \
         {dag_stage_cache_hits} stages cache-served; critical path {:.1} ms\n",
        dag_critical_path_ms
    ));
    text.push_str(&format!(
        "Kernels: Map phase {:.1} ms vs {:.1} ms scalar twin ({kernel_map_speedup:.2}x); \
         {kernel_occ_words} occ words popcounted, {kernel_banded_hits} banded SW hits \
         / {kernel_full_fallbacks} full fallbacks, {kernel_radix_passes} radix passes \
         / {kernel_comparison_fallbacks} comparison fallbacks\n",
        phase_map_nanos as f64 / 1e6,
        phase_map_scalar_nanos as f64 / 1e6
    ));

    // Task timeline across the whole run, from the attempt spans.
    let mut attempts = recorder.spans_of_kind(SpanKind::TaskAttempt);
    attempts.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
    let bars: Vec<GanttRow> = attempts
        .iter()
        .map(|s| GanttRow {
            label: s.name.clone(),
            start_ms: s.start_ms,
            end_ms: s.end_ms,
        })
        .collect();
    text.push_str("\nTask attempts (all rounds, shared time axis):\n");
    text.push_str(&gantt(&bars, 60));

    let group = |prefix: &str| -> Vec<f64> {
        attempts
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .map(|s| s.end_ms - s.start_ms)
            .collect()
    };
    text.push_str("\nStraggler / skew statistics:\n");
    text.push_str(&straggler_report(&[
        ("map".to_string(), group("map-")),
        ("reduce".to_string(), group("reduce-")),
    ]));

    text.push_str("\nShuffle matrix (bytes moved, all shuffling rounds):\n");
    text.push_str(&shuffle_matrix(&recorder.shuffle_cells()));

    let bench_path = match out_dir {
        Some(dir) => Some(
            record
                .append_to_dir(dir)
                .map_err(|e| format!("cannot write bench record: {e}"))?,
        ),
        None => None,
    };
    if let Some(p) = &bench_path {
        text.push_str(&format!("\nBench record appended to {}\n", p.display()));
    }
    Ok(SmokeOutcome {
        report: text,
        record,
        bench_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_telemetry::bench::read_bench_file;
    use gesall_telemetry::Phase;

    #[test]
    fn smoke_covers_all_phases_and_writes_valid_json() {
        let dir = std::env::temp_dir().join(format!("gesall-smoke-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let outcome = run_smoke(Some(&dir)).expect("smoke run succeeds");
        assert!(outcome.record.covers_all_phases());
        for phase in Phase::ALL {
            assert!(
                outcome.report.contains(phase.name()),
                "report lacks phase {}",
                phase.name()
            );
        }
        assert!(outcome.report.contains("Shuffle matrix"));
        assert!(outcome.report.contains("skew"));
        assert!(outcome.report.contains("Spill overlap"));
        let overlap: f64 = outcome
            .record
            .workload
            .iter()
            .find(|(k, _)| k == "spill_overlap")
            .map(|(_, v)| v.parse().unwrap())
            .expect("spill_overlap field in bench record");
        assert!(overlap > 0.0, "async spill must overlap map work");
        let field = |k: &str| -> u64 {
            outcome
                .record
                .workload
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.parse().unwrap())
                .unwrap_or_else(|| panic!("{k} field in bench record"))
        };
        assert!(
            field("shuffle_dfs_bytes") > 0,
            "shuffle must travel through the DFS by default"
        );
        assert!(field("reduce_peak_resident_bytes") > 0);
        assert!(outcome.report.contains("Shuffle transit"));
        // Gray-failure probe: the seeded faults fired and were survived.
        assert!(
            field("dfs_reads_hedged") > 0,
            "the slow node must push reads into hedging"
        );
        assert!(
            field("dfs_corrupt_repaired") > 0,
            "the injected corruption must be detected and repaired"
        );
        assert_eq!(field("dfs_corrupt_repaired"), field("dfs_corrupt_detected"));
        assert!(outcome.report.contains("Gray failures"));
        // Locality probe: the affinity hint steered the majority of
        // fetch bytes to the co-located replica.
        assert!(
            field("shuffle_fetch_local_bytes") > field("shuffle_fetch_remote_bytes"),
            "the read-affinity hint must serve most fetch bytes locally"
        );
        let _ = field("shuffle_fetch_prefetched");
        assert!(outcome.report.contains("Locality probe"));
        // Codec probe: the genomic Seq codec beat Lz on wire bytes at
        // byte-identical reduce output.
        assert!(
            field("shuffle_seq_bytes_saved") > 0,
            "the Seq codec must save wire bytes over Lz"
        );
        assert!(field("shuffle_seq_dfs_bytes") < field("shuffle_lz_dfs_bytes"));
        assert!(outcome.report.contains("Codec twin"));
        // Job-service probe: the whole-cluster ask borrowed the idle
        // tenant's share and gave it back when the second tenant arrived.
        assert!(
            field("jobsvc_slots_borrowed") > 0,
            "tenant A's whole-cluster ask must register an elastic borrow"
        );
        assert!(
            field("jobsvc_slots_reclaimed") > 0,
            "tenant B's arrival must reclaim the borrowed slots"
        );
        assert!(outcome.report.contains("Job service"));
        // DAG probe: the warm re-run was cache-served, fast, and the
        // cold run's critical path was measured.
        assert!(
            field("dag_stage_cache_hits") > 0,
            "the warm re-run must be served from the stage cache"
        );
        assert!(field("dag_critical_path_nanos") > 0);
        assert!(field("warm_rerun_wall_nanos") > 0);
        assert!(outcome.report.contains("Stage DAG"));
        // Kernel probe: the bit-parallel kernels ran, beat the scalar
        // twin, and the twin's output matched (enforced inside run_smoke).
        assert!(
            field("kernel_sw_banded_hits") > 0,
            "banded SW must answer extensions inside the band"
        );
        assert!(
            field("kernel_occ_words_popcounted") > 0,
            "packed rank must popcount words"
        );
        assert!(
            field("phase_map_scalar_nanos") >= field("phase_map_nanos"),
            "scalar twin cannot be faster than the kernel run"
        );
        assert!(outcome.report.contains("Kernels:"));
        // The record on disk round-trips through the JSON parser.
        let path = outcome.bench_path.expect("bench path written");
        let records = read_bench_file(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "smoke");
        assert!(records[0].covers_all_phases());
        assert!(records[0].wall_ms > 0.0);
        // The span trace streamed to JSONL, one parseable object per line.
        let trace = std::fs::read_to_string(dir.join("smoke_trace.jsonl")).unwrap();
        assert!(trace.lines().count() > 10);
        for line in trace.lines().take(5) {
            gesall_telemetry::Json::parse(line).expect("valid JSONL span");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
