//! Declarative stage DAGs over the round planner.
//!
//! The paper executes the GATK best-practices workflow as a fixed
//! sequence of MapReduce rounds; this module lifts that sequence into an
//! explicit graph so an executor (the platform's DAG driver, or
//! `gesall-jobsvc`'s dependency-aware submission) can:
//!
//! * dispatch a stage the moment its parents commit — independent
//!   siblings run concurrently instead of serialising behind the
//!   hand-rolled round order;
//! * key every stage output by a **content hash** chained through its
//!   ancestry (stage code version, config fingerprint, parent keys,
//!   rooted at a hash of the external inputs), so a re-run with one
//!   changed stage re-executes exactly that stage and its descendants
//!   while every unchanged upstream output is served from the
//!   content-addressed store (`Dfs::cas_get`/`cas_put`);
//! * attribute wall-clock to the critical path
//!   ([`gesall_telemetry::report::critical_path`]).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

use gesall_dfs::checksum::xxh64;
use gesall_formats::wire;

use crate::pipeline::{
    plan_rounds, CallerChoice, HcPartitioning, Partitioning, PlatformConfig, ProgramSpec,
};

/// Well-known counter names for the DAG executor. Bumped on both the
/// run's [`Counters`](gesall_mapreduce::counters::Counters) bag and the
/// platform DFS's metrics registry (the latter survives across runs, so
/// tests and the bench harness can assert warm-rerun behaviour).
pub mod keys {
    /// Stages whose body actually executed this run.
    pub const STAGES_RUN: &str = "dag.stages.run";
    /// Stages served from the content-addressed intermediate store.
    pub const STAGES_CACHE_HIT: &str = "dag.stages.cache_hit";
}

/// One node of a stage graph: a named unit of pipeline work plus the
/// identity facts its cache key is derived from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpec {
    pub name: String,
    /// Upstream stages whose committed outputs this stage consumes.
    /// Order matters: it is part of the content key.
    pub parents: Vec<String>,
    /// Bumped whenever the stage's implementation changes observable
    /// output — the "stage code version" component of the content key.
    pub code_version: u32,
    /// Fingerprint of exactly the configuration slice this stage's
    /// output depends on (not the whole config, so e.g. changing the
    /// caller never invalidates alignment).
    pub config_fp: u64,
}

impl StageSpec {
    pub fn new(name: impl Into<String>, parents: &[&str]) -> StageSpec {
        StageSpec {
            name: name.into(),
            parents: parents.iter().map(|p| (*p).to_string()).collect(),
            code_version: 1,
            config_fp: 0,
        }
    }

    pub fn code_version(mut self, v: u32) -> StageSpec {
        self.code_version = v;
        self
    }

    pub fn config_fp(mut self, fp: u64) -> StageSpec {
        self.config_fp = fp;
        self
    }
}

/// A whole stage graph, in declaration order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DagSpec {
    pub stages: Vec<StageSpec>,
}

/// Typed planning errors — every malformed graph is rejected before an
/// executor could hang on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The graph has no stages.
    Empty,
    /// Two stages share a name.
    Duplicate(String),
    /// A stage names a parent that is not in the graph.
    UnknownParent { stage: String, parent: String },
    /// The stages that remain unordered after peeling all roots — the
    /// members (and downstream captives) of at least one cycle.
    Cycle(Vec<String>),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Empty => write!(f, "stage graph is empty"),
            DagError::Duplicate(n) => write!(f, "duplicate stage name: {n}"),
            DagError::UnknownParent { stage, parent } => {
                write!(f, "stage {stage} names unknown parent {parent}")
            }
            DagError::Cycle(names) => {
                write!(f, "stage graph has a cycle through: {}", names.join(", "))
            }
        }
    }
}

impl std::error::Error for DagError {}

impl DagSpec {
    pub fn stage(&self, name: &str) -> Option<&StageSpec> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Reject duplicates, dangling parents, and cycles.
    pub fn validate(&self) -> Result<(), DagError> {
        self.topo_order().map(|_| ())
    }

    /// Deterministic topological order (Kahn's algorithm; declaration
    /// order breaks ties), or a typed error for a malformed graph.
    pub fn topo_order(&self) -> Result<Vec<String>, DagError> {
        if self.stages.is_empty() {
            return Err(DagError::Empty);
        }
        let mut index: HashMap<&str, usize> = HashMap::new();
        for (i, s) in self.stages.iter().enumerate() {
            if index.insert(s.name.as_str(), i).is_some() {
                return Err(DagError::Duplicate(s.name.clone()));
            }
        }
        let n = self.stages.len();
        let mut indeg = vec![0usize; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, s) in self.stages.iter().enumerate() {
            for p in &s.parents {
                let Some(&pi) = index.get(p.as_str()) else {
                    return Err(DagError::UnknownParent {
                        stage: s.name.clone(),
                        parent: p.clone(),
                    });
                };
                children[pi].push(i);
                indeg[i] += 1;
            }
        }
        // Ready set kept sorted by declaration index, so the order is a
        // stable function of the spec alone.
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&i) = ready.first() {
            ready.remove(0);
            order.push(i);
            for &c in &children[i] {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    let pos = ready.binary_search(&c).unwrap_err();
                    ready.insert(pos, c);
                }
            }
        }
        if order.len() < n {
            let stuck: Vec<String> = (0..n)
                .filter(|&i| indeg[i] > 0)
                .map(|i| self.stages[i].name.clone())
                .collect();
            return Err(DagError::Cycle(stuck));
        }
        Ok(order.into_iter().map(|i| self.stages[i].name.clone()).collect())
    }

    /// All stages downstream of `name` (excluding `name` itself) — the
    /// exact set a failure of `name` must fail, and the set an
    /// invalidation of `name` re-executes.
    pub fn descendants(&self, name: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut queue: VecDeque<&str> = VecDeque::from([name]);
        while let Some(cur) = queue.pop_front() {
            for s in &self.stages {
                if s.parents.iter().any(|p| p == cur) && !out.contains(&s.name) {
                    out.push(s.name.clone());
                    queue.push_back(s.name.as_str());
                }
            }
        }
        out
    }

    /// Content keys for every stage: `xxh64` over (stage name, code
    /// version, config fingerprint, the root input key for parentless
    /// stages, and the parent keys in declared order). An entry in
    /// `invalidate` salts that stage's key — its descendants' keys shift
    /// automatically through the parent-key chain, so "invalidate one
    /// stage" re-executes exactly that stage and its descendants.
    pub fn stage_keys(
        &self,
        root_key: u64,
        invalidate: &[(String, u64)],
    ) -> Result<BTreeMap<String, u64>, DagError> {
        let order = self.topo_order()?;
        let mut keys: BTreeMap<String, u64> = BTreeMap::new();
        for name in &order {
            let s = self.stage(name).expect("topo names come from the spec");
            let mut buf = Vec::new();
            wire::put_str(&mut buf, &s.name);
            wire::put_u32(&mut buf, s.code_version);
            wire::put_u64(&mut buf, s.config_fp);
            if s.parents.is_empty() {
                wire::put_u64(&mut buf, root_key);
            }
            for p in &s.parents {
                wire::put_u64(&mut buf, keys[p]);
            }
            if let Some((_, salt)) = invalidate.iter().find(|(n, _)| n == name) {
                wire::put_u64(&mut buf, *salt);
            }
            keys.insert(name.clone(), xxh64(&buf));
        }
        Ok(keys)
    }
}

/// Fingerprint helper: hash the `Debug` rendering of a config slice.
/// Debug output is stable for the plain-data config types involved, and
/// a false *difference* only costs a cache miss, never a wrong hit.
pub fn config_fingerprint(parts: &[&dyn fmt::Debug]) -> u64 {
    let mut text = String::new();
    for p in parts {
        text.push_str(&format!("{p:?}"));
        text.push('\x1f');
    }
    xxh64(text.as_bytes())
}

/// Lift a [`plan_rounds`] plan into a stage graph: one stage per
/// planned round, chained linearly (round *i+1* consumes round *i*'s
/// arrangement). Stage names embed the fused program list so the
/// mapping back to the plan is visible in traces.
pub fn dag_from_plan(initial: Partitioning, programs: &[ProgramSpec]) -> DagSpec {
    let rounds = plan_rounds(initial, programs);
    let mut stages = Vec::with_capacity(rounds.len());
    let mut prev: Option<String> = None;
    for (i, r) in rounds.iter().enumerate() {
        let name = format!("round{}-{}", i + 1, r.programs.join("+").to_lowercase());
        let parents: Vec<&str> = prev.as_deref().into_iter().collect();
        stages.push(
            StageSpec::new(name.clone(), &parents)
                .config_fp(config_fingerprint(&[&r.programs, &r.needs_shuffle])),
        );
        prev = Some(name);
    }
    DagSpec { stages }
}

/// The round-5 stage name the executed pipeline will use for `config`.
pub fn round5_stage_name(config: &PlatformConfig) -> &'static str {
    match (config.caller, config.hc_partitioning) {
        (CallerChoice::UnifiedGenotyper, _) => "round5-unifiedgenotyper",
        (CallerChoice::HaplotypeCaller, HcPartitioning::Chromosome) => "round5-haplotypecaller",
        (CallerChoice::HaplotypeCaller, HcPartitioning::FineGrained { .. }) => {
            "round5-hc-finegrained"
        }
    }
}

/// The stage whose committed parts are the pipeline's final records.
pub fn final_parts_stage(config: &PlatformConfig) -> &'static str {
    if config.recalibrate {
        "round4b-print-reads"
    } else {
        "round4-sort"
    }
}

/// The *executed* pipeline graph for `config` — the graph
/// [`GesallPlatform::run_pipeline_dag`](crate::pipeline::GesallPlatform::run_pipeline_dag)
/// walks. Unlike [`dag_from_plan`] (a faithful lift of the planner's
/// linear rounds) this reflects the real dataflow: the bloom build and
/// the recalibration-table build are side branches that rejoin, which is
/// what lets an executor overlap them with siblings and cache them
/// independently.
pub fn pipeline_dag(config: &PlatformConfig) -> DagSpec {
    // Per-stage config slices. known_sites is an unordered set: sort it
    // so the fingerprint is deterministic across runs.
    let mut sites: Vec<(i32, i64)> = config.known_sites.iter().copied().collect();
    sites.sort_unstable();

    let mut stages = vec![
        StageSpec::new("round1-align", &[]).config_fp(config_fingerprint(&[
            &config.n_round1_partitions,
            &config.bwa_threads_per_mapper,
        ])),
        StageSpec::new("round2-clean-fixmate", &["round1-align"])
            .config_fp(config_fingerprint(&[&config.read_group, &config.n_reducers])),
    ];
    let mut markdup_parents: Vec<&str> = vec!["round2-clean-fixmate"];
    if config.markdup_opt {
        stages.push(StageSpec::new("round2b-bloom", &["round2-clean-fixmate"]));
        markdup_parents.push("round2b-bloom");
    }
    stages.push(
        StageSpec::new("round3-markdup", &markdup_parents).config_fp(config_fingerprint(&[
            &config.markdup_opt,
            &config.seed,
            &config.n_reducers,
        ])),
    );
    stages.push(StageSpec::new("round4-sort", &["round3-markdup"]));
    let mut tail_parent = "round4-sort";
    if config.recalibrate {
        stages.push(
            StageSpec::new("round4a-recal-table", &["round4-sort"])
                .config_fp(config_fingerprint(&[&config.recal, &sites])),
        );
        stages.push(
            StageSpec::new("round4b-print-reads", &["round4-sort", "round4a-recal-table"])
                .config_fp(config_fingerprint(&[&config.recal])),
        );
        tail_parent = "round4b-print-reads";
    }
    let round5_fp = match config.caller {
        CallerChoice::UnifiedGenotyper => config_fingerprint(&[&config.ug]),
        CallerChoice::HaplotypeCaller => {
            config_fingerprint(&[&config.hc, &config.hc_partitioning])
        }
    };
    stages.push(StageSpec::new(round5_stage_name(config), &[tail_parent]).config_fp(round5_fp));
    DagSpec { stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::gatk_best_practices_specs;
    use proptest::prelude::*;

    fn spec(edges: &[(&str, &[&str])]) -> DagSpec {
        DagSpec {
            stages: edges
                .iter()
                .map(|(n, ps)| StageSpec::new(*n, ps))
                .collect(),
        }
    }

    #[test]
    fn topo_order_is_deterministic_and_respects_edges() {
        let d = spec(&[
            ("a", &[]),
            ("b", &["a"]),
            ("c", &["a"]),
            ("d", &["b", "c"]),
        ]);
        assert_eq!(d.topo_order().unwrap(), vec!["a", "b", "c", "d"]);
        assert_eq!(d.descendants("a"), vec!["b", "c", "d"]);
        assert_eq!(d.descendants("b"), vec!["d"]);
        assert!(d.descendants("d").is_empty());
    }

    #[test]
    fn malformed_graphs_are_typed_errors() {
        assert_eq!(DagSpec::default().topo_order(), Err(DagError::Empty));
        assert_eq!(
            spec(&[("a", &[]), ("a", &[])]).topo_order(),
            Err(DagError::Duplicate("a".into()))
        );
        assert_eq!(
            spec(&[("a", &["ghost"])]).topo_order(),
            Err(DagError::UnknownParent {
                stage: "a".into(),
                parent: "ghost".into()
            })
        );
        // A cycle is reported, not spun on — including the self-loop.
        match spec(&[("a", &["b"]), ("b", &["a"]), ("c", &[])]).topo_order() {
            Err(DagError::Cycle(names)) => assert_eq!(names, vec!["a", "b"]),
            other => panic!("expected cycle, got {other:?}"),
        }
        assert!(matches!(
            spec(&[("a", &["a"])]).topo_order(),
            Err(DagError::Cycle(_))
        ));
    }

    #[test]
    fn stage_keys_chain_through_ancestry() {
        let d = spec(&[("a", &[]), ("b", &["a"]), ("c", &["b"])]);
        let k1 = d.stage_keys(1, &[]).unwrap();
        // Different root input: every key shifts.
        let k2 = d.stage_keys(2, &[]).unwrap();
        for n in ["a", "b", "c"] {
            assert_ne!(k1[n], k2[n], "{n} key must depend on the root input");
        }
        // Invalidating b shifts b and its descendant c, but not a.
        let k3 = d.stage_keys(1, &[("b".into(), 7)]).unwrap();
        assert_eq!(k1["a"], k3["a"]);
        assert_ne!(k1["b"], k3["b"]);
        assert_ne!(k1["c"], k3["c"]);
        // Same inputs: keys are a pure function.
        assert_eq!(k1, d.stage_keys(1, &[]).unwrap());
    }

    #[test]
    fn plan_lift_matches_round_boundaries() {
        let programs = gatk_best_practices_specs();
        let rounds = plan_rounds(Partitioning::ByReadName, &programs);
        let d = dag_from_plan(Partitioning::ByReadName, &programs);
        // 1:1 stages onto planned rounds, chained linearly.
        assert_eq!(d.stages.len(), rounds.len());
        for (i, (s, r)) in d.stages.iter().zip(&rounds).enumerate() {
            for prog in &r.programs {
                assert!(
                    s.name.contains(&prog.to_lowercase()),
                    "stage {} must name its fused programs {:?}",
                    s.name,
                    r.programs
                );
            }
            if i == 0 {
                assert!(s.parents.is_empty());
            } else {
                assert_eq!(s.parents, vec![d.stages[i - 1].name.clone()]);
            }
        }
        assert_eq!(d.topo_order().unwrap().len(), rounds.len());
    }

    #[test]
    fn pipeline_dag_reflects_config_branches() {
        let base = PlatformConfig::default(); // markdup_opt on, recal off
        let d = pipeline_dag(&base);
        d.validate().unwrap();
        let names: Vec<&str> = d.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "round1-align",
                "round2-clean-fixmate",
                "round2b-bloom",
                "round3-markdup",
                "round4-sort",
                "round5-haplotypecaller"
            ]
        );
        assert_eq!(
            d.stage("round3-markdup").unwrap().parents,
            vec!["round2-clean-fixmate", "round2b-bloom"]
        );
        let recal = PlatformConfig {
            recalibrate: true,
            markdup_opt: false,
            ..PlatformConfig::default()
        };
        let d = pipeline_dag(&recal);
        d.validate().unwrap();
        assert!(d.stage("round2b-bloom").is_none());
        assert_eq!(
            d.stage("round4b-print-reads").unwrap().parents,
            vec!["round4-sort", "round4a-recal-table"]
        );
        assert_eq!(
            d.stage("round5-haplotypecaller").unwrap().parents,
            vec!["round4b-print-reads"]
        );
        // Changing one stage's config slice moves only that subgraph.
        let k_base = pipeline_dag(&base).stage_keys(9, &[]).unwrap();
        let reseeded = PlatformConfig {
            seed: 42,
            ..PlatformConfig::default()
        };
        let k_seed = pipeline_dag(&reseeded).stage_keys(9, &[]).unwrap();
        assert_eq!(k_base["round1-align"], k_seed["round1-align"]);
        assert_eq!(k_base["round2b-bloom"], k_seed["round2b-bloom"]);
        assert_ne!(k_base["round3-markdup"], k_seed["round3-markdup"]);
        assert_ne!(k_base["round4-sort"], k_seed["round4-sort"]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random acyclic graphs (parents only point at earlier stages):
        /// the topological order always places every parent first.
        #[test]
        fn prop_topo_order_respects_all_edges(
            parent_picks in proptest::collection::vec(
                proptest::collection::vec(0usize..100, 0..4), 1..20
            ),
        ) {
            let stages: Vec<StageSpec> = parent_picks
                .iter()
                .enumerate()
                .map(|(i, picks)| {
                    let mut parents: Vec<String> = picks
                        .iter()
                        .filter(|_| i > 0)
                        .map(|p| format!("s{}", p % i))
                        .collect();
                    parents.sort();
                    parents.dedup();
                    StageSpec {
                        name: format!("s{i}"),
                        parents,
                        code_version: 1,
                        config_fp: 0,
                    }
                })
                .collect();
            let d = DagSpec { stages };
            let order = d.topo_order().unwrap();
            prop_assert_eq!(order.len(), d.stages.len());
            let pos: std::collections::HashMap<&str, usize> =
                order.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
            for s in &d.stages {
                for p in &s.parents {
                    prop_assert!(
                        pos[p.as_str()] < pos[s.name.as_str()],
                        "{} must come before {}", p, s.name
                    );
                }
            }
            // Keys exist for every stage and chain deterministically.
            let keys = d.stage_keys(123, &[]).unwrap();
            prop_assert_eq!(keys.len(), d.stages.len());
        }

        /// Adding a single back edge to a chain always yields the typed
        /// cycle error, never a hang or panic.
        #[test]
        fn prop_back_edge_is_typed_cycle(len in 2usize..12, from in 0usize..12, to in 0usize..12) {
            let from = from % len;
            // Target at or before the source: a backward (or self) edge.
            let to = to % (from + 1);
            let stages: Vec<StageSpec> = (0..len)
                .map(|i| {
                    let mut parents = if i == 0 { vec![] } else { vec![format!("s{}", i - 1)] };
                    if i == to {
                        parents.push(format!("s{from}"));
                    }
                    StageSpec { name: format!("s{i}"), parents, code_version: 1, config_fp: 0 }
                })
                .collect();
            let d = DagSpec { stages };
            prop_assert!(matches!(d.topo_order(), Err(DagError::Cycle(_))));
        }
    }
}
