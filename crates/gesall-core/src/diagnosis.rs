//! The error-diagnosis toolkit (paper §3.4 / §4.5.2).
//!
//! For a serial pipeline `P = O₁…O_k` and its parallel counterpart
//! `P̄ = Ō₁…Ō_k`, the toolkit computes, at any step `i`:
//!
//! * the concordant set Φ⁺ᵢ = Rᵢ ∩ R̄ᵢ and discordant set
//!   Φ⁻ᵢ = (Rᵢ ∪ R̄ᵢ) \ (Rᵢ ∩ R̄ᵢ);
//! * **D-count** = |Φ⁻ᵢ| and its quality-weighted version (a
//!   generalized-logistic weight that zeroes low-quality records:
//!   weight 0 at mapq ≤ 30, weight 1 at mapq ≥ 55);
//! * **D-impact** Ψ(P̄ᵢ): the discordance of *final variant calls* after
//!   running the serial tail from step i+1 (the hybrid pipeline) — the
//!   measure the bioinformaticians consider decisive.

use gesall_formats::quality::LogisticWeight;
use gesall_formats::sam::SamRecord;
use gesall_formats::vcf::VariantRecord;
use gesall_tools::vcf_metrics::{split_call_sets, variant_set_metrics, VariantSetMetrics};
use std::collections::HashMap;

/// The identity of one read end: (name, first-in-pair?).
pub type ReadId = (String, bool);

/// What we compare between two alignments of the same read end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignmentSignature {
    pub ref_id: i32,
    pub pos: i64,
    pub reverse: bool,
    pub cigar: String,
    pub duplicate: bool,
}

impl AlignmentSignature {
    pub fn of(rec: &SamRecord) -> AlignmentSignature {
        AlignmentSignature {
            ref_id: rec.ref_id,
            pos: rec.pos,
            reverse: rec.flags.is_reverse(),
            cigar: rec.cigar.to_string(),
            duplicate: rec.flags.is_duplicate(),
        }
    }
}

/// One discordant read end, with both versions' context.
#[derive(Debug, Clone)]
pub struct DiscordantRead {
    pub id: ReadId,
    pub serial: AlignmentSignature,
    pub parallel: AlignmentSignature,
    pub serial_mapq: u8,
    pub parallel_mapq: u8,
}

/// The alignment-level diff of a serial vs parallel record set.
#[derive(Debug, Clone)]
pub struct AlignmentDiff {
    /// Read ends present in both and identical.
    pub concordant: u64,
    /// Read ends that differ (the discordant set Φ⁻).
    pub discordant: Vec<DiscordantRead>,
    /// Read ends present in only one output (should be 0 for a correct
    /// platform — partitioning must not lose reads).
    pub missing: u64,
}

impl AlignmentDiff {
    /// D-count: |Φ⁻| (plus any missing reads).
    pub fn d_count(&self) -> u64 {
        self.discordant.len() as u64 + self.missing
    }

    /// Quality-weighted D-count with the paper's mapq weighting.
    pub fn weighted_d_count(&self) -> f64 {
        let w = LogisticWeight::mapq_default();
        self.discordant
            .iter()
            .map(|d| w.weight(d.serial_mapq.max(d.parallel_mapq) as f64))
            .sum::<f64>()
            + self.missing as f64
    }

    /// Weighted D-count as a percentage of total compared reads.
    pub fn weighted_d_count_pct(&self, total_reads: u64) -> f64 {
        100.0 * self.weighted_d_count() / total_reads.max(1) as f64
    }

    /// Fraction of discordant reads that are low quality in both runs
    /// (mapq < 30) — the paper's main observation about *where*
    /// discordance lives.
    pub fn low_quality_fraction(&self) -> f64 {
        if self.discordant.is_empty() {
            return 0.0;
        }
        let low = self
            .discordant
            .iter()
            .filter(|d| d.serial_mapq < 30 && d.parallel_mapq < 30)
            .count();
        low as f64 / self.discordant.len() as f64
    }
}

/// Compare two alignment outputs by read end. Secondary/supplementary
/// records are excluded (primary semantics, like the paper's diffs).
pub fn diff_alignments(serial: &[SamRecord], parallel: &[SamRecord]) -> AlignmentDiff {
    let index = |records: &[SamRecord]| -> HashMap<ReadId, (AlignmentSignature, u8)> {
        let mut m = HashMap::new();
        for r in records {
            if !r.flags.is_primary() {
                continue;
            }
            let id = (r.name.clone(), !r.flags.is_second_in_pair());
            m.insert(id, (AlignmentSignature::of(r), r.mapq));
        }
        m
    };
    let s = index(serial);
    let mut p = index(parallel);
    let mut concordant = 0u64;
    let mut discordant = Vec::new();
    let mut missing = 0u64;
    for (id, (sig_s, mapq_s)) in s {
        match p.remove(&id) {
            None => missing += 1,
            Some((sig_p, mapq_p)) => {
                if sig_s == sig_p {
                    concordant += 1;
                } else {
                    discordant.push(DiscordantRead {
                        id,
                        serial: sig_s,
                        parallel: sig_p,
                        serial_mapq: mapq_s,
                        parallel_mapq: mapq_p,
                    });
                }
            }
        }
    }
    missing += p.len() as u64;
    AlignmentDiff {
        concordant,
        discordant,
        missing,
    }
}

/// The variant-level diff: D-impact Ψ and its weighted version.
#[derive(Debug, Clone)]
pub struct VariantDiff {
    pub concordant: usize,
    pub only_serial: Vec<VariantRecord>,
    pub only_parallel: Vec<VariantRecord>,
}

impl VariantDiff {
    /// D-impact: |Ψ| = discordant variant count.
    pub fn d_impact(&self) -> usize {
        self.only_serial.len() + self.only_parallel.len()
    }

    /// Quality-weighted D-impact (logistic weight over variant QUAL; the
    /// paper uses a companion weighting for variant quality scores).
    pub fn weighted_d_impact(&self) -> f64 {
        let w = LogisticWeight::new(30.0, 100.0);
        self.only_serial
            .iter()
            .chain(&self.only_parallel)
            .map(|v| w.weight(v.qual))
            .sum::<f64>()
            + 0.0
    }

    /// Weighted D-impact as a percentage of all calls.
    pub fn weighted_d_impact_pct(&self) -> f64 {
        let total = self.concordant + self.d_impact();
        100.0 * self.weighted_d_impact() / total.max(1) as f64
    }

    /// Quality-metric rows for (intersection, serial-only,
    /// parallel-only) — the paper's Tables 9/10.
    pub fn metric_rows(
        &self,
        serial_all: &[VariantRecord],
        parallel_all: &[VariantRecord],
    ) -> (VariantSetMetrics, VariantSetMetrics, VariantSetMetrics) {
        let split = split_call_sets(serial_all, parallel_all);
        (
            variant_set_metrics(&split.intersection),
            variant_set_metrics(&self.only_serial),
            variant_set_metrics(&self.only_parallel),
        )
    }
}

/// Diff two variant call sets by site identity.
pub fn diff_variants(serial: &[VariantRecord], parallel: &[VariantRecord]) -> VariantDiff {
    let split = split_call_sets(serial, parallel);
    VariantDiff {
        concordant: split.intersection.len(),
        only_serial: split.only_a,
        only_parallel: split.only_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_formats::sam::{Cigar, Flags};
    use gesall_formats::vcf::Genotype;

    fn rec(name: &str, first: bool, pos: i64, mapq: u8) -> SamRecord {
        let mut r = SamRecord::unmapped(name, vec![b'A'; 50], vec![30; 50]);
        let mut f = Flags(Flags::PAIRED);
        f.set(
            if first {
                Flags::FIRST_IN_PAIR
            } else {
                Flags::SECOND_IN_PAIR
            },
            true,
        );
        r.flags = f;
        r.ref_id = 0;
        r.pos = pos;
        r.mapq = mapq;
        r.cigar = Cigar::full_match(50);
        r
    }

    fn var(pos: i64, qual: f64) -> VariantRecord {
        VariantRecord {
            chrom: "chr1".into(),
            pos,
            ref_allele: "A".into(),
            alt_allele: "G".into(),
            qual,
            genotype: Genotype::Het,
            depth: 30,
            mapping_quality: 55.0,
            fisher_strand: 0.5,
            allele_balance: 0.5,
        }
    }

    #[test]
    fn identical_outputs_are_fully_concordant() {
        let a = vec![rec("r1", true, 100, 60), rec("r1", false, 300, 60)];
        let d = diff_alignments(&a, &a.clone());
        assert_eq!(d.concordant, 2);
        assert_eq!(d.d_count(), 0);
        assert_eq!(d.weighted_d_count(), 0.0);
    }

    #[test]
    fn position_flip_is_discordant_weighted_by_quality() {
        let serial = vec![rec("r1", true, 100, 60), rec("r2", true, 500, 10)];
        let mut parallel = serial.clone();
        parallel[0].pos = 200; // high-quality flip
        parallel[1].pos = 700; // low-quality flip
        let d = diff_alignments(&serial, &parallel);
        assert_eq!(d.d_count(), 2);
        // Only the mapq-60 flip carries weight.
        assert!((d.weighted_d_count() - 1.0).abs() < 1e-9);
        assert!((d.low_quality_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn duplicate_flag_differences_count() {
        let serial = vec![rec("r1", true, 100, 60)];
        let mut parallel = serial.clone();
        parallel[0].flags.set(Flags::DUPLICATE, true);
        let d = diff_alignments(&serial, &parallel);
        assert_eq!(d.d_count(), 1);
    }

    #[test]
    fn missing_reads_detected() {
        let serial = vec![rec("r1", true, 100, 60), rec("r2", true, 200, 60)];
        let parallel = vec![rec("r1", true, 100, 60)];
        let d = diff_alignments(&serial, &parallel);
        assert_eq!(d.missing, 1);
        assert_eq!(d.d_count(), 1);
    }

    #[test]
    fn mates_are_distinct_read_ends() {
        let serial = vec![rec("r1", true, 100, 60), rec("r1", false, 400, 60)];
        let mut parallel = serial.clone();
        parallel[1].pos = 450; // only the second end moves
        let d = diff_alignments(&serial, &parallel);
        assert_eq!(d.concordant, 1);
        assert_eq!(d.discordant.len(), 1);
        assert!(!d.discordant[0].id.1, "second-in-pair flagged");
    }

    #[test]
    fn variant_diff_and_weighting() {
        let serial = vec![var(1, 200.0), var(2, 200.0), var(3, 15.0)];
        let parallel = vec![var(1, 200.0), var(4, 200.0)];
        let d = diff_variants(&serial, &parallel);
        assert_eq!(d.concordant, 1);
        assert_eq!(d.d_impact(), 3); // pos 2, 3 serial-only; pos 4 parallel-only
        // pos-3 call is low quality → weight ~0; two confident ones → ~2.
        let w = d.weighted_d_impact();
        assert!((w - 2.0).abs() < 0.01, "weighted {w}");
        let pct = d.weighted_d_impact_pct();
        assert!(pct > 0.0 && pct < 100.0);
    }

    #[test]
    fn metric_rows_shapes() {
        let serial = vec![var(1, 200.0), var(2, 50.0)];
        let parallel = vec![var(1, 200.0), var(9, 40.0)];
        let d = diff_variants(&serial, &parallel);
        let (inter, s_only, p_only) = d.metric_rows(&serial, &parallel);
        assert_eq!(inter.n, 1);
        assert_eq!(s_only.n, 1);
        assert_eq!(p_only.n, 1);
        assert!(inter.mean_qual > s_only.mean_qual);
    }
}
