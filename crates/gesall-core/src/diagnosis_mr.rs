//! The error-diagnosis toolkit as **MapReduce programs** — the paper's
//! §4.5.2: "We have written MapReduce programs to compute all the
//! D count and D impact measures and their weighted versions for our
//! parallel pipeline." At paper scale the outputs being diffed are
//! hundreds of GB, so the diff itself must be a parallel job: map tags
//! each record with its pipeline of origin keyed by read end; reduce
//! compares the (at most two) signatures per key.

use crate::diagnosis::AlignmentSignature;
use gesall_formats::bam;
use gesall_formats::SharedBytes;
use gesall_formats::error::Result as FmtResult;
use gesall_formats::quality::LogisticWeight;
use gesall_formats::wire::{Cursor, Wire};
use gesall_mapreduce::runtime::{InputSplit, JobConfig, MapReduceEngine};
use gesall_mapreduce::task::{HashPartitioner, MapContext, Mapper, ReduceContext, Reducer};
use gesall_formats::sam::SamRecord;

/// Which pipeline a shuffled signature came from.
pub const TAG_SERIAL: u8 = 0;
pub const TAG_PARALLEL: u8 = 1;

/// The shuffled value: origin tag + signature + mapq.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedSignature {
    pub tag: u8,
    pub ref_id: i32,
    pub pos: i64,
    pub reverse: bool,
    pub cigar: String,
    pub duplicate: bool,
    pub mapq: u8,
}

impl TaggedSignature {
    fn of(tag: u8, rec: &SamRecord) -> TaggedSignature {
        let s = AlignmentSignature::of(rec);
        TaggedSignature {
            tag,
            ref_id: s.ref_id,
            pos: s.pos,
            reverse: s.reverse,
            cigar: s.cigar,
            duplicate: s.duplicate,
            mapq: rec.mapq,
        }
    }

    fn same_alignment(&self, other: &TaggedSignature) -> bool {
        self.ref_id == other.ref_id
            && self.pos == other.pos
            && self.reverse == other.reverse
            && self.cigar == other.cigar
            && self.duplicate == other.duplicate
    }
}

impl Wire for TaggedSignature {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.tag as u32).encode(buf);
        (self.ref_id as i64).encode(buf);
        self.pos.encode(buf);
        (self.reverse as u32).encode(buf);
        self.cigar.encode(buf);
        (self.duplicate as u32).encode(buf);
        (self.mapq as u32).encode(buf);
    }

    fn decode(cur: &mut Cursor<'_>) -> FmtResult<Self> {
        Ok(TaggedSignature {
            tag: u32::decode(cur)? as u8,
            ref_id: i64::decode(cur)? as i32,
            pos: i64::decode(cur)?,
            reverse: u32::decode(cur)? != 0,
            cigar: String::decode(cur)?,
            duplicate: u32::decode(cur)? != 0,
            mapq: u32::decode(cur)? as u8,
        })
    }
}

/// Map side: input value is a BAM partition of either pipeline's output;
/// the split label's prefix ("serial/" or "parallel/") selects the tag.
/// Emits (read-end key, tagged signature).
pub struct DiffMapper;

impl Mapper for DiffMapper {
    type InKey = String;
    type InValue = SharedBytes;
    type OutKey = String;
    type OutValue = TaggedSignature;

    fn map(
        &self,
        label: &String,
        bam_bytes: &SharedBytes,
        ctx: &mut MapContext<'_, String, TaggedSignature>,
    ) {
        let tag = if label.starts_with("serial") {
            TAG_SERIAL
        } else {
            TAG_PARALLEL
        };
        let (_, records) = bam::read_bam(bam_bytes).expect("diff input bam");
        for r in &records {
            if !r.flags.is_primary() {
                continue;
            }
            let key = format!(
                "{}/{}",
                r.name,
                if r.flags.is_second_in_pair() { 2 } else { 1 }
            );
            ctx.emit(key, TaggedSignature::of(tag, r));
        }
    }
}

/// Reduce side: per read end, compare the serial and parallel
/// signatures. Emits per-category counts plus milli-weighted discordance
/// (the logistic mapq weighting × 1000, kept integral for counters).
pub struct DiffReducer;

/// Output categories.
pub const CAT_CONCORDANT: &str = "concordant";
pub const CAT_DISCORDANT: &str = "discordant";
pub const CAT_MISSING: &str = "missing";
pub const CAT_WEIGHTED_MILLI: &str = "weighted_discordant_milli";

impl Reducer for DiffReducer {
    type InKey = String;
    type InValue = TaggedSignature;
    type OutKey = String;
    type OutValue = u64;

    fn reduce(
        &self,
        _key: String,
        values: Vec<TaggedSignature>,
        ctx: &mut ReduceContext<'_, String, u64>,
    ) {
        let serial = values.iter().find(|v| v.tag == TAG_SERIAL);
        let parallel = values.iter().find(|v| v.tag == TAG_PARALLEL);
        match (serial, parallel) {
            (Some(s), Some(p)) => {
                if s.same_alignment(p) {
                    ctx.emit(CAT_CONCORDANT.into(), 1);
                } else {
                    ctx.emit(CAT_DISCORDANT.into(), 1);
                    let w = LogisticWeight::mapq_default();
                    let weight = w.weight(s.mapq.max(p.mapq) as f64);
                    ctx.emit(CAT_WEIGHTED_MILLI.into(), (weight * 1000.0).round() as u64);
                }
            }
            _ => ctx.emit(CAT_MISSING.into(), 1),
        }
    }
}

/// The aggregated result of a parallel diff job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrDiffResult {
    pub concordant: u64,
    pub discordant: u64,
    pub missing: u64,
    /// Logistic-mapq-weighted D-count.
    pub weighted_discordant: f64,
}

/// Run the D-count diff as a MapReduce job over the two outputs,
/// partitioned for the engine.
pub fn mr_diff_alignments(
    engine: &MapReduceEngine,
    serial: &[SamRecord],
    parallel: &[SamRecord],
    n_partitions: usize,
    n_reducers: usize,
) -> MrDiffResult {
    let header = gesall_formats::sam::SamHeader::default();
    let mut splits = Vec::new();
    for (tag, records) in [("serial", serial), ("parallel", parallel)] {
        let per = records.len().div_ceil(n_partitions.max(1)).max(1);
        for (i, chunk) in records.chunks(per).enumerate() {
            let label = format!("{tag}/part-{i:05}");
            let bytes = SharedBytes::from_vec(bam::write_bam(&header, chunk));
            splits.push(InputSplit::new(label.clone(), vec![(label, bytes)]));
        }
    }
    let cfg = JobConfig {
        name: "d-count-diff".into(),
        n_reducers: n_reducers.max(1),
        ..JobConfig::default()
    };
    let res = engine
        .run_job(cfg, &DiffMapper, &DiffReducer, &HashPartitioner, splits)
        .expect("diff job runs without fault injection");
    let mut out = MrDiffResult {
        concordant: 0,
        discordant: 0,
        missing: 0,
        weighted_discordant: 0.0,
    };
    for (cat, n) in res.outputs.into_iter().flatten() {
        match cat.as_str() {
            CAT_CONCORDANT => out.concordant += n,
            CAT_DISCORDANT => out.discordant += n,
            CAT_MISSING => out.missing += n,
            CAT_WEIGHTED_MILLI => out.weighted_discordant += n as f64 / 1000.0,
            other => panic!("unknown diff category {other}"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnosis::diff_alignments;
    use gesall_formats::sam::{Cigar, Flags};
    use gesall_mapreduce::ClusterResources;

    fn rec(name: &str, first: bool, pos: i64, mapq: u8) -> SamRecord {
        let mut r = SamRecord::unmapped(name, vec![b'A'; 20], vec![30; 20]);
        let mut f = Flags(Flags::PAIRED);
        f.set(
            if first {
                Flags::FIRST_IN_PAIR
            } else {
                Flags::SECOND_IN_PAIR
            },
            true,
        );
        r.flags = f;
        r.ref_id = 0;
        r.pos = pos;
        r.mapq = mapq;
        r.cigar = Cigar::full_match(20);
        r
    }

    #[test]
    fn mr_diff_matches_in_memory_diff() {
        let serial: Vec<SamRecord> = (0..200)
            .flat_map(|i| {
                [
                    rec(&format!("r{i}"), true, 100 + i, 60),
                    rec(&format!("r{i}"), false, 400 + i, 60),
                ]
            })
            .collect();
        let mut parallel = serial.clone();
        // Perturb some: 10 confident flips, 10 low-quality flips, 3 missing.
        for k in 0..10 {
            parallel[k * 4].pos += 7;
        }
        for k in 0..10 {
            parallel[k * 4 + 1].pos += 3;
            parallel[k * 4 + 1].mapq = 5;
        }
        parallel.truncate(parallel.len() - 3);

        let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 8192));
        let mr = mr_diff_alignments(&engine, &serial, &parallel, 4, 3);
        let mem = diff_alignments(&serial, &parallel);
        assert_eq!(mr.discordant, mem.discordant.len() as u64);
        assert_eq!(mr.missing, mem.missing);
        assert_eq!(mr.concordant, mem.concordant);
        assert!(
            (mr.weighted_discordant - mem.weighted_d_count() + mem.missing as f64).abs() < 0.01,
            "mr {} vs mem {}",
            mr.weighted_discordant,
            mem.weighted_d_count() - mem.missing as f64
        );
    }

    #[test]
    fn tagged_signature_wire_roundtrip() {
        let r = rec("x", true, 123, 44);
        let s = TaggedSignature::of(TAG_PARALLEL, &r);
        let bytes = s.to_wire_bytes();
        assert_eq!(TaggedSignature::from_wire_bytes(&bytes).unwrap(), s);
    }

    #[test]
    fn identical_outputs_fully_concordant_via_mr() {
        let serial: Vec<SamRecord> =
            (0..50).map(|i| rec(&format!("a{i}"), true, i + 1, 60)).collect();
        let engine = MapReduceEngine::local(2);
        let mr = mr_diff_alignments(&engine, &serial, &serial.clone(), 2, 2);
        assert_eq!(mr.concordant, 50);
        assert_eq!(mr.discordant, 0);
        assert_eq!(mr.missing, 0);
    }
}
