//! Platform-level error type.

use std::fmt;

/// Errors surfaced by the platform layers.
#[derive(Debug)]
pub enum PlatformError {
    Dfs(gesall_dfs::DfsError),
    /// The MapReduce engine gave up on a job (task out of attempts, no
    /// healthy nodes left, or a wave worker died).
    Engine(gesall_mapreduce::GesallError),
    Format(gesall_formats::FormatError),
    Io(std::io::Error),
    /// A wrapped program or round violated a platform invariant.
    Invariant(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Dfs(e) => write!(f, "dfs: {e}"),
            PlatformError::Engine(e) => write!(f, "engine: {e}"),
            PlatformError::Format(e) => write!(f, "format: {e}"),
            PlatformError::Io(e) => write!(f, "io: {e}"),
            PlatformError::Invariant(m) => write!(f, "invariant violated: {m}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<gesall_dfs::DfsError> for PlatformError {
    fn from(e: gesall_dfs::DfsError) -> Self {
        PlatformError::Dfs(e)
    }
}

impl From<gesall_mapreduce::GesallError> for PlatformError {
    fn from(e: gesall_mapreduce::GesallError) -> Self {
        PlatformError::Engine(e)
    }
}

impl From<gesall_formats::FormatError> for PlatformError {
    fn from(e: gesall_formats::FormatError) -> Self {
        PlatformError::Format(e)
    }
}

impl From<std::io::Error> for PlatformError {
    fn from(e: std::io::Error) -> Self {
        PlatformError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PlatformError>;
