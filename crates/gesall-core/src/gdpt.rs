//! GDPT — the Genome Data Parallel Toolkit (paper §3.2).
//!
//! Encodes the logical partitioning schemes that let unmodified analysis
//! programs run correctly on subsets of a genomic dataset:
//!
//! * **Group partitioning** by read name (Bwa, FixMateInformation);
//! * **Compound group partitioning** for MarkDuplicates: the two
//!   partitioning functions over 5′-unclipped-end keys, the map-side
//!   filter, and the bloom-filter optimisation (`MarkDup_opt`);
//! * **Range partitioning** by chromosome (UnifiedGenotyper,
//!   HaplotypeCaller) and the **overlapping** fine-grained scheme.

use gesall_formats::error::{FormatError, Result as FmtResult};
use gesall_formats::sam::SamRecord;
use gesall_formats::wire::{Cursor, Wire};
use gesall_tools::mark_duplicates::{end_key, pair_key, EndKey};

// ---------------------------------------------------------------------
// Group partitioning (by read name)
// ---------------------------------------------------------------------

/// Stable hash of a read name → partition. Both reads of a pair share
/// the name, hence the partition — the §3.2 Group Partitioning contract.
pub fn name_partition(name: &str, n_partitions: usize) -> usize {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % n_partitions.max(1) as u64) as usize
}

// ---------------------------------------------------------------------
// Compound group partitioning (MarkDuplicates)
// ---------------------------------------------------------------------

/// Shuffle key of the MarkDuplicates round: either the compound key of a
/// complete matching pair, the single 5′-end key for partial-matching
/// detection, or a spread key for fully-unmapped pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum MarkDupKey {
    /// Criterion 1: canonicalized (5′ end, strand) keys of both reads.
    Pair(EndKey, EndKey),
    /// Criterion 2: one read's (5′ end, strand) key.
    Single(EndKey),
    /// Both reads unmapped: pass-through, spread by name hash.
    Unplaced(u64),
}

fn encode_end(buf: &mut Vec<u8>, k: &EndKey) {
    (k.0 as i64).encode(buf);
    k.1.encode(buf);
    (k.2 as u32).encode(buf);
}

fn decode_end(cur: &mut Cursor<'_>) -> FmtResult<EndKey> {
    Ok((
        i64::decode(cur)? as i32,
        i64::decode(cur)?,
        u32::decode(cur)? as u8,
    ))
}

impl Wire for MarkDupKey {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            MarkDupKey::Pair(a, b) => {
                buf.push(0);
                encode_end(buf, a);
                encode_end(buf, b);
            }
            MarkDupKey::Single(a) => {
                buf.push(1);
                encode_end(buf, a);
            }
            MarkDupKey::Unplaced(h) => {
                buf.push(2);
                h.encode(buf);
            }
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> FmtResult<Self> {
        let tag = u32::decode(cur)? as u8;
        Ok(match tag {
            0 => MarkDupKey::Pair(decode_end(cur)?, decode_end(cur)?),
            1 => MarkDupKey::Single(decode_end(cur)?),
            2 => MarkDupKey::Unplaced(u64::decode(cur)?),
            other => {
                return Err(FormatError::Bam(format!("bad MarkDupKey tag {other}")))
            }
        })
    }
}

/// The role a shuffled record plays at the reducer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkDupRole {
    /// A read of a complete matching pair, shuffled under the pair key.
    PairMember,
    /// The mapped read of a partial matching, shuffled under its single
    /// key.
    PartialMapped,
    /// The unmapped mate of a partial matching (travels with the mapped
    /// read so the duplicate flag can be applied to both).
    PartialMate,
    /// A complete-pair read shuffled under a single key purely as a
    /// witness for criterion 2; produces no output.
    Witness,
    /// A read of a fully-unmapped pair (pass-through).
    Unplaced,
}

/// Value envelope of the MarkDuplicates shuffle.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkDupValue {
    pub role: MarkDupRole,
    pub record: SamRecord,
}

impl Wire for MarkDupValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self.role {
            MarkDupRole::PairMember => 0,
            MarkDupRole::PartialMapped => 1,
            MarkDupRole::PartialMate => 2,
            MarkDupRole::Witness => 3,
            MarkDupRole::Unplaced => 4,
        });
        self.record.encode(buf);
    }

    fn decode(cur: &mut Cursor<'_>) -> FmtResult<Self> {
        let role = match u32::decode(cur)? as u8 {
            0 => MarkDupRole::PairMember,
            1 => MarkDupRole::PartialMapped,
            2 => MarkDupRole::PartialMate,
            3 => MarkDupRole::Witness,
            4 => MarkDupRole::Unplaced,
            other => {
                return Err(FormatError::Bam(format!("bad MarkDupRole {other}")))
            }
        };
        Ok(MarkDupValue {
            role,
            record: SamRecord::decode(cur)?,
        })
    }
}

/// Generate the shuffle records for one read pair (paper §3.2, "Parallel
/// Algorithms"). `witness_filter` is the **map-side filter**: a per-map-
/// task set ensuring only one complete-pair read is emitted per 5′
/// position. `bloom`, when present (`MarkDup_opt`), suppresses witnesses
/// for 5′ positions that no partial matching can touch.
///
/// Takes the pair **by value**: keys are computed up front and the
/// records then move into their shuffle values; the only payload copy
/// left on this path is the (filter-deduplicated) witness record.
pub fn markdup_map_pair(
    a: SamRecord,
    b: SamRecord,
    witness_filter: &mut std::collections::HashSet<EndKey>,
    bloom: Option<&BloomFilter>,
    out: &mut Vec<(MarkDupKey, MarkDupValue)>,
) {
    match (a.is_mapped(), b.is_mapped()) {
        (true, true) => {
            let pk = pair_key(&a, &b);
            // Criterion-2 witnesses, decided before the moves below.
            let mut witness_of = |read: &SamRecord, key: EndKey| {
                let needed = bloom.map(|bl| bl.maybe_contains(&key)).unwrap_or(true);
                (needed && witness_filter.insert(key)).then(|| {
                    (
                        MarkDupKey::Single(key),
                        MarkDupValue {
                            role: MarkDupRole::Witness,
                            record: read.clone(),
                        },
                    )
                })
            };
            let wa = witness_of(&a, end_key(&a));
            let wb = witness_of(&b, end_key(&b));
            out.push((
                MarkDupKey::Pair(pk.0, pk.1),
                MarkDupValue {
                    role: MarkDupRole::PairMember,
                    record: a,
                },
            ));
            out.push((
                MarkDupKey::Pair(pk.0, pk.1),
                MarkDupValue {
                    role: MarkDupRole::PairMember,
                    record: b,
                },
            ));
            out.extend(wa);
            out.extend(wb);
        }
        (true, false) | (false, true) => {
            let (mapped, mate) = if a.is_mapped() { (a, b) } else { (b, a) };
            let key = end_key(&mapped);
            out.push((
                MarkDupKey::Single(key),
                MarkDupValue {
                    role: MarkDupRole::PartialMapped,
                    record: mapped,
                },
            ));
            out.push((
                MarkDupKey::Single(key),
                MarkDupValue {
                    role: MarkDupRole::PartialMate,
                    record: mate,
                },
            ));
        }
        (false, false) => {
            let h = name_partition(&a.name, usize::MAX) as u64;
            for r in [a, b] {
                out.push((
                    MarkDupKey::Unplaced(h),
                    MarkDupValue {
                        role: MarkDupRole::Unplaced,
                        record: r,
                    },
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Bloom filter (MarkDup_opt)
// ---------------------------------------------------------------------

/// A plain bloom filter over [`EndKey`]s. Built in a preparatory MR round
/// from the 5′ positions of partial-matching reads; queried by the
/// `MarkDup_opt` mapper to skip unnecessary witness records (paper §3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_hashes: u32,
}

impl BloomFilter {
    /// Size for an expected number of items at ~1% false-positive rate.
    pub fn with_capacity(expected_items: usize) -> BloomFilter {
        // ~9.6 bits/item for 1% fpr.
        let n_bits = (expected_items.max(16) * 10).next_power_of_two();
        BloomFilter {
            bits: vec![0; n_bits / 64],
            n_hashes: 7,
        }
    }

    fn hashes(&self, key: &EndKey) -> impl Iterator<Item = usize> + '_ {
        let mut h1: u64 = 0x9E3779B97F4A7C15;
        let mut h2: u64 = 0xC2B2AE3D27D4EB4F;
        let mix = |h: &mut u64, v: u64| {
            *h ^= v;
            *h = h.wrapping_mul(0xFF51AFD7ED558CCD);
            *h ^= *h >> 33;
        };
        mix(&mut h1, key.0 as u64);
        mix(&mut h1, key.1 as u64);
        mix(&mut h1, key.2 as u64);
        mix(&mut h2, key.2 as u64);
        mix(&mut h2, key.1 as u64);
        mix(&mut h2, key.0 as u64);
        let n_bits = self.bits.len() * 64;
        (0..self.n_hashes as u64).map(move |i| {
            (h1.wrapping_add(i.wrapping_mul(h2)) % n_bits as u64) as usize
        })
    }

    pub fn insert(&mut self, key: &EndKey) {
        let idxs: Vec<usize> = self.hashes(key).collect();
        for i in idxs {
            self.bits[i / 64] |= 1 << (i % 64);
        }
    }

    pub fn maybe_contains(&self, key: &EndKey) -> bool {
        self.hashes(key).all(|i| self.bits[i / 64] & (1 << (i % 64)) != 0)
    }

    /// Union with another same-shaped filter (parallel build merge).
    pub fn union(&mut self, other: &BloomFilter) {
        assert_eq!(self.bits.len(), other.bits.len(), "shape mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Fraction of set bits (diagnostic).
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / (self.bits.len() * 64) as f64
    }
}

/// Stable byte codec so a built filter can live in the DAG stage cache
/// (`StageData::Bloom`) and be reused across pipeline runs.
impl Wire for BloomFilter {
    fn encode(&self, buf: &mut Vec<u8>) {
        gesall_formats::wire::put_u32(buf, self.n_hashes);
        gesall_formats::wire::put_varint(buf, self.bits.len() as u64);
        for w in &self.bits {
            gesall_formats::wire::put_u64(buf, *w);
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> FmtResult<Self> {
        let n_hashes = cur.get_u32()?;
        let n = cur.get_varint()? as usize;
        if n * 8 > cur.remaining() {
            return Err(FormatError::Bam(format!(
                "bloom filter claims {n} words but only {} bytes remain",
                cur.remaining()
            )));
        }
        let mut bits = Vec::with_capacity(n);
        for _ in 0..n {
            bits.push(cur.get_u64()?);
        }
        Ok(BloomFilter { bits, n_hashes })
    }

    fn encoded_len(&self) -> usize {
        4 + gesall_formats::wire::varint_len(self.bits.len() as u64) + 8 * self.bits.len()
    }
}

// ---------------------------------------------------------------------
// Range partitioning
// ---------------------------------------------------------------------

/// Shuffle key for coordinate-range rounds: orders by (chromosome,
/// position); unmapped reads sort last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RangeKey {
    pub chrom: i32,
    pub pos: i64,
}

impl RangeKey {
    pub fn of(rec: &SamRecord) -> RangeKey {
        if rec.is_mapped() {
            RangeKey {
                chrom: rec.ref_id,
                pos: rec.pos,
            }
        } else {
            RangeKey {
                chrom: i32::MAX,
                pos: i64::MAX,
            }
        }
    }
}

impl Wire for RangeKey {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.chrom as i64).encode(buf);
        self.pos.encode(buf);
    }

    fn decode(cur: &mut Cursor<'_>) -> FmtResult<Self> {
        Ok(RangeKey {
            chrom: i64::decode(cur)? as i32,
            pos: i64::decode(cur)?,
        })
    }
}

/// Non-overlapping chromosome partitioning (UnifiedGenotyper /
/// HaplotypeCaller coarse scheme): chromosome `c` → partition `c`;
/// unmapped reads ride in the last partition.
pub fn chromosome_partition(key: &RangeKey, n_partitions: usize) -> usize {
    if key.chrom == i32::MAX {
        n_partitions - 1
    } else {
        (key.chrom as usize).min(n_partitions - 1)
    }
}

/// The fine-grained **overlapping** range scheme for HaplotypeCaller
/// (paper §3.2): the chromosome is cut into segments of `segment_len`
/// with `overlap` bases shared between neighbours; a read goes to every
/// segment it overlaps (replication).
#[derive(Debug, Clone, Copy)]
pub struct OverlappingRanges {
    pub segment_len: i64,
    pub overlap: i64,
}

impl OverlappingRanges {
    pub fn new(segment_len: i64, overlap: i64) -> OverlappingRanges {
        assert!(segment_len > 0 && overlap >= 0 && overlap < segment_len);
        OverlappingRanges {
            segment_len,
            overlap,
        }
    }

    /// Number of segments covering a chromosome of `chrom_len` bases.
    pub fn n_segments(&self, chrom_len: i64) -> usize {
        ((chrom_len + self.segment_len - 1) / self.segment_len).max(1) as usize
    }

    /// The (1-based, inclusive) span of segment `i`, overlap included.
    pub fn segment_span(&self, i: usize, chrom_len: i64) -> (i64, i64) {
        let core_start = i as i64 * self.segment_len + 1;
        let core_end = ((i as i64 + 1) * self.segment_len).min(chrom_len);
        ((core_start - self.overlap).max(1), (core_end + self.overlap).min(chrom_len))
    }

    /// Segment ids a read spanning `[start, end]` must be replicated to.
    pub fn segments_for(&self, start: i64, end: i64, chrom_len: i64) -> Vec<usize> {
        let n = self.n_segments(chrom_len);
        let mut out = Vec::new();
        for i in 0..n {
            let (s, e) = self.segment_span(i, chrom_len);
            if start <= e && end >= s {
                out.push(i);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_formats::sam::{Cigar, Flags};

    fn mapped(name: &str, pos: i64, reverse: bool) -> SamRecord {
        let mut r = SamRecord::unmapped(name, vec![b'A'; 100], vec![30; 100]);
        let mut f = Flags(Flags::PAIRED);
        f.set(Flags::REVERSE, reverse);
        r.flags = f;
        r.ref_id = 0;
        r.pos = pos;
        r.mapq = 60;
        r.cigar = Cigar::full_match(100);
        r
    }

    #[test]
    fn name_partition_pairs_together() {
        for n in [1usize, 2, 7, 90] {
            for i in 0..50 {
                let name = format!("read{i}");
                assert_eq!(name_partition(&name, n), name_partition(&name, n));
                assert!(name_partition(&name, n) < n);
            }
        }
    }

    #[test]
    fn markdup_key_wire_roundtrip() {
        for key in [
            MarkDupKey::Pair((0, 1000, b'F'), (0, 1399, b'R')),
            MarkDupKey::Single((2, -5, b'R')),
            MarkDupKey::Unplaced(0xDEADBEEF),
        ] {
            let bytes = key.to_wire_bytes();
            assert_eq!(MarkDupKey::from_wire_bytes(&bytes).unwrap(), key);
        }
    }

    #[test]
    fn markdup_value_wire_roundtrip() {
        let v = MarkDupValue {
            role: MarkDupRole::PartialMate,
            record: mapped("x", 5, true),
        };
        let bytes = v.to_wire_bytes();
        assert_eq!(MarkDupValue::from_wire_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn map_pair_complete_emits_two_members_plus_witnesses() {
        let a = mapped("p", 1000, false);
        let b = mapped("p", 1300, true);
        let mut filter = std::collections::HashSet::new();
        let mut out = Vec::new();
        markdup_map_pair(a, b, &mut filter, None, &mut out);
        let members = out
            .iter()
            .filter(|(_, v)| v.role == MarkDupRole::PairMember)
            .count();
        let witnesses = out
            .iter()
            .filter(|(_, v)| v.role == MarkDupRole::Witness)
            .count();
        assert_eq!(members, 2);
        assert_eq!(witnesses, 2);
        // A second identical pair in the same map task emits NO new
        // witnesses (map-side filter).
        let a2 = mapped("q", 1000, false);
        let b2 = mapped("q", 1300, true);
        let before = out.len();
        markdup_map_pair(a2, b2, &mut filter, None, &mut out);
        let new_witnesses = out[before..]
            .iter()
            .filter(|(_, v)| v.role == MarkDupRole::Witness)
            .count();
        assert_eq!(new_witnesses, 0, "map-side filter must dedup witnesses");
    }

    #[test]
    fn map_pair_bloom_suppresses_witnesses() {
        let a = mapped("p", 1000, false);
        let b = mapped("p", 1300, true);
        // Empty bloom: no partial matchings anywhere ⇒ no witnesses.
        let bloom = BloomFilter::with_capacity(100);
        let mut filter = std::collections::HashSet::new();
        let mut out = Vec::new();
        markdup_map_pair(a.clone(), b.clone(), &mut filter, Some(&bloom), &mut out);
        assert_eq!(out.len(), 2, "only the two pair members: {out:?}");
        // Bloom containing a's end: one witness comes back.
        let mut bloom = BloomFilter::with_capacity(100);
        bloom.insert(&end_key(&a));
        let mut filter = std::collections::HashSet::new();
        let mut out = Vec::new();
        markdup_map_pair(a, b, &mut filter, Some(&bloom), &mut out);
        let witnesses = out
            .iter()
            .filter(|(_, v)| v.role == MarkDupRole::Witness)
            .count();
        assert_eq!(witnesses, 1);
    }

    #[test]
    fn map_pair_partial_and_unplaced() {
        let a = mapped("p", 1000, false);
        let mut u = SamRecord::unmapped("p", vec![b'C'; 100], vec![20; 100]);
        u.flags.set(Flags::PAIRED, true);
        let mut out = Vec::new();
        markdup_map_pair(a, u.clone(), &mut std::collections::HashSet::new(), None, &mut out);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].0, MarkDupKey::Single(_)));
        assert_eq!(out[0].1.role, MarkDupRole::PartialMapped);
        assert_eq!(out[1].1.role, MarkDupRole::PartialMate);

        let u2 = u.clone();
        let mut out2 = Vec::new();
        markdup_map_pair(u, u2, &mut std::collections::HashSet::new(), None, &mut out2);
        assert_eq!(out2.len(), 2);
        assert!(matches!(out2[0].0, MarkDupKey::Unplaced(_)));
    }

    #[test]
    fn bloom_filter_behaviour() {
        let mut bloom = BloomFilter::with_capacity(1000);
        let keys: Vec<EndKey> = (0..500).map(|i| (0, i * 7, b'F')).collect();
        for k in &keys {
            bloom.insert(k);
        }
        for k in &keys {
            assert!(bloom.maybe_contains(k), "false negative at {k:?}");
        }
        // False positives rare.
        let fps = (0..2000)
            .filter(|i| bloom.maybe_contains(&(1, *i as i64, b'R')))
            .count();
        assert!(fps < 60, "too many false positives: {fps}");
        assert!(bloom.fill_ratio() < 0.6);
    }

    #[test]
    fn bloom_union() {
        let mut a = BloomFilter::with_capacity(100);
        let mut b = BloomFilter::with_capacity(100);
        a.insert(&(0, 1, b'F'));
        b.insert(&(0, 2, b'R'));
        a.union(&b);
        assert!(a.maybe_contains(&(0, 1, b'F')));
        assert!(a.maybe_contains(&(0, 2, b'R')));
    }

    #[test]
    fn range_key_ordering_and_wire() {
        let a = RangeKey { chrom: 0, pos: 50 };
        let b = RangeKey { chrom: 0, pos: 51 };
        let c = RangeKey { chrom: 1, pos: 1 };
        assert!(a < b && b < c);
        let u = RangeKey::of(&SamRecord::unmapped("u", vec![], vec![]));
        assert!(c < u);
        let bytes = a.to_wire_bytes();
        assert_eq!(RangeKey::from_wire_bytes(&bytes).unwrap(), a);
    }

    #[test]
    fn chromosome_partitioning() {
        let k0 = RangeKey { chrom: 0, pos: 1 };
        let k1 = RangeKey { chrom: 1, pos: 1 };
        assert_eq!(chromosome_partition(&k0, 3), 0);
        assert_eq!(chromosome_partition(&k1, 3), 1);
        let u = RangeKey {
            chrom: i32::MAX,
            pos: i64::MAX,
        };
        assert_eq!(chromosome_partition(&u, 3), 2);
    }

    #[test]
    fn overlapping_ranges() {
        let r = OverlappingRanges::new(1000, 100);
        assert_eq!(r.n_segments(3500), 4);
        assert_eq!(r.segment_span(0, 3500), (1, 1100));
        assert_eq!(r.segment_span(1, 3500), (901, 2100));
        assert_eq!(r.segment_span(3, 3500), (2901, 3500));
        // A read inside one core: one segment.
        assert_eq!(r.segments_for(500, 600, 3500), vec![0]);
        // A read in the overlap zone: two segments.
        assert_eq!(r.segments_for(950, 1050, 3500), vec![0, 1]);
        // A long feature spanning three.
        assert_eq!(r.segments_for(900, 2200, 3500), vec![0, 1, 2]);
    }
}
