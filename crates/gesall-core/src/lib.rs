//! # gesall-core
//!
//! The Gesall platform (the paper's primary contribution, §3): a big-data
//! layer that runs *unmodified* genomic analysis programs over a
//! DFS + MapReduce substrate via **wrapper technology**.
//!
//! * [`storage`] — the distributed storage substrate for BAM (§3.1):
//!   chunk-aware record reading over DFS blocks (chunks may straddle
//!   block boundaries) and logical-partition upload with the custom
//!   block-placement policy.
//! * [`gdpt`] — the Genome Data Parallel Toolkit (§3.2): group
//!   partitioning (by read name), compound group partitioning (the
//!   MarkDuplicates 5′-end keys, with the map-side filter and the
//!   bloom-filter `MarkDup_opt` variant), and (overlapping) range
//!   partitioning for the variant callers.
//! * [`programs`] — external-program wrappers: the aligner posing as
//!   `bwa mem` and a `SamToBam` converter, both speaking bytes over
//!   Hadoop-Streaming-style pipes (Fig. 8).
//! * [`rounds`] — the five MapReduce rounds of the paper's pipeline
//!   (Appendix A.2), as `Mapper`/`Reducer` implementations.
//! * [`pipeline`] — the round planner (a new MR round starts whenever the
//!   next program's partitioning requirement is incompatible) and the
//!   end-to-end parallel/serial/hybrid pipeline drivers.
//! * [`diagnosis`] — the error-diagnosis toolkit (§3.4/§4.5.2):
//!   concordant/discordant sets, D-count, D-impact, logistic quality
//!   weighting.

pub mod dag;
pub mod diagnosis;
pub mod diagnosis_mr;
pub mod error;
pub mod gdpt;
pub mod pipeline;
pub mod programs;
pub mod rounds;
pub mod storage;

pub use dag::{DagError, DagSpec, StageSpec};
pub use error::PlatformError;
pub use pipeline::{
    DagRunOptions, GesallPlatform, PipelineOutput, PlatformConfig, RunOptions, StageReport,
};
