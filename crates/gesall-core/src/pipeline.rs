//! Pipeline planning and end-to-end drivers.
//!
//! * [`plan_rounds`] — the paper's round-construction rule (Appendix
//!   A.2): walk the program list; start a new MapReduce round whenever
//!   the next program's partitioning requirement is incompatible with
//!   the current data arrangement.
//! * [`GesallPlatform`] — the parallel driver running the five wrapped
//!   rounds over DFS + MapReduce.
//! * [`serial_pipeline`] — the GATK-best-practices single-node baseline
//!   (the gold standard of §4).
//! * [`serial_tail_from_aligned`] / [`serial_tail_from_markdup`] — the
//!   hybrid pipelines P̄ᵢ ∘ serial used to measure D-impact (§4.5.2).

use crate::dag;
use crate::error::{PlatformError, Result};
use crate::gdpt::{chromosome_partition, BloomFilter, RangeKey};
use crate::rounds::{
    build_bloom_from_outputs, BloomBuildMapper, Round1Align, Round2CleanMapper,
    Round2FixMateReducer, Round3MarkDupMapper, Round3MarkDupReducer, Round4SortMapper,
    Round4SortReducer, Round5HaplotypeCaller,
};
use crate::storage;
use gesall_aligner::Aligner;
use gesall_dfs::{checksum, Dfs, LogicalPartitionPlacement};
use gesall_formats::fastq::{pairs_to_interleaved_bytes, split_pairs_into_partitions, ReadPair};
use gesall_formats::sam::header::ReadGroup;
use gesall_formats::sam::{SamHeader, SamRecord, SortOrder};
use gesall_formats::vcf::VariantRecord;
use gesall_formats::wire::{self, Wire};
use gesall_formats::SharedBytes;
use gesall_mapreduce::counters::Counters;
use gesall_mapreduce::lease::SlotLease;
use gesall_mapreduce::runtime::{InputSplit, JobConfig, MapReduceEngine};
use gesall_mapreduce::task::{FnPartitioner, HashPartitioner};
use gesall_telemetry::{kernel_keys, report, OpenSpan, PhaseRow, Recorder, SpanId, SpanKind};
use gesall_tools::haplotype_caller::{call_chromosome, HaplotypeCallerConfig};
use gesall_tools::recalibration::RecalTable;
use gesall_tools::refview::RefView;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------
// Round planner
// ---------------------------------------------------------------------

/// A program's logical partitioning requirement (paper §3.2 categories).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partitioning {
    /// Grouped by read name.
    ByReadName,
    /// The MarkDuplicates compound 5′-end keys.
    ByDuplicateKeys,
    /// Coordinate ranges (per chromosome).
    ByRange,
    /// Distributive aggregation by covariate (recalibration tables).
    ByCovariate,
    /// No requirement (works on any subset).
    Any,
}

impl Partitioning {
    /// Can a program with requirement `self` run directly on data
    /// arranged as `arrangement`, without a shuffle?
    pub fn satisfied_by(&self, arrangement: &Partitioning) -> bool {
        matches!(self, Partitioning::Any) || self == arrangement
    }
}

/// One pipeline step, as declared to the planner.
#[derive(Debug, Clone)]
pub struct ProgramSpec {
    pub name: String,
    pub requires: Partitioning,
    /// Arrangement of this program's *output* (None = unchanged).
    pub produces: Option<Partitioning>,
}

impl ProgramSpec {
    pub fn new(name: &str, requires: Partitioning) -> ProgramSpec {
        ProgramSpec {
            name: name.into(),
            requires,
            produces: None,
        }
    }

    pub fn producing(mut self, p: Partitioning) -> ProgramSpec {
        self.produces = Some(p);
        self
    }
}

/// A planned MapReduce round: the programs fused into it and whether it
/// needs a shuffle to rearrange its input first.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundPlan {
    pub programs: Vec<String>,
    pub input_arrangement: Partitioning,
    pub needs_shuffle: bool,
}

/// The paper's rule: fuse consecutive programs while their partitioning
/// requirements are compatible with the current arrangement; start a new
/// round (with a shuffle) when they are not.
pub fn plan_rounds(initial: Partitioning, programs: &[ProgramSpec]) -> Vec<RoundPlan> {
    let mut rounds: Vec<RoundPlan> = Vec::new();
    let mut arrangement = initial;
    for p in programs {
        let compatible = p.requires.satisfied_by(&arrangement);
        let start_new = rounds.is_empty() || !compatible;
        if start_new {
            let needs_shuffle = !compatible;
            if needs_shuffle {
                arrangement = p.requires.clone();
            }
            rounds.push(RoundPlan {
                programs: vec![p.name.clone()],
                input_arrangement: arrangement.clone(),
                needs_shuffle,
            });
        } else {
            rounds.last_mut().expect("non-empty").programs.push(p.name.clone());
        }
        if let Some(out) = &p.produces {
            arrangement = out.clone();
        }
    }
    rounds
}

/// The paper's secondary-analysis pipeline as ProgramSpecs (Table 2).
pub fn gatk_best_practices_specs() -> Vec<ProgramSpec> {
    vec![
        ProgramSpec::new("Bwa", Partitioning::ByReadName),
        ProgramSpec::new("SamToBam", Partitioning::Any),
        ProgramSpec::new("AddReplaceReadGroups", Partitioning::Any),
        ProgramSpec::new("CleanSam", Partitioning::Any),
        ProgramSpec::new("FixMateInformation", Partitioning::ByReadName),
        ProgramSpec::new("MarkDuplicates", Partitioning::ByDuplicateKeys)
            .producing(Partitioning::ByDuplicateKeys),
        ProgramSpec::new("SortSam", Partitioning::ByRange).producing(Partitioning::ByRange),
        ProgramSpec::new("HaplotypeCaller", Partitioning::ByRange),
    ]
}

// ---------------------------------------------------------------------
// Parallel platform driver
// ---------------------------------------------------------------------

/// Which small-variant caller round 5 wraps (paper Table 2 v1/v2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallerChoice {
    /// v2: HaplotypeCaller (greedy active-window segmentation).
    HaplotypeCaller,
    /// v1: UnifiedGenotyper (position-independent pileup calling).
    UnifiedGenotyper,
}

/// How round 5 partitions the genome for the HaplotypeCaller (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HcPartitioning {
    /// The production-accepted coarse scheme: one task per chromosome
    /// (23 tasks for a human genome — the §4.4 underutilization).
    Chromosome,
    /// The paper's proposed fine-grained overlapping scheme: segments of
    /// `segment_len` padded by `overlap` on both sides; reads in overlap
    /// zones are replicated; calls are emitted only from segment cores.
    FineGrained { segment_len: i64, overlap: i64 },
}

/// Platform-wide configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Logical partitions fed to the alignment round.
    pub n_round1_partitions: usize,
    /// Reducers for the shuffling rounds (2 and 3).
    pub n_reducers: usize,
    /// Threads each alignment mapper gives its wrapped Bwa.
    pub bwa_threads_per_mapper: usize,
    /// Use the bloom-filter MarkDup_opt variant.
    pub markdup_opt: bool,
    /// Run the base-recalibration rounds (Table 2 steps 11–12) between
    /// sort and variant calling.
    pub recalibrate: bool,
    /// Known variant sites excluded from the recalibration error tally
    /// (the dbSNP role).
    pub known_sites: std::sync::Arc<std::collections::HashSet<(i32, i64)>>,
    /// Which variant caller round 5 wraps.
    pub caller: CallerChoice,
    /// Round-5 partitioning scheme for the HaplotypeCaller.
    pub hc_partitioning: HcPartitioning,
    /// Sort buffer / merge factor / compression for the MR jobs.
    pub io_sort_bytes: usize,
    pub merge_factor: usize,
    pub compress_map_output: bool,
    /// Smallest raw partition payload worth compressing.
    pub compress_min_bytes: usize,
    /// Overlap spill sorting with the map loop via the engine's
    /// background encoder pool (byte-identical output either way).
    pub async_spill: bool,
    /// Enable the bit-parallel map-phase kernels (DESIGN.md §5) in the
    /// MR jobs this platform launches — today that is the radix spill
    /// sort. Off is the scalar-twin benchmark configuration; results
    /// are byte-identical either way. The aligner-side kernels (packed
    /// rank, banded SW) live on the `Aligner` the caller passes in —
    /// flip them with [`gesall_aligner::Aligner::set_kernels`].
    pub kernels: bool,
    /// Ship map outputs through the DFS (one indexed file per map task,
    /// pinned to the mapper's node) and let reducers range-read their
    /// partitions, instead of handing in-memory segment references.
    /// With replication > 1 this also turns node-loss map re-runs into
    /// replica re-fetches.
    pub shuffle_via_dfs: bool,
    /// Force every MR job's compressed map-output partitions onto one
    /// codec. `None` (the default) lets each job pick per key-type via
    /// [`Wire::codec_hint`](gesall_formats::wire::Wire::codec_hint) —
    /// alignment-record rounds get the genomic `Seq` codec, everything
    /// else LZ. Benchmarks pin it for twin runs.
    pub shuffle_codec: Option<gesall_formats::Codec>,
    /// Hand reducers their exec node as a DFS replica-selection
    /// affinity, so shuffle fetches prefer the co-located replica of a
    /// pinned map output. Off is the locality twin's baseline.
    pub shuffle_locality: bool,
    pub seed: u64,
    pub read_group: ReadGroup,
    pub hc: HaplotypeCallerConfig,
    pub ug: gesall_tools::unified_genotyper::GenotyperConfig,
    pub recal: gesall_tools::recalibration::RecalConfig,
}

impl Default for PlatformConfig {
    fn default() -> PlatformConfig {
        PlatformConfig {
            n_round1_partitions: 4,
            n_reducers: 4,
            bwa_threads_per_mapper: 1,
            markdup_opt: true,
            recalibrate: false,
            known_sites: std::sync::Arc::new(std::collections::HashSet::new()),
            caller: CallerChoice::HaplotypeCaller,
            hc_partitioning: HcPartitioning::Chromosome,
            io_sort_bytes: 8 * 1024 * 1024,
            merge_factor: 10,
            compress_map_output: true,
            compress_min_bytes: gesall_mapreduce::shuffle::COMPRESS_MIN_BYTES,
            async_spill: true,
            kernels: true,
            shuffle_via_dfs: true,
            shuffle_codec: None,
            shuffle_locality: true,
            seed: 0x6765_7361_6c6c_0001,
            read_group: ReadGroup::new("rg1", "sample1"),
            hc: HaplotypeCallerConfig::default(),
            ug: gesall_tools::unified_genotyper::GenotyperConfig::default(),
            recal: gesall_tools::recalibration::RecalConfig::default(),
        }
    }
}

/// Summary of one executed round.
#[derive(Debug, Clone)]
pub struct RoundSummary {
    pub name: String,
    pub wall_ms: f64,
    pub n_map_tasks: usize,
    pub n_reduce_tasks: usize,
    pub counters: Vec<(String, u64)>,
}

/// End-to-end output of the parallel pipeline.
#[derive(Debug)]
pub struct PipelineOutput {
    /// Final coordinate-sorted, duplicate-marked records.
    pub records: Vec<SamRecord>,
    /// Variant calls from round 5.
    pub variants: Vec<VariantRecord>,
    pub rounds: Vec<RoundSummary>,
    /// Per-stage DAG execution report, in topological order. Empty for
    /// the sequential oracle driver.
    pub stages: Vec<StageReport>,
}

impl PipelineOutput {
    /// Per-round phase-breakdown rows (the paper's Tables 4–7 shape),
    /// built from each round's `phase.*.nanos` counters.
    pub fn phase_rows(&self) -> Vec<PhaseRow> {
        self.rounds
            .iter()
            .map(|r| PhaseRow::from_snapshot(&r.name, r.wall_ms, &r.counters))
            .collect()
    }

    /// The rendered rounds × phases breakdown table.
    pub fn phase_table(&self) -> String {
        report::phase_table(&self.phase_rows())
    }

    /// Stages whose bodies executed this run.
    pub fn stages_run(&self) -> usize {
        self.stages.iter().filter(|s| !s.cache_hit).count()
    }

    /// Stages served from the content-addressed intermediate store.
    pub fn cache_hits(&self) -> usize {
        self.stages.iter().filter(|s| s.cache_hit).count()
    }

    /// Rows for the telemetry DAG / critical-path report.
    pub fn dag_rows(&self) -> Vec<report::DagStageRow> {
        self.stages
            .iter()
            .map(|s| report::DagStageRow {
                name: s.name.clone(),
                parents: s.parents.clone(),
                duration_ms: s.wall_ms,
                cached: s.cache_hit,
            })
            .collect()
    }

    /// The rendered stage table with critical-path attribution.
    pub fn dag_report(&self) -> String {
        report::dag_report(&self.dag_rows())
    }
}

/// External controls for one pipeline run, handed in by a multi-job
/// driver (gesall-jobsvc). The default runs unconstrained under the
/// classic `/pipeline` namespace — exactly the old single-caller
/// behaviour.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Container-slot lease capping the run's concurrently executing
    /// tasks (see `gesall_mapreduce::lease`). `None` = unthrottled.
    pub slot_lease: Option<SlotLease>,
    /// DFS prefix the run stages and shuffles under (e.g.
    /// `/{tenant}/{job}`); all transit and staging files land below it,
    /// so one `Dfs::sweep_prefix` call retires the whole run.
    pub namespace: Option<String>,
    /// DFS prefix for the content-addressed intermediate store
    /// (`{cas_root}/cas/{key}`). Defaults to the run namespace; a
    /// multi-job driver should point it at a prefix shared across the
    /// tenant's jobs (e.g. `/{tenant}`) so successive jobs hit each
    /// other's cache instead of each getting a private one.
    pub cas_root: Option<String>,
}

/// Controls for the DAG executor beyond [`RunOptions`].
#[derive(Debug, Clone)]
pub struct DagRunOptions {
    /// Read/write the content-addressed intermediate store. Off, the
    /// executor still walks the graph but every stage executes.
    pub cache: bool,
    /// Per-stage invalidation salts: the named stage's content key is
    /// perturbed, forcing it — and, through key chaining, exactly its
    /// descendants — to re-execute.
    pub invalidate: Vec<(String, u64)>,
}

impl Default for DagRunOptions {
    fn default() -> DagRunOptions {
        DagRunOptions {
            cache: true,
            invalidate: Vec::new(),
        }
    }
}

/// How one DAG stage resolved.
#[derive(Debug, Clone)]
pub struct StageReport {
    pub name: String,
    /// Content key of the stage's committed output.
    pub key: u64,
    pub parents: Vec<String>,
    /// Served from the content-addressed store (the body never ran).
    pub cache_hit: bool,
    /// Resolution wall time: decode-and-pin for a hit, full execution
    /// for a miss.
    pub wall_ms: f64,
}

/// The Gesall platform: DFS + MapReduce engine + configuration.
pub struct GesallPlatform {
    pub dfs: Dfs,
    pub engine: MapReduceEngine,
    pub config: PlatformConfig,
    run_seq: std::sync::atomic::AtomicU64,
}

impl GesallPlatform {
    pub fn new(dfs: Dfs, engine: MapReduceEngine, config: PlatformConfig) -> GesallPlatform {
        // The platform's DFS doubles as the shuffle transit store for
        // jobs with `shuffle_via_dfs` on (the per-job flag comes from
        // `PlatformConfig` in `job_config`).
        engine.set_shuffle_dfs(dfs.clone());
        // Crash sweep: shuffle-transit files are deleted by the engine
        // when a job finishes, so any still present at platform startup
        // were orphaned by a crashed prior process. Reclaim them before
        // new jobs write next to them.
        dfs.sweep_orphans();
        GesallPlatform {
            dfs,
            engine,
            config,
            run_seq: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Like [`GesallPlatform::new`], but wires the engine's node-death
    /// hook to the DFS: when the engine declares a node dead mid-wave,
    /// the DFS fails the same node (scrubbing its replicas from file
    /// metadata) and immediately re-replicates exactly the blocks the
    /// failure under-replicated — the YARN-NodeManager-death → HDFS-
    /// re-replication coupling of a real cluster, using the incremental
    /// per-node index rather than a namespace sweep.
    pub fn with_fault_tolerance(
        dfs: Dfs,
        engine: MapReduceEngine,
        config: PlatformConfig,
    ) -> GesallPlatform {
        let hook_dfs = dfs.clone();
        let n_dfs_nodes = dfs.config().n_nodes;
        let engine = engine.on_node_death(move |node| {
            if node < n_dfs_nodes {
                let report = hook_dfs.fail_node(node);
                hook_dfs.re_replicate_blocks(&report.under_replicated);
            }
        });
        GesallPlatform::new(dfs, engine, config)
    }

    fn job_config(&self, opts: &RunOptions, name: &str, n_reducers: usize, parent: SpanId) -> JobConfig {
        JobConfig {
            name: name.into(),
            n_reducers,
            io_sort_bytes: self.config.io_sort_bytes,
            merge_factor: self.config.merge_factor,
            compress_map_output: self.config.compress_map_output,
            compress_min_bytes: self.config.compress_min_bytes,
            async_spill: self.config.async_spill,
            radix_sort: self.config.kernels,
            shuffle_via_dfs: self.config.shuffle_via_dfs,
            shuffle_codec: self.config.shuffle_codec,
            shuffle_locality: self.config.shuffle_locality,
            parent_span: parent,
            slot_lease: opts.slot_lease.clone(),
            shuffle_namespace: opts.namespace.clone(),
            ..JobConfig::default()
        }
    }

    /// Stage a set of BAM logical partitions on the DFS and return the
    /// input splits (one per partition, data-local).
    fn stage_bam_partitions(
        &self,
        base: &str,
        header: &SamHeader,
        partitions: &[Vec<SamRecord>],
    ) -> Result<Vec<InputSplit<String, SharedBytes>>> {
        let placed = storage::upload_partitions(&self.dfs, base, header, partitions)?;
        let mut splits = Vec::with_capacity(placed.len());
        for (path, home) in placed {
            let bytes = self.read_partition_bytes(&path)?;
            let mut split = InputSplit::new(path.clone(), vec![(path, bytes)]);
            if let Some(node) = home {
                split = split.at_node(node % self.engine.cluster().n_nodes());
            }
            splits.push(split);
        }
        Ok(splits)
    }

    fn read_partition_bytes(&self, path: &str) -> Result<SharedBytes> {
        // Reassemble through the block-aware frame reader (the §3.1
        // path). The frames are zero-copy block slices; the one copy
        // left on this path is gluing them into the mapper's contiguous
        // input buffer (skipped when the file is a single frame).
        let mut frames = storage::read_frames_from_dfs(&self.dfs, path)?;
        if frames.len() == 1 {
            return Ok(frames.pop().unwrap());
        }
        let bytes = frames.concat();
        self.dfs
            .metrics()
            .counter(gesall_dfs::metrics_keys::BYTES_COPIED)
            .add(bytes.len() as u64);
        Ok(SharedBytes::from_vec(bytes))
    }

    /// Run the full pipeline on interleaved read pairs, through the
    /// stage-DAG executor with content-addressed caching.
    pub fn run_pipeline(&self, aligner: &Aligner, pairs: Vec<ReadPair>) -> Result<PipelineOutput> {
        self.run_pipeline_with(aligner, pairs, &RunOptions::default())
    }

    /// Like [`GesallPlatform::run_pipeline`], but under external
    /// control: a capacity scheduler's slot lease caps the run's
    /// concurrent container slots, and a namespace confines every
    /// staged and shuffled byte to one sweepable DFS prefix. This is
    /// the hook gesall-jobsvc drives; `run_pipeline` is the
    /// unconstrained single-caller form. Both route through the DAG
    /// executor ([`GesallPlatform::run_pipeline_dag`]) with default
    /// cache behaviour.
    pub fn run_pipeline_with(
        &self,
        aligner: &Aligner,
        pairs: Vec<ReadPair>,
        opts: &RunOptions,
    ) -> Result<PipelineOutput> {
        self.run_pipeline_dag(aligner, pairs, opts, &DagRunOptions::default())
    }

    /// The DAG executor. Walks [`dag::pipeline_dag`] in topological
    /// order; each stage's output is keyed by its content hash (code
    /// version + config slice + parent keys, rooted at a hash of the
    /// read pairs and reference) and committed to the content-addressed
    /// store under `{cas_root}/cas/{key}`. A key that hits is decoded
    /// instead of executed (`dag.stages.cache_hit` vs `dag.stages.run`),
    /// so re-running with one changed stage re-executes exactly that
    /// stage and its descendants. Every entry touched is pinned until
    /// the run finishes, so retention sweeps and TTL can never delete a
    /// live intermediate out from under a dependent stage.
    pub fn run_pipeline_dag(
        &self,
        aligner: &Aligner,
        pairs: Vec<ReadPair>,
        opts: &RunOptions,
        dag_opts: &DagRunOptions,
    ) -> Result<PipelineOutput> {
        let spec = dag::pipeline_dag(&self.config);
        let order = spec
            .topo_order()
            .map_err(|e| PlatformError::Invariant(e.to_string()))?;
        let (mut cx, pipeline_span, pipeline_name, ns) = self.begin_run(aligner, opts);
        let cas_root = opts
            .cas_root
            .as_deref()
            .map(|c| c.trim_end_matches('/').to_string())
            .unwrap_or(ns);

        // Root content key: the external inputs every stage chain hangs
        // off — the read pairs, the reference sequences, their names.
        let root_key = {
            let mut buf = Vec::new();
            wire::put_u64(&mut buf, checksum::xxh64(&pairs_to_interleaved_bytes(&pairs)));
            for r in cx.references.iter() {
                wire::put_u64(&mut buf, checksum::xxh64(r));
            }
            for n in cx.chrom_names.iter() {
                wire::put_str(&mut buf, n);
            }
            checksum::xxh64(&buf)
        };
        let keys = spec
            .stage_keys(root_key, &dag_opts.invalidate)
            .map_err(|e| PlatformError::Invariant(e.to_string()))?;

        let mut data: HashMap<String, StageData> = HashMap::new();
        let mut pinned: Vec<String> = Vec::new();
        let mut stage_reports: Vec<StageReport> = Vec::new();
        let mut pairs = Some(pairs);
        let outcome = {
            let mut walk = || -> Result<()> {
                for name in &order {
                    let stage = spec.stage(name).expect("topo names come from the spec");
                    let key = keys[name.as_str()];
                    let cas_path = Dfs::cas_path(&cas_root, key);
                    let t0 = Instant::now();
                    let sspan = cx.recorder.start(SpanKind::Stage, name, cx.pipeline_span);
                    let mut cached = None;
                    if dag_opts.cache {
                        if let Some(bytes) = self.dfs.cas_get(&cas_root, key)? {
                            // A corrupt entry decodes to a miss: the
                            // stage re-runs, and `cas_put` on the same
                            // key is a no-op hit, so nothing is torn.
                            cached = StageData::from_wire_bytes(&bytes).ok();
                        }
                    }
                    let cache_hit = cached.is_some();
                    let out = match cached {
                        Some(d) => d,
                        None => {
                            let d = self.execute_stage(&mut cx, name, &data, &mut pairs)?;
                            if dag_opts.cache {
                                self.dfs.cas_put(
                                    &cas_root,
                                    key,
                                    SharedBytes::from_vec(d.to_wire_bytes()),
                                )?;
                            }
                            d
                        }
                    };
                    if dag_opts.cache {
                        // Pinned for the rest of the run: a dependent
                        // stage may range-read this entry long after a
                        // retention sweep of the namespace would
                        // otherwise have deleted it.
                        self.dfs.pin(&cas_path)?;
                        pinned.push(cas_path);
                    }
                    let counter = if cache_hit {
                        dag::keys::STAGES_CACHE_HIT
                    } else {
                        dag::keys::STAGES_RUN
                    };
                    // On the run's counter bag for the trace, and on the
                    // platform DFS registry so warm-rerun behaviour is
                    // observable across runs.
                    cx.counters.add(counter, 1);
                    self.dfs.metrics().counter(counter).add(1);
                    cx.recorder.end_with(
                        sspan,
                        name,
                        vec![
                            ("parents".to_string(), stage.parents.join(",")),
                            ("cached".to_string(), cache_hit.to_string()),
                            ("key".to_string(), format!("{key:016x}")),
                        ],
                        Vec::new(),
                    );
                    stage_reports.push(StageReport {
                        name: name.clone(),
                        key,
                        parents: stage.parents.clone(),
                        cache_hit,
                        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                    });
                    data.insert(name.clone(), out);
                }
                Ok(())
            };
            walk()
        };
        // Success or failure, live pins must not outlast the run.
        for p in &pinned {
            self.dfs.unpin(p);
        }
        outcome?;

        let final_stage = dag::final_parts_stage(&self.config);
        let Some(StageData::Parts(parts)) = data.remove(final_stage) else {
            return Err(PlatformError::Invariant(format!(
                "stage {final_stage} did not produce partitions"
            )));
        };
        let records: Vec<SamRecord> = parts.into_iter().flatten().collect();
        let Some(StageData::Variants(variants)) = data.remove(dag::round5_stage_name(&self.config))
        else {
            return Err(PlatformError::Invariant(
                "round 5 did not produce variants".into(),
            ));
        };
        Ok(self.finish_run(cx, pipeline_span, &pipeline_name, records, variants, stage_reports))
    }

    /// The legacy hand-sequenced driver, kept as the DAG executor's test
    /// oracle: the same stage bodies in fixed order, with no graph, no
    /// cache, and no stage spans. Production callers go through
    /// [`GesallPlatform::run_pipeline_with`].
    pub fn run_pipeline_sequential(
        &self,
        aligner: &Aligner,
        pairs: Vec<ReadPair>,
        opts: &RunOptions,
    ) -> Result<PipelineOutput> {
        let (mut cx, pipeline_span, pipeline_name, _ns) = self.begin_run(aligner, opts);
        let r1 = self.stage_round1(&mut cx, pairs)?;
        let r2 = self.stage_round2(&mut cx, &r1)?;
        let bloom = if self.config.markdup_opt {
            Some(Arc::new(self.stage_round2b(&mut cx, &r2)?))
        } else {
            None
        };
        let r3 = self.stage_round3(&mut cx, &r2, bloom)?;
        let mut r4 = self.stage_round4(&mut cx, &r3)?;
        if self.config.recalibrate {
            let table = Arc::new(self.stage_round4a(&mut cx, &r4)?);
            r4 = self.stage_round4b(&mut cx, &r4, table)?;
        }
        let variants = self.stage_round5(&mut cx, &r4)?;
        let records: Vec<SamRecord> = r4.into_iter().flatten().collect();
        Ok(self.finish_run(cx, pipeline_span, &pipeline_name, records, variants, Vec::new()))
    }

    /// Shared preamble for both drivers: allocate the run's DFS
    /// namespace, open the pipeline span, and snapshot the reference
    /// facts every stage needs.
    fn begin_run<'a>(
        &self,
        aligner: &'a Aligner,
        opts: &'a RunOptions,
    ) -> (StageCtx<'a>, OpenSpan, String, String) {
        // Unique DFS namespace per run so one platform can host many
        // pipeline executions — a monotone per-platform counter, never
        // wall-clock derived, so paths and span names are stable across
        // reruns of the same seed.
        let run = self
            .run_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let ns = opts
            .namespace
            .as_deref()
            .map(|n| n.trim_end_matches('/').to_string())
            .unwrap_or_else(|| "/pipeline".to_string());
        let base = format!("{ns}/run{run}");
        let recorder = self.engine.recorder().clone();
        let pipeline_name = format!("{}-run{run}", ns.trim_start_matches('/').replace('/', "-"));
        let pipeline_span = recorder.start(SpanKind::Pipeline, &pipeline_name, SpanId::NONE);
        let header = aligner.index().sam_header();
        let mut sorted_header = header.clone();
        sorted_header.sort_order = SortOrder::Coordinate;
        let references: Arc<Vec<Vec<u8>>> = Arc::new(
            (0..aligner.index().n_chromosomes())
                .map(|i| aligner.index().chromosome_seq(i).to_vec())
                .collect(),
        );
        let chrom_names: Arc<Vec<String>> = Arc::new(
            (0..aligner.index().n_chromosomes())
                .map(|i| aligner.index().name(i).to_string())
                .collect(),
        );
        let cx = StageCtx {
            aligner,
            opts,
            counters: Counters::new(),
            recorder,
            pipeline_span: pipeline_span.id,
            base,
            header,
            sorted_header,
            references,
            chrom_names,
            rounds: Vec::new(),
            staged: HashMap::new(),
        };
        (cx, pipeline_span, pipeline_name, ns)
    }

    /// [`Self::stage_bam_partitions`] memoized on the DFS dir: the first
    /// caller uploads and splits, later callers in the same run reuse
    /// the splits without touching the DFS again.
    fn staged_bam_partitions(
        &self,
        cx: &mut StageCtx<'_>,
        dir: String,
        sorted: bool,
        partitions: &[Vec<SamRecord>],
    ) -> Result<Vec<InputSplit<String, SharedBytes>>> {
        if let Some(splits) = cx.staged.get(&dir) {
            return Ok(splits.clone());
        }
        let header = if sorted { &cx.sorted_header } else { &cx.header };
        let splits = self.stage_bam_partitions(&dir, header, partitions)?;
        cx.staged.insert(dir, splits.clone());
        Ok(splits)
    }

    /// Shared postamble: close the pipeline span with the cumulative
    /// counter snapshot and assemble the output.
    fn finish_run(
        &self,
        cx: StageCtx<'_>,
        pipeline_span: OpenSpan,
        pipeline_name: &str,
        records: Vec<SamRecord>,
        variants: Vec<VariantRecord>,
        stages: Vec<StageReport>,
    ) -> PipelineOutput {
        cx.recorder.end_with(
            pipeline_span,
            pipeline_name,
            vec![("n_rounds".to_string(), cx.rounds.len().to_string())],
            cx.counters.snapshot(),
        );
        cx.recorder.flush();
        PipelineOutput {
            records,
            variants,
            rounds: cx.rounds,
            stages,
        }
    }

    /// Dispatch one DAG stage body against its parents' in-memory
    /// outputs.
    fn execute_stage(
        &self,
        cx: &mut StageCtx<'_>,
        name: &str,
        data: &HashMap<String, StageData>,
        pairs: &mut Option<Vec<ReadPair>>,
    ) -> Result<StageData> {
        fn parts<'a>(
            data: &'a HashMap<String, StageData>,
            stage: &str,
        ) -> Result<&'a Vec<Vec<SamRecord>>> {
            match data.get(stage) {
                Some(StageData::Parts(p)) => Ok(p),
                _ => Err(PlatformError::Invariant(format!(
                    "stage input {stage} missing or mistyped"
                ))),
            }
        }
        match name {
            "round1-align" => {
                let pairs = pairs.take().ok_or_else(|| {
                    PlatformError::Invariant("round1-align executed twice in one run".into())
                })?;
                Ok(StageData::Parts(self.stage_round1(cx, pairs)?))
            }
            "round2-clean-fixmate" => Ok(StageData::Parts(
                self.stage_round2(cx, parts(data, "round1-align")?)?,
            )),
            "round2b-bloom" => Ok(StageData::Bloom(
                self.stage_round2b(cx, parts(data, "round2-clean-fixmate")?)?,
            )),
            "round3-markdup" => {
                let bloom = if self.config.markdup_opt {
                    match data.get("round2b-bloom") {
                        Some(StageData::Bloom(b)) => Some(Arc::new(b.clone())),
                        _ => {
                            return Err(PlatformError::Invariant(
                                "round3-markdup needs the bloom stage output".into(),
                            ))
                        }
                    }
                } else {
                    None
                };
                Ok(StageData::Parts(self.stage_round3(
                    cx,
                    parts(data, "round2-clean-fixmate")?,
                    bloom,
                )?))
            }
            "round4-sort" => Ok(StageData::Parts(
                self.stage_round4(cx, parts(data, "round3-markdup")?)?,
            )),
            "round4a-recal-table" => Ok(StageData::Recal(
                self.stage_round4a(cx, parts(data, "round4-sort")?)?,
            )),
            "round4b-print-reads" => {
                let table = match data.get("round4a-recal-table") {
                    Some(StageData::Recal(t)) => Arc::new(t.clone()),
                    _ => {
                        return Err(PlatformError::Invariant(
                            "round4b-print-reads needs the recal-table output".into(),
                        ))
                    }
                };
                Ok(StageData::Parts(self.stage_round4b(
                    cx,
                    parts(data, "round4-sort")?,
                    table,
                )?))
            }
            n if n.starts_with("round5-") => Ok(StageData::Variants(self.stage_round5(
                cx,
                parts(data, dag::final_parts_stage(&self.config))?,
            )?)),
            other => Err(PlatformError::Invariant(format!("unknown stage {other}"))),
        }
    }

    /// Round 1: alignment (map-only over FASTQ logical partitions).
    fn stage_round1(
        &self,
        cx: &mut StageCtx<'_>,
        pairs: Vec<ReadPair>,
    ) -> Result<Vec<Vec<SamRecord>>> {
        let parts = split_pairs_into_partitions(pairs, self.config.n_round1_partitions.max(1));
        let mut splits = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            let path = format!("{}/fastq/part-{i:05}", cx.base);
            // One backing serves both the DFS blocks and the mapper's
            // input split — staging copies nothing.
            let bytes = SharedBytes::from_vec(pairs_to_interleaved_bytes(part));
            let info =
                self.dfs
                    .write_shared_with_policy(&path, bytes.clone(), &LogicalPartitionPlacement)?;
            let mut split = InputSplit::new(path.clone(), vec![(path, bytes)]);
            if let Some(node) = info.single_home() {
                split = split.at_node(node % self.engine.cluster().n_nodes());
            }
            splits.push(split);
        }
        let rspan = cx
            .recorder
            .start(SpanKind::Round, "round1-align", cx.pipeline_span);
        // The aligner-side kernels (packed rank, banded SW) report on
        // process-wide atomics; bracket the round with snapshots so the
        // round counters carry exactly this run's kernel activity.
        let kernels_before = gesall_aligner::kernels::snapshot();
        let r1 = self.engine.run_map_only(
            self.job_config(cx.opts, "round1-align", 1, rspan.id),
            &Round1Align {
                aligner: cx.aligner,
                threads_per_mapper: self.config.bwa_threads_per_mapper,
                counters: cx.counters.clone(),
            },
            splits,
        )?;
        let kd = gesall_aligner::kernels::snapshot().delta(&kernels_before);
        for (key, val) in [
            (kernel_keys::OCC_WORDS_POPCOUNTED, kd.occ_words_popcounted),
            (kernel_keys::SW_BANDED_HITS, kd.sw_banded_hits),
            (kernel_keys::SW_FULL_FALLBACKS, kd.sw_full_fallbacks),
        ] {
            if val != 0 {
                r1.counters.add(key, val);
            }
        }
        r1.counters.merge(&cx.counters);
        let s = summary("round1-align", &r1.counters, &r1.events, r1.wall_ms);
        cx.finish_round(rspan, s);
        // Round 1 output partitions (BAM bytes), already grouped by name
        // (pairs adjacent).
        Ok(r1
            .outputs
            .iter()
            .map(|out| {
                let (_, bytes) = &out[0];
                gesall_formats::bam::read_bam(bytes).expect("round1 bam").1
            })
            .collect())
    }

    /// Round 2: clean (map) + fix-mate (reduce), shuffled by read name.
    fn stage_round2(
        &self,
        cx: &mut StageCtx<'_>,
        r1_parts: &[Vec<SamRecord>],
    ) -> Result<Vec<Vec<SamRecord>>> {
        let splits =
            self.stage_bam_partitions(&format!("{}/round2in", cx.base), &cx.header, r1_parts)?;
        let rspan = cx
            .recorder
            .start(SpanKind::Round, "round2-clean-fixmate", cx.pipeline_span);
        let r2 = self.engine.run_job(
            self.job_config(cx.opts, "round2-clean-fixmate", self.config.n_reducers, rspan.id),
            &Round2CleanMapper {
                read_group: self.config.read_group.clone(),
                references: cx.references.clone(),
                counters: cx.counters.clone(),
            },
            &Round2FixMateReducer {
                counters: cx.counters.clone(),
            },
            &HashPartitioner,
            splits,
        )?;
        r2.counters.merge(&cx.counters);
        let s = summary("round2-clean-fixmate", &r2.counters, &r2.events, r2.wall_ms);
        cx.finish_round(rspan, s);
        Ok(collect_parts(&r2.outputs))
    }

    /// Round 2½: bloom-filter build over the cleaned parts
    /// (`MarkDup_opt` only).
    fn stage_round2b(
        &self,
        cx: &mut StageCtx<'_>,
        r2_parts: &[Vec<SamRecord>],
    ) -> Result<BloomFilter> {
        let splits =
            self.staged_bam_partitions(cx, format!("{}/round2out", cx.base), false, r2_parts)?;
        let rspan = cx
            .recorder
            .start(SpanKind::Round, "round2b-bloom", cx.pipeline_span);
        let rb = self.engine.run_map_only(
            self.job_config(cx.opts, "round2b-bloom", 1, rspan.id),
            &BloomBuildMapper {
                counters: cx.counters.clone(),
            },
            splits,
        )?;
        let n_keys: usize = rb.outputs.iter().map(Vec::len).sum();
        rb.counters.merge(&cx.counters);
        let s = summary("round2b-bloom", &rb.counters, &rb.events, rb.wall_ms);
        cx.finish_round(rspan, s);
        Ok(build_bloom_from_outputs(&rb.outputs, n_keys.max(64)))
    }

    /// Round 3: MarkDuplicates under the compound 5′-end shuffle.
    fn stage_round3(
        &self,
        cx: &mut StageCtx<'_>,
        r2_parts: &[Vec<SamRecord>],
        bloom: Option<Arc<BloomFilter>>,
    ) -> Result<Vec<Vec<SamRecord>>> {
        let splits =
            self.staged_bam_partitions(cx, format!("{}/round2out", cx.base), false, r2_parts)?;
        let rspan = cx
            .recorder
            .start(SpanKind::Round, "round3-markdup", cx.pipeline_span);
        let r3 = self.engine.run_job(
            self.job_config(
                cx.opts,
                if self.config.markdup_opt {
                    "round3-markdup-opt"
                } else {
                    "round3-markdup-reg"
                },
                self.config.n_reducers,
                rspan.id,
            ),
            &Round3MarkDupMapper {
                bloom,
                counters: cx.counters.clone(),
            },
            &Round3MarkDupReducer {
                seed: self.config.seed,
                counters: cx.counters.clone(),
            },
            &HashPartitioner,
            splits,
        )?;
        r3.counters.merge(&cx.counters);
        let s = summary("round3-markdup", &r3.counters, &r3.events, r3.wall_ms);
        cx.finish_round(rspan, s);
        Ok(collect_parts(&r3.outputs))
    }

    /// Round 4: range-partitioned coordinate sort (one reducer per
    /// chromosome plus the unmapped partition).
    fn stage_round4(
        &self,
        cx: &mut StageCtx<'_>,
        r3_parts: &[Vec<SamRecord>],
    ) -> Result<Vec<Vec<SamRecord>>> {
        let n_chroms = cx.chrom_names.len();
        let splits =
            self.stage_bam_partitions(&format!("{}/round4in", cx.base), &cx.header, r3_parts)?;
        let rspan = cx
            .recorder
            .start(SpanKind::Round, "round4-sort", cx.pipeline_span);
        let r4 = self.engine.run_job(
            self.job_config(cx.opts, "round4-sort", n_chroms + 1, rspan.id),
            &Round4SortMapper {
                counters: cx.counters.clone(),
            },
            &Round4SortReducer,
            &FnPartitioner::new(|k: &RangeKey, n| chromosome_partition(k, n)),
            splits,
        )?;
        r4.counters.merge(&cx.counters);
        let s = summary("round4-sort", &r4.counters, &r4.events, r4.wall_ms);
        cx.finish_round(rspan, s);
        Ok(collect_parts(&r4.outputs))
    }

    /// Round 4½a: per-partition covariate tables (BaseRecalibrator),
    /// merged into the whole-dataset table — the tally is distributive.
    fn stage_round4a(
        &self,
        cx: &mut StageCtx<'_>,
        r4_parts: &[Vec<SamRecord>],
    ) -> Result<RecalTable> {
        let n_chroms = cx.chrom_names.len();
        let splits = self.staged_bam_partitions(
            cx,
            format!("{}/round4sorted", cx.base),
            true,
            &r4_parts[..n_chroms],
        )?;
        let rspan = cx
            .recorder
            .start(SpanKind::Round, "round4a-recal-table", cx.pipeline_span);
        let ra = self.engine.run_map_only(
            self.job_config(cx.opts, "round4a-recal-table", 1, rspan.id),
            &crate::rounds::RecalTableMapper {
                references: cx.references.clone(),
                known_sites: self.config.known_sites.clone(),
                config: self.config.recal.clone(),
                counters: cx.counters.clone(),
            },
            splits,
        )?;
        let table = crate::rounds::merge_recal_tables(&ra.outputs);
        ra.counters.merge(&cx.counters);
        let s = summary("round4a-recal-table", &ra.counters, &ra.events, ra.wall_ms);
        cx.finish_round(rspan, s);
        Ok(table)
    }

    /// Round 4½b: apply the merged table (PrintReads). Returns the full
    /// partition set: recalibrated chromosome parts plus the untouched
    /// unmapped partition.
    fn stage_round4b(
        &self,
        cx: &mut StageCtx<'_>,
        r4_parts: &[Vec<SamRecord>],
        table: Arc<RecalTable>,
    ) -> Result<Vec<Vec<SamRecord>>> {
        let n_chroms = cx.chrom_names.len();
        let splits = self.staged_bam_partitions(
            cx,
            format!("{}/round4sorted", cx.base),
            true,
            &r4_parts[..n_chroms],
        )?;
        let rspan = cx
            .recorder
            .start(SpanKind::Round, "round4b-print-reads", cx.pipeline_span);
        let rb2 = self.engine.run_map_only(
            self.job_config(cx.opts, "round4b-print-reads", 1, rspan.id),
            &crate::rounds::PrintReadsMapper {
                table,
                config: self.config.recal.clone(),
                counters: cx.counters.clone(),
            },
            splits,
        )?;
        rb2.counters.merge(&cx.counters);
        let s = summary("round4b-print-reads", &rb2.counters, &rb2.events, rb2.wall_ms);
        cx.finish_round(rspan, s);
        let mut parts = r4_parts.to_vec();
        for (i, out) in rb2.outputs.into_iter().enumerate() {
            parts[i] = out.into_iter().map(|(_, r)| r).collect();
        }
        Ok(parts)
    }

    /// Round 5: variant calling under the configured caller and
    /// partitioning scheme. The unmapped partition (index `n_chroms`)
    /// is skipped.
    fn stage_round5(
        &self,
        cx: &mut StageCtx<'_>,
        parts: &[Vec<SamRecord>],
    ) -> Result<Vec<VariantRecord>> {
        let n_chroms = cx.chrom_names.len();
        let round5_name = dag::round5_stage_name(&self.config);
        let rspan = cx
            .recorder
            .start(SpanKind::Round, round5_name, cx.pipeline_span);
        let r5 = match (self.config.caller, self.config.hc_partitioning) {
            (CallerChoice::UnifiedGenotyper, _) => {
                let splits = self.stage_bam_partitions(
                    &format!("{}/round5in", cx.base),
                    &cx.sorted_header,
                    &parts[..n_chroms],
                )?;
                self.engine.run_map_only(
                    self.job_config(cx.opts, "round5-unifiedgenotyper", 1, rspan.id),
                    &crate::rounds::Round5UnifiedGenotyper {
                        references: cx.references.clone(),
                        chrom_names: cx.chrom_names.clone(),
                        config: self.config.ug.clone(),
                        counters: cx.counters.clone(),
                    },
                    splits,
                )?
            }
            (CallerChoice::HaplotypeCaller, HcPartitioning::Chromosome) => {
                let splits = self.stage_bam_partitions(
                    &format!("{}/round5in", cx.base),
                    &cx.sorted_header,
                    &parts[..n_chroms],
                )?;
                self.engine.run_map_only(
                    self.job_config(cx.opts, "round5-haplotypecaller", 1, rspan.id),
                    &Round5HaplotypeCaller {
                        references: cx.references.clone(),
                        chrom_names: cx.chrom_names.clone(),
                        config: self.config.hc.clone(),
                        counters: cx.counters.clone(),
                    },
                    splits,
                )?
            }
            (CallerChoice::HaplotypeCaller, HcPartitioning::FineGrained { segment_len, overlap }) => {
                // The §3.2 overlapping range scheme: reads overlapping a
                // padded span are replicated into that segment's
                // partition; calls are emitted from segment cores only.
                let ranges = crate::gdpt::OverlappingRanges::new(segment_len, overlap);
                let mut splits = Vec::new();
                for (ref_id, part) in parts[..n_chroms].iter().enumerate() {
                    let chrom_len = cx.references[ref_id].len() as i64;
                    if part.is_empty() {
                        continue;
                    }
                    for seg in 0..ranges.n_segments(chrom_len) {
                        let (span_s, span_e) = ranges.segment_span(seg, chrom_len);
                        let core_s = seg as i64 * segment_len + 1;
                        let core_e = ((seg as i64 + 1) * segment_len).min(chrom_len);
                        let seg_records: Vec<SamRecord> = part
                            .iter()
                            .filter(|r| {
                                r.is_mapped() && r.pos <= span_e && r.end_pos() >= span_s
                            })
                            .cloned()
                            .collect();
                        let label = crate::rounds::fine_segment_label(
                            ref_id as i32,
                            (core_s, core_e),
                            (span_s, span_e),
                        );
                        let bytes = SharedBytes::from_vec(
                            gesall_formats::bam::write_bam(&cx.sorted_header, &seg_records),
                        );
                        let path = format!("{}/round5fine/{label}", cx.base);
                        let info = self.dfs.write_shared_with_policy(
                            &path,
                            bytes.clone(),
                            &LogicalPartitionPlacement,
                        )?;
                        let mut split = InputSplit::new(label.clone(), vec![(label, bytes)]);
                        if let Some(node) = info.single_home() {
                            split = split.at_node(node % self.engine.cluster().n_nodes());
                        }
                        splits.push(split);
                    }
                }
                self.engine.run_map_only(
                    self.job_config(cx.opts, "round5-hc-finegrained", 1, rspan.id),
                    &crate::rounds::Round5HaplotypeCallerFine {
                        references: cx.references.clone(),
                        chrom_names: cx.chrom_names.clone(),
                        config: self.config.hc.clone(),
                        counters: cx.counters.clone(),
                    },
                    splits,
                )?
            }
        };
        r5.counters.merge(&cx.counters);
        let s = summary(round5_name, &r5.counters, &r5.events, r5.wall_ms);
        cx.finish_round(rspan, s);
        let mut variants: Vec<VariantRecord> = r5
            .outputs
            .into_iter()
            .flatten()
            .map(|(_, v)| v)
            .collect();
        variants.sort_by(|a, b| {
            (a.chrom.clone(), a.pos, a.ref_allele.clone(), a.alt_allele.clone()).cmp(&(
                b.chrom.clone(),
                b.pos,
                b.ref_allele.clone(),
                b.alt_allele.clone(),
            ))
        });
        Ok(variants)
    }
}

/// Everything a stage body needs besides its data inputs: the run's
/// namespace, span parentage, cumulative counters, reference facts, and
/// the growing round-summary list.
struct StageCtx<'a> {
    aligner: &'a Aligner,
    opts: &'a RunOptions,
    counters: Counters,
    recorder: Recorder,
    pipeline_span: SpanId,
    base: String,
    header: SamHeader,
    sorted_header: SamHeader,
    references: Arc<Vec<Vec<u8>>>,
    chrom_names: Arc<Vec<String>>,
    rounds: Vec<RoundSummary>,
    /// Staged input splits keyed by DFS dir, so sibling stages consuming
    /// the same parent output (round2b + round3, round4a + round4b)
    /// upload it once and share the splits — the split's byte payloads
    /// are refcounted slices, so the clone is pointer-sized.
    staged: HashMap<String, Vec<InputSplit<String, SharedBytes>>>,
}

impl StageCtx<'_> {
    /// Close a round span carrying the round's task counts and counter
    /// snapshot (so the trace alone reconstructs the table), and append
    /// the summary.
    fn finish_round(&mut self, open: OpenSpan, s: RoundSummary) {
        self.recorder.end_with(
            open,
            &s.name,
            vec![
                ("n_map_tasks".to_string(), s.n_map_tasks.to_string()),
                ("n_reduce_tasks".to_string(), s.n_reduce_tasks.to_string()),
            ],
            s.counters.clone(),
        );
        self.rounds.push(s);
    }
}

fn collect_parts<K>(outputs: &[Vec<(K, SamRecord)>]) -> Vec<Vec<SamRecord>> {
    outputs
        .iter()
        .map(|out| out.iter().map(|(_, r)| r.clone()).collect())
        .collect()
}

/// A stage's committed output, as stored in the content-addressed
/// intermediate store. The lossless wire codec matters: VCF *text*
/// round-trips qualities through `{:.2}` formatting, so cached variants
/// are stored as wire records, never as rendered text.
#[derive(Debug, Clone)]
pub enum StageData {
    /// BAM logical partitions (most stages).
    Parts(Vec<Vec<SamRecord>>),
    /// The `MarkDup_opt` bloom filter.
    Bloom(BloomFilter),
    /// The merged base-recalibration table.
    Recal(RecalTable),
    /// Round-5 calls, sorted by site.
    Variants(Vec<VariantRecord>),
}

impl Wire for StageData {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            StageData::Parts(p) => {
                wire::put_varint(buf, 0);
                p.encode(buf);
            }
            StageData::Bloom(b) => {
                wire::put_varint(buf, 1);
                b.encode(buf);
            }
            StageData::Recal(t) => {
                wire::put_varint(buf, 2);
                t.encode(buf);
            }
            StageData::Variants(v) => {
                wire::put_varint(buf, 3);
                v.encode(buf);
            }
        }
    }

    fn decode(cur: &mut wire::Cursor<'_>) -> gesall_formats::error::Result<StageData> {
        match cur.get_varint()? {
            0 => Ok(StageData::Parts(Vec::<Vec<SamRecord>>::decode(cur)?)),
            1 => Ok(StageData::Bloom(BloomFilter::decode(cur)?)),
            2 => Ok(StageData::Recal(RecalTable::decode(cur)?)),
            3 => Ok(StageData::Variants(Vec::<VariantRecord>::decode(cur)?)),
            t => Err(gesall_formats::error::FormatError::Bam(format!(
                "unknown stage-data tag {t}"
            ))),
        }
    }
}

fn summary(
    name: &str,
    counters: &Counters,
    events: &[gesall_mapreduce::runtime::TaskEvent],
    wall_ms: f64,
) -> RoundSummary {
    use gesall_mapreduce::runtime::{AttemptOutcome, TaskKind};
    // Count committed tasks, not attempts: retries and speculative losers
    // also leave events, but only one attempt per task ever succeeds.
    let done = |e: &&gesall_mapreduce::runtime::TaskEvent| e.outcome == AttemptOutcome::Succeeded;
    RoundSummary {
        name: name.into(),
        wall_ms,
        n_map_tasks: events
            .iter()
            .filter(|e| e.kind == TaskKind::Map)
            .filter(done)
            .count(),
        n_reduce_tasks: events
            .iter()
            .filter(|e| e.kind == TaskKind::Reduce)
            .filter(done)
            .count(),
        counters: counters.snapshot(),
    }
}

// ---------------------------------------------------------------------
// Serial baseline and hybrid pipelines
// ---------------------------------------------------------------------

/// The GATK-best-practices single-node baseline: serial versions of every
/// step, whole dataset at once.
pub fn serial_pipeline(
    aligner: &Aligner,
    references: &[Vec<u8>],
    chrom_names: &[String],
    pairs: &[ReadPair],
    read_group: &ReadGroup,
    seed: u64,
    hc: &HaplotypeCallerConfig,
) -> (Vec<SamRecord>, Vec<VariantRecord>) {
    // Step 1: alignment over the whole input as one serial stream.
    let aligned = aligner.align_pairs(pairs);
    let records: Vec<SamRecord> = aligned.into_iter().flat_map(|(a, b)| [a, b]).collect();
    serial_tail_from_aligned(aligner, references, chrom_names, records, read_group, seed, hc)
}

/// Serial steps 3..end applied to already-aligned records — the hybrid
/// pipeline for measuring D-impact of parallel alignment (P̄₁).
pub fn serial_tail_from_aligned(
    aligner: &Aligner,
    references: &[Vec<u8>],
    chrom_names: &[String],
    mut records: Vec<SamRecord>,
    read_group: &ReadGroup,
    seed: u64,
    hc: &HaplotypeCallerConfig,
) -> (Vec<SamRecord>, Vec<VariantRecord>) {
    let mut header = aligner.index().sam_header();
    gesall_tools::add_read_groups::add_or_replace_read_groups(
        &mut header,
        &mut records,
        read_group,
    );
    gesall_tools::clean_sam::clean_sam(&mut records, RefView::new(references));
    gesall_tools::fix_mate::fix_mate_information(&mut records);
    gesall_tools::mark_duplicates::mark_duplicates(&mut records, seed);
    serial_tail_from_markdup(references, chrom_names, records, hc)
}

/// Serial sort + HaplotypeCaller applied to duplicate-marked records —
/// the hybrid pipeline for measuring D-impact of parallel MarkDuplicates
/// (P̄₂).
pub fn serial_tail_from_markdup(
    references: &[Vec<u8>],
    chrom_names: &[String],
    mut records: Vec<SamRecord>,
    hc: &HaplotypeCallerConfig,
) -> (Vec<SamRecord>, Vec<VariantRecord>) {
    let mut header = SamHeader::default();
    gesall_tools::sort_sam::sort_sam(&mut header, &mut records);
    let rv = RefView::new(references);
    let mut variants = Vec::new();
    for (ref_id, name) in chrom_names.iter().enumerate() {
        let result = call_chromosome(&records, ref_id as i32, name, rv, hc);
        variants.extend(result.variants);
    }
    variants.sort_by(|a, b| {
        (a.chrom.clone(), a.pos, a.ref_allele.clone(), a.alt_allele.clone()).cmp(&(
            b.chrom.clone(),
            b.pos,
            b.ref_allele.clone(),
            b.alt_allele.clone(),
        ))
    });
    (records, variants)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_reproduces_the_papers_round_structure() {
        let rounds = plan_rounds(Partitioning::ByReadName, &gatk_best_practices_specs());
        // Round 1: Bwa + SamToBam (+ the next two Any steps fuse into the
        // map side of round 2 in the paper; the planner fuses them into
        // round 1 since no shuffle is needed — both are valid fusions,
        // what matters is WHERE shuffles land).
        let shuffles: Vec<&RoundPlan> = rounds.iter().filter(|r| r.needs_shuffle).collect();
        // Shuffles must land exactly before MarkDuplicates and SortSam.
        assert_eq!(
            shuffles.len(),
            2,
            "expected 2 rearrangements, got {rounds:#?}"
        );
        assert_eq!(shuffles[0].programs[0], "MarkDuplicates");
        assert_eq!(shuffles[1].programs[0], "SortSam");
        // HaplotypeCaller fuses with SortSam's arrangement.
        assert!(shuffles[1].programs.contains(&"HaplotypeCaller".to_string()));
        // FixMateInformation runs without a shuffle (input grouped by
        // name from alignment).
        let first = &rounds[0];
        assert!(first.programs.contains(&"FixMateInformation".to_string()));
        assert!(!first.needs_shuffle);
    }

    #[test]
    fn planner_inserts_shuffle_on_incompatibility() {
        let programs = vec![
            ProgramSpec::new("A", Partitioning::ByRange).producing(Partitioning::ByRange),
            ProgramSpec::new("B", Partitioning::ByReadName),
            ProgramSpec::new("C", Partitioning::ByReadName),
            ProgramSpec::new("D", Partitioning::Any),
        ];
        let rounds = plan_rounds(Partitioning::ByReadName, &programs);
        assert_eq!(rounds.len(), 2, "{rounds:#?}");
        assert!(rounds[0].needs_shuffle); // ByReadName -> ByRange
        assert!(rounds[1].needs_shuffle); // ByRange -> ByReadName
        // C fuses (same requirement); D fuses (no requirement).
        assert_eq!(rounds[1].programs, vec!["B", "C", "D"]);
    }

    #[test]
    fn partitioning_compatibility() {
        assert!(Partitioning::Any.satisfied_by(&Partitioning::ByRange));
        assert!(Partitioning::ByRange.satisfied_by(&Partitioning::ByRange));
        assert!(!Partitioning::ByReadName.satisfied_by(&Partitioning::ByRange));
    }
}
