//! External-program wrappers (paper Fig. 8).
//!
//! From the framework's point of view these are black boxes that read
//! bytes on stdin and write bytes on stdout — exactly how Hadoop
//! Streaming sees `bwa mem` and `SamToBam`. The alignment round pipes
//! them together:
//!
//! ```text
//! interleaved FASTQ ──▶ BwaMemProgram ──SAM text──▶ SamToBamProgram ──▶ BAM bytes
//! ```

use gesall_aligner::Aligner;
use gesall_formats::fastq;
use gesall_formats::sam::text as sam_text;
use gesall_mapreduce::streaming::{ExternalProgram, PipeReader, PipeWriter};
use std::io::{Read, Write};

/// The aligner posing as multi-threaded `bwa mem`: interleaved FASTQ in,
/// SAM text (with header) out.
pub struct BwaMemProgram<'a> {
    pub aligner: &'a Aligner,
    /// Compute threads used per batch (the paper's
    /// mappers-per-node × threads-per-mapper knob).
    pub threads: usize,
}

impl ExternalProgram for BwaMemProgram<'_> {
    fn name(&self) -> &str {
        "bwa-mem"
    }

    fn run(&self, mut stdin: PipeReader, mut stdout: PipeWriter) -> std::io::Result<()> {
        let mut input = Vec::new();
        stdin.read_to_end(&mut input)?;
        let pairs = fastq::pairs_from_interleaved_bytes(&input)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let header = self.aligner.index().sam_header();
        let aligned = self.aligner.align_pairs_threaded(&pairs, self.threads);
        stdout.write_all(header.to_text().as_bytes())?;
        for (a, b) in &aligned {
            stdout.write_all(sam_text::record_to_line(a, &header).as_bytes())?;
            stdout.write_all(b"\n")?;
            stdout.write_all(sam_text::record_to_line(b, &header).as_bytes())?;
            stdout.write_all(b"\n")?;
        }
        stdout.close()
    }
}

/// SAM text in, BAM container bytes out (single-threaded, as in the
/// paper's Round 1 pipeline).
pub struct SamToBamProgram;

impl ExternalProgram for SamToBamProgram {
    fn name(&self) -> &str {
        "samtobam"
    }

    fn run(&self, mut stdin: PipeReader, mut stdout: PipeWriter) -> std::io::Result<()> {
        let mut input = String::new();
        stdin.read_to_string(&mut input)?;
        let (header, records) = sam_text::from_text(&input)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let bytes = gesall_formats::bam::write_bam(&header, &records);
        // The serialized BAM is handed to the pipe by ownership — it
        // becomes the chunks' shared backing, no re-copy.
        stdout.write_owned(bytes)?;
        stdout.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_aligner::AlignerConfig;
    use gesall_aligner::ReferenceIndex;
    use gesall_datagen::{
        donor::DonorConfig, reads::ReadSimConfig, DonorGenome, GenomeConfig, ReadSimulator,
        ReferenceGenome,
    };
    use gesall_formats::bam;
    use gesall_mapreduce::counters::Counters;
    use gesall_mapreduce::streaming::StreamingHarness;

    fn world() -> (Aligner, Vec<gesall_formats::fastq::ReadPair>) {
        let genome = ReferenceGenome::generate(&GenomeConfig::tiny());
        let donor = DonorGenome::generate(&genome, &DonorConfig::default());
        let (pairs, _) = ReadSimulator::new(
            &genome,
            &donor,
            ReadSimConfig {
                n_pairs: 120,
                ..ReadSimConfig::default()
            },
        )
        .simulate();
        let chroms: Vec<(String, Vec<u8>)> = genome
            .chromosomes
            .iter()
            .map(|c| (c.name.clone(), c.seq.clone()))
            .collect();
        let aligner = Aligner::new(ReferenceIndex::build(&chroms), AlignerConfig::default());
        (aligner, pairs)
    }

    #[test]
    fn bwa_pipe_to_samtobam_produces_valid_bam() {
        let (aligner, pairs) = world();
        let harness = StreamingHarness::new(Counters::new());
        let input = fastq::pairs_to_interleaved_bytes(&pairs);
        let bwa = BwaMemProgram {
            aligner: &aligner,
            threads: 2,
        };
        let out = harness
            .run_pipeline(&[&bwa, &SamToBamProgram], &input)
            .unwrap();
        let (header, records) = bam::read_bam(&out).unwrap();
        assert_eq!(records.len(), 240, "two records per pair");
        assert_eq!(header.references.len(), 2);
        // Pipeline output equals calling the aligner directly.
        let direct = aligner.align_pairs(&pairs);
        let flat: Vec<_> = direct.into_iter().flat_map(|(a, b)| [a, b]).collect();
        assert_eq!(records, flat);
        // Timings recorded for both programs.
        assert!(harness.timings().external_nanos > 0);
    }

    #[test]
    fn bwa_rejects_garbage_input() {
        let (aligner, _) = world();
        let harness = StreamingHarness::new(Counters::new());
        let bwa = BwaMemProgram {
            aligner: &aligner,
            threads: 1,
        };
        let res = harness.run_pipeline(&[&bwa], b"not fastq at all");
        assert!(res.is_err());
    }

    #[test]
    fn samtobam_rejects_garbage() {
        let harness = StreamingHarness::new(Counters::new());
        let res = harness.run_pipeline(&[&SamToBamProgram], b"bogus\tsam");
        assert!(res.is_err());
    }
}
