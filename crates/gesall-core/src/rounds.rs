//! The five MapReduce rounds of the paper's pipeline (Appendix A.2),
//! as `Mapper`/`Reducer` implementations over the engine.
//!
//! Every mapper's input value is a *whole logical partition* as BAM (or
//! FASTQ) bytes — faithfully modelling the wrapper reality: the framework
//! hands opaque partition bytes to a wrapped single-node program, paying
//! the record↔bytes **data transformation** cost each way (timed into the
//! counters, Fig. 6a).
//!
//! | Round | Map | Shuffle | Reduce |
//! |---|---|---|---|
//! | 1 | Bwa \| SamToBam via streaming | — (map-only) | — |
//! | 2 | AddReplaceReadGroups + CleanSam | by read name | FixMateInformation |
//! | 2½ | collect partial-matching 5′ ends | — | (bloom built by driver) |
//! | 3 | MarkDup key generation (+ filter/bloom) | compound keys | SortSam + MarkDuplicates |
//! | 4 | extract coordinates | range by chromosome | sort + index |
//! | 5 | HaplotypeCaller per chromosome | — (map-only) | — |

use crate::gdpt::{
    markdup_map_pair, BloomFilter, MarkDupKey, MarkDupRole, MarkDupValue, RangeKey,
};
use gesall_aligner::Aligner;
use gesall_formats::bam;
use gesall_formats::SharedBytes;
use gesall_formats::sam::header::ReadGroup;
use gesall_formats::sam::{SamHeader, SamRecord};
use gesall_formats::vcf::VariantRecord;
use gesall_mapreduce::counters::{keys, Counters};
use gesall_mapreduce::streaming::StreamingHarness;
use gesall_mapreduce::task::{MapContext, Mapper, ReduceContext, Reducer};
use gesall_tools::clean_sam::clean_sam;
use gesall_tools::fix_mate::sync_pair;
use gesall_tools::haplotype_caller::{call_chromosome, HaplotypeCallerConfig};
use gesall_tools::mark_duplicates::end_key;
use gesall_tools::refview::RefView;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Time a data-transformation step into the shared counters.
fn timed<T>(counters: &Counters, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    counters.add(keys::DATA_TRANSFORM_NANOS, t0.elapsed().as_nanos() as u64);
    out
}

fn decode_bam(counters: &Counters, bytes: &[u8]) -> (SamHeader, Vec<SamRecord>) {
    timed(counters, || {
        bam::read_bam(bytes).expect("partition bytes must be a valid BAM")
    })
}

// ---------------------------------------------------------------------
// Round 1: alignment (map-only, Hadoop Streaming)
// ---------------------------------------------------------------------

/// Map-only aligner round: interleaved-FASTQ partition bytes in, BAM
/// partition bytes out, through the `bwa | samtobam` streaming pipeline.
pub struct Round1Align<'a> {
    pub aligner: &'a Aligner,
    pub threads_per_mapper: usize,
    pub counters: Counters,
}

impl Mapper for Round1Align<'_> {
    type InKey = String;
    type InValue = SharedBytes;
    type OutKey = String;
    type OutValue = Vec<u8>;

    fn map(&self, label: &String, fastq_bytes: &SharedBytes, ctx: &mut MapContext<'_, String, Vec<u8>>) {
        let harness = StreamingHarness::new(self.counters.clone());
        let bwa = crate::programs::BwaMemProgram {
            aligner: self.aligner,
            threads: self.threads_per_mapper.max(1),
        };
        let bam_bytes = harness
            .run_pipeline(&[&bwa, &crate::programs::SamToBamProgram], fastq_bytes)
            .expect("alignment streaming pipeline failed");
        ctx.emit(label.clone(), bam_bytes);
    }
}

// ---------------------------------------------------------------------
// Round 2: AddReplaceReadGroups + CleanSam (map), FixMateInformation (reduce)
// ---------------------------------------------------------------------

/// Round-2 mapper: data cleaning over a BAM partition, shuffled by read
/// name.
pub struct Round2CleanMapper {
    pub read_group: ReadGroup,
    pub references: Arc<Vec<Vec<u8>>>,
    pub counters: Counters,
}

impl Mapper for Round2CleanMapper {
    type InKey = String;
    type InValue = SharedBytes;
    type OutKey = String;
    type OutValue = SamRecord;

    fn map(
        &self,
        _label: &String,
        bam_bytes: &SharedBytes,
        ctx: &mut MapContext<'_, String, SamRecord>,
    ) {
        let (mut header, mut records) = decode_bam(&self.counters, bam_bytes);
        let t0 = Instant::now();
        gesall_tools::add_read_groups::add_or_replace_read_groups(
            &mut header,
            &mut records,
            &self.read_group,
        );
        clean_sam(&mut records, RefView::new(&self.references));
        self.counters
            .add(keys::EXTERNAL_PROGRAM_NANOS, t0.elapsed().as_nanos() as u64);
        for r in records {
            ctx.emit(r.name.clone(), r);
        }
    }
}

/// Round-2 reducer: both reads of a pair arrive under the same name key;
/// FixMateInformation synchronizes them.
pub struct Round2FixMateReducer {
    pub counters: Counters,
}

impl Reducer for Round2FixMateReducer {
    type InKey = String;
    type InValue = SamRecord;
    type OutKey = String;
    type OutValue = SamRecord;

    fn reduce(
        &self,
        name: String,
        mut values: Vec<SamRecord>,
        ctx: &mut ReduceContext<'_, String, SamRecord>,
    ) {
        let t0 = Instant::now();
        let primaries: Vec<usize> = values
            .iter()
            .enumerate()
            .filter(|(_, r)| r.flags.is_primary() && r.flags.is_paired())
            .map(|(i, _)| i)
            .collect();
        if let [i, j] = primaries[..] {
            let (lo, hi) = values.split_at_mut(j.max(i));
            let (a, b) = if i < j {
                (&mut lo[i], &mut hi[0])
            } else {
                (&mut hi[0], &mut lo[j])
            };
            sync_pair(a, b);
        }
        self.counters
            .add(keys::EXTERNAL_PROGRAM_NANOS, t0.elapsed().as_nanos() as u64);
        for r in values {
            ctx.emit(name.clone(), r);
        }
    }
}

// ---------------------------------------------------------------------
// Round 2½: bloom-filter build (MarkDup_opt prep)
// ---------------------------------------------------------------------

/// Map-only round emitting the wire-encoded 5′-end keys of
/// partial-matching mapped reads; the driver unions them into the bloom
/// filter.
pub struct BloomBuildMapper {
    pub counters: Counters,
}

impl Mapper for BloomBuildMapper {
    type InKey = String;
    type InValue = SharedBytes;
    type OutKey = u64;
    type OutValue = Vec<u8>;

    fn map(&self, _label: &String, bam_bytes: &SharedBytes, ctx: &mut MapContext<'_, u64, Vec<u8>>) {
        let (_, records) = decode_bam(&self.counters, bam_bytes);
        let mut by_name: HashMap<&str, Vec<&SamRecord>> = HashMap::new();
        for r in &records {
            if r.flags.is_paired() && r.flags.is_primary() {
                by_name.entry(r.name.as_str()).or_default().push(r);
            }
        }
        for (_, pair) in by_name {
            if let [a, b] = pair[..] {
                let partial_mapped = match (a.is_mapped(), b.is_mapped()) {
                    (true, false) => Some(a),
                    (false, true) => Some(b),
                    _ => None,
                };
                if let Some(m) = partial_mapped {
                    let k = end_key(m);
                    let mut bytes = Vec::new();
                    use gesall_formats::wire::Wire;
                    (k.0 as i64).encode(&mut bytes);
                    k.1.encode(&mut bytes);
                    (k.2 as u32).encode(&mut bytes);
                    ctx.emit(0, bytes);
                }
            }
        }
    }
}

/// Decode the end keys a [`BloomBuildMapper`] job emitted and build the
/// filter.
pub fn build_bloom_from_outputs(outputs: &[Vec<(u64, Vec<u8>)>], capacity: usize) -> BloomFilter {
    use gesall_formats::wire::{Cursor, Wire};
    let mut bloom = BloomFilter::with_capacity(capacity);
    for out in outputs {
        for (_, bytes) in out {
            let mut cur = Cursor::new(bytes);
            let chrom = i64::decode(&mut cur).expect("bloom key chrom") as i32;
            let pos = i64::decode(&mut cur).expect("bloom key pos");
            let strand = u32::decode(&mut cur).expect("bloom key strand") as u8;
            bloom.insert(&(chrom, pos, strand));
        }
    }
    bloom
}

// ---------------------------------------------------------------------
// Round 3: MarkDuplicates (compound group partitioning)
// ---------------------------------------------------------------------

/// Round-3 mapper: input grouped by read name; emits compound keys with
/// the map-side witness filter (and optional bloom suppression).
pub struct Round3MarkDupMapper {
    /// `Some` = MarkDup_opt; `None` = MarkDup_reg.
    pub bloom: Option<Arc<BloomFilter>>,
    pub counters: Counters,
}

impl Mapper for Round3MarkDupMapper {
    type InKey = String;
    type InValue = SharedBytes;
    type OutKey = MarkDupKey;
    type OutValue = MarkDupValue;

    fn map(
        &self,
        _label: &String,
        bam_bytes: &SharedBytes,
        ctx: &mut MapContext<'_, MarkDupKey, MarkDupValue>,
    ) {
        let (_, records) = decode_bam(&self.counters, bam_bytes);
        // Pair by name in input order (map-task-local state is fine: the
        // whole partition is one map invocation). Records move from the
        // decode straight into the shuffle values — only the pairing
        // key (the name) is cloned while a read waits for its mate.
        let mut first_seen: HashMap<String, SamRecord> = HashMap::new();
        let mut witness_filter = std::collections::HashSet::new();
        let mut kvs = Vec::new();
        for r in records {
            if !r.flags.is_paired() || !r.flags.is_primary() {
                continue;
            }
            match first_seen.remove(r.name.as_str()) {
                None => {
                    first_seen.insert(r.name.clone(), r);
                }
                Some(mate) => {
                    markdup_map_pair(
                        mate,
                        r,
                        &mut witness_filter,
                        self.bloom.as_deref(),
                        &mut kvs,
                    );
                }
            }
        }
        assert!(
            first_seen.is_empty(),
            "round-3 partition violated the read-name grouping contract: {} widowed reads",
            first_seen.len()
        );
        for (k, v) in kvs {
            ctx.emit(k, v);
        }
    }
}

/// Round-3 reducer: applies MarkDuplicates criteria within each key
/// group. Random tie-breaks are seeded per key, so the outcome is
/// independent of which reducer sees the group — but *different* from
/// the serial tool's sequential RNG stream, exactly the discrepancy the
/// paper measures in Table 8.
pub struct Round3MarkDupReducer {
    pub seed: u64,
    pub counters: Counters,
}

fn key_seed(seed: u64, key: &MarkDupKey) -> u64 {
    use gesall_formats::wire::Wire;
    let bytes = key.to_wire_bytes();
    let mut h = seed ^ 0x51_7c_c1_b7_27_22_0a_95;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Reducer for Round3MarkDupReducer {
    type InKey = MarkDupKey;
    type InValue = MarkDupValue;
    type OutKey = String;
    type OutValue = SamRecord;

    fn reduce(
        &self,
        key: MarkDupKey,
        mut values: Vec<MarkDupValue>,
        ctx: &mut ReduceContext<'_, String, SamRecord>,
    ) {
        let t0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(key_seed(self.seed, &key));
        match key {
            MarkDupKey::Pair(_, _) => {
                // Rebuild pairs by name, in arrival order.
                let mut order: Vec<String> = Vec::new();
                let mut pairs: HashMap<String, Vec<SamRecord>> = HashMap::new();
                for v in values {
                    debug_assert_eq!(v.role, MarkDupRole::PairMember);
                    let e = pairs.entry(v.record.name.clone()).or_default();
                    if e.is_empty() {
                        order.push(v.record.name.clone());
                    }
                    e.push(v.record);
                }
                let score = |pair: &Vec<SamRecord>| -> u64 {
                    pair.iter().map(|r| r.quality_sum()).sum()
                };
                let best = order
                    .iter()
                    .map(|n| score(&pairs[n]))
                    .max()
                    .expect("non-empty group");
                let ties: Vec<usize> = order
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| score(&pairs[*n]) == best)
                    .map(|(i, _)| i)
                    .collect();
                let keeper = ties[rng.gen_range(0..ties.len())];
                for (i, name) in order.iter().enumerate() {
                    let dup = i != keeper;
                    for mut r in pairs.remove(name).expect("pair present") {
                        r.flags
                            .set(gesall_formats::sam::Flags::DUPLICATE, dup);
                        ctx.emit(name.clone(), r);
                    }
                }
            }
            MarkDupKey::Single(_) => {
                let has_witness = values.iter().any(|v| v.role == MarkDupRole::Witness);
                // Partial matchings: mapped reads compete; mates follow.
                let mapped_idx: Vec<usize> = values
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.role == MarkDupRole::PartialMapped)
                    .map(|(i, _)| i)
                    .collect();
                let keeper: Option<usize> = if has_witness || mapped_idx.is_empty() {
                    None
                } else {
                    let best = mapped_idx
                        .iter()
                        .map(|&i| values[i].record.quality_sum())
                        .max()
                        .expect("non-empty");
                    let ties: Vec<usize> = mapped_idx
                        .iter()
                        .copied()
                        .filter(|&i| values[i].record.quality_sum() == best)
                        .collect();
                    Some(ties[rng.gen_range(0..ties.len())])
                };
                let keeper_name = keeper.map(|i| values[i].record.name.clone());
                for v in values.drain(..) {
                    match v.role {
                        MarkDupRole::Witness => {} // no output
                        MarkDupRole::PartialMapped | MarkDupRole::PartialMate => {
                            let mut r = v.record;
                            let dup = keeper_name.as_deref() != Some(r.name.as_str());
                            r.flags
                                .set(gesall_formats::sam::Flags::DUPLICATE, dup);
                            ctx.emit(r.name.clone(), r);
                        }
                        other => panic!("unexpected role {other:?} under Single key"),
                    }
                }
            }
            MarkDupKey::Unplaced(_) => {
                for v in values {
                    ctx.emit(v.record.name.clone(), v.record);
                }
            }
        }
        self.counters
            .add(keys::EXTERNAL_PROGRAM_NANOS, t0.elapsed().as_nanos() as u64);
    }
}

// ---------------------------------------------------------------------
// Round 4: range-partitioned coordinate sort
// ---------------------------------------------------------------------

/// Round-4 mapper: extract (chromosome, position) shuffle keys.
pub struct Round4SortMapper {
    pub counters: Counters,
}

impl Mapper for Round4SortMapper {
    type InKey = String;
    type InValue = SharedBytes;
    type OutKey = RangeKey;
    type OutValue = SamRecord;

    fn map(
        &self,
        _label: &String,
        bam_bytes: &SharedBytes,
        ctx: &mut MapContext<'_, RangeKey, SamRecord>,
    ) {
        let (_, records) = decode_bam(&self.counters, bam_bytes);
        for r in records {
            ctx.emit(RangeKey::of(&r), r);
        }
    }
}

/// Round-4 reducer: records arrive key-sorted (the shuffle did the
/// sorting); pass them through, preserving order — the reducer output IS
/// the sorted chromosome partition.
pub struct Round4SortReducer;

impl Reducer for Round4SortReducer {
    type InKey = RangeKey;
    type InValue = SamRecord;
    type OutKey = RangeKey;
    type OutValue = SamRecord;

    fn reduce(
        &self,
        key: RangeKey,
        values: Vec<SamRecord>,
        ctx: &mut ReduceContext<'_, RangeKey, SamRecord>,
    ) {
        for r in values {
            ctx.emit(key, r);
        }
    }
}

// ---------------------------------------------------------------------
// Rounds 3½a/3½b: base quality score recalibration (steps 11–12)
// ---------------------------------------------------------------------

/// Pass-1 mapper: builds a partial [`RecalTable`] per partition and emits
/// it wire-encoded — the GDPT "group partitioning by user-defined
/// covariates" pattern (§3.2): the tally is distributive, so partial
/// tables merge exactly.
pub struct RecalTableMapper {
    pub references: Arc<Vec<Vec<u8>>>,
    /// Known variant sites (ref_id, 1-based pos) excluded from the error
    /// tally (the dbSNP role).
    pub known_sites: Arc<std::collections::HashSet<(i32, i64)>>,
    pub config: gesall_tools::recalibration::RecalConfig,
    pub counters: Counters,
}

impl Mapper for RecalTableMapper {
    type InKey = String;
    type InValue = SharedBytes;
    type OutKey = u64;
    type OutValue = Vec<u8>;

    fn map(&self, _label: &String, bam_bytes: &SharedBytes, ctx: &mut MapContext<'_, u64, Vec<u8>>) {
        let (_, records) = decode_bam(&self.counters, bam_bytes);
        let t0 = Instant::now();
        let table = gesall_tools::recalibration::base_recalibrator(
            &records,
            RefView::new(&self.references),
            &self.known_sites,
            &self.config,
        );
        self.counters
            .add(keys::EXTERNAL_PROGRAM_NANOS, t0.elapsed().as_nanos() as u64);
        use gesall_formats::wire::Wire;
        ctx.emit(0, table.to_wire_bytes());
    }
}

/// Merge the partial tables a [`RecalTableMapper`] job emitted.
pub fn merge_recal_tables(
    outputs: &[Vec<(u64, Vec<u8>)>],
) -> gesall_tools::recalibration::RecalTable {
    use gesall_formats::wire::Wire;
    let mut merged = gesall_tools::recalibration::RecalTable::default();
    for out in outputs {
        for (_, bytes) in out {
            let partial = gesall_tools::recalibration::RecalTable::from_wire_bytes(bytes)
                .expect("partial recal table corrupt");
            merged.merge(&partial);
        }
    }
    merged
}

/// Pass-2 mapper (PrintReads): rewrite base qualities from the merged
/// table; map-only, partition-parallel.
pub struct PrintReadsMapper {
    pub table: Arc<gesall_tools::recalibration::RecalTable>,
    pub config: gesall_tools::recalibration::RecalConfig,
    pub counters: Counters,
}

impl Mapper for PrintReadsMapper {
    type InKey = String;
    type InValue = SharedBytes;
    type OutKey = String;
    type OutValue = SamRecord;

    fn map(
        &self,
        label: &String,
        bam_bytes: &SharedBytes,
        ctx: &mut MapContext<'_, String, SamRecord>,
    ) {
        let (_, mut records) = decode_bam(&self.counters, bam_bytes);
        let t0 = Instant::now();
        gesall_tools::recalibration::print_reads(&mut records, &self.table, &self.config);
        self.counters
            .add(keys::EXTERNAL_PROGRAM_NANOS, t0.elapsed().as_nanos() as u64);
        for r in records {
            ctx.emit(label.clone(), r);
        }
    }
}

// ---------------------------------------------------------------------
// Round 5: HaplotypeCaller (map-only over chromosome partitions)
// ---------------------------------------------------------------------

/// Round-5 mapper (v1 variant): UnifiedGenotyper over one sorted
/// chromosome partition — the paper's Unified Genotyper round, which
/// the bioinformaticians accept at chromosome granularity (§3.2).
pub struct Round5UnifiedGenotyper {
    pub references: Arc<Vec<Vec<u8>>>,
    pub chrom_names: Arc<Vec<String>>,
    pub config: gesall_tools::unified_genotyper::GenotyperConfig,
    pub counters: Counters,
}

impl Mapper for Round5UnifiedGenotyper {
    type InKey = String;
    type InValue = SharedBytes;
    type OutKey = String;
    type OutValue = VariantRecord;

    fn map(
        &self,
        _label: &String,
        bam_bytes: &SharedBytes,
        ctx: &mut MapContext<'_, String, VariantRecord>,
    ) {
        let (_, records) = decode_bam(&self.counters, bam_bytes);
        let Some(ref_id) = records.iter().find(|r| r.is_mapped()).map(|r| r.ref_id) else {
            return;
        };
        let chrom = self.chrom_names[ref_id as usize].clone();
        let rv = RefView::new(&self.references);
        let len = rv.chrom_len(ref_id) as i64;
        let t0 = Instant::now();
        let calls = gesall_tools::unified_genotyper::call_region(
            &records,
            ref_id,
            &chrom,
            1,
            len,
            rv,
            &self.config,
        );
        self.counters
            .add(keys::EXTERNAL_PROGRAM_NANOS, t0.elapsed().as_nanos() as u64);
        for v in calls {
            ctx.emit(chrom.clone(), v);
        }
    }
}

/// Round-5 mapper (fine-grained variant): HaplotypeCaller over one
/// **overlapping genome segment** — the paper's §3.2 proposal for
/// raising the degree of parallelism beyond 23 chromosomes. The split
/// label encodes `ref_id:core_start:core_end:span_start:span_end`; the
/// caller walks the padded span but emits only calls anchored inside the
/// core, so neighbouring segments' overlap regions deduplicate by
/// construction.
pub struct Round5HaplotypeCallerFine {
    pub references: Arc<Vec<Vec<u8>>>,
    pub chrom_names: Arc<Vec<String>>,
    pub config: HaplotypeCallerConfig,
    pub counters: Counters,
}

/// Encode a fine-grained segment label.
pub fn fine_segment_label(
    ref_id: i32,
    core: (i64, i64),
    span: (i64, i64),
) -> String {
    format!("{ref_id}:{}:{}:{}:{}", core.0, core.1, span.0, span.1)
}

fn parse_fine_label(label: &str) -> (i32, i64, i64, i64, i64) {
    let parts: Vec<i64> = label
        .split(':')
        .map(|p| p.parse().expect("fine-grained segment label"))
        .collect();
    assert_eq!(parts.len(), 5, "label {label:?}");
    (parts[0] as i32, parts[1], parts[2], parts[3], parts[4])
}

impl Mapper for Round5HaplotypeCallerFine {
    type InKey = String;
    type InValue = SharedBytes;
    type OutKey = String;
    type OutValue = VariantRecord;

    fn map(
        &self,
        label: &String,
        bam_bytes: &SharedBytes,
        ctx: &mut MapContext<'_, String, VariantRecord>,
    ) {
        let (_, records) = decode_bam(&self.counters, bam_bytes);
        let (ref_id, core_start, core_end, span_start, span_end) = parse_fine_label(label);
        let chrom = self.chrom_names[ref_id as usize].clone();
        let t0 = Instant::now();
        let result = gesall_tools::haplotype_caller::call_range(
            &records,
            ref_id,
            &chrom,
            span_start,
            span_end,
            RefView::new(&self.references),
            &self.config,
        );
        self.counters
            .add(keys::EXTERNAL_PROGRAM_NANOS, t0.elapsed().as_nanos() as u64);
        for v in result.variants {
            // Core-only emission: the deduplication rule of the
            // overlapping scheme.
            if v.pos >= core_start && v.pos <= core_end {
                ctx.emit(chrom.clone(), v);
            }
        }
    }
}

/// Round-5 mapper: one sorted chromosome partition in, variant calls out.
pub struct Round5HaplotypeCaller {
    pub references: Arc<Vec<Vec<u8>>>,
    pub chrom_names: Arc<Vec<String>>,
    pub config: HaplotypeCallerConfig,
    pub counters: Counters,
}

impl Mapper for Round5HaplotypeCaller {
    type InKey = String;
    type InValue = SharedBytes;
    type OutKey = String;
    type OutValue = VariantRecord;

    fn map(
        &self,
        _label: &String,
        bam_bytes: &SharedBytes,
        ctx: &mut MapContext<'_, String, VariantRecord>,
    ) {
        let (_, records) = decode_bam(&self.counters, bam_bytes);
        let Some(ref_id) = records.iter().find(|r| r.is_mapped()).map(|r| r.ref_id) else {
            return; // empty or all-unmapped partition
        };
        debug_assert!(
            records
                .iter()
                .filter(|r| r.is_mapped())
                .all(|r| r.ref_id == ref_id),
            "round-5 partition must hold a single chromosome"
        );
        let chrom = self.chrom_names[ref_id as usize].clone();
        let t0 = Instant::now();
        let result = call_chromosome(
            &records,
            ref_id,
            &chrom,
            RefView::new(&self.references),
            &self.config,
        );
        self.counters
            .add(keys::EXTERNAL_PROGRAM_NANOS, t0.elapsed().as_nanos() as u64);
        for v in result.variants {
            ctx.emit(chrom.clone(), v);
        }
    }
}
