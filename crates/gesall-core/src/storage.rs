//! The distributed storage substrate for BAM datasets (paper §3.1).
//!
//! Two features:
//!
//! 1. **Chunk-aware reading over blocks.** The DFS splits a BAM byte
//!    stream at block boundaries with no knowledge of chunk framing, so
//!    the last chunk in a block may continue in the next block. The
//!    [`BlockFrameReader`] reassembles complete chunk frames from a block
//!    sequence — the custom `RecordReader` of the paper.
//! 2. **Logical partitions.** [`upload_bam_partition`] writes a partition
//!    file whose blocks are pinned to one node (the custom
//!    `BlockPlacementPolicy`), so a wrapped single-node program can read
//!    its whole partition locally.

use crate::error::{PlatformError, Result};
use gesall_dfs::{Dfs, FileInfo, LogicalPartitionPlacement};
use gesall_formats::bam::{self, ChunkSetReader, FrameHeader, FRAME_HEADER_LEN};
use gesall_formats::sam::{SamHeader, SamRecord};
use gesall_formats::SharedBytes;

/// Reassembles chunk frames from a sequence of DFS blocks, tolerating
/// frames that straddle block boundaries.
///
/// Frames wholly inside one block are returned as zero-copy slices of
/// that block's shared backing; only frames that straddle a boundary
/// are stitched through the carry buffer (and charged to
/// [`BlockFrameReader::bytes_copied`]).
pub struct BlockFrameReader {
    carry: Vec<u8>,
    frames: Vec<SharedBytes>,
    /// Number of frames that straddled a block boundary.
    pub straddled: usize,
    /// Payload bytes memcpy'd while reassembling (carry buffering of
    /// straddling frames only). Callers surface this into the DFS's
    /// `mem.bytes.copied` gauge.
    pub bytes_copied: u64,
}

impl BlockFrameReader {
    pub fn new() -> BlockFrameReader {
        BlockFrameReader {
            carry: Vec::new(),
            frames: Vec::new(),
            straddled: 0,
            bytes_copied: 0,
        }
    }

    /// Feed the next block.
    pub fn push_block(&mut self, block: SharedBytes) {
        let mut pos = 0usize;
        if !self.carry.is_empty() {
            // A frame left straddling by the previous block: top the
            // carry up until the frame (or the block) runs out. An
            // unparseable carry swallows the rest so `finish` reports it.
            loop {
                let need = if self.carry.len() < FRAME_HEADER_LEN {
                    FRAME_HEADER_LEN
                } else {
                    match FrameHeader::parse(&self.carry) {
                        Ok(fh) => fh.frame_len(),
                        Err(_) => usize::MAX,
                    }
                };
                if self.carry.len() >= need {
                    let frame: Vec<u8> = self.carry.drain(..need).collect();
                    self.bytes_copied += need as u64;
                    self.straddled += 1;
                    self.frames.push(SharedBytes::from_vec(frame));
                    break;
                }
                let take = need
                    .saturating_sub(self.carry.len())
                    .min(block.len() - pos);
                if take == 0 {
                    return; // block exhausted, frame still incomplete
                }
                self.carry.extend_from_slice(&block[pos..pos + take]);
                self.bytes_copied += take as u64;
                pos += take;
            }
        }
        // Complete frames inside this block: zero-copy slices of its
        // shared backing.
        while pos < block.len() {
            let rest = &block[pos..];
            if rest.len() < FRAME_HEADER_LEN {
                break;
            }
            let Ok(fh) = FrameHeader::parse(rest) else {
                break;
            };
            let total = fh.frame_len();
            if rest.len() < total {
                break; // frame continues in the next block
            }
            self.frames.push(block.slice(pos..pos + total));
            pos += total;
        }
        if pos < block.len() {
            self.carry.extend_from_slice(&block[pos..]);
            self.bytes_copied += (block.len() - pos) as u64;
        }
    }

    /// Finish, returning the complete frames. Errors if bytes remain
    /// (truncated trailing frame).
    pub fn finish(self) -> Result<Vec<SharedBytes>> {
        if !self.carry.is_empty() {
            return Err(PlatformError::Invariant(format!(
                "{} dangling bytes after the last block",
                self.carry.len()
            )));
        }
        Ok(self.frames)
    }
}

impl Default for BlockFrameReader {
    fn default() -> Self {
        Self::new()
    }
}

/// Upload a BAM dataset as a regular (spread) DFS file.
pub fn upload_bam(
    dfs: &Dfs,
    path: &str,
    header: &SamHeader,
    records: &[SamRecord],
) -> Result<FileInfo> {
    // The serialized BAM is handed to the DFS by ownership — blocks
    // become zero-copy windows into it.
    let bytes = bam::write_bam(header, records);
    Ok(dfs.write_file_shared(path, SharedBytes::from_vec(bytes))?)
}

/// Upload a BAM dataset as a **logical partition**: all blocks pinned to
/// one node via the custom placement policy.
pub fn upload_bam_partition(
    dfs: &Dfs,
    path: &str,
    header: &SamHeader,
    records: &[SamRecord],
) -> Result<FileInfo> {
    let bytes = bam::write_bam(header, records);
    Ok(dfs.write_shared_with_policy(
        path,
        SharedBytes::from_vec(bytes),
        &LogicalPartitionPlacement,
    )?)
}

/// Read a BAM file back from the DFS through the block-aware frame
/// reader (exercising the straddle path), returning header + records.
pub fn read_bam_from_dfs(dfs: &Dfs, path: &str) -> Result<(SamHeader, Vec<SamRecord>)> {
    let frames = read_frames_from_dfs(dfs, path)?;
    let reader = ChunkSetReader::new(&frames)?;
    let header = reader.header().clone();
    let records: Vec<SamRecord> = reader.collect();
    Ok((header, records))
}

/// Read the chunk frames of a DFS BAM file block by block. In-block
/// frames come back as zero-copy slices of the stored blocks; only
/// boundary-straddling frames are stitched (and counted) through the
/// reader's carry buffer.
pub fn read_frames_from_dfs(dfs: &Dfs, path: &str) -> Result<Vec<SharedBytes>> {
    let info = dfs.stat(path)?;
    let mut reader = BlockFrameReader::new();
    for b in &info.blocks {
        reader.push_block(dfs.read_block(b)?);
    }
    dfs.metrics()
        .counter(gesall_dfs::metrics_keys::BYTES_COPIED)
        .add(reader.bytes_copied);
    reader.finish()
}

/// Read an arbitrary byte range of a DFS file, touching only the blocks
/// that cover it — the primitive an indexed region query needs. A range
/// inside a single block is served zero-copy as a slice of that block;
/// ranges spanning blocks pay one counted concatenation.
pub fn read_byte_range(dfs: &Dfs, path: &str, start: u64, len: u64) -> Result<SharedBytes> {
    let info = dfs.stat(path)?;
    if start + len > info.len as u64 {
        return Err(PlatformError::Invariant(format!(
            "byte range {start}+{len} exceeds file length {}",
            info.len
        )));
    }
    let mut pieces: Vec<(SharedBytes, usize, usize)> = Vec::new();
    let mut block_start = 0u64;
    for b in &info.blocks {
        let block_end = block_start + b.len as u64;
        if block_end > start && block_start < start + len {
            let bytes = dfs.read_block(b)?;
            let lo = start.saturating_sub(block_start) as usize;
            let hi = ((start + len - block_start) as usize).min(b.len);
            pieces.push((bytes, lo, hi));
        }
        block_start = block_end;
        if block_start >= start + len {
            break;
        }
    }
    match pieces.len() {
        0 => Ok(SharedBytes::new()),
        1 => {
            let (bytes, lo, hi) = pieces.pop().unwrap();
            Ok(bytes.slice(lo..hi))
        }
        _ => {
            let mut out = Vec::with_capacity(len as usize);
            for (bytes, lo, hi) in &pieces {
                out.extend_from_slice(&bytes[*lo..*hi]);
            }
            dfs.metrics()
                .counter(gesall_dfs::metrics_keys::BYTES_COPIED)
                .add(out.len() as u64);
            Ok(SharedBytes::from_vec(out))
        }
    }
}

/// Upload a *sorted, indexed* BAM partition (the Round-4 output format):
/// writes `<path>` (BAM bytes, logical-partition placement) and
/// `<path>.idx` (the coordinate index). Returns the index.
pub fn upload_indexed_bam_partition(
    dfs: &Dfs,
    path: &str,
    header: &SamHeader,
    records: &[SamRecord],
) -> Result<gesall_formats::bam::BamIndex> {
    let (bytes, index) = gesall_formats::bam::write_bam_indexed(header, records);
    dfs.write_shared_with_policy(
        path,
        SharedBytes::from_vec(bytes),
        &gesall_dfs::LogicalPartitionPlacement,
    )?;
    dfs.write_shared_with_policy(
        &format!("{path}.idx"),
        SharedBytes::from_vec(index.to_bytes()),
        &gesall_dfs::LogicalPartitionPlacement,
    )?;
    Ok(index)
}

/// Indexed region query over a DFS-resident BAM: fetch the index, pick
/// the overlapping chunks, and read only their byte ranges (so only the
/// covering blocks are touched — the paper's Round-5 seek pattern).
pub fn read_region_from_dfs(
    dfs: &Dfs,
    path: &str,
    ref_id: i32,
    start: i64,
    end: i64,
) -> Result<Vec<SamRecord>> {
    let index_bytes = dfs.read_file_shared(&format!("{path}.idx"))?;
    let index = gesall_formats::bam::BamIndex::from_bytes(&index_bytes)?;
    let mut out = Vec::new();
    for (offset, len) in index.chunks_for_region(ref_id, start, end) {
        let frame = read_byte_range(dfs, path, offset, len)?;
        let (chunk, _) = bam::decode_frame(&frame)?;
        for rec in chunk.records()? {
            if rec.overlaps(ref_id, start, end) {
                out.push(rec);
            }
        }
    }
    Ok(out)
}

/// Upload a set of logical partitions under `base/part-NNNNN`, returning
/// the per-partition (path, home node). Used by every wrapper round to
/// stage its input.
pub fn upload_partitions(
    dfs: &Dfs,
    base: &str,
    header: &SamHeader,
    partitions: &[Vec<SamRecord>],
) -> Result<Vec<(String, Option<usize>)>> {
    let mut out = Vec::with_capacity(partitions.len());
    for (i, part) in partitions.iter().enumerate() {
        let path = format!("{base}/part-{i:05}");
        let info = upload_bam_partition(dfs, &path, header, part)?;
        out.push((path, info.single_home()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_dfs::DfsConfig;
    use gesall_formats::sam::header::ReferenceSeq;
    use gesall_formats::sam::{Cigar, Flags};

    fn header() -> SamHeader {
        SamHeader::new(vec![ReferenceSeq {
            name: "chr1".into(),
            len: 1_000_000,
        }])
    }

    fn records(n: usize) -> Vec<SamRecord> {
        (0..n)
            .map(|i| {
                let mut r = SamRecord::unmapped(
                    format!("r{i:06}"),
                    vec![b"ACGT"[i % 4]; 100],
                    vec![30; 100],
                );
                r.flags = Flags(Flags::PAIRED);
                r.flags.set(Flags::UNMAPPED, false);
                r.ref_id = 0;
                r.pos = i as i64 + 1;
                r.cigar = Cigar::full_match(100);
                r
            })
            .collect()
    }

    fn small_dfs() -> Dfs {
        // Tiny blocks so chunks straddle boundaries constantly.
        Dfs::new(DfsConfig {
            n_nodes: 4,
            block_size: 4096,
            replication: 1,
            ..DfsConfig::default()
        })
    }

    #[test]
    fn bam_roundtrip_over_blocks_with_straddling() {
        let dfs = small_dfs();
        let h = header();
        let recs = records(3000);
        upload_bam(&dfs, "/data/sample.bam", &h, &recs).unwrap();
        // Verify blocks are plural and frames straddle.
        let info = dfs.stat("/data/sample.bam").unwrap();
        assert!(info.blocks.len() > 5);
        let mut reader = BlockFrameReader::new();
        for b in &info.blocks {
            reader.push_block(dfs.read_block(b).unwrap());
        }
        assert!(
            reader.straddled > 0,
            "4 KiB blocks with ~64 KiB chunks must straddle"
        );
        let (h2, r2) = read_bam_from_dfs(&dfs, "/data/sample.bam").unwrap();
        assert_eq!(h2, h);
        assert_eq!(r2, recs);
    }

    #[test]
    fn truncated_file_detected() {
        let dfs = small_dfs();
        let h = header();
        let bytes = bam::write_bam(&h, &records(500));
        dfs.write_file("/trunc", &bytes[..bytes.len() - 10]).unwrap();
        assert!(read_frames_from_dfs(&dfs, "/trunc").is_err());
    }

    #[test]
    fn logical_partition_has_single_home() {
        let dfs = small_dfs();
        let h = header();
        let parts: Vec<Vec<SamRecord>> = records(900)
            .chunks(300)
            .map(|c| c.to_vec())
            .collect();
        let placed = upload_partitions(&dfs, "/job1/in", &h, &parts).unwrap();
        assert_eq!(placed.len(), 3);
        for (path, home) in &placed {
            assert!(home.is_some(), "{path} not single-homed");
            let (h2, recs) = read_bam_from_dfs(&dfs, path).unwrap();
            assert_eq!(h2, h);
            assert_eq!(recs.len(), 300);
        }
        // Partitions keep record order and content.
        let (_, p0) = read_bam_from_dfs(&dfs, &placed[0].0).unwrap();
        assert_eq!(p0, parts[0]);
    }

    #[test]
    fn empty_partition_roundtrip() {
        let dfs = small_dfs();
        let h = header();
        upload_bam_partition(&dfs, "/empty", &h, &[]).unwrap();
        let (h2, recs) = read_bam_from_dfs(&dfs, "/empty").unwrap();
        assert_eq!(h2, h);
        assert!(recs.is_empty());
    }

    #[test]
    fn byte_range_reads_across_blocks() {
        let dfs = small_dfs(); // 4 KiB blocks
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        dfs.write_file("/raw", &data).unwrap();
        for (start, len) in [(0u64, 10u64), (4090, 20), (8000, 9000), (19_990, 10)] {
            let got = read_byte_range(&dfs, "/raw", start, len).unwrap();
            assert_eq!(
                got,
                &data[start as usize..(start + len) as usize],
                "range {start}+{len}"
            );
        }
        assert!(read_byte_range(&dfs, "/raw", 19_995, 10).is_err());
    }

    #[test]
    fn indexed_region_query_over_dfs() {
        let dfs = small_dfs();
        let h = header();
        let mut recs = records(4000);
        recs.sort_by_key(|r| r.coordinate_key());
        upload_indexed_bam_partition(&dfs, "/sorted/chr1", &h, &recs).unwrap();
        let got = read_region_from_dfs(&dfs, "/sorted/chr1", 0, 500, 900).unwrap();
        let expect: Vec<SamRecord> = recs
            .iter()
            .filter(|r| r.overlaps(0, 500, 900))
            .cloned()
            .collect();
        assert!(!expect.is_empty());
        assert_eq!(got, expect);
        // Empty region on another chromosome.
        assert!(read_region_from_dfs(&dfs, "/sorted/chr1", 3, 1, 100)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn replicated_partition_survives_node_failure() {
        // Failure injection: with replication 2, losing the partition's
        // home node must not lose the data — the DFS serves replicas and
        // the chunk reader reassembles as usual.
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 4,
            block_size: 4096,
            replication: 2,
            ..DfsConfig::default()
        });
        let h = header();
        let recs = records(1500);
        let info = upload_bam_partition(&dfs, "/repl/part-0", &h, &recs).unwrap();
        let home = info.single_home().expect("logical partition is single-homed");
        dfs.kill_node(home);
        let (h2, r2) = read_bam_from_dfs(&dfs, "/repl/part-0").unwrap();
        assert_eq!(h2, h);
        assert_eq!(r2, recs);
        // Losing the replica node too is fatal — and detected.
        let replica = (home + 1) % 4;
        dfs.kill_node(replica);
        assert!(read_bam_from_dfs(&dfs, "/repl/part-0").is_err());
    }

    #[test]
    fn frame_reader_single_push() {
        // Whole file in one "block" still works — and every frame is a
        // zero-copy window onto that block, with nothing memcpy'd.
        let h = header();
        let block = SharedBytes::from_vec(bam::write_bam(&h, &records(50)));
        let mut reader = BlockFrameReader::new();
        reader.push_block(block.clone());
        assert_eq!(reader.bytes_copied, 0);
        let frames = reader.finish().unwrap();
        assert!(frames.len() >= 2);
        assert!(frames.iter().all(|f| f.same_backing(&block)));
        let reader = ChunkSetReader::new(&frames).unwrap();
        assert_eq!(reader.header(), &h);
    }

    #[test]
    fn frame_reader_byte_at_a_time() {
        // Pathological splitting: every byte its own block.
        let h = header();
        let recs = records(20);
        let bytes = bam::write_bam(&h, &recs);
        let mut reader = BlockFrameReader::new();
        for b in &bytes {
            reader.push_block(SharedBytes::copy_from_slice(std::slice::from_ref(b)));
        }
        let frames = reader.finish().unwrap();
        let cr = ChunkSetReader::new(&frames).unwrap();
        let got: Vec<SamRecord> = cr.collect();
        assert_eq!(got, recs);
    }
}
