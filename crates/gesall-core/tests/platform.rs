//! End-to-end platform tests: the parallel five-round pipeline against
//! the serial GATK-best-practices baseline on a synthetic genome — the
//! machinery behind the paper's accuracy study (§4.5.2, Table 8).

use gesall_aligner::{Aligner, AlignerConfig, ReferenceIndex};
use gesall_core::diagnosis::{diff_alignments, diff_variants};
use gesall_core::pipeline::{serial_pipeline, GesallPlatform, PlatformConfig};
use gesall_datagen::donor::DonorConfig;
use gesall_datagen::reads::ReadSimConfig;
use gesall_datagen::{DonorGenome, GenomeConfig, ReadSimulator, ReferenceGenome};
use gesall_dfs::{Dfs, DfsConfig};
use gesall_formats::fastq::ReadPair;
use gesall_mapreduce::{ClusterResources, MapReduceEngine};
use gesall_tools::sort_sam::is_coordinate_sorted;

struct World {
    genome: ReferenceGenome,
    donor: DonorGenome,
    pairs: Vec<ReadPair>,
    aligner: Aligner,
    references: Vec<Vec<u8>>,
    chrom_names: Vec<String>,
}

fn build_world(n_pairs: usize) -> World {
    let genome = ReferenceGenome::generate(&GenomeConfig::tiny());
    let donor = DonorGenome::generate(&genome, &DonorConfig::default());
    let (pairs, _) = ReadSimulator::new(
        &genome,
        &donor,
        ReadSimConfig {
            n_pairs,
            duplicate_rate: 0.05,
            ..ReadSimConfig::default()
        },
    )
    .simulate();
    let chroms: Vec<(String, Vec<u8>)> = genome
        .chromosomes
        .iter()
        .map(|c| (c.name.clone(), c.seq.clone()))
        .collect();
    let references: Vec<Vec<u8>> = chroms.iter().map(|(_, s)| s.clone()).collect();
    let chrom_names: Vec<String> = chroms.iter().map(|(n, _)| n.clone()).collect();
    let aligner = Aligner::new(ReferenceIndex::build(&chroms), AlignerConfig::default());
    World {
        genome,
        donor,
        pairs,
        aligner,
        references,
        chrom_names,
    }
}

fn platform(config: PlatformConfig) -> GesallPlatform {
    let dfs = Dfs::new(DfsConfig {
        n_nodes: 4,
        block_size: 64 * 1024,
        replication: 1,
        ..DfsConfig::default()
    });
    let engine = MapReduceEngine::new(ClusterResources::uniform(4, 2, 8192));
    GesallPlatform::new(dfs, engine, config)
}

#[test]
fn parallel_pipeline_runs_all_five_rounds() {
    // ~5x coverage of the 100 kb genome so the caller has enough depth.
    let w = build_world(2500);
    let p = platform(PlatformConfig::default());
    let out = p.run_pipeline(&w.aligner, w.pairs.clone()).unwrap();

    // All reads survive: 2 records per pair.
    assert_eq!(out.records.len(), w.pairs.len() * 2);
    // Final arrangement is coordinate-sorted per chromosome partition.
    // (records = concat of chromosome partitions; chromosomes ordered.)
    assert!(is_coordinate_sorted(&out.records));
    // Duplicates got marked.
    let dups = out
        .records
        .iter()
        .filter(|r| r.flags.is_duplicate())
        .count();
    assert!(dups > 0, "simulated 5% PCR duplicates must be found");
    // Variants called.
    assert!(
        out.variants.len() > 10,
        "expected calls on a 100kb genome with ~1e-3 SNP rate, got {}",
        out.variants.len()
    );
    // Round summaries present for rounds 1,2,2b,3,4,5.
    assert_eq!(out.rounds.len(), 6);
    assert!(out.rounds.iter().all(|r| r.wall_ms >= 0.0));
}

#[test]
fn parallel_matches_serial_except_low_quality_fringe() {
    let w = build_world(600);
    let cfg = PlatformConfig {
        n_round1_partitions: 3,
        n_reducers: 3,
        ..PlatformConfig::default()
    };
    let seed = cfg.seed;
    let hc = cfg.hc.clone();
    let rg = cfg.read_group.clone();
    let p = platform(cfg);
    let parallel = p.run_pipeline(&w.aligner, w.pairs.clone()).unwrap();
    let (serial_records, serial_variants) = serial_pipeline(
        &w.aligner,
        &w.references,
        &w.chrom_names,
        &w.pairs,
        &rg,
        seed,
        &hc,
    );

    // Alignment-level diff (the Table 8 "D count" machinery).
    let adiff = diff_alignments(&serial_records, &parallel.records);
    assert_eq!(adiff.missing, 0, "partitioning must not lose reads");
    let total = serial_records.len() as u64;
    let d_frac = adiff.d_count() as f64 / total as f64;
    assert!(
        d_frac < 0.15,
        "discordance should be a small fraction, got {d_frac} ({} of {total})",
        adiff.d_count()
    );
    // The weighted (quality-aware) discordance is far smaller — the
    // paper's core claim.
    let weighted_pct = adiff.weighted_d_count_pct(total);
    assert!(
        weighted_pct < 2.0,
        "weighted D-count % should be tiny, got {weighted_pct}"
    );

    // Variant-level D-impact: overwhelmingly concordant.
    let vdiff = diff_variants(&serial_variants, &parallel.variants);
    let impact_frac =
        vdiff.d_impact() as f64 / (vdiff.concordant + vdiff.d_impact()).max(1) as f64;
    assert!(
        impact_frac < 0.12,
        "variant discordance {impact_frac} too high: {} concordant, {} serial-only, {} parallel-only",
        vdiff.concordant,
        vdiff.only_serial.len(),
        vdiff.only_parallel.len()
    );
}

#[test]
fn markdup_reg_and_opt_agree_on_duplicates() {
    let w = build_world(400);
    let mk = |opt: bool| {
        let cfg = PlatformConfig {
            markdup_opt: opt,
            ..PlatformConfig::default()
        };
        let p = platform(cfg);
        let out = p.run_pipeline(&w.aligner, w.pairs.clone()).unwrap();
        let mut dups: Vec<String> = out
            .records
            .iter()
            .filter(|r| r.flags.is_duplicate())
            .map(|r| format!("{}/{}", r.name, r.flags.is_first_in_pair()))
            .collect();
        dups.sort();
        (dups, out)
    };
    let (dups_opt, out_opt) = mk(true);
    let (dups_reg, out_reg) = mk(false);
    assert_eq!(
        dups_opt, dups_reg,
        "the bloom optimisation must not change results"
    );
    // But it must shuffle fewer records in round 3.
    let shuffled = |out: &gesall_core::PipelineOutput| {
        out.rounds
            .iter()
            .find(|r| r.name == "round3-markdup")
            .and_then(|r| {
                r.counters
                    .iter()
                    .find(|(k, _)| k == "shuffle.records")
                    .map(|(_, v)| *v)
            })
            .unwrap_or(0)
    };
    // Counters are cumulative across rounds in this implementation, so
    // compare the total; reg emits strictly more witness records.
    let (s_opt, s_reg) = (shuffled(&out_opt), shuffled(&out_reg));
    assert!(
        s_reg > s_opt,
        "MarkDup_reg must shuffle more records ({s_reg} vs {s_opt})"
    );
}

#[test]
fn recalibration_rounds_match_serial_table_exactly() {
    use gesall_core::pipeline::CallerChoice;
    use gesall_tools::recalibration::{base_recalibrator, RecalConfig};
    use gesall_tools::refview::RefView;
    let w = build_world(800);
    let cfg = PlatformConfig {
        recalibrate: true,
        caller: CallerChoice::UnifiedGenotyper,
        ..PlatformConfig::default()
    };
    let p = platform(cfg);
    let out = p.run_pipeline(&w.aligner, w.pairs.clone()).unwrap();
    // The recal rounds ran.
    assert!(out.rounds.iter().any(|r| r.name == "round4a-recal-table"));
    assert!(out.rounds.iter().any(|r| r.name == "round4b-print-reads"));
    assert!(out
        .rounds
        .iter()
        .any(|r| r.name == "round5-unifiedgenotyper"));

    // Distributivity check: run the same pipeline WITHOUT recalibration,
    // build the serial whole-dataset table from its sorted records, and
    // verify the parallel pipeline's recalibrated qualities equal
    // applying that serial table.
    let p2 = platform(PlatformConfig {
        recalibrate: false,
        caller: CallerChoice::UnifiedGenotyper,
        ..PlatformConfig::default()
    });
    let base = p2.run_pipeline(&w.aligner, w.pairs.clone()).unwrap();
    let mapped: Vec<_> = base
        .records
        .iter()
        .filter(|r| r.is_mapped())
        .cloned()
        .collect();
    let table = base_recalibrator(
        &mapped,
        RefView::new(&w.references),
        &std::collections::HashSet::new(),
        &RecalConfig::default(),
    );
    let mut expect = mapped.clone();
    gesall_tools::recalibration::print_reads(&mut expect, &table, &RecalConfig::default());
    let recal_mapped: Vec<_> = out
        .records
        .iter()
        .filter(|r| r.is_mapped())
        .cloned()
        .collect();
    assert_eq!(
        recal_mapped.len(),
        expect.len(),
        "recalibration must not add or drop records"
    );
    // Compare base qualities by read identity.
    use std::collections::HashMap;
    let by_id: HashMap<(String, bool), &gesall_formats::sam::SamRecord> = expect
        .iter()
        .map(|r| ((r.name.clone(), r.flags.is_first_in_pair()), r))
        .collect();
    let mut changed = 0usize;
    for r in &recal_mapped {
        let e = by_id[&(r.name.clone(), r.flags.is_first_in_pair())];
        assert_eq!(
            r.qual, e.qual,
            "parallel recalibration must equal serial-table application for {}",
            r.name
        );
        if r.qual != mapped.iter().find(|m| m.name == r.name && m.flags.is_first_in_pair() == r.flags.is_first_in_pair()).unwrap().qual {
            changed += 1;
        }
    }
    assert!(changed > 0, "recalibration should adjust some qualities");
}

#[test]
fn unified_genotyper_round_calls_variants() {
    use gesall_core::pipeline::CallerChoice;
    let w = build_world(2500);
    let p = platform(PlatformConfig {
        caller: CallerChoice::UnifiedGenotyper,
        ..PlatformConfig::default()
    });
    let out = p.run_pipeline(&w.aligner, w.pairs.clone()).unwrap();
    assert!(
        out.variants.len() > 10,
        "UG should call variants at 5x, got {}",
        out.variants.len()
    );
    // UG (whole-genome pileup walk) and HC (active windows) broadly agree.
    let p2 = platform(PlatformConfig::default());
    let hc = p2.run_pipeline(&w.aligner, w.pairs.clone()).unwrap();
    let d = gesall_core::diagnosis::diff_variants(&out.variants, &hc.variants);
    let agree = d.concordant as f64 / (d.concordant + d.d_impact()).max(1) as f64;
    assert!(
        agree > 0.6,
        "UG and HC should mostly agree, got {agree} ({} vs {} calls)",
        out.variants.len(),
        hc.variants.len()
    );
}

#[test]
fn fine_grained_hc_matches_chromosome_level_closely() {
    use gesall_core::pipeline::HcPartitioning;
    let w = build_world(2500);
    let coarse = platform(PlatformConfig::default())
        .run_pipeline(&w.aligner, w.pairs.clone())
        .unwrap();
    let fine_cfg = PlatformConfig {
        hc_partitioning: HcPartitioning::FineGrained {
            segment_len: 20_000,
            overlap: 2_000,
        },
        ..PlatformConfig::default()
    };
    let fine = platform(fine_cfg)
        .run_pipeline(&w.aligner, w.pairs.clone())
        .unwrap();
    assert!(
        fine.rounds.iter().any(|r| r.name == "round5-hc-finegrained"),
        "{:?}",
        fine.rounds.iter().map(|r| r.name.clone()).collect::<Vec<_>>()
    );
    // Many more round-5 tasks than chromosomes — the point of the scheme.
    let fine_tasks = fine
        .rounds
        .iter()
        .find(|r| r.name == "round5-hc-finegrained")
        .unwrap()
        .n_map_tasks;
    assert!(fine_tasks > 2, "expected many segment tasks, got {fine_tasks}");
    // Bounded error: the call sets agree except near window boundaries.
    let d = gesall_core::diagnosis::diff_variants(&coarse.variants, &fine.variants);
    let frac = d.d_impact() as f64 / (d.concordant + d.d_impact()).max(1) as f64;
    assert!(
        frac < 0.10,
        "fine-grained discordance {frac} too high ({} vs {} calls, {} concordant)",
        coarse.variants.len(),
        fine.variants.len(),
        d.concordant
    );
    // No duplicated call sites from the overlap zones.
    let mut keys: Vec<_> = fine.variants.iter().map(|v| v.site_key()).collect();
    let n = keys.len();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), n, "core-only emission must deduplicate overlaps");
}

#[test]
fn platform_is_reusable_across_runs() {
    let w = build_world(200);
    let p = platform(PlatformConfig::default());
    let a = p.run_pipeline(&w.aligner, w.pairs.clone()).unwrap();
    let b = p.run_pipeline(&w.aligner, w.pairs.clone()).unwrap();
    assert_eq!(a.records, b.records, "same platform, same input, same output");
    assert_eq!(a.variants, b.variants);
}

#[test]
fn truth_set_recovery_is_strong() {
    // The GIAB-style check (Appendix B.3): precision & sensitivity of
    // the parallel pipeline against the spiked truth set.
    use gesall_tools::vcf_metrics::{precision_sensitivity, SiteKey};
    use std::collections::HashSet;
    let w = build_world(3000); // ~6x coverage of the 100kb genome
    let p = platform(PlatformConfig::default());
    let out = p.run_pipeline(&w.aligner, w.pairs.clone()).unwrap();
    let truth: HashSet<SiteKey> = w
        .donor
        .truth
        .iter()
        .map(|t| {
            (
                t.chrom.clone(),
                t.pos,
                t.ref_allele.clone(),
                t.alt_allele.clone(),
            )
        })
        .collect();
    let ps = precision_sensitivity(&out.variants, &truth);
    assert!(
        ps.precision > 0.8,
        "precision {} too low ({} fp)",
        ps.precision,
        ps.false_positives
    );
    assert!(
        ps.sensitivity > 0.35,
        "sensitivity {} too low at ~6x coverage ({} tp, {} fn)",
        ps.sensitivity,
        ps.true_positives,
        ps.false_negatives
    );
    let _ = &w.genome; // silence unused when assertions hold
}

#[test]
fn traced_pipeline_emits_round_spans_and_phase_table() {
    use gesall_mapreduce::{Phase, Recorder, SpanKind};
    let w = build_world(600);
    let dfs = Dfs::new(DfsConfig {
        n_nodes: 4,
        block_size: 64 * 1024,
        replication: 1,
        ..DfsConfig::default()
    });
    let recorder = Recorder::new();
    let engine =
        MapReduceEngine::new(ClusterResources::uniform(4, 2, 8192)).with_recorder(recorder.clone());
    // Tiny sort buffer + low fan-in force spills and multipass merges, so
    // the shuffling rounds exercise every phase of the decomposition.
    let p = GesallPlatform::new(
        dfs,
        engine,
        PlatformConfig {
            io_sort_bytes: 2048,
            merge_factor: 2,
            ..PlatformConfig::default()
        },
    );
    let out = p.run_pipeline(&w.aligner, w.pairs.clone()).unwrap();

    // One pipeline span; one round span per executed round, all its children.
    let pipes = recorder.spans_of_kind(SpanKind::Pipeline);
    assert_eq!(pipes.len(), 1);
    let rounds = recorder.spans_of_kind(SpanKind::Round);
    assert_eq!(rounds.len(), out.rounds.len());
    assert!(rounds.iter().all(|r| r.parent == pipes[0].id));
    let names: Vec<&str> = rounds.iter().map(|r| r.name.as_str()).collect();
    for s in &out.rounds {
        assert!(names.contains(&s.name.as_str()), "missing round span {}", s.name);
    }
    // Each round's job nests under its round span.
    let round_ids: Vec<_> = rounds.iter().map(|r| r.id).collect();
    let jobs = recorder.spans_of_kind(SpanKind::Job);
    assert_eq!(jobs.len(), out.rounds.len());
    assert!(jobs.iter().all(|j| round_ids.contains(&j.parent)));

    // The shuffling rounds decompose into all six phases.
    let rows = out.phase_rows();
    for label in ["round2-clean-fixmate", "round3-markdup", "round4-sort"] {
        let row = rows.iter().find(|r| r.label == label).unwrap();
        assert!(
            row.covers_all_phases(),
            "{label} missing phases:\n{}",
            out.phase_table()
        );
    }
    let table = out.phase_table();
    for phase in Phase::ALL {
        assert!(table.contains(phase.name()), "table lacks column {}", phase.name());
    }
}

#[test]
fn faulty_pipeline_matches_fault_free_output() {
    // The whole-stack robustness check: ~15% of map attempts panic and a
    // node dies during round 1's map wave. The fault-tolerant platform
    // (engine node-death hook wired to DFS fail_node + re_replicate)
    // must still produce byte-identical records and variants.
    use gesall_mapreduce::{FaultPlan, TaskKind};

    let w = build_world(600);
    let cfg = || PlatformConfig {
        n_round1_partitions: 4,
        n_reducers: 3,
        ..PlatformConfig::default()
    };

    let baseline = platform(cfg())
        .run_pipeline(&w.aligner, w.pairs.clone())
        .unwrap();

    let dfs = Dfs::new(DfsConfig {
        n_nodes: 4,
        block_size: 64 * 1024,
        replication: 2, // so fail_node leaves survivors to re-replicate
        ..DfsConfig::default()
    });
    let engine = MapReduceEngine::new(ClusterResources::uniform(4, 2, 8192)).with_fault_plan(
        FaultPlan::seeded(0xBAD5EED)
            .with_map_panic_rate(0.15)
            // The rounds have few map tasks, so also force one panic:
            // map task 0's first attempt dies in every round.
            .panic_on(TaskKind::Map, 0, 0)
            .kill_node_after_maps(1, 2),
    );
    let p = GesallPlatform::with_fault_tolerance(dfs, engine, cfg());
    let out = p.run_pipeline(&w.aligner, w.pairs.clone()).unwrap();

    assert_eq!(out.records, baseline.records);
    assert_eq!(out.variants, baseline.variants);
    // The death actually happened and propagated engine → DFS.
    assert_eq!(p.engine.dead_nodes(), vec![1]);
    assert!(p.dfs.is_node_dead(1));
    assert!(!p.dfs.is_node_dead(0));
    // Injected panics were absorbed by retries somewhere in the rounds.
    let failed: u64 = out
        .rounds
        .iter()
        .flat_map(|r| r.counters.iter())
        .filter(|(k, _)| k == gesall_mapreduce::counters::keys::FAILED_ATTEMPTS)
        .map(|(_, v)| *v)
        .max()
        .unwrap_or(0);
    assert!(failed > 0, "the 15% panic rate must have fired at least once");
}

#[test]
fn dag_cache_serves_warm_rerun_and_invalidation_is_surgical() {
    use gesall_core::pipeline::{DagRunOptions, RunOptions};

    let w = build_world(700);
    let p = platform(PlatformConfig::default());
    let opts = RunOptions::default();

    // Cold run: every stage executes, nothing hits.
    let cold = p
        .run_pipeline_dag(&w.aligner, w.pairs.clone(), &opts, &DagRunOptions::default())
        .unwrap();
    assert_eq!(cold.stages.len(), 6, "default config is a six-stage DAG");
    assert_eq!(cold.stages_run(), 6);
    assert_eq!(cold.cache_hits(), 0);
    assert_eq!(cold.rounds.len(), 6, "cold run executes every round");

    // Warm rerun on the same platform: all six stages come from the
    // content-addressed store and the final output is byte-identical.
    let warm = p
        .run_pipeline_dag(&w.aligner, w.pairs.clone(), &opts, &DagRunOptions::default())
        .unwrap();
    assert_eq!(warm.stages_run(), 0);
    assert_eq!(warm.cache_hits(), 6);
    assert!(warm.rounds.is_empty(), "no stage body ran");
    assert_eq!(warm.records, cold.records);
    assert_eq!(warm.variants, cold.variants);
    // Observable on the platform registry too.
    assert_eq!(
        p.dfs.metrics().counter(gesall_core::dag::keys::STAGES_CACHE_HIT).get(),
        6
    );

    // Invalidate round4-sort: exactly it and its sole descendant
    // (round5) re-execute; rounds 1–3 + bloom stay cached.
    let inv = DagRunOptions {
        invalidate: vec![("round4-sort".to_string(), 1)],
        ..DagRunOptions::default()
    };
    let partial = p
        .run_pipeline_dag(&w.aligner, w.pairs.clone(), &opts, &inv)
        .unwrap();
    assert_eq!(partial.stages_run(), 2);
    assert_eq!(partial.cache_hits(), 4);
    for s in &partial.stages {
        let expect_run = s.name == "round4-sort" || s.name.starts_with("round5-");
        assert_eq!(!s.cache_hit, expect_run, "stage {} resolution", s.name);
    }
    // The invalidated lineage recomputes to the same bytes.
    assert_eq!(partial.records, cold.records);
    assert_eq!(partial.variants, cold.variants);
}

#[test]
fn dag_executor_matches_sequential_oracle() {
    use gesall_core::pipeline::RunOptions;

    let w = build_world(600);
    let config = PlatformConfig {
        recalibrate: true,
        ..PlatformConfig::default()
    };

    let seq = platform(config.clone())
        .run_pipeline_sequential(&w.aligner, w.pairs.clone(), &RunOptions::default())
        .unwrap();
    assert!(seq.stages.is_empty(), "the oracle does not report stages");

    let dag = platform(config)
        .run_pipeline(&w.aligner, w.pairs.clone())
        .unwrap();
    assert_eq!(dag.stages.len(), 8, "recalibrating DAG has eight stages");
    assert_eq!(dag.records, seq.records);
    assert_eq!(dag.variants, seq.variants);
    assert_eq!(
        dag.rounds.iter().map(|r| r.name.clone()).collect::<Vec<_>>(),
        seq.rounds.iter().map(|r| r.name.clone()).collect::<Vec<_>>(),
        "both drivers execute the same rounds in the same order"
    );
    // The stage report renders with critical-path attribution.
    let report = dag.dag_report();
    assert!(report.contains("round4a-recal-table"));
}
