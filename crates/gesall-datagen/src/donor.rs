//! Diploid donor genomes with a ground-truth variant set.
//!
//! The donor is the "test genome" being sequenced: two haplotypes derived
//! from the reference by spiking in SNPs and small indels. The spiked
//! variants form the truth set against which called variants are scored
//! (precision/sensitivity, Appendix B.3 of the paper).

use crate::reference::ReferenceGenome;
use gesall_formats::vcf::Genotype;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One ground-truth variant in reference coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthVariant {
    pub chrom: String,
    /// 1-based reference position of the first affected base.
    pub pos: i64,
    pub ref_allele: String,
    pub alt_allele: String,
    pub genotype: Genotype,
}

/// One haplotype of one chromosome, plus the reference coordinate of each
/// haplotype base (needed to translate simulated read positions back).
#[derive(Debug, Clone)]
pub struct Haplotype {
    pub seq: Vec<u8>,
    /// `ref_pos[i]` = 0-based reference position that haplotype base `i`
    /// derives from (insertions repeat the anchor position).
    pub ref_pos: Vec<u32>,
}

/// Parameters for donor synthesis.
#[derive(Debug, Clone)]
pub struct DonorConfig {
    /// SNPs per base (human het rate ≈ 1e-3).
    pub snp_rate: f64,
    /// Indels per base (≈ 1e-4 in humans).
    pub indel_rate: f64,
    /// Maximum indel length.
    pub max_indel_len: usize,
    /// Fraction of variants that are homozygous (on both haplotypes).
    pub hom_fraction: f64,
    pub seed: u64,
}

impl Default for DonorConfig {
    fn default() -> DonorConfig {
        DonorConfig {
            snp_rate: 1e-3,
            indel_rate: 1e-4,
            max_indel_len: 8,
            hom_fraction: 0.35,
            seed: 7,
        }
    }
}

/// A diploid donor: per chromosome, two haplotypes, plus the truth set.
#[derive(Debug, Clone)]
pub struct DonorGenome {
    /// Indexed like the reference's chromosomes: `haplotypes[c] = [h0, h1]`.
    pub haplotypes: Vec<[Haplotype; 2]>,
    /// All spiked variants sorted by (chromosome index, position).
    pub truth: Vec<TruthVariant>,
}

impl DonorGenome {
    /// Derive a donor from a reference. Deterministic in `config.seed`.
    pub fn generate(reference: &ReferenceGenome, config: &DonorConfig) -> DonorGenome {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut haplotypes = Vec::new();
        let mut truth = Vec::new();

        for chrom in &reference.chromosomes {
            // Choose variant sites on the reference, far enough apart that
            // alleles never overlap (simplifies haplotype construction and
            // matches the sparse-variant regime of real genomes).
            let min_gap = config.max_indel_len + 2;
            let mut sites: Vec<Variant> = Vec::new();
            let mut pos = 1usize; // skip position 0 so indel anchors exist
            while pos + min_gap < chrom.seq.len() {
                let roll: f64 = rng.gen();
                if roll < config.snp_rate {
                    let r = chrom.seq[pos];
                    // Transitions (A<->G, C<->T) dominate real mutation
                    // spectra: bias 2:1 so called Ti/Tv lands near 2, as
                    // quality metrics expect.
                    let transition_partner = match r {
                        b'A' => b'G',
                        b'G' => b'A',
                        b'C' => b'T',
                        _ => b'C',
                    };
                    let alt = if rng.gen_bool(2.0 / 3.0) {
                        transition_partner
                    } else {
                        *b"ACGT"
                            .iter()
                            .filter(|&&c| c != r && c != transition_partner)
                            .nth(rng.gen_range(0..2))
                            .unwrap()
                    };
                    sites.push(Variant {
                        pos,
                        kind: VarKind::Snp(alt),
                        hom: rng.gen_bool(config.hom_fraction),
                    });
                    pos += min_gap;
                } else if roll < config.snp_rate + config.indel_rate {
                    let len = rng.gen_range(1..=config.max_indel_len);
                    let kind = if rng.gen_bool(0.5) {
                        let ins: Vec<u8> =
                            (0..len).map(|_| b"ACGT"[rng.gen_range(0..4usize)]).collect();
                        VarKind::Ins(ins)
                    } else {
                        VarKind::Del(len)
                    };
                    sites.push(Variant {
                        pos,
                        kind,
                        hom: rng.gen_bool(config.hom_fraction),
                    });
                    pos += min_gap;
                } else {
                    pos += 1;
                }
            }

            // Record truth entries.
            for v in &sites {
                truth.push(v.to_truth(&chrom.name, &chrom.seq));
            }

            // Het variants land on a random single haplotype.
            let hap_choice: Vec<usize> = sites.iter().map(|_| rng.gen_range(0..2)).collect();
            let h0 = apply_variants(&chrom.seq, &sites, &hap_choice, 0);
            let h1 = apply_variants(&chrom.seq, &sites, &hap_choice, 1);
            haplotypes.push([h0, h1]);
        }

        DonorGenome { haplotypes, truth }
    }

    /// Truth variants on one chromosome.
    pub fn truth_for(&self, chrom: &str) -> Vec<&TruthVariant> {
        self.truth.iter().filter(|v| v.chrom == chrom).collect()
    }
}

#[derive(Debug, Clone)]
enum VarKind {
    Snp(u8),
    Ins(Vec<u8>),
    Del(usize),
}

#[derive(Debug, Clone)]
struct Variant {
    /// 0-based reference position of the affected base (SNP) or anchor
    /// base (indel: the base *before* the inserted/deleted run).
    pos: usize,
    kind: VarKind,
    hom: bool,
}

impl Variant {
    fn to_truth(&self, chrom: &str, reference: &[u8]) -> TruthVariant {
        let genotype = if self.hom {
            Genotype::HomAlt
        } else {
            Genotype::Het
        };
        match &self.kind {
            VarKind::Snp(alt) => TruthVariant {
                chrom: chrom.to_string(),
                pos: self.pos as i64 + 1,
                ref_allele: (reference[self.pos] as char).to_string(),
                alt_allele: (*alt as char).to_string(),
                genotype,
            },
            VarKind::Ins(bases) => TruthVariant {
                chrom: chrom.to_string(),
                pos: self.pos as i64 + 1,
                ref_allele: (reference[self.pos] as char).to_string(),
                alt_allele: format!(
                    "{}{}",
                    reference[self.pos] as char,
                    String::from_utf8_lossy(bases)
                ),
                genotype,
            },
            VarKind::Del(len) => TruthVariant {
                chrom: chrom.to_string(),
                pos: self.pos as i64 + 1,
                ref_allele: String::from_utf8_lossy(&reference[self.pos..self.pos + len + 1])
                    .into_owned(),
                alt_allele: (reference[self.pos] as char).to_string(),
                genotype,
            },
        }
    }
}

fn apply_variants(
    reference: &[u8],
    sites: &[Variant],
    hap_choice: &[usize],
    hap: usize,
) -> Haplotype {
    let mut seq = Vec::with_capacity(reference.len() + 64);
    let mut ref_pos = Vec::with_capacity(reference.len() + 64);
    let mut next = 0usize;
    for (v, &choice) in sites.iter().zip(hap_choice) {
        if !v.hom && choice != hap {
            continue; // het variant on the other haplotype
        }
        // Copy reference up to (and including) the anchor/affected base.
        while next <= v.pos {
            seq.push(reference[next]);
            ref_pos.push(next as u32);
            next += 1;
        }
        match &v.kind {
            VarKind::Snp(alt) => {
                *seq.last_mut().expect("anchor base was just pushed") = *alt;
            }
            VarKind::Ins(bases) => {
                for &b in bases {
                    seq.push(b);
                    ref_pos.push(v.pos as u32); // anchored at the insertion point
                }
            }
            VarKind::Del(len) => {
                next += len; // skip deleted reference bases
            }
        }
    }
    while next < reference.len() {
        seq.push(reference[next]);
        ref_pos.push(next as u32);
        next += 1;
    }
    Haplotype { seq, ref_pos }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{GenomeConfig, ReferenceGenome};

    fn setup() -> (ReferenceGenome, DonorGenome) {
        let reference = ReferenceGenome::generate(&GenomeConfig::tiny());
        let donor = DonorGenome::generate(&reference, &DonorConfig::default());
        (reference, donor)
    }

    #[test]
    fn deterministic() {
        let reference = ReferenceGenome::generate(&GenomeConfig::tiny());
        let a = DonorGenome::generate(&reference, &DonorConfig::default());
        let b = DonorGenome::generate(&reference, &DonorConfig::default());
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.haplotypes[0][0].seq, b.haplotypes[0][0].seq);
    }

    #[test]
    fn truth_set_is_nonempty_and_sorted() {
        let (_, donor) = setup();
        assert!(
            donor.truth.len() > 20,
            "expected a decent truth set, got {}",
            donor.truth.len()
        );
        let chr1: Vec<_> = donor.truth_for("chr1");
        assert!(chr1.windows(2).all(|w| w[0].pos < w[1].pos));
    }

    #[test]
    fn truth_ref_alleles_match_reference() {
        let (reference, donor) = setup();
        for v in &donor.truth {
            let chrom = reference.chromosome(&v.chrom).unwrap();
            let start = (v.pos - 1) as usize;
            let expect = &chrom.seq[start..start + v.ref_allele.len()];
            assert_eq!(
                v.ref_allele.as_bytes(),
                expect,
                "ref allele mismatch at {}:{}",
                v.chrom,
                v.pos
            );
        }
    }

    #[test]
    fn hom_variants_on_both_haplotypes() {
        let (reference, donor) = setup();
        // For every hom SNP, both haplotypes must carry the alt base.
        for v in donor.truth.iter().filter(|v| {
            v.genotype == Genotype::HomAlt
                && v.ref_allele.len() == 1
                && v.alt_allele.len() == 1
        }) {
            let ci = reference
                .chromosomes
                .iter()
                .position(|c| c.name == v.chrom)
                .unwrap();
            let alt = v.alt_allele.as_bytes()[0];
            for h in 0..2 {
                let hap = &donor.haplotypes[ci][h];
                let hap_i = hap
                    .ref_pos
                    .iter()
                    .position(|&p| p as i64 == v.pos - 1)
                    .unwrap();
                assert_eq!(
                    hap.seq[hap_i], alt,
                    "hom SNP at {}:{} missing on haplotype {h}",
                    v.chrom, v.pos
                );
            }
        }
    }

    #[test]
    fn het_snps_on_exactly_one_haplotype() {
        let (reference, donor) = setup();
        let mut checked = 0;
        for v in donor.truth.iter().filter(|v| {
            v.genotype == Genotype::Het && v.ref_allele.len() == 1 && v.alt_allele.len() == 1
        }) {
            let ci = reference
                .chromosomes
                .iter()
                .position(|c| c.name == v.chrom)
                .unwrap();
            let alt = v.alt_allele.as_bytes()[0];
            let carriers: usize = (0..2)
                .filter(|&h| {
                    let hap = &donor.haplotypes[ci][h];
                    let hap_i = hap
                        .ref_pos
                        .iter()
                        .position(|&p| p as i64 == v.pos - 1)
                        .unwrap();
                    hap.seq[hap_i] == alt
                })
                .count();
            assert_eq!(carriers, 1, "het SNP at {}:{}", v.chrom, v.pos);
            checked += 1;
        }
        assert!(checked > 0, "no het SNPs generated to check");
    }

    #[test]
    fn snp_spectrum_is_transition_biased() {
        // 2:1 transition bias ⇒ Ti/Tv ≈ 2, the value real call-set
        // quality metrics expect.
        let reference = ReferenceGenome::generate(&GenomeConfig {
            chromosome_lengths: vec![400_000],
            ..GenomeConfig::tiny()
        });
        let donor = DonorGenome::generate(&reference, &DonorConfig::default());
        let is_transition = |r: &str, a: &str| {
            matches!(
                (r.as_bytes()[0], a.as_bytes()[0]),
                (b'A', b'G') | (b'G', b'A') | (b'C', b'T') | (b'T', b'C')
            )
        };
        let snps: Vec<_> = donor
            .truth
            .iter()
            .filter(|v| v.ref_allele.len() == 1 && v.alt_allele.len() == 1)
            .collect();
        assert!(snps.len() > 100, "need a decent SNP sample");
        let ti = snps
            .iter()
            .filter(|v| is_transition(&v.ref_allele, &v.alt_allele))
            .count() as f64;
        let tv = snps.len() as f64 - ti;
        let titv = ti / tv;
        assert!(
            (1.4..2.8).contains(&titv),
            "Ti/Tv should be near 2, got {titv}"
        );
    }

    #[test]
    fn indels_shift_haplotype_length() {
        let (reference, donor) = setup();
        let has_indel = donor
            .truth
            .iter()
            .any(|v| v.ref_allele.len() != v.alt_allele.len());
        assert!(has_indel, "expected some indels in the truth set");
        // Haplotype length differs from reference by the net indel sum.
        for (ci, chrom) in reference.chromosomes.iter().enumerate() {
            for h in 0..2 {
                let hap = &donor.haplotypes[ci][h];
                assert_eq!(hap.seq.len(), hap.ref_pos.len());
                let diff = hap.seq.len() as i64 - chrom.seq.len() as i64;
                assert!(diff.unsigned_abs() < 1000);
            }
        }
    }

    #[test]
    fn ref_pos_is_monotone() {
        let (_, donor) = setup();
        for haps in &donor.haplotypes {
            for h in haps {
                assert!(h.ref_pos.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }
}
