//! # gesall-datagen
//!
//! Synthetic whole-genome sequencing workloads.
//!
//! The paper evaluates on the NA12878 human sample (1.24 billion read
//! pairs, 64× coverage) which we cannot ship; this crate generates the
//! closest synthetic equivalent that exercises the same code paths:
//!
//! * [`reference`] — reference genomes with the genomic features the
//!   accuracy study hinges on: **centromeres** (long tandem repeats),
//!   **blacklisted** low-mappability regions, and **segmental
//!   duplications** that make reads multi-map (paper Fig. 11a shows
//!   discordant reads spiking exactly there).
//! * [`donor`] — a diploid donor genome: two haplotypes derived from the
//!   reference with ground-truth SNPs/indels spiked in (the GIAB-style
//!   truth set for precision/sensitivity in Appendix B.3).
//! * [`reads`] — a paired-end read simulator: normal insert-size
//!   distribution, position-dependent base-error/quality profile (read
//!   ends are lower quality — the premise of base recalibration), and PCR
//!   duplicates (the reason MarkDuplicates exists).

pub mod donor;
pub mod reads;
pub mod reference;

pub use donor::{DonorGenome, TruthVariant};
pub use reads::{ReadSimConfig, ReadSimulator};
pub use reference::{Chromosome, GenomeConfig, ReferenceGenome, Region};
