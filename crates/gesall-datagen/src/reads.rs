//! Paired-end read simulation.
//!
//! Models the relevant physics of an Illumina-style sequencer:
//!
//! * fragments sampled uniformly from a random haplotype, insert size
//!   normally distributed (the distribution parallel Bwa re-estimates per
//!   batch — paper Appendix B.2);
//! * fixed-length reads from both fragment ends, the reverse read
//!   reverse-complemented;
//! * base-call errors with a position-dependent rate — read ends are lower
//!   quality (the premise of Base Recalibration, Table 2 steps 11–12);
//! * PCR duplicates: a configurable fraction of fragments are re-amplified
//!   copies of earlier fragments (what MarkDuplicates must find).

use crate::donor::DonorGenome;
use crate::reference::ReferenceGenome;
use gesall_formats::dna::reverse_complement;
use gesall_formats::fastq::{FastqRecord, ReadPair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct ReadSimConfig {
    /// Number of read pairs to emit (duplicates included).
    pub n_pairs: usize,
    /// Read length in bases.
    pub read_len: usize,
    /// Mean insert (fragment) size.
    pub insert_mean: f64,
    /// Insert size standard deviation.
    pub insert_sd: f64,
    /// Base error probability at the best (central) cycle.
    pub base_error: f64,
    /// Additional error probability at the last cycle (ramps linearly
    /// from the read's midpoint).
    pub end_error_boost: f64,
    /// Fraction of pairs that are PCR duplicates of an earlier fragment.
    pub duplicate_rate: f64,
    pub seed: u64,
}

impl Default for ReadSimConfig {
    fn default() -> ReadSimConfig {
        ReadSimConfig {
            n_pairs: 10_000,
            read_len: 100,
            insert_mean: 400.0,
            insert_sd: 50.0,
            base_error: 0.001,
            end_error_boost: 0.01,
            duplicate_rate: 0.05,
            seed: 1234,
        }
    }
}

impl ReadSimConfig {
    /// Pair count for a target coverage depth over a genome.
    pub fn with_coverage(mut self, genome_len: usize, coverage: f64) -> ReadSimConfig {
        self.n_pairs = ((genome_len as f64 * coverage) / (2.0 * self.read_len as f64)) as usize;
        self
    }
}

/// Where a simulated fragment truly came from — retained for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentOrigin {
    pub chrom_index: usize,
    pub haplotype: usize,
    /// 0-based reference position of the fragment's first base.
    pub ref_start: i64,
    /// Fragment (insert) length on the haplotype.
    pub insert_len: usize,
    /// `Some(original pair index)` when this pair is a PCR duplicate.
    pub duplicate_of: Option<usize>,
}

/// The simulator.
pub struct ReadSimulator<'a> {
    reference: &'a ReferenceGenome,
    donor: &'a DonorGenome,
    config: ReadSimConfig,
}

impl<'a> ReadSimulator<'a> {
    pub fn new(
        reference: &'a ReferenceGenome,
        donor: &'a DonorGenome,
        config: ReadSimConfig,
    ) -> ReadSimulator<'a> {
        assert!(
            config.read_len * 2 < config.insert_mean as usize * 2,
            "reads longer than fragments"
        );
        ReadSimulator {
            reference,
            donor,
            config,
        }
    }

    /// Run the simulation, returning the pairs and their true origins
    /// (parallel vectors).
    pub fn simulate(&self) -> (Vec<ReadPair>, Vec<FragmentOrigin>) {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut pairs = Vec::with_capacity(cfg.n_pairs);
        let mut origins: Vec<FragmentOrigin> = Vec::with_capacity(cfg.n_pairs);

        // Chromosome sampling weighted by length.
        let lens: Vec<usize> = self.reference.chromosomes.iter().map(|c| c.len()).collect();
        let total_len: usize = lens.iter().sum();

        for serial in 0..cfg.n_pairs {
            let dup_source = if serial > 0 && rng.gen_bool(cfg.duplicate_rate) {
                // Re-amplify a random earlier *original* fragment.
                let k = rng.gen_range(0..origins.len());
                Some(origins[k].duplicate_of.unwrap_or(k))
            } else {
                None
            };

            let origin = match dup_source {
                Some(orig_idx) => FragmentOrigin {
                    duplicate_of: Some(orig_idx),
                    ..origins[orig_idx].clone()
                },
                None => self.sample_fragment(&mut rng, &lens, total_len),
            };

            let (r1_seq, r2_seq) = self.extract_reads(&origin);
            let name = format!(
                "sim{serial:08}_{}_{}{}",
                self.reference.chromosomes[origin.chrom_index].name,
                origin.ref_start + 1,
                if origin.duplicate_of.is_some() { "_dup" } else { "" }
            );
            let (s1, q1) = self.apply_errors(&mut rng, r1_seq);
            let (s2, q2) = self.apply_errors(&mut rng, r2_seq);
            let r1 = FastqRecord {
                name: name.clone(),
                seq: s1,
                qual: q1,
            };
            let r2 = FastqRecord {
                name,
                seq: s2,
                qual: q2,
            };
            pairs.push(ReadPair { r1, r2 });
            origins.push(origin);
        }
        (pairs, origins)
    }

    fn sample_fragment(
        &self,
        rng: &mut StdRng,
        lens: &[usize],
        total_len: usize,
    ) -> FragmentOrigin {
        let cfg = &self.config;
        loop {
            // Weighted chromosome pick.
            let mut roll = rng.gen_range(0..total_len);
            let mut chrom_index = 0;
            for (i, &l) in lens.iter().enumerate() {
                if roll < l {
                    chrom_index = i;
                    break;
                }
                roll -= l;
            }
            let haplotype = rng.gen_range(0..2usize);
            let hap = &self.donor.haplotypes[chrom_index][haplotype];
            let insert_len = (normal(rng, cfg.insert_mean, cfg.insert_sd).round() as i64)
                .max(2 * cfg.read_len as i64) as usize;
            if hap.seq.len() <= insert_len {
                continue;
            }
            let hap_start = rng.gen_range(0..hap.seq.len() - insert_len);
            let ref_start = hap.ref_pos[hap_start] as i64;
            return FragmentOrigin {
                chrom_index,
                haplotype,
                ref_start,
                insert_len,
                duplicate_of: None,
            };
        }
    }

    /// Pull the two read sequences (error-free) for a fragment. The
    /// reverse read is reverse-complemented, as sequencers emit it.
    fn extract_reads(&self, origin: &FragmentOrigin) -> (Vec<u8>, Vec<u8>) {
        let cfg = &self.config;
        let hap = &self.donor.haplotypes[origin.chrom_index][origin.haplotype];
        // Recover the haplotype start from the reference start.
        let hap_start = hap
            .ref_pos
            .partition_point(|&p| (p as i64) < origin.ref_start);
        let start = hap_start.min(hap.seq.len().saturating_sub(origin.insert_len));
        let frag = &hap.seq[start..start + origin.insert_len];
        let r1 = frag[..cfg.read_len].to_vec();
        let r2 = reverse_complement(&frag[frag.len() - cfg.read_len..]);
        (r1, r2)
    }

    /// Introduce sequencing errors and derive per-base quality scores.
    fn apply_errors(&self, rng: &mut StdRng, mut seq: Vec<u8>) -> (Vec<u8>, Vec<u8>) {
        let cfg = &self.config;
        let n = seq.len();
        let mut qual = Vec::with_capacity(n);
        for (i, base) in seq.iter_mut().enumerate() {
            // Error rate ramps up over the second half of the read.
            let ramp = if n > 1 {
                (i as f64 / (n - 1) as f64 - 0.5).max(0.0) * 2.0
            } else {
                0.0
            };
            let p_err = cfg.base_error + cfg.end_error_boost * ramp;
            let q = gesall_formats::quality::error_prob_to_phred(p_err).min(40);
            // Reported quality wobbles ±3 around the true value, so the
            // base recalibrator has systematic bias to find.
            let reported = (q as i32 + rng.gen_range(-3i32..=3)).clamp(2, 41) as u8;
            qual.push(reported);
            if rng.gen_bool(p_err) {
                let cur = *base;
                let alt = loop {
                    let c = b"ACGT"[rng.gen_range(0..4usize)];
                    if c != cur {
                        break c;
                    }
                };
                *base = alt;
            }
        }
        (seq, qual)
    }
}

/// Box–Muller standard-normal sample scaled to (mean, sd).
fn normal(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + sd * z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::donor::DonorConfig;
    use crate::reference::GenomeConfig;

    fn setup(n_pairs: usize) -> (Vec<ReadPair>, Vec<FragmentOrigin>) {
        let reference = ReferenceGenome::generate(&GenomeConfig::tiny());
        let donor = DonorGenome::generate(&reference, &DonorConfig::default());
        let cfg = ReadSimConfig {
            n_pairs,
            ..ReadSimConfig::default()
        };
        let sim = ReadSimulator::new(&reference, &donor, cfg);
        sim.simulate()
    }

    #[test]
    fn emits_requested_pairs_with_valid_shapes() {
        let (pairs, origins) = setup(500);
        assert_eq!(pairs.len(), 500);
        assert_eq!(origins.len(), 500);
        for p in &pairs {
            assert_eq!(p.r1.len(), 100);
            assert_eq!(p.r2.len(), 100);
            assert_eq!(p.r1.name, p.r2.name);
            assert_eq!(p.r1.qual.len(), 100);
        }
        // Names unique across pairs.
        let mut names: Vec<&str> = pairs.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 500);
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = setup(100);
        let (b, _) = setup(100);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_rate_is_respected() {
        let (_, origins) = setup(4000);
        let dups = origins.iter().filter(|o| o.duplicate_of.is_some()).count();
        let rate = dups as f64 / origins.len() as f64;
        assert!(
            (0.02..0.09).contains(&rate),
            "duplicate rate {rate} far from configured 0.05"
        );
        // duplicate_of always points at an original, never another dup.
        for o in &origins {
            if let Some(k) = o.duplicate_of {
                assert!(origins[k].duplicate_of.is_none());
            }
        }
    }

    #[test]
    fn duplicates_share_fragment_coordinates() {
        let (_, origins) = setup(2000);
        for o in &origins {
            if let Some(k) = o.duplicate_of {
                let orig = &origins[k];
                assert_eq!(o.ref_start, orig.ref_start);
                assert_eq!(o.insert_len, orig.insert_len);
                assert_eq!(o.chrom_index, orig.chrom_index);
            }
        }
    }

    #[test]
    fn reads_match_haplotype_modulo_errors() {
        let reference = ReferenceGenome::generate(&GenomeConfig::tiny());
        let donor = DonorGenome::generate(&reference, &DonorConfig::default());
        let cfg = ReadSimConfig {
            n_pairs: 200,
            base_error: 0.0,
            end_error_boost: 0.0,
            duplicate_rate: 0.0,
            ..ReadSimConfig::default()
        };
        let sim = ReadSimulator::new(&reference, &donor, cfg);
        let (pairs, origins) = sim.simulate();
        for (p, o) in pairs.iter().zip(&origins) {
            let hap = &donor.haplotypes[o.chrom_index][o.haplotype];
            let hap_start = hap.ref_pos.partition_point(|&q| (q as i64) < o.ref_start);
            let frag = &hap.seq[hap_start..hap_start + o.insert_len];
            assert_eq!(p.r1.seq, &frag[..100], "r1 mismatch");
            assert_eq!(p.r2.seq, reverse_complement(&frag[frag.len() - 100..]));
        }
    }

    #[test]
    fn insert_size_distribution_plausible() {
        let (_, origins) = setup(3000);
        let mean: f64 = origins.iter().map(|o| o.insert_len as f64).sum::<f64>()
            / origins.len() as f64;
        assert!(
            (360.0..440.0).contains(&mean),
            "insert mean {mean} far from configured 400"
        );
    }

    #[test]
    fn end_quality_is_lower_than_center() {
        let (pairs, _) = setup(1000);
        let mut center = 0f64;
        let mut tail = 0f64;
        for p in &pairs {
            center += p.r1.qual[10] as f64;
            tail += p.r1.qual[99] as f64;
        }
        assert!(
            tail / 1000.0 < center / 1000.0 - 2.0,
            "tail quality should be clearly lower (center {center}, tail {tail})"
        );
    }

    #[test]
    fn coverage_helper() {
        let cfg = ReadSimConfig::default().with_coverage(1_000_000, 30.0);
        assert_eq!(cfg.n_pairs, 150_000);
    }
}
