//! Synthetic reference genomes.
//!
//! Real genomes are not uniform random strings: they carry long tandem
//! repeats at centromeres, low-complexity blacklisted regions, and
//! segmental duplications. Those features are what make alignment
//! ambiguous, and ambiguity is what makes parallel Bwa nondeterministic
//! (paper §4.5.2 / Fig. 11) — so the generator plants all three.

use gesall_formats::sam::header::{ReferenceSeq, SamHeader};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A half-open 0-based interval `[start, end)` on a chromosome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    pub start: usize,
    pub end: usize,
}

impl Region {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Does the interval contain 0-based position `pos`?
    pub fn contains(&self, pos: usize) -> bool {
        (self.start..self.end).contains(&pos)
    }

    /// Does this interval overlap `[start, end)`?
    pub fn overlaps(&self, start: usize, end: usize) -> bool {
        self.start < end && start < self.end
    }
}

/// One synthetic chromosome with its annotated trouble spots.
#[derive(Debug, Clone)]
pub struct Chromosome {
    pub name: String,
    /// ASCII bases, upper-case `ACGT`.
    pub seq: Vec<u8>,
    /// The centromeric tandem-repeat region.
    pub centromere: Region,
    /// ENCODE-style blacklisted (low-mappability) regions.
    pub blacklist: Vec<Region>,
    /// (source, target) pairs of segmental duplications: `target` holds a
    /// near-identical copy of `source`.
    pub seg_dups: Vec<(Region, Region)>,
}

impl Chromosome {
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Is 0-based `pos` inside the centromere or any blacklisted region —
    /// the "hard-to-map" filter applied in the paper's Fig. 11 analysis?
    pub fn is_hard_to_map(&self, pos: usize) -> bool {
        self.centromere.contains(pos) || self.blacklist.iter().any(|r| r.contains(pos))
    }
}

/// Parameters for genome synthesis.
#[derive(Debug, Clone)]
pub struct GenomeConfig {
    /// Chromosome lengths in bases; one chromosome per entry.
    pub chromosome_lengths: Vec<usize>,
    /// GC fraction of the random background (human ≈ 0.41).
    pub gc_content: f64,
    /// Fraction of each chromosome occupied by the centromere.
    pub centromere_fraction: f64,
    /// Length of the tandem-repeat unit inside centromeres (alpha
    /// satellite is 171 bp in humans).
    pub repeat_unit_len: usize,
    /// Number of blacklisted regions per chromosome.
    pub blacklist_regions: usize,
    /// Length of each blacklisted region.
    pub blacklist_len: usize,
    /// Number of segmental duplications per chromosome.
    pub seg_dups: usize,
    /// Length of each segmental duplication.
    pub seg_dup_len: usize,
    /// Per-base divergence between a segmental duplication and its source
    /// (0 = perfect copy ⇒ reads map to both equally).
    pub seg_dup_divergence: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for GenomeConfig {
    fn default() -> GenomeConfig {
        GenomeConfig {
            chromosome_lengths: vec![1_000_000, 800_000],
            gc_content: 0.41,
            centromere_fraction: 0.05,
            repeat_unit_len: 171,
            blacklist_regions: 3,
            blacklist_len: 5_000,
            seg_dups: 2,
            seg_dup_len: 10_000,
            seg_dup_divergence: 0.002,
            seed: 42,
        }
    }
}

impl GenomeConfig {
    /// A tiny genome for unit tests (tens of kb).
    pub fn tiny() -> GenomeConfig {
        GenomeConfig {
            chromosome_lengths: vec![60_000, 40_000],
            blacklist_regions: 1,
            blacklist_len: 1_500,
            seg_dups: 1,
            seg_dup_len: 2_000,
            ..GenomeConfig::default()
        }
    }
}

/// A complete synthetic reference genome.
#[derive(Debug, Clone)]
pub struct ReferenceGenome {
    pub chromosomes: Vec<Chromosome>,
}

impl ReferenceGenome {
    /// Generate a genome from the config. Deterministic in `config.seed`.
    pub fn generate(config: &GenomeConfig) -> ReferenceGenome {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let chromosomes = config
            .chromosome_lengths
            .iter()
            .enumerate()
            .map(|(i, &len)| generate_chromosome(&mut rng, config, i, len))
            .collect();
        ReferenceGenome { chromosomes }
    }

    /// Total genome length.
    pub fn total_len(&self) -> usize {
        self.chromosomes.iter().map(|c| c.len()).sum()
    }

    /// The SAM header describing this genome's reference dictionary.
    pub fn sam_header(&self) -> SamHeader {
        SamHeader::new(
            self.chromosomes
                .iter()
                .map(|c| ReferenceSeq {
                    name: c.name.clone(),
                    len: c.len() as u64,
                })
                .collect(),
        )
    }

    /// Look up a chromosome by name.
    pub fn chromosome(&self, name: &str) -> Option<&Chromosome> {
        self.chromosomes.iter().find(|c| c.name == name)
    }

    /// Concatenate all chromosome sequences (FM-index construction input),
    /// returning the concatenated text and the start offset of each
    /// chromosome within it.
    pub fn concatenated(&self) -> (Vec<u8>, Vec<usize>) {
        let mut text = Vec::with_capacity(self.total_len());
        let mut offsets = Vec::with_capacity(self.chromosomes.len());
        for c in &self.chromosomes {
            offsets.push(text.len());
            text.extend_from_slice(&c.seq);
        }
        (text, offsets)
    }
}

fn random_base(rng: &mut StdRng, gc: f64) -> u8 {
    if rng.gen_bool(gc) {
        if rng.gen_bool(0.5) {
            b'G'
        } else {
            b'C'
        }
    } else if rng.gen_bool(0.5) {
        b'A'
    } else {
        b'T'
    }
}

fn generate_chromosome(
    rng: &mut StdRng,
    config: &GenomeConfig,
    index: usize,
    len: usize,
) -> Chromosome {
    let name = format!("chr{}", index + 1);
    let mut seq: Vec<u8> = (0..len).map(|_| random_base(rng, config.gc_content)).collect();

    // Centromere: a tandem repeat centred on the midpoint.
    let cen_len = ((len as f64) * config.centromere_fraction) as usize;
    let cen_start = len / 2 - cen_len / 2;
    let centromere = Region {
        start: cen_start,
        end: cen_start + cen_len,
    };
    let unit: Vec<u8> = (0..config.repeat_unit_len.max(4))
        .map(|_| random_base(rng, config.gc_content))
        .collect();
    for (off, b) in seq[centromere.start..centromere.end].iter_mut().enumerate() {
        *b = unit[off % unit.len()];
    }

    // Blacklisted regions: low-complexity (dinucleotide repeat) stretches
    // away from the centromere.
    let mut blacklist = Vec::new();
    let mut attempts = 0;
    while blacklist.len() < config.blacklist_regions && attempts < 1000 {
        attempts += 1;
        let bl_len = config.blacklist_len.min(len / 10);
        if bl_len == 0 || len <= bl_len {
            break;
        }
        let start = rng.gen_range(0..len - bl_len);
        let region = Region {
            start,
            end: start + bl_len,
        };
        if region.overlaps(centromere.start, centromere.end)
            || blacklist
                .iter()
                .any(|r: &Region| r.overlaps(region.start, region.end))
        {
            continue;
        }
        let di = [random_base(rng, 0.5), random_base(rng, 0.5)];
        for (off, b) in seq[region.start..region.end].iter_mut().enumerate() {
            *b = di[off % 2];
        }
        blacklist.push(region);
    }
    blacklist.sort_by_key(|r| r.start);

    // Segmental duplications: copy a clean segment elsewhere with slight
    // divergence.
    let mut seg_dups = Vec::new();
    let mut attempts = 0;
    while seg_dups.len() < config.seg_dups && attempts < 1000 {
        attempts += 1;
        let sd_len = config.seg_dup_len.min(len / 8);
        if sd_len == 0 || len <= 2 * sd_len {
            break;
        }
        let src_start = rng.gen_range(0..len - sd_len);
        let dst_start = rng.gen_range(0..len - sd_len);
        let src = Region {
            start: src_start,
            end: src_start + sd_len,
        };
        let dst = Region {
            start: dst_start,
            end: dst_start + sd_len,
        };
        let clash = |r: &Region| {
            r.overlaps(centromere.start, centromere.end)
                || blacklist.iter().any(|b| b.overlaps(r.start, r.end))
        };
        if clash(&src) || clash(&dst) || src.overlaps(dst.start, dst.end) {
            continue;
        }
        let copy: Vec<u8> = seq[src.start..src.end].to_vec();
        for (off, b) in copy.iter().enumerate() {
            seq[dst.start + off] = if rng.gen_bool(config.seg_dup_divergence) {
                random_base(rng, 0.5)
            } else {
                *b
            };
        }
        seg_dups.push((src, dst));
    }

    Chromosome {
        name,
        seq,
        centromere,
        blacklist,
        seg_dups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_formats::dna::{gc_content, is_valid_sequence};

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenomeConfig::tiny();
        let a = ReferenceGenome::generate(&cfg);
        let b = ReferenceGenome::generate(&cfg);
        assert_eq!(a.chromosomes[0].seq, b.chromosomes[0].seq);
        let mut cfg2 = cfg.clone();
        cfg2.seed = 43;
        let c = ReferenceGenome::generate(&cfg2);
        assert_ne!(a.chromosomes[0].seq, c.chromosomes[0].seq);
    }

    #[test]
    fn lengths_and_names() {
        let cfg = GenomeConfig::tiny();
        let g = ReferenceGenome::generate(&cfg);
        assert_eq!(g.chromosomes.len(), 2);
        assert_eq!(g.chromosomes[0].name, "chr1");
        assert_eq!(g.chromosomes[0].len(), 60_000);
        assert_eq!(g.total_len(), 100_000);
        assert!(is_valid_sequence(&g.chromosomes[0].seq));
    }

    #[test]
    fn gc_content_is_plausible() {
        let g = ReferenceGenome::generate(&GenomeConfig::tiny());
        let gc = gc_content(&g.chromosomes[0].seq);
        assert!((0.30..0.55).contains(&gc), "gc was {gc}");
    }

    #[test]
    fn centromere_is_tandem_repeat() {
        let cfg = GenomeConfig::tiny();
        let g = ReferenceGenome::generate(&cfg);
        let c = &g.chromosomes[0];
        let cen = &c.seq[c.centromere.start..c.centromere.end];
        let unit = cfg.repeat_unit_len;
        // Period-`unit` structure.
        for i in unit..cen.len() {
            assert_eq!(cen[i], cen[i - unit], "centromere not periodic at {i}");
        }
        assert!(c.is_hard_to_map(c.centromere.start + 5));
    }

    #[test]
    fn blacklist_is_low_complexity_and_disjoint() {
        let g = ReferenceGenome::generate(&GenomeConfig::tiny());
        let c = &g.chromosomes[0];
        assert!(!c.blacklist.is_empty());
        for r in &c.blacklist {
            let region = &c.seq[r.start..r.end];
            // Dinucleotide repeat ⇒ at most 2 distinct bases.
            let mut distinct: Vec<u8> = region.to_vec();
            distinct.sort_unstable();
            distinct.dedup();
            assert!(distinct.len() <= 2);
            assert!(!r.overlaps(c.centromere.start, c.centromere.end));
        }
    }

    #[test]
    fn seg_dups_are_near_identical() {
        let g = ReferenceGenome::generate(&GenomeConfig::tiny());
        let c = &g.chromosomes[0];
        assert!(!c.seg_dups.is_empty());
        for (src, dst) in &c.seg_dups {
            let a = &c.seq[src.start..src.end];
            let b = &c.seq[dst.start..dst.end];
            let mismatches = a.iter().zip(b).filter(|(x, y)| x != y).count();
            assert!(
                (mismatches as f64) < 0.01 * a.len() as f64,
                "seg dup diverged too much: {mismatches}/{}",
                a.len()
            );
        }
    }

    #[test]
    fn sam_header_matches_genome() {
        let g = ReferenceGenome::generate(&GenomeConfig::tiny());
        let h = g.sam_header();
        assert_eq!(h.references.len(), 2);
        assert_eq!(h.references[0].name, "chr1");
        assert_eq!(h.references[0].len, 60_000);
    }

    #[test]
    fn concatenated_offsets() {
        let g = ReferenceGenome::generate(&GenomeConfig::tiny());
        let (text, offsets) = g.concatenated();
        assert_eq!(text.len(), g.total_len());
        assert_eq!(offsets, vec![0, 60_000]);
        assert_eq!(&text[60_000..60_010], &g.chromosomes[1].seq[..10]);
    }

    #[test]
    fn region_arithmetic() {
        let r = Region { start: 10, end: 20 };
        assert_eq!(r.len(), 10);
        assert!(r.contains(10));
        assert!(!r.contains(20));
        assert!(r.overlaps(19, 25));
        assert!(!r.overlaps(20, 25));
        assert!(!r.overlaps(0, 10));
    }
}
