//! Vendored XXH64: the per-block checksum behind the DFS's verify-on-read
//! integrity path.
//!
//! Implemented in-tree (no external dependency, `core`-only arithmetic)
//! from the published XXH64 specification. One number per block is all
//! the integrity layer needs — the hash is computed once at write time,
//! stored in the block's metadata, and recomputed on every replica read
//! to catch bit rot, torn writes, and injected corruption. XXH64 is
//! chosen over CRC32C for its 64-bit collision margin and because it is
//! word-at-a-time fast without hardware carry-less multiply support.

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn merge_round(h: u64, v: u64) -> u64 {
    (h ^ round(0, v)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8-byte lane"))
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4-byte lane"))
}

/// XXH64 with seed 0 — the block checksum function.
pub fn xxh64(data: &[u8]) -> u64 {
    xxh64_seeded(data, 0)
}

/// XXH64 of `data` under `seed`.
pub fn xxh64_seeded(data: &[u8], seed: u64) -> u64 {
    let len = data.len() as u64;
    let mut rest = data;
    let mut h = if rest.len() >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        merge_round(h, v4)
    } else {
        seed.wrapping_add(P5)
    };
    h = h.wrapping_add(len);
    while rest.len() >= 8 {
        h = (h ^ round(0, read_u64(rest)))
            .rotate_left(27)
            .wrapping_mul(P1)
            .wrapping_add(P4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h = (h ^ (read_u32(rest) as u64).wrapping_mul(P1))
            .rotate_left(23)
            .wrapping_mul(P2)
            .wrapping_add(P3);
        rest = &rest[4..];
    }
    for &b in rest {
        h = (h ^ (b as u64).wrapping_mul(P5))
            .rotate_left(11)
            .wrapping_mul(P1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^ (h >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_matches_reference_vector() {
        // Published XXH64 vector: seed 0, empty input.
        assert_eq!(xxh64(&[]), 0xEF46_DB37_51D8_E999);
    }

    #[test]
    fn deterministic_across_calls() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(xxh64(&data), xxh64(&data));
        assert_ne!(xxh64_seeded(&data, 1), xxh64_seeded(&data, 2));
    }

    #[test]
    fn single_bit_flip_changes_hash() {
        // Cover every length class: scalar tail, 4-byte, 8-byte lanes,
        // and the 32-byte stripe loop.
        for len in [1usize, 3, 4, 7, 8, 15, 31, 32, 33, 64, 100, 4096] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let base = xxh64(&data);
            for byte in [0, len / 2, len - 1] {
                let mut flipped = data.clone();
                flipped[byte] ^= 1;
                assert_ne!(base, xxh64(&flipped), "len {len}, flipped byte {byte}");
            }
        }
    }

    #[test]
    fn length_extension_changes_hash() {
        let data = vec![7u8; 64];
        assert_ne!(xxh64(&data[..63]), xxh64(&data));
        assert_ne!(xxh64(&data), xxh64(&[7u8; 65]));
    }
}
