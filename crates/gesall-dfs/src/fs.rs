//! The distributed file system: name node + data nodes + client API.

use crate::checksum::xxh64;
use crate::placement::{BlockPlacementPolicy, DefaultPlacement};
use gesall_formats::SharedBytes;
use gesall_telemetry::{Histogram, MetricsRegistry};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// DFS error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    FileNotFound(String),
    FileExists(String),
    BlockMissing(u64),
    /// Every reachable replica of the block failed checksum
    /// verification — the data is unrecoverable, not worth retrying.
    Corrupt(u64),
    /// The per-op read deadline elapsed before any replica served.
    Timeout(String),
    /// A requested byte range falls outside the file.
    BadRange(String),
    BadPolicy(String),
    NoLiveNodes,
    /// The file is pinned (live cache-entry refcount > 0) and cannot be
    /// deleted until every pin is released. Not retryable — the caller
    /// must wait for the pin holder, not spin on the delete.
    Pinned(String),
    /// Block-store I/O failed (persisting or mapping a block file), or a
    /// replica read failed transiently. Retryable.
    Io(String),
}

impl DfsError {
    /// Can a retry plausibly succeed? Transient I/O and deadline
    /// expiries are worth re-attempting; corruption with no surviving
    /// replica, missing blocks, and caller bugs are not. Shuffle-fetch
    /// retry loops key off this to avoid spinning on fatal errors.
    pub fn is_retryable(&self) -> bool {
        matches!(self, DfsError::Io(_) | DfsError::Timeout(_))
    }
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::FileNotFound(p) => write!(f, "file not found: {p}"),
            DfsError::FileExists(p) => write!(f, "file already exists: {p}"),
            DfsError::BlockMissing(b) => write!(f, "block {b} missing from all replicas"),
            DfsError::Corrupt(b) => write!(f, "block {b} corrupt on every reachable replica"),
            DfsError::Timeout(m) => write!(f, "read deadline exceeded: {m}"),
            DfsError::BadRange(m) => write!(f, "bad range: {m}"),
            DfsError::BadPolicy(m) => write!(f, "bad placement: {m}"),
            DfsError::NoLiveNodes => write!(f, "no live data nodes remain"),
            DfsError::Pinned(p) => write!(f, "file pinned by a live cache reference: {p}"),
            DfsError::Io(m) => write!(f, "block store i/o: {m}"),
        }
    }
}

impl std::error::Error for DfsError {}

/// One block replica's location and identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    pub id: u64,
    /// Byte length of this block.
    pub len: usize,
    /// Data-node indices holding replicas.
    pub nodes: Vec<usize>,
    /// XXH64 of the block payload, computed at write time and verified
    /// against every replica read ([`crate::checksum`]).
    pub checksum: u64,
}

/// Metadata of one stored file.
#[derive(Debug, Clone)]
pub struct FileInfo {
    pub path: String,
    pub len: usize,
    pub blocks: Vec<BlockInfo>,
}

impl FileInfo {
    /// The node holding the first replica of every block — `Some(node)` if
    /// a single node holds the whole file (a logical partition placed with
    /// the custom policy), `None` otherwise.
    pub fn single_home(&self) -> Option<usize> {
        let first = self.blocks.first()?.nodes.first().copied()?;
        self.blocks
            .iter()
            .all(|b| b.nodes.first() == Some(&first))
            .then_some(first)
    }
}

/// Per-data-node usage counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    pub blocks: usize,
    pub bytes: usize,
}

/// What a node failure cost the filesystem — returned by
/// [`Dfs::fail_node`] so the caller (typically the MapReduce engine's
/// node-death hook) can decide whether to re-replicate or re-run work.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureReport {
    /// The node that was declared dead.
    pub node: usize,
    /// Block ids whose **last** replica lived on the dead node — their
    /// data is gone and files containing them are unreadable.
    pub blocks_lost: Vec<u64>,
    /// Block ids that survive on other nodes but now hold fewer replicas
    /// than `DfsConfig::replication` — candidates for [`Dfs::re_replicate`].
    pub under_replicated: Vec<u64>,
}

/// DFS configuration.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    pub n_nodes: usize,
    /// Block size in bytes (HDFS default 128 MiB; tests use KiBs).
    pub block_size: usize,
    pub replication: usize,
    /// When set, every replica is persisted to
    /// `<dir>/node-<n>/block-<id>.blk` and served from a file mapping
    /// ([`SharedBytes::map_file`]): a block read is a refcount bump on
    /// the mapping and the kernel pages bytes in on demand. `None`
    /// (the default) keeps blocks heap-resident, sharing the writer's
    /// backing allocation.
    pub block_store_dir: Option<PathBuf>,
    /// Replicas smaller than this are appended to a shared per-node
    /// **extent file** (`<dir>/node-<n>/extent-<seq>.ext`) instead of
    /// getting a `.blk` inode of their own, and are served as mapped
    /// windows into the extent. Workloads that scatter many tiny files
    /// (a shuffle directory of per-map partition files) stop costing
    /// one inode per block. `0` (the default) disables packing; only
    /// meaningful with `block_store_dir` set. Counted under
    /// [`metrics_keys::BLOCKS_PACKED`].
    pub pack_threshold: usize,
    /// How many times a failed block read is re-attempted when the
    /// failure is transient ([`DfsError::is_retryable`]). Each retry
    /// sleeps an exponentially growing, seed-jittered backoff.
    pub read_retries: usize,
    /// Base backoff before the first retry, in milliseconds; doubles
    /// per attempt with ±50% deterministic jitter from `seed`.
    pub retry_backoff_ms: u64,
    /// Per-op deadline for one `read_block` call, retries included.
    /// Exhausting it yields [`DfsError::Timeout`].
    pub read_deadline_ms: u64,
    /// Hedged-read latency budget, in microseconds. When a block has a
    /// second live replica and the primary replica's node shows a p90
    /// read latency above this budget (per-node log2 histogram), the
    /// primary read is raced against the alternate replica and the
    /// first finisher wins — the storage-layer analogue of speculative
    /// task execution.
    pub hedge_after_micros: u64,
    /// Seed for retry-backoff jitter, so fault-injection runs are
    /// reproducible end to end.
    pub seed: u64,
}

impl Default for DfsConfig {
    fn default() -> DfsConfig {
        DfsConfig {
            n_nodes: 4,
            block_size: 128 * 1024 * 1024,
            replication: 1,
            block_store_dir: None,
            pack_threshold: 0,
            read_retries: 3,
            retry_backoff_ms: 1,
            read_deadline_ms: 10_000,
            hedge_after_micros: 5_000,
            seed: 0,
        }
    }
}

/// An extent file keeps itself on disk for as long as any packed block
/// (or the node's open-extent slot) references it; the last reference
/// unlinks it. Existing mappings of an unlinked extent stay readable
/// until they drop.
pub struct ExtentFile {
    path: PathBuf,
}

impl Drop for ExtentFile {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// Per-node packing state: the extent currently accepting appends.
#[derive(Default)]
struct ExtentState {
    open: Option<OpenExtent>,
    next_seq: u64,
}

struct OpenExtent {
    file: Arc<ExtentFile>,
    len: usize,
}

/// Roll to a fresh extent file once the open one reaches this size, so
/// a single extent never grows without bound and fully-deleted extents
/// can actually be reclaimed.
const EXTENT_ROLL_BYTES: usize = 1 << 20;

/// How a stored replica holds its payload. Either way,
/// [`Dfs::read_block`] serves a zero-copy window — the variants differ
/// only in *whose* allocation is shared: the writer's heap backing, or
/// a read-only mapping of the persisted block file.
pub enum BlockBacking {
    /// Heap-resident: shares the writer's backing allocation.
    Resident(SharedBytes),
    /// Persisted to the node's block store and served via `mmap`
    /// (heap-read fallback off-unix); dropping the last reader unmaps.
    Mapped { bytes: SharedBytes, path: PathBuf },
    /// A small replica packed into a shared extent file: `bytes` is a
    /// mapped window onto the replica's range of the extent, and the
    /// `Arc` keeps the extent file alive until its last packed block is
    /// dropped.
    Packed {
        bytes: SharedBytes,
        extent: Arc<ExtentFile>,
    },
}

impl BlockBacking {
    fn bytes(&self) -> &SharedBytes {
        match self {
            BlockBacking::Resident(b) => b,
            BlockBacking::Mapped { bytes, .. } => bytes,
            BlockBacking::Packed { bytes, .. } => bytes,
        }
    }

    fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Remove the on-disk file behind a mapped replica (the mapping
    /// itself stays valid for existing readers until they drop). Packed
    /// replicas share their extent file with siblings; dropping the
    /// backing releases its `Arc` and the extent unlinks itself with
    /// the last reference.
    fn unlink(&self) {
        if let BlockBacking::Mapped { path, .. } = self {
            std::fs::remove_file(path).ok();
        }
    }
}

struct DataNode {
    blocks: RwLock<HashMap<u64, BlockBacking>>,
    /// The extent file currently accepting small-block appends
    /// (see [`DfsConfig::pack_threshold`]).
    extent: parking_lot::Mutex<ExtentState>,
}

struct NameNode {
    files: RwLock<HashMap<String, FileInfo>>,
}

/// A pending corrupt-on-write injection: flip a byte of the stored
/// replica whenever a write's path contains `path_contains` and the
/// block index matches. The block's metadata checksum keeps the true
/// value, so the next read of that replica detects the damage.
struct CorruptOnWrite {
    path_contains: String,
    block: usize,
    replica: usize,
}

/// Gray-failure injection state, armed by the fault harness
/// ([`Dfs::inject_corrupt_on_write`] et al.). All injections apply to
/// the client read/write paths only — the repair path reads replicas
/// directly, as a datanode-local scrubber would.
#[derive(Default)]
struct FaultState {
    corrupt_on_write: Mutex<Vec<CorruptOnWrite>>,
    /// node → remaining reads that fail with a transient error.
    flaky: Mutex<HashMap<usize, u64>>,
    /// node → injected per-read service delay (ms).
    slow: RwLock<HashMap<usize, u64>>,
}

/// The DFS handle. Cheap to clone (`Arc` inside); safe to share across
/// worker threads.
#[derive(Clone)]
pub struct Dfs {
    inner: Arc<DfsInner>,
}

struct DfsInner {
    config: DfsConfig,
    namenode: NameNode,
    datanodes: Vec<DataNode>,
    next_block: AtomicU64,
    /// Nodes declared dead via `fail_node`. Writes avoid them; they never
    /// come back (matching the engine's permanent node-death model).
    dead: RwLock<HashSet<usize>>,
    /// Block id → owning file path. Lets quarantine, targeted repair,
    /// and incremental re-replication reach a block's metadata without
    /// scanning the whole namespace.
    locator: RwLock<HashMap<u64, String>>,
    /// Per-node index of block ids whose metadata lists that node — the
    /// inverse of `FileInfo::blocks[].nodes`. `fail_node` drains the
    /// dead node's entry and scrubs exactly those blocks instead of
    /// sweeping every file.
    node_index: Vec<RwLock<HashSet<u64>>>,
    /// Per-node replica-read service latency (µs), log2-bucketed. The
    /// hedging policy consults the primary node's p90 against
    /// [`DfsConfig::hedge_after_micros`].
    read_lat: Vec<Arc<Histogram>>,
    /// Injected gray failures (see [`FaultState`]).
    faults: FaultState,
    /// Path → live pin refcount. A pinned path refuses [`Dfs::delete`]
    /// and is skipped (not failed) by retention sweeps, so a cache
    /// entry a running stage still reads can never be swept from under
    /// it. Independent of the metadata locks below — pin state is
    /// consulted before any of them is taken.
    pins: Mutex<HashMap<String, u64>>,
    /// Block-level I/O counters (see [`metrics_keys`]).
    metrics: MetricsRegistry,
}

// Lock acquisition order, where two must be held at once:
// `locator` → `namenode.files` → `node_index` → `datanodes[n].blocks`
// → `datanodes[n].extent`. Every multi-lock path below follows it.

/// Counter names the DFS maintains on its [`MetricsRegistry`].
pub mod metrics_keys {
    /// Payload bytes memcpy'd inside the DFS (block materialization on
    /// write, multi-block concatenation on read). Same key as the
    /// engine-side gauge so a whole-pipeline total can be assembled.
    pub const BYTES_COPIED: &str = "mem.bytes.copied";
    /// Bytes stitched together by [`Dfs::read_file_range_shared`] when a
    /// requested range spans blocks. Kept apart from [`BYTES_COPIED`]:
    /// range reads serve the shuffle-transit fetch path, whose copy
    /// volume is accounted with the transit layer (`shuffle.bytes.dfs`
    /// et al.), not with the record path's zero-copy gauge.
    pub const BYTES_COPIED_RANGE: &str = "dfs.bytes.copied.range";
    /// Replicas written (block writes × replication).
    pub const BLOCKS_WRITTEN: &str = "dfs.blocks.written";
    /// Payload bytes written across all replicas.
    pub const BYTES_WRITTEN: &str = "dfs.bytes.written";
    /// Block reads served from a live replica.
    pub const BLOCKS_READ: &str = "dfs.blocks.read";
    /// Payload bytes read.
    pub const BYTES_READ: &str = "dfs.bytes.read";
    /// Nodes declared dead via `fail_node`.
    pub const NODE_FAILURES: &str = "dfs.node.failures";
    /// Replicas created by `re_replicate` sweeps.
    pub const REPLICAS_RESTORED: &str = "dfs.replicas.restored";
    /// Replicas persisted to the block store and served from a file
    /// mapping (only moves when `DfsConfig::block_store_dir` is set).
    pub const BLOCKS_MAPPED: &str = "dfs.blocks.mapped";
    /// Replicas below [`DfsConfig::pack_threshold`] appended to a
    /// shared per-node extent file instead of receiving their own
    /// `.blk` inode (a subset of [`BLOCKS_MAPPED`]).
    pub const BLOCKS_PACKED: &str = "dfs.blocks.packed";
    /// Replicas whose payload failed checksum verification — each one
    /// is quarantined (dropped from storage and metadata) on detection.
    pub const BLOCKS_CORRUPT_DETECTED: &str = "dfs.blocks.corrupt.detected";
    /// Replicas re-created from a verified survivor after a corrupt
    /// replica was quarantined (targeted repair).
    pub const BLOCKS_CORRUPT_REPAIRED: &str = "dfs.blocks.corrupt.repaired";
    /// Replicas created by [`Dfs::re_replicate_blocks`] — the
    /// incremental (per-node-index) repair path, vs the full sweep.
    pub const BLOCKS_REREPLICATED_INCREMENTAL: &str = "dfs.blocks.rereplicated.incremental";
    /// Block reads re-attempted after a transient failure.
    pub const READS_RETRIED: &str = "dfs.reads.retried";
    /// Block reads where a hedge (second replica race) was launched
    /// because the primary exceeded its latency budget.
    pub const READS_HEDGED: &str = "dfs.reads.hedged";
    /// Hedged reads where the alternate replica finished first.
    pub const READS_HEDGE_WINS: &str = "dfs.reads.hedge_wins";
    /// Stale shuffle-transit files removed by [`Dfs::sweep_orphans`].
    pub const ORPHANS_SWEPT: &str = "dfs.orphans.swept";
    /// Files removed by a live retention sweep ([`Dfs::sweep_prefix`])
    /// when the owning job finished — the job-end transit cleanup.
    pub const RETENTION_SWEPT_COMPLETED: &str = "dfs.retention.swept.completed";
    /// Files removed by a retention sweep because the owner's TTL
    /// lapsed or its handle was dropped (retention released).
    pub const RETENTION_SWEPT_TTL: &str = "dfs.retention.swept.ttl";
    /// Files removed by a retention sweep because the owning job was
    /// cancelled before finishing.
    pub const RETENTION_SWEPT_CANCELLED: &str = "dfs.retention.swept.cancelled";
    /// Files a retention sweep *skipped* because a live pin protected
    /// them. A nonzero skip count tells the sweeper the namespace is
    /// not yet fully retired.
    pub const RETENTION_PIN_SKIPS: &str = "dfs.retention.pin_skips";
    /// Content-addressed store writes that stored a new entry.
    pub const CAS_PUTS: &str = "dfs.cas.puts";
    /// CAS lookups (get or put) that found the entry already present.
    pub const CAS_HITS: &str = "dfs.cas.hits";
    /// CAS gets that found no entry for the key.
    pub const CAS_MISSES: &str = "dfs.cas.misses";
}

/// Why a retention sweep ran. Picks the counter the swept files are
/// charged to, splitting what used to be one undifferentiated
/// `dfs.orphans.swept` total into per-cause retention families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepReason {
    /// The job that owned the prefix ran to the end (success or error).
    Completed,
    /// The owner's retention TTL lapsed, or its handle was dropped.
    Ttl,
    /// The owning job was cancelled.
    Cancelled,
}

impl SweepReason {
    fn counter_key(self) -> &'static str {
        match self {
            SweepReason::Completed => metrics_keys::RETENTION_SWEPT_COMPLETED,
            SweepReason::Ttl => metrics_keys::RETENTION_SWEPT_TTL,
            SweepReason::Cancelled => metrics_keys::RETENTION_SWEPT_CANCELLED,
        }
    }
}

/// What a retention sweep actually did: files removed, and files it had
/// to leave in place because a live pin protected them. A sweeper that
/// sees `pinned_skipped > 0` knows the prefix is not fully retired and
/// should come back after the pins release.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Files deleted by this sweep.
    pub swept: usize,
    /// Files skipped because their pin refcount was nonzero.
    pub pinned_skipped: usize,
}

impl Dfs {
    pub fn new(config: DfsConfig) -> Dfs {
        assert!(config.n_nodes > 0, "need at least one data node");
        assert!(config.block_size > 0, "block size must be positive");
        let datanodes = (0..config.n_nodes)
            .map(|_| DataNode {
                blocks: RwLock::new(HashMap::new()),
                extent: parking_lot::Mutex::new(ExtentState::default()),
            })
            .collect();
        let metrics = MetricsRegistry::new();
        let read_lat = (0..config.n_nodes)
            .map(|n| metrics.histogram(&format!("dfs.read.latency.node{n}.micros")))
            .collect();
        let node_index = (0..config.n_nodes)
            .map(|_| RwLock::new(HashSet::new()))
            .collect();
        Dfs {
            inner: Arc::new(DfsInner {
                config,
                namenode: NameNode {
                    files: RwLock::new(HashMap::new()),
                },
                datanodes,
                next_block: AtomicU64::new(1),
                dead: RwLock::new(HashSet::new()),
                locator: RwLock::new(HashMap::new()),
                node_index,
                read_lat,
                faults: FaultState::default(),
                pins: Mutex::new(HashMap::new()),
                metrics,
            }),
        }
    }

    pub fn config(&self) -> &DfsConfig {
        &self.inner.config
    }

    /// The registry holding this filesystem's I/O counters
    /// ([`metrics_keys`]). Clones share state.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Write a file with the default (spreading) placement.
    pub fn write_file(&self, path: &str, data: &[u8]) -> Result<FileInfo, DfsError> {
        self.write_file_with_policy(path, data, &DefaultPlacement)
    }

    /// Write a file, choosing replica homes with `policy`. This is the
    /// entry point the logical-partition uploader uses.
    ///
    /// The borrowed payload is materialized **once** into a shared
    /// backing (the only copy this path charges to `mem.bytes.copied`);
    /// the stored blocks are zero-copy windows into it. Callers that
    /// already own their bytes skip even that copy with
    /// [`Dfs::write_file_shared`].
    pub fn write_file_with_policy(
        &self,
        path: &str,
        data: &[u8],
        policy: &dyn BlockPlacementPolicy,
    ) -> Result<FileInfo, DfsError> {
        let shared = SharedBytes::copy_from_slice(data);
        self.inner
            .metrics
            .counter(metrics_keys::BYTES_COPIED)
            .add(shared.len() as u64);
        self.write_shared_with_policy(path, shared, policy)
    }

    /// Write an owned payload with the default placement, copying
    /// nothing: every stored block is a slice of the payload's backing.
    pub fn write_file_shared(&self, path: &str, data: SharedBytes) -> Result<FileInfo, DfsError> {
        self.write_shared_with_policy(path, data, &DefaultPlacement)
    }

    /// Zero-copy write: slice `data` into block-sized windows and hand
    /// each window to its replica homes. No payload byte is copied —
    /// all replicas of a block share one backing with the caller.
    pub fn write_shared_with_policy(
        &self,
        path: &str,
        data: SharedBytes,
        policy: &dyn BlockPlacementPolicy,
    ) -> Result<FileInfo, DfsError> {
        {
            let files = self.inner.namenode.files.read();
            if files.contains_key(path) {
                return Err(DfsError::FileExists(path.to_string()));
            }
        }
        let n_nodes = self.inner.config.n_nodes;
        let replication = self.inner.config.replication;
        let dead = self.inner.dead.read().clone();
        if dead.len() >= n_nodes {
            return Err(DfsError::NoLiveNodes);
        }
        let block_size = self.inner.config.block_size;
        let mut blocks = Vec::new();
        for bi in 0..data.len().div_ceil(block_size) {
            let chunk = data.slice(bi * block_size..((bi + 1) * block_size).min(data.len()));
            let nodes = policy.place(path, bi, n_nodes, replication);
            if nodes.is_empty() || nodes.iter().any(|&n| n >= n_nodes) {
                return Err(DfsError::BadPolicy(format!(
                    "policy returned invalid nodes {nodes:?}"
                )));
            }
            let nodes = remap_around_dead(nodes, &dead, n_nodes)?;
            let id = self.inner.next_block.fetch_add(1, Ordering::Relaxed);
            let checksum = xxh64(chunk.as_slice());
            for &n in &nodes {
                self.store_replica(n, id, &chunk, checksum)?;
            }
            self.apply_corrupt_on_write(path, bi, &nodes, id);
            let m = &self.inner.metrics;
            m.counter(metrics_keys::BLOCKS_WRITTEN).add(nodes.len() as u64);
            m.counter(metrics_keys::BYTES_WRITTEN)
                .add((chunk.len() * nodes.len()) as u64);
            blocks.push(BlockInfo {
                id,
                len: chunk.len(),
                nodes,
                checksum,
            });
        }
        {
            let mut locator = self.inner.locator.write();
            for b in &blocks {
                locator.insert(b.id, path.to_string());
            }
        }
        for b in &blocks {
            for &n in &b.nodes {
                self.inner.node_index[n].write().insert(b.id);
            }
        }
        let info = FileInfo {
            path: path.to_string(),
            len: data.len(),
            blocks,
        };
        self.inner
            .namenode
            .files
            .write()
            .insert(path.to_string(), info.clone());
        Ok(info)
    }

    /// File metadata (block list + replica locations).
    pub fn stat(&self, path: &str) -> Result<FileInfo, DfsError> {
        self.inner
            .namenode
            .files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))
    }

    /// Does the file exist?
    pub fn exists(&self, path: &str) -> bool {
        self.inner.namenode.files.read().contains_key(path)
    }

    /// Store one replica on `node`: heap-resident sharing the writer's
    /// backing, or — with a block store configured — persisted to the
    /// node's directory and re-served through a file mapping. Replicas
    /// under the pack threshold append to the node's shared extent file
    /// rather than taking an inode each. With a block store, the
    /// block's checksum is also appended to the node's `checksums.crc`
    /// log, persisting integrity metadata alongside blocks and extents.
    fn store_replica(
        &self,
        node: usize,
        id: u64,
        chunk: &SharedBytes,
        checksum: u64,
    ) -> Result<(), DfsError> {
        let io = |e: std::io::Error| DfsError::Io(format!("block {id} on node {node}: {e}"));
        let backing = match &self.inner.config.block_store_dir {
            Some(dir) => {
                let node_dir = dir.join(format!("node-{node}"));
                std::fs::create_dir_all(&node_dir).map_err(io)?;
                append_checksum_record(&node_dir, id, checksum).map_err(io)?;
                if !chunk.is_empty() && chunk.len() < self.inner.config.pack_threshold {
                    self.pack_replica(node, &node_dir, chunk).map_err(io)?
                } else {
                    let path = node_dir.join(format!("block-{id}.blk"));
                    std::fs::write(&path, chunk.as_slice()).map_err(io)?;
                    let bytes = SharedBytes::map_file(&path).map_err(io)?;
                    self.inner.metrics.counter(metrics_keys::BLOCKS_MAPPED).add(1);
                    BlockBacking::Mapped { bytes, path }
                }
            }
            None => BlockBacking::Resident(chunk.clone()),
        };
        self.inner.datanodes[node].blocks.write().insert(id, backing);
        Ok(())
    }

    /// Append a small replica to `node`'s open extent file (rolling to
    /// a fresh extent at [`EXTENT_ROLL_BYTES`]) and serve it as a
    /// mapped window onto its range.
    fn pack_replica(
        &self,
        node: usize,
        node_dir: &std::path::Path,
        chunk: &SharedBytes,
    ) -> std::io::Result<BlockBacking> {
        use std::io::Write;
        let mut state = self.inner.datanodes[node].extent.lock();
        let roll = match &state.open {
            Some(e) => e.len >= EXTENT_ROLL_BYTES,
            None => true,
        };
        if roll {
            let seq = state.next_seq;
            state.next_seq += 1;
            let path = node_dir.join(format!("extent-{seq}.ext"));
            std::fs::File::create(&path)?;
            state.open = Some(OpenExtent {
                file: Arc::new(ExtentFile { path }),
                len: 0,
            });
        }
        let open = state.open.as_mut().expect("open extent after roll");
        let offset = open.len;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&open.file.path)?;
        f.write_all(chunk.as_slice())?;
        drop(f);
        open.len += chunk.len();
        // Map the extent at its current length; the window only covers
        // bytes already flushed, so later appends don't disturb it.
        let mapping = SharedBytes::map_file(&open.file.path)?;
        let bytes = mapping.slice(offset..offset + chunk.len());
        let m = &self.inner.metrics;
        m.counter(metrics_keys::BLOCKS_MAPPED).add(1);
        m.counter(metrics_keys::BLOCKS_PACKED).add(1);
        Ok(BlockBacking::Packed {
            bytes,
            extent: open.file.clone(),
        })
    }

    /// Read one block from any live replica. Zero-copy: the returned
    /// handle is a window onto the stored block itself (the writer's
    /// backing, or the block file's mapping when persisted).
    ///
    /// Every replica payload is verified against the block's checksum;
    /// a mismatch quarantines that replica, repairs it from a verified
    /// survivor, and falls through to the next replica — a corrupt
    /// replica never reaches the caller. Transient failures are retried
    /// up to [`DfsConfig::read_retries`] times with seeded-jitter
    /// exponential backoff under a per-op deadline, and a slow primary
    /// replica is hedged against an alternate (see
    /// [`DfsConfig::hedge_after_micros`]).
    pub fn read_block(&self, block: &BlockInfo) -> Result<SharedBytes, DfsError> {
        self.read_block_at(block, ReadAffinity::NONE)
            .map(|(bytes, _)| bytes)
    }

    /// [`Dfs::read_block`] with a replica-placement preference: when the
    /// affinity node holds a live replica it is tried first, so a
    /// reader co-located with a replica is served without crossing the
    /// network. Affinity only *reorders* replica preference — every
    /// fallback (hedging a slow preferred node, quarantine, retry,
    /// repair) behaves exactly as without it. Also returns the node
    /// that actually served the bytes, so callers can account local
    /// versus remote traffic.
    pub fn read_block_at(
        &self,
        block: &BlockInfo,
        affinity: ReadAffinity,
    ) -> Result<(SharedBytes, usize), DfsError> {
        let cfg = &self.inner.config;
        let start = Instant::now();
        let deadline = Duration::from_millis(cfg.read_deadline_ms.max(1));
        let mut attempt = 0usize;
        loop {
            match self.read_block_once(block, affinity) {
                Ok((bytes, node)) => {
                    let m = &self.inner.metrics;
                    m.counter(metrics_keys::BLOCKS_READ).add(1);
                    m.counter(metrics_keys::BYTES_READ).add(bytes.len() as u64);
                    return Ok((bytes, node));
                }
                Err(e) if e.is_retryable() && attempt < cfg.read_retries => {
                    attempt += 1;
                    self.inner
                        .metrics
                        .counter(metrics_keys::READS_RETRIED)
                        .add(1);
                    let pause =
                        backoff_with_jitter(cfg.retry_backoff_ms, attempt, cfg.seed, block.id);
                    if start.elapsed() + pause >= deadline {
                        return Err(DfsError::Timeout(format!(
                            "block {}: {} ms deadline exhausted after {attempt} retries ({e})",
                            block.id, cfg.read_deadline_ms
                        )));
                    }
                    std::thread::sleep(pause);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One pass over the block's live replicas: prefer the affinity
    /// node's replica when it exists, hedge the first-choice replica
    /// when its node looks slow, verify whatever payload is served, and
    /// classify the failure if nothing verifies. On success also
    /// returns the node that served the payload.
    fn read_block_once(
        &self,
        block: &BlockInfo,
        affinity: ReadAffinity,
    ) -> Result<(SharedBytes, usize), DfsError> {
        let mut nodes = self.live_replica_nodes(block);
        if nodes.is_empty() {
            return Err(DfsError::BlockMissing(block.id));
        }
        // Affinity is a preference, not a pin: rotate the co-located
        // replica to the front (keeping the rest in placement order for
        // fallback) and leave every other defence untouched — a slow
        // co-located replica still gets hedged against the alternate,
        // and a quarantined one simply isn't in the live list.
        if let Some(want) = affinity.0 {
            if let Some(i) = nodes.iter().position(|&n| n == want) {
                nodes[..=i].rotate_right(1);
            }
        }
        let mut transient: Option<String> = None;
        let mut saw_corrupt = false;
        let mut result: Option<(SharedBytes, usize)> = None;
        let mut next = 0usize;
        if nodes.len() > 1 && self.node_suspect_slow(nodes[0]) {
            next = 2;
            match self.hedged_read(block, nodes[0], nodes[1]) {
                (ReplicaRead::Ok(b), node) => result = Some((b, node)),
                (ReplicaRead::Corrupt, _) => saw_corrupt = true,
                (ReplicaRead::Transient(m), _) => transient = Some(m),
                (ReplicaRead::Missing, _) => {}
            }
        }
        if result.is_none() {
            for &n in &nodes[next.min(nodes.len())..] {
                match self.read_replica(n, block) {
                    ReplicaRead::Ok(b) => {
                        result = Some((b, n));
                        break;
                    }
                    ReplicaRead::Corrupt => saw_corrupt = true,
                    ReplicaRead::Transient(m) => transient = Some(m),
                    ReplicaRead::Missing => {}
                }
            }
        }
        match (result, transient) {
            (Some(served), _) => Ok(served),
            // A transient failure may clear on retry even if another
            // replica was corrupt (that one is already quarantined).
            (None, Some(msg)) => Err(DfsError::Io(msg)),
            (None, None) if saw_corrupt => Err(DfsError::Corrupt(block.id)),
            (None, None) => Err(DfsError::BlockMissing(block.id)),
        }
    }

    /// The block's replica homes per current metadata (the caller's
    /// `BlockInfo` may predate a quarantine or repair), minus dead
    /// nodes. Falls back to the caller's snapshot for deleted files.
    fn live_replica_nodes(&self, block: &BlockInfo) -> Vec<usize> {
        let fresh = {
            let locator = self.inner.locator.read();
            locator.get(&block.id).cloned()
        }
        .and_then(|path| {
            self.inner.namenode.files.read().get(&path).and_then(|info| {
                info.blocks
                    .iter()
                    .find(|b| b.id == block.id)
                    .map(|b| b.nodes.clone())
            })
        });
        let dead = self.inner.dead.read();
        fresh
            .unwrap_or_else(|| block.nodes.clone())
            .into_iter()
            .filter(|n| !dead.contains(n))
            .collect()
    }

    /// Does `node`'s read-latency history (p90) exceed the hedge budget?
    fn node_suspect_slow(&self, node: usize) -> bool {
        let h = &self.inner.read_lat[node];
        h.count() > 0 && h.quantile(0.9).unwrap_or(0) > self.inner.config.hedge_after_micros
    }

    /// Race the suspected-slow `primary` replica against `alt`:
    /// the primary runs on a helper thread; if it hasn't answered
    /// within the hedge budget, read the alternate inline and take
    /// whichever verifies first.
    fn hedged_read(&self, block: &BlockInfo, primary: usize, alt: usize) -> (ReplicaRead, usize) {
        let (tx, rx) = std::sync::mpsc::channel();
        let dfs = self.clone();
        let blk = block.clone();
        std::thread::spawn(move || {
            let _ = tx.send(dfs.read_replica(primary, &blk));
        });
        let budget = Duration::from_micros(self.inner.config.hedge_after_micros.max(1));
        match rx.recv_timeout(budget) {
            Ok(outcome) => (outcome, primary),
            Err(_) => {
                let m = &self.inner.metrics;
                m.counter(metrics_keys::READS_HEDGED).add(1);
                let alt_outcome = self.read_replica(alt, block);
                if matches!(alt_outcome, ReplicaRead::Ok(_)) {
                    m.counter(metrics_keys::READS_HEDGE_WINS).add(1);
                    return (alt_outcome, alt);
                }
                // Alternate lost too: fall back to whatever the primary
                // eventually produces (its thread always terminates).
                match rx.recv() {
                    Ok(outcome) => (outcome, primary),
                    Err(_) => (alt_outcome, alt),
                }
            }
        }
    }

    /// Serve one replica from `node`, applying injected gray failures,
    /// recording service latency, and verifying the checksum. A
    /// mismatch quarantines the replica and triggers targeted repair
    /// before reporting [`ReplicaRead::Corrupt`].
    fn read_replica(&self, node: usize, block: &BlockInfo) -> ReplicaRead {
        let start = Instant::now();
        let slow_ms = self.inner.faults.slow.read().get(&node).copied();
        if let Some(ms) = slow_ms {
            std::thread::sleep(Duration::from_millis(ms));
        }
        if self.take_flaky_failure(node) {
            return ReplicaRead::Transient(format!(
                "transient read failure on node {node} (block {})",
                block.id
            ));
        }
        let bytes = {
            let blocks = self.inner.datanodes[node].blocks.read();
            match blocks.get(&block.id) {
                Some(b) => b.bytes().clone(),
                None => return ReplicaRead::Missing,
            }
        };
        let verified = xxh64(bytes.as_slice()) == block.checksum;
        self.inner.read_lat[node].record(start.elapsed().as_micros() as u64);
        if verified {
            ReplicaRead::Ok(bytes)
        } else {
            if self.quarantine_replica(node, block.id) {
                self.repair_block(block.id);
            }
            ReplicaRead::Corrupt
        }
    }

    /// Injected flaky read: consume one scheduled failure for `node`.
    fn take_flaky_failure(&self, node: usize) -> bool {
        let mut flaky = self.inner.faults.flaky.lock();
        match flaky.get_mut(&node) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    }

    /// Drop a replica that failed verification: scrub it from the
    /// block's metadata and node index, then remove its storage.
    /// Returns `true` for the caller that actually removed the stored
    /// payload (concurrent detections count the corruption once).
    fn quarantine_replica(&self, node: usize, id: u64) -> bool {
        let path = self.inner.locator.read().get(&id).cloned();
        if let Some(path) = path {
            let mut files = self.inner.namenode.files.write();
            if let Some(info) = files.get_mut(&path) {
                if let Some(b) = info.blocks.iter_mut().find(|b| b.id == id) {
                    b.nodes.retain(|&n| n != node);
                }
            }
        }
        self.inner.node_index[node].write().remove(&id);
        match self.inner.datanodes[node].blocks.write().remove(&id) {
            Some(backing) => {
                backing.unlink();
                self.inner
                    .metrics
                    .counter(metrics_keys::BLOCKS_CORRUPT_DETECTED)
                    .add(1);
                true
            }
            None => false,
        }
    }

    /// Targeted repair after a quarantine: restore the block to its
    /// effective replication from a checksum-verified survivor. Counts
    /// created replicas under [`metrics_keys::BLOCKS_CORRUPT_REPAIRED`].
    fn repair_block(&self, id: u64) -> usize {
        let (live, effective) = self.live_and_effective();
        let path = self.inner.locator.read().get(&id).cloned();
        let Some(path) = path else { return 0 };
        let mut files = self.inner.namenode.files.write();
        let Some(info) = files.get_mut(&path) else { return 0 };
        let Some(b) = info.blocks.iter_mut().find(|b| b.id == id) else {
            return 0;
        };
        let (created, _) = self.restore_block_locked(b, &live, effective);
        if created > 0 {
            self.inner
                .metrics
                .counter(metrics_keys::BLOCKS_CORRUPT_REPAIRED)
                .add(created as u64);
        }
        created
    }

    /// Live nodes and the replication factor they can support.
    fn live_and_effective(&self) -> (Vec<usize>, usize) {
        let dead = self.inner.dead.read();
        let live: Vec<usize> = (0..self.inner.config.n_nodes)
            .filter(|n| !dead.contains(n))
            .collect();
        let effective = self.inner.config.replication.min(live.len());
        (live, effective)
    }

    /// Read an entire file back into a fresh owned buffer (one counted
    /// copy). Prefer [`Dfs::read_file_shared`] where a borrowless view
    /// suffices.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, DfsError> {
        let info = self.stat(path)?;
        let mut out = Vec::with_capacity(info.len);
        for b in &info.blocks {
            out.extend_from_slice(&self.read_block(b)?);
        }
        self.inner
            .metrics
            .counter(metrics_keys::BYTES_COPIED)
            .add(out.len() as u64);
        Ok(out)
    }

    /// Read a whole file as shared bytes. A file that fits in one block
    /// is served zero-copy (the result shares the stored block's
    /// backing); multi-block files pay one counted concatenation.
    pub fn read_file_shared(&self, path: &str) -> Result<SharedBytes, DfsError> {
        let info = self.stat(path)?;
        match info.blocks.len() {
            0 => Ok(SharedBytes::new()),
            1 => self.read_block(&info.blocks[0]),
            _ => {
                let mut out = Vec::with_capacity(info.len);
                for b in &info.blocks {
                    out.extend_from_slice(&self.read_block(b)?);
                }
                self.inner
                    .metrics
                    .counter(metrics_keys::BYTES_COPIED)
                    .add(out.len() as u64);
                Ok(SharedBytes::from_vec(out))
            }
        }
    }

    /// Read `len` bytes of a file starting at `offset`, as shared
    /// bytes. A range that stays inside one block is served zero-copy —
    /// a window onto the stored block (for DFS-transit shuffle fetches
    /// this is the common case: one partition's frames out of a map
    /// output file). Ranges spanning blocks pay one counted
    /// concatenation of just the overlapped slices.
    pub fn read_file_range_shared(
        &self,
        path: &str,
        offset: usize,
        len: usize,
    ) -> Result<SharedBytes, DfsError> {
        self.read_file_range_shared_at(path, offset, len, ReadAffinity::NONE)
            .map(|r| r.bytes)
    }

    /// [`Dfs::read_file_range_shared`] with a [`ReadAffinity`] hint:
    /// every block read in the range prefers the affinity node's
    /// replica, and the returned [`RangeRead`] splits the bytes by
    /// whether the serving replica was the affinity node (local) or any
    /// other (remote) — the shuffle's locality accounting. Without an
    /// affinity node everything counts as remote.
    pub fn read_file_range_shared_at(
        &self,
        path: &str,
        offset: usize,
        len: usize,
        affinity: ReadAffinity,
    ) -> Result<RangeRead, DfsError> {
        let info = self.stat(path)?;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= info.len)
            .ok_or_else(|| {
                DfsError::BadRange(format!(
                    "range {offset}+{len} beyond {path} (len {})",
                    info.len
                ))
            })?;
        if len == 0 {
            return Ok(RangeRead {
                bytes: SharedBytes::new(),
                local_bytes: 0,
                remote_bytes: 0,
            });
        }
        // Which slice of each block does the range overlap?
        let mut parts: Vec<(&BlockInfo, usize, usize)> = Vec::new();
        let mut block_start = 0usize;
        for b in &info.blocks {
            let block_end = block_start + b.len;
            if block_end > offset && block_start < end {
                let lo = offset.max(block_start) - block_start;
                let hi = end.min(block_end) - block_start;
                parts.push((b, lo, hi));
            }
            block_start = block_end;
            if block_start >= end {
                break;
            }
        }
        let mut local_bytes = 0u64;
        let mut remote_bytes = 0u64;
        let mut tally = |served: usize, n: u64| {
            if affinity.0 == Some(served) {
                local_bytes += n;
            } else {
                remote_bytes += n;
            }
        };
        if let [(b, lo, hi)] = parts[..] {
            let (block, served) = self.read_block_at(b, affinity)?;
            tally(served, (hi - lo) as u64);
            let bytes = if lo == 0 && hi == block.len() {
                block
            } else {
                block.slice(lo..hi)
            };
            return Ok(RangeRead {
                bytes,
                local_bytes,
                remote_bytes,
            });
        }
        let mut v = Vec::with_capacity(len);
        for (b, lo, hi) in parts {
            let (block, served) = self.read_block_at(b, affinity)?;
            tally(served, (hi - lo) as u64);
            v.extend_from_slice(&block.slice(lo..hi));
        }
        debug_assert_eq!(v.len(), len);
        self.inner
            .metrics
            .counter(metrics_keys::BYTES_COPIED_RANGE)
            .add(v.len() as u64);
        Ok(RangeRead {
            bytes: SharedBytes::from_vec(v),
            local_bytes,
            remote_bytes,
        })
    }

    /// Would every block of `path` still be readable if the nodes in
    /// `excluded` disappeared? Probes actual data-node storage (not just
    /// metadata), so silently wiped replicas ([`Dfs::kill_node`]) don't
    /// count. This is the engine's reship-vs-rerun question: a map
    /// output that survives its home's death on some replica can be
    /// re-fetched instead of re-computed.
    pub fn file_available_excluding(&self, path: &str, excluded: &[usize]) -> bool {
        let Ok(info) = self.stat(path) else {
            return false;
        };
        info.blocks.iter().all(|b| {
            b.nodes.iter().any(|&n| {
                !excluded.contains(&n)
                    && !self.inner.dead.read().contains(&n)
                    && self.inner.datanodes[n].blocks.read().contains_key(&b.id)
            })
        })
    }

    /// Pin a file: while its refcount is nonzero, [`Dfs::delete`]
    /// refuses with [`DfsError::Pinned`] and retention sweeps skip it.
    /// Pins nest — each `pin` needs a matching [`Dfs::unpin`].
    pub fn pin(&self, path: &str) -> Result<(), DfsError> {
        if !self.exists(path) {
            return Err(DfsError::FileNotFound(path.to_string()));
        }
        *self.inner.pins.lock().entry(path.to_string()).or_insert(0) += 1;
        Ok(())
    }

    /// Release one pin on `path`. Releasing a path with no live pin is
    /// a no-op (pin holders may race a namespace teardown).
    pub fn unpin(&self, path: &str) {
        let mut pins = self.inner.pins.lock();
        if let Some(n) = pins.get_mut(path) {
            *n -= 1;
            if *n == 0 {
                pins.remove(path);
            }
        }
    }

    /// Current pin refcount of `path` (0 when unpinned or unknown).
    pub fn pin_count(&self, path: &str) -> u64 {
        self.inner.pins.lock().get(path).copied().unwrap_or(0)
    }

    /// Are any paths under `prefix` currently pinned?
    pub fn any_pinned(&self, prefix: &str) -> bool {
        self.inner
            .pins
            .lock()
            .keys()
            .any(|p| p.starts_with(prefix))
    }

    /// Delete a file and free its replicas. Refuses with
    /// [`DfsError::Pinned`] while the path holds a live pin.
    pub fn delete(&self, path: &str) -> Result<(), DfsError> {
        if self.pin_count(path) > 0 {
            return Err(DfsError::Pinned(path.to_string()));
        }
        let info = {
            let mut files = self.inner.namenode.files.write();
            files
                .remove(path)
                .ok_or_else(|| DfsError::FileNotFound(path.to_string()))?
        };
        {
            let mut locator = self.inner.locator.write();
            for b in &info.blocks {
                locator.remove(&b.id);
            }
        }
        for b in &info.blocks {
            for &n in &b.nodes {
                self.inner.node_index[n].write().remove(&b.id);
                if let Some(backing) = self.inner.datanodes[n].blocks.write().remove(&b.id) {
                    backing.unlink();
                }
            }
        }
        Ok(())
    }

    /// Remove stale shuffle-transit files (`…/shuffle-<run>/…`) left
    /// behind by a crashed prior process. The engine deletes its transit
    /// prefix when a job completes, so anything still matching at
    /// platform startup is an orphan. Returns the number of files swept
    /// (counted under [`metrics_keys::ORPHANS_SWEPT`]).
    pub fn sweep_orphans(&self) -> usize {
        let stale: Vec<String> = self
            .list("")
            .into_iter()
            .filter(|p| is_shuffle_transit_path(p))
            .collect();
        let swept = self.delete_all(&stale).swept;
        if swept > 0 {
            self.inner
                .metrics
                .counter(metrics_keys::ORPHANS_SWEPT)
                .add(swept as u64);
        }
        swept
    }

    /// Live retention sweep: delete every file under `prefix`, charging
    /// the count to `reason`'s counter. Unlike the startup-only
    /// [`Dfs::sweep_orphans`], this is the runtime half of the retention
    /// policy — the engine calls it with [`SweepReason::Completed`] when
    /// a job's shuffle transit is consumed, and the job service calls it
    /// with [`SweepReason::Cancelled`] / [`SweepReason::Ttl`] when a
    /// tenant's job namespace is retired. Returns the files swept;
    /// pinned files are skipped, not failed — see
    /// [`Dfs::sweep_prefix_report`] for the skip count.
    pub fn sweep_prefix(&self, prefix: &str, reason: SweepReason) -> usize {
        self.sweep_prefix_report(prefix, reason).swept
    }

    /// [`Dfs::sweep_prefix`] with full accounting: how many files were
    /// removed and how many a live pin protected. Skips are counted
    /// under [`metrics_keys::RETENTION_PIN_SKIPS`] so a retirement loop
    /// can tell "namespace empty" from "namespace still referenced".
    pub fn sweep_prefix_report(&self, prefix: &str, reason: SweepReason) -> SweepReport {
        let report = self.delete_all(&self.list(prefix));
        if report.swept > 0 {
            self.inner
                .metrics
                .counter(reason.counter_key())
                .add(report.swept as u64);
        }
        report
    }

    fn delete_all(&self, paths: &[String]) -> SweepReport {
        let mut report = SweepReport::default();
        for p in paths {
            match self.delete(p) {
                Ok(()) => report.swept += 1,
                Err(DfsError::Pinned(_)) => report.pinned_skipped += 1,
                Err(_) => {}
            }
        }
        if report.pinned_skipped > 0 {
            self.inner
                .metrics
                .counter(metrics_keys::RETENTION_PIN_SKIPS)
                .add(report.pinned_skipped as u64);
        }
        report
    }

    /// All paths with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .inner
            .namenode
            .files
            .read()
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// The canonical path of a content-addressed entry: `{root}/cas/{key}`
    /// with the key rendered as fixed-width hex, so `list("{root}/cas/")`
    /// enumerates a tenant's whole cache in key order.
    pub fn cas_path(root: &str, key: u64) -> String {
        format!("{root}/cas/{key:016x}")
    }

    /// Store `data` under content key `key` in `root`'s cache. Naturally
    /// idempotent: the path is derived from the content key, so an
    /// already-present entry means an identical payload was committed by
    /// an earlier (or racing) writer and the put degrades to a hit —
    /// `write_shared_with_policy` inserts namenode metadata last, so a
    /// visible entry is always complete. Returns the entry's path.
    pub fn cas_put(&self, root: &str, key: u64, data: SharedBytes) -> Result<String, DfsError> {
        let path = Dfs::cas_path(root, key);
        match self.write_file_shared(&path, data) {
            Ok(_) => {
                self.inner.metrics.counter(metrics_keys::CAS_PUTS).add(1);
                Ok(path)
            }
            Err(DfsError::FileExists(_)) => {
                self.inner.metrics.counter(metrics_keys::CAS_HITS).add(1);
                Ok(path)
            }
            Err(e) => Err(e),
        }
    }

    /// Fetch the entry for `key` in `root`'s cache, or `None` when the
    /// key was never committed. Hits and misses are counted under
    /// [`metrics_keys::CAS_HITS`] / [`metrics_keys::CAS_MISSES`].
    pub fn cas_get(&self, root: &str, key: u64) -> Result<Option<SharedBytes>, DfsError> {
        let path = Dfs::cas_path(root, key);
        if !self.exists(&path) {
            self.inner.metrics.counter(metrics_keys::CAS_MISSES).add(1);
            return Ok(None);
        }
        self.inner.metrics.counter(metrics_keys::CAS_HITS).add(1);
        self.read_file_shared(&path).map(Some)
    }

    /// Per-node storage counters (data-locality accounting).
    pub fn node_stats(&self) -> Vec<NodeStats> {
        self.inner
            .datanodes
            .iter()
            .map(|dn| {
                let blocks = dn.blocks.read();
                NodeStats {
                    blocks: blocks.len(),
                    bytes: blocks.values().map(|b| b.len()).sum(),
                }
            })
            .collect()
    }

    /// Drop every replica a node holds **without** telling the name node.
    ///
    /// This is the raw storage-loss primitive (a disk wipe the cluster has
    /// not noticed yet): metadata still lists the node, reads skip the
    /// missing replicas, writes still target it. For a *detected* failure
    /// with metadata scrubbing and a damage report, use [`Dfs::fail_node`].
    pub fn kill_node(&self, node: usize) {
        self.wipe_node_storage(node);
    }

    /// Drop a node's replica map, unlinking any persisted block files.
    /// The node's open extent is released too, so extent files with no
    /// surviving packed blocks unlink themselves.
    fn wipe_node_storage(&self, node: usize) {
        let mut blocks = self.inner.datanodes[node].blocks.write();
        for backing in blocks.values() {
            backing.unlink();
        }
        blocks.clear();
        self.inner.datanodes[node].extent.lock().open = None;
    }

    /// Declare a node dead: drop its replicas, scrub it from the
    /// affected files' block locations, and exclude it from future
    /// writes.
    ///
    /// The scrub is incremental: the per-node block index names exactly
    /// the blocks whose metadata lists this node, so only their owning
    /// files are touched — no namespace-wide sweep. Returns a
    /// [`FailureReport`] listing blocks that lost their last replica
    /// and blocks that are now under-replicated. Calling it twice for
    /// the same node is a no-op reporting no further damage.
    pub fn fail_node(&self, node: usize) -> FailureReport {
        assert!(node < self.inner.config.n_nodes, "no such node: {node}");
        if !self.inner.dead.read().contains(&node) {
            self.inner.metrics.counter(metrics_keys::NODE_FAILURES).add(1);
        }
        self.inner.dead.write().insert(node);
        self.wipe_node_storage(node);
        let held: Vec<u64> = {
            let mut index = self.inner.node_index[node].write();
            index.drain().collect()
        };
        let target = self.inner.config.replication;
        let mut report = FailureReport {
            node,
            ..FailureReport::default()
        };
        let locator = self.inner.locator.read();
        let mut files = self.inner.namenode.files.write();
        for id in held {
            let Some(path) = locator.get(&id) else { continue };
            let Some(info) = files.get_mut(path) else { continue };
            let Some(b) = info.blocks.iter_mut().find(|b| b.id == id) else {
                continue;
            };
            if let Some(pos) = b.nodes.iter().position(|&n| n == node) {
                b.nodes.remove(pos);
                if b.nodes.is_empty() {
                    report.blocks_lost.push(id);
                } else if b.nodes.len() < target {
                    report.under_replicated.push(id);
                }
            }
        }
        report.blocks_lost.sort_unstable();
        report.under_replicated.sort_unstable();
        report
    }

    /// Nodes declared dead via [`Dfs::fail_node`], sorted.
    pub fn dead_nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.inner.dead.read().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Has `node` been declared dead?
    pub fn is_node_dead(&self, node: usize) -> bool {
        self.inner.dead.read().contains(&node)
    }

    /// Copy surviving replicas of under-replicated blocks onto live nodes
    /// until every block reaches `min(replication, live nodes)` replicas —
    /// the name node's re-replication sweep after a failure. Targets are
    /// chosen least-loaded-first; copy sources are checksum-verified, so
    /// a corrupt replica is never propagated (it is quarantined instead).
    /// Returns the number of replicas created.
    pub fn re_replicate(&self) -> usize {
        let (live, effective) = self.live_and_effective();
        let mut created = 0usize;
        let mut files = self.inner.namenode.files.write();
        for info in files.values_mut() {
            for b in info.blocks.iter_mut() {
                let (c, dropped) = self.restore_block_locked(b, &live, effective);
                created += c;
                if dropped > 0 {
                    // Replicas re-created in place of corrupt sources
                    // found during this sweep count as repairs too.
                    self.inner
                        .metrics
                        .counter(metrics_keys::BLOCKS_CORRUPT_REPAIRED)
                        .add(c.min(dropped) as u64);
                }
            }
        }
        if created > 0 {
            self.inner
                .metrics
                .counter(metrics_keys::REPLICAS_RESTORED)
                .add(created as u64);
        }
        created
    }

    /// Incremental re-replication: restore only the given blocks (as
    /// reported by [`Dfs::fail_node`]) via the block locator, instead of
    /// sweeping the whole namespace. Returns the number of replicas
    /// created, counted under both
    /// [`metrics_keys::BLOCKS_REREPLICATED_INCREMENTAL`] and
    /// [`metrics_keys::REPLICAS_RESTORED`].
    pub fn re_replicate_blocks(&self, ids: &[u64]) -> usize {
        let (live, effective) = self.live_and_effective();
        let mut created = 0usize;
        let locator = self.inner.locator.read();
        let mut files = self.inner.namenode.files.write();
        for &id in ids {
            let Some(path) = locator.get(&id) else { continue };
            let Some(info) = files.get_mut(path) else { continue };
            let Some(b) = info.blocks.iter_mut().find(|b| b.id == id) else {
                continue;
            };
            let (c, _) = self.restore_block_locked(b, &live, effective);
            created += c;
        }
        if created > 0 {
            let m = &self.inner.metrics;
            m.counter(metrics_keys::BLOCKS_REREPLICATED_INCREMENTAL)
                .add(created as u64);
            m.counter(metrics_keys::REPLICAS_RESTORED).add(created as u64);
        }
        created
    }

    /// Bring one block (whose metadata entry the caller holds mutably,
    /// under the namenode write lock) back to `effective` replicas.
    /// Sources are checksum-verified; replicas that fail verification
    /// are dropped from storage and metadata on the spot (counted as
    /// detected corruption). Returns `(replicas created, corrupt
    /// replicas dropped)`.
    fn restore_block_locked(
        &self,
        b: &mut BlockInfo,
        live: &[usize],
        effective: usize,
    ) -> (usize, usize) {
        let mut created = 0usize;
        let mut dropped = 0usize;
        while !b.nodes.is_empty() && b.nodes.len() < effective {
            // A verified surviving replica to copy from (kill_node may
            // have silently wiped some listed homes; bit rot may have
            // silently damaged others — probe and verify them all).
            let mut payload: Option<SharedBytes> = None;
            let mut i = 0;
            while i < b.nodes.len() {
                let n = b.nodes[i];
                let candidate = self.inner.datanodes[n]
                    .blocks
                    .read()
                    .get(&b.id)
                    .map(|bb| bb.bytes().clone());
                match candidate {
                    Some(bytes) if xxh64(bytes.as_slice()) == b.checksum => {
                        payload = Some(bytes);
                        break;
                    }
                    Some(_) => {
                        // Corrupt source: quarantine it right here (we
                        // already hold the metadata lock).
                        b.nodes.remove(i);
                        self.inner.node_index[n].write().remove(&b.id);
                        if let Some(bad) = self.inner.datanodes[n].blocks.write().remove(&b.id) {
                            bad.unlink();
                        }
                        self.inner
                            .metrics
                            .counter(metrics_keys::BLOCKS_CORRUPT_DETECTED)
                            .add(1);
                        dropped += 1;
                    }
                    None => i += 1,
                }
            }
            let Some(payload) = payload else { break };
            let Some(&dst) = live
                .iter()
                .filter(|n| !b.nodes.contains(n))
                .min_by_key(|&&n| self.inner.datanodes[n].blocks.read().len())
            else {
                break;
            };
            if self.store_replica(dst, b.id, &payload, b.checksum).is_err() {
                break;
            }
            b.nodes.push(dst);
            self.inner.node_index[dst].write().insert(b.id);
            created += 1;
        }
        (created, dropped)
    }

    /// Flip a byte of the stored replica of `path`'s `block`-th block on
    /// its `replica`-th home — simulated bit rot for integrity tests.
    /// The block's metadata checksum still holds the true value, so the
    /// next read detects and repairs the damage.
    pub fn corrupt_block(&self, path: &str, block: usize, replica: usize) -> Result<(), DfsError> {
        let info = self.stat(path)?;
        let b = info.blocks.get(block).ok_or_else(|| {
            DfsError::BadRange(format!("{path} has {} blocks, not {block}", info.blocks.len()))
        })?;
        let &node = b.nodes.get(replica).ok_or_else(|| {
            DfsError::BadRange(format!(
                "block {} has {} replicas, not {replica}",
                b.id,
                b.nodes.len()
            ))
        })?;
        self.corrupt_replica_storage(node, b.id)
    }

    /// Arm a corrupt-on-write injection: any future write whose path
    /// contains `path_contains` gets the stored payload of its
    /// `block`-th block's `replica`-th home bit-flipped after the write
    /// completes. Deterministic — fires on every matching write.
    pub fn inject_corrupt_on_write(&self, path_contains: &str, block: usize, replica: usize) {
        self.inner
            .faults
            .corrupt_on_write
            .lock()
            .push(CorruptOnWrite {
                path_contains: path_contains.to_string(),
                block,
                replica,
            });
    }

    /// Arm a flaky-read injection: the next `fail_first_n` replica
    /// reads served by `node` fail with a retryable transient error.
    pub fn inject_flaky_reads(&self, node: usize, fail_first_n: u64) {
        self.inner.faults.flaky.lock().insert(node, fail_first_n);
    }

    /// Arm a slow-node injection: every replica read served by `node`
    /// sleeps `delay_ms` first — a limping-but-alive disk. Hedged reads
    /// are the intended countermeasure.
    pub fn inject_slow_node(&self, node: usize, delay_ms: u64) {
        self.inner.faults.slow.write().insert(node, delay_ms);
    }

    /// Apply any armed corrupt-on-write injections to a block just
    /// written to `nodes` as block index `bi` of `path`.
    fn apply_corrupt_on_write(&self, path: &str, bi: usize, nodes: &[usize], id: u64) {
        let plans = self.inner.faults.corrupt_on_write.lock();
        for c in plans.iter() {
            if c.block == bi && path.contains(&c.path_contains) {
                if let Some(&n) = nodes.get(c.replica) {
                    let _ = self.corrupt_replica_storage(n, id);
                }
            }
        }
    }

    /// Replace the stored payload of one replica with a bit-flipped
    /// copy (metadata untouched). Persisted backings are unlinked; the
    /// damaged copy lives heap-resident, which is all the verify path
    /// cares about.
    fn corrupt_replica_storage(&self, node: usize, id: u64) -> Result<(), DfsError> {
        let mut blocks = self.inner.datanodes[node].blocks.write();
        let Some(backing) = blocks.get(&id) else {
            return Err(DfsError::BlockMissing(id));
        };
        let mut flipped = backing.bytes().to_vec();
        match flipped.first_mut() {
            Some(b0) => *b0 ^= 0xA5,
            None => flipped.push(0xA5),
        }
        backing.unlink();
        blocks.insert(id, BlockBacking::Resident(SharedBytes::from_vec(flipped)));
        Ok(())
    }
}

/// A reader's replica-placement preference: the node the reader is
/// executing on. [`Dfs::read_block_at`] serves the co-located replica
/// when one is live, falling back to the normal replica order (and all
/// of the hedging/quarantine/retry machinery) when there isn't — the
/// shuffle's "move the fetch, not the bytes" lever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadAffinity(pub Option<usize>);

impl ReadAffinity {
    /// No preference: replicas are tried in placement order.
    pub const NONE: ReadAffinity = ReadAffinity(None);

    /// Prefer replicas on `node`.
    pub fn node(node: usize) -> ReadAffinity {
        ReadAffinity(Some(node))
    }
}

/// A range read plus its locality split: how many of the bytes were
/// served by the affinity node's own replica versus shipped from
/// another node. `local_bytes + remote_bytes` counts the block slices
/// actually read for the range.
#[derive(Debug, Clone)]
pub struct RangeRead {
    pub bytes: SharedBytes,
    pub local_bytes: u64,
    pub remote_bytes: u64,
}

/// Outcome of serving one replica.
enum ReplicaRead {
    Ok(SharedBytes),
    /// The node doesn't hold this block (wiped or never stored).
    Missing,
    /// A transient failure worth retrying elsewhere or later.
    Transient(String),
    /// Payload failed checksum verification (already quarantined).
    Corrupt,
}

/// Exponential backoff with deterministic ±50% jitter: attempt `k`
/// sleeps `base * 2^(k-1) * [0.5, 1.0)` milliseconds, where the jitter
/// fraction is a pure hash of `(seed, nonce, attempt)` so fault runs
/// replay identically.
fn backoff_with_jitter(base_ms: u64, attempt: usize, seed: u64, nonce: u64) -> Duration {
    let exp = base_ms.max(1).saturating_mul(1 << (attempt - 1).min(6)) as f64;
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(nonce.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((attempt as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let jitter = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    Duration::from_micros((exp * (0.5 + 0.5 * jitter) * 1000.0) as u64)
}

/// Does any path segment look like an engine shuffle-transit run
/// directory (`shuffle-<digits>`)?
fn is_shuffle_transit_path(path: &str) -> bool {
    path.split('/').any(|seg| {
        seg.strip_prefix("shuffle-")
            .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
    })
}

/// Append one `block-id checksum` record to the node's integrity log,
/// persisting checksums alongside the blocks and extents they cover.
fn append_checksum_record(node_dir: &std::path::Path, id: u64, checksum: u64) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(node_dir.join("checksums.crc"))?;
    writeln!(f, "{id:016x} {checksum:016x}")
}

/// Substitute dead nodes in a placement with the next live node (cyclic
/// scan) not already chosen. If fewer live nodes exist than requested
/// replicas, the surplus replicas are dropped rather than doubled up.
fn remap_around_dead(
    nodes: Vec<usize>,
    dead: &HashSet<usize>,
    n_nodes: usize,
) -> Result<Vec<usize>, DfsError> {
    if dead.is_empty() {
        return Ok(nodes);
    }
    let mut out: Vec<usize> = Vec::with_capacity(nodes.len());
    for n in nodes {
        let mut cand = n;
        let mut steps = 0;
        while dead.contains(&cand) || out.contains(&cand) {
            cand = (cand + 1) % n_nodes;
            steps += 1;
            if steps > n_nodes {
                break;
            }
        }
        if steps <= n_nodes {
            out.push(cand);
        }
    }
    if out.is_empty() {
        return Err(DfsError::NoLiveNodes);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{LogicalPartitionPlacement, PinnedPlacement};

    fn small_dfs() -> Dfs {
        Dfs::new(DfsConfig {
            n_nodes: 4,
            block_size: 1024,
            replication: 1,
            ..DfsConfig::default()
        })
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let dfs = small_dfs();
        let data = payload(10_000);
        let info = dfs.write_file("/a", &data).unwrap();
        assert_eq!(info.len, 10_000);
        assert_eq!(info.blocks.len(), 10); // 10 × 1 KiB blocks (last partial? 10000/1024 → 9 full + 1 partial = 10)
        assert_eq!(dfs.read_file("/a").unwrap(), data);
    }

    #[test]
    fn block_splitting_sizes() {
        let dfs = small_dfs();
        let info = dfs.write_file("/b", &payload(2500)).unwrap();
        let sizes: Vec<usize> = info.blocks.iter().map(|b| b.len).collect();
        assert_eq!(sizes, vec![1024, 1024, 452]);
    }

    #[test]
    fn empty_file() {
        let dfs = small_dfs();
        let info = dfs.write_file("/empty", &[]).unwrap();
        assert!(info.blocks.is_empty());
        assert_eq!(dfs.read_file("/empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn duplicate_path_rejected() {
        let dfs = small_dfs();
        dfs.write_file("/a", &payload(10)).unwrap();
        assert!(matches!(
            dfs.write_file("/a", &payload(10)),
            Err(DfsError::FileExists(_))
        ));
    }

    #[test]
    fn missing_file_errors() {
        let dfs = small_dfs();
        assert!(matches!(
            dfs.read_file("/nope"),
            Err(DfsError::FileNotFound(_))
        ));
        assert!(dfs.delete("/nope").is_err());
    }

    #[test]
    fn delete_frees_replicas() {
        let dfs = small_dfs();
        dfs.write_file("/a", &payload(5000)).unwrap();
        assert!(dfs.node_stats().iter().any(|s| s.blocks > 0));
        dfs.delete("/a").unwrap();
        assert!(dfs.node_stats().iter().all(|s| s.blocks == 0));
        assert!(!dfs.exists("/a"));
    }

    #[test]
    fn default_placement_spreads_across_nodes() {
        let dfs = small_dfs();
        let info = dfs.write_file("/spread", &payload(8 * 1024)).unwrap();
        let homes: std::collections::HashSet<usize> = info
            .blocks
            .iter()
            .map(|b| b.nodes[0])
            .collect();
        assert_eq!(homes.len(), 4, "8 blocks over 4 nodes should use all");
        assert_eq!(info.single_home(), None);
    }

    #[test]
    fn logical_partition_placement_single_home() {
        let dfs = small_dfs();
        let info = dfs
            .write_file_with_policy("/part-00001", &payload(8 * 1024), &LogicalPartitionPlacement)
            .unwrap();
        let home = info.single_home();
        assert!(home.is_some(), "all blocks must share one home");
        // And the stats reflect that node holding everything.
        let stats = dfs.node_stats();
        assert_eq!(stats[home.unwrap()].bytes, 8 * 1024);
    }

    #[test]
    fn replication_survives_node_loss() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 512,
            replication: 2,
            ..DfsConfig::default()
        });
        let data = payload(4000);
        let info = dfs
            .write_file_with_policy("/r", &data, &PinnedPlacement(0))
            .unwrap();
        assert!(info.blocks.iter().all(|b| b.nodes.len() == 2));
        dfs.kill_node(0);
        assert_eq!(dfs.read_file("/r").unwrap(), data, "replica should serve");
        dfs.kill_node(1);
        assert!(matches!(
            dfs.read_file("/r"),
            Err(DfsError::BlockMissing(_))
        ));
    }

    #[test]
    fn fail_node_reports_under_replicated_blocks() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 512,
            replication: 2,
            ..DfsConfig::default()
        });
        let data = payload(2000); // 4 blocks, replicas on nodes {0, 1}
        let info = dfs
            .write_file_with_policy("/r", &data, &PinnedPlacement(0))
            .unwrap();
        let report = dfs.fail_node(0);
        assert_eq!(report.node, 0);
        assert!(report.blocks_lost.is_empty(), "replicas survive on node 1");
        assert_eq!(report.under_replicated.len(), info.blocks.len());
        // Metadata no longer lists the dead node.
        let info = dfs.stat("/r").unwrap();
        assert!(info.blocks.iter().all(|b| b.nodes == vec![1]));
        assert_eq!(dfs.read_file("/r").unwrap(), data);
        assert_eq!(dfs.dead_nodes(), vec![0]);
        assert!(dfs.is_node_dead(0) && !dfs.is_node_dead(1));
        // Failing the same node again reports no further damage.
        let again = dfs.fail_node(0);
        assert!(again.blocks_lost.is_empty() && again.under_replicated.is_empty());
    }

    #[test]
    fn fail_node_reports_lost_blocks_when_unreplicated() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 512,
            replication: 1,
            ..DfsConfig::default()
        });
        let info = dfs
            .write_file_with_policy("/r", &payload(1500), &PinnedPlacement(2))
            .unwrap();
        let report = dfs.fail_node(2);
        assert_eq!(report.blocks_lost.len(), info.blocks.len());
        assert!(report.under_replicated.is_empty());
        assert!(matches!(dfs.read_file("/r"), Err(DfsError::BlockMissing(_))));
    }

    #[test]
    fn re_replicate_restores_replication_factor() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 512,
            replication: 2,
            ..DfsConfig::default()
        });
        let data = payload(4000);
        dfs.write_file_with_policy("/r", &data, &PinnedPlacement(0))
            .unwrap();
        let report = dfs.fail_node(0);
        assert!(!report.under_replicated.is_empty());
        let created = dfs.re_replicate();
        assert_eq!(created, report.under_replicated.len());
        let info = dfs.stat("/r").unwrap();
        assert!(info.blocks.iter().all(|b| b.nodes.len() == 2));
        assert!(info.blocks.iter().all(|b| !b.nodes.contains(&0)));
        // The restored replication survives losing the other original home.
        dfs.fail_node(1);
        assert_eq!(dfs.read_file("/r").unwrap(), data);
        // Nothing left to do: only one live node remains, so effective
        // replication caps at 1 and a second sweep creates nothing.
        assert_eq!(dfs.re_replicate(), 0);
    }

    #[test]
    fn writes_avoid_dead_nodes() {
        let dfs = small_dfs();
        dfs.fail_node(2);
        let info = dfs
            .write_file_with_policy("/pinned", &payload(3000), &PinnedPlacement(2))
            .unwrap();
        assert!(
            info.blocks.iter().all(|b| !b.nodes.contains(&2)),
            "placement must be remapped off the dead node: {:?}",
            info.blocks
        );
        assert_eq!(dfs.read_file("/pinned").unwrap(), payload(3000));
        // Spreading writes also skip the dead node.
        let info = dfs.write_file("/spread", &payload(8 * 1024)).unwrap();
        assert!(info.blocks.iter().all(|b| !b.nodes.contains(&2)));
    }

    #[test]
    fn all_nodes_dead_rejects_writes() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 2,
            block_size: 512,
            replication: 1,
            ..DfsConfig::default()
        });
        dfs.fail_node(0);
        dfs.fail_node(1);
        assert!(matches!(
            dfs.write_file("/x", &payload(10)),
            Err(DfsError::NoLiveNodes)
        ));
    }

    #[test]
    fn list_by_prefix() {
        let dfs = small_dfs();
        dfs.write_file("/job/part-0", &payload(1)).unwrap();
        dfs.write_file("/job/part-1", &payload(1)).unwrap();
        dfs.write_file("/other", &payload(1)).unwrap();
        assert_eq!(
            dfs.list("/job/"),
            vec!["/job/part-0".to_string(), "/job/part-1".to_string()]
        );
        assert_eq!(dfs.list("").len(), 3);
    }

    #[test]
    fn metrics_track_block_io_and_recovery() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 512,
            replication: 2,
            ..DfsConfig::default()
        });
        let data = payload(1500); // 3 blocks × 2 replicas
        dfs.write_file_with_policy("/m", &data, &PinnedPlacement(0))
            .unwrap();
        let get = |k: &str| dfs.metrics().counter(k).get();
        assert_eq!(get(metrics_keys::BLOCKS_WRITTEN), 6);
        assert_eq!(get(metrics_keys::BYTES_WRITTEN), 3000);
        dfs.read_file("/m").unwrap();
        assert_eq!(get(metrics_keys::BLOCKS_READ), 3);
        assert_eq!(get(metrics_keys::BYTES_READ), 1500);
        dfs.fail_node(0);
        dfs.fail_node(0); // second declaration is not a new failure
        assert_eq!(get(metrics_keys::NODE_FAILURES), 1);
        let created = dfs.re_replicate();
        assert!(created > 0);
        assert_eq!(get(metrics_keys::REPLICAS_RESTORED), created as u64);
    }

    #[test]
    fn shared_write_is_zero_copy() {
        let dfs = small_dfs();
        let data = SharedBytes::from_vec(payload(3000));
        let info = dfs.write_file_shared("/z", data.clone()).unwrap();
        assert_eq!(info.blocks.len(), 3);
        // Stored blocks are windows into the caller's backing, not copies.
        for b in &info.blocks {
            assert!(dfs.read_block(b).unwrap().same_backing(&data));
        }
        assert_eq!(dfs.metrics().counter(metrics_keys::BYTES_COPIED).get(), 0);
        assert_eq!(dfs.read_file("/z").unwrap(), data.to_vec());
    }

    #[test]
    fn single_block_shared_read_is_zero_copy() {
        let dfs = small_dfs();
        dfs.write_file("/one", &payload(800)).unwrap();
        let after_write = dfs.metrics().counter(metrics_keys::BYTES_COPIED).get();
        let block0 = dfs.read_block(&dfs.stat("/one").unwrap().blocks[0]).unwrap();
        let got = dfs.read_file_shared("/one").unwrap();
        assert_eq!(got, payload(800));
        assert!(got.same_backing(&block0), "single-block read must not copy");
        assert_eq!(
            dfs.metrics().counter(metrics_keys::BYTES_COPIED).get(),
            after_write
        );
        // Multi-block files still concatenate (and count the copy).
        dfs.write_file("/many", &payload(3000)).unwrap();
        assert_eq!(dfs.read_file_shared("/many").unwrap(), payload(3000));
    }

    #[test]
    fn concurrent_writers() {
        let dfs = small_dfs();
        std::thread::scope(|s| {
            for t in 0..8 {
                let dfs = dfs.clone();
                s.spawn(move || {
                    for i in 0..20 {
                        dfs.write_file(&format!("/t{t}/f{i}"), &payload(700)).unwrap();
                    }
                });
            }
        });
        assert_eq!(dfs.list("/t").len(), 160);
        let total: usize = dfs.node_stats().iter().map(|s| s.bytes).sum();
        assert_eq!(total, 160 * 700);
    }

    fn store_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gesall-blockstore-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn persisted_dfs(name: &str, replication: usize) -> (Dfs, PathBuf) {
        let dir = store_dir(name);
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 1024,
            replication,
            block_store_dir: Some(dir.clone()),
            ..DfsConfig::default()
        });
        (dfs, dir)
    }

    /// Block-payload files (`.blk` + `.ext`) across all node dirs; the
    /// per-node `checksums.crc` integrity log is not payload.
    fn blk_files(dir: &PathBuf) -> usize {
        let mut n = 0;
        for node in std::fs::read_dir(dir).unwrap().flatten() {
            if node.path().is_dir() {
                n += std::fs::read_dir(node.path())
                    .unwrap()
                    .flatten()
                    .filter(|e| {
                        matches!(
                            e.path().extension().and_then(|x| x.to_str()),
                            Some("blk") | Some("ext")
                        )
                    })
                    .count();
            }
        }
        n
    }

    #[test]
    fn persisted_blocks_roundtrip_via_mapping() {
        let (dfs, dir) = persisted_dfs("roundtrip", 1);
        let data = payload(3000);
        let info = dfs.write_file("/p", &data).unwrap();
        assert_eq!(info.blocks.len(), 3);
        assert_eq!(blk_files(&dir), 3, "one file per replica");
        assert_eq!(
            dfs.metrics().counter(metrics_keys::BLOCKS_MAPPED).get(),
            3
        );
        assert_eq!(dfs.read_file("/p").unwrap(), data);
        // Two reads of the same block share the block file's mapping —
        // a refcount bump, not a re-read.
        let b0 = &dfs.stat("/p").unwrap().blocks[0];
        let r1 = dfs.read_block(b0).unwrap();
        let r2 = dfs.read_block(b0).unwrap();
        assert!(r1.is_mapped());
        assert!(r1.same_backing(&r2), "reads must share the mapping");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_unlinks_persisted_blocks() {
        let (dfs, dir) = persisted_dfs("delete", 2);
        dfs.write_file("/p", &payload(2048)).unwrap();
        assert_eq!(blk_files(&dir), 4); // 2 blocks × 2 replicas
        dfs.delete("/p").unwrap();
        assert_eq!(blk_files(&dir), 0, "delete must unlink block files");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn range_read_single_block_is_zero_copy() {
        let dfs = small_dfs();
        let data = payload(3000); // 3 × 1 KiB blocks
        dfs.write_file("/r", &data).unwrap();
        // Entirely inside block 1.
        let got = dfs.read_file_range_shared("/r", 1024 + 100, 300).unwrap();
        assert_eq!(got.as_slice(), &data[1124..1424]);
        let block1 = dfs.read_block(&dfs.stat("/r").unwrap().blocks[1]).unwrap();
        assert!(got.same_backing(&block1), "in-block range must not copy");
        // Exactly one whole block.
        let whole = dfs.read_file_range_shared("/r", 1024, 1024).unwrap();
        assert!(whole.same_backing(&block1));
        assert_eq!(whole.len(), 1024);
        // Empty range.
        assert!(dfs.read_file_range_shared("/r", 500, 0).unwrap().is_empty());
    }

    #[test]
    fn range_read_spanning_blocks_concatenates() {
        let dfs = small_dfs();
        let data = payload(3000);
        dfs.write_file("/r", &data).unwrap();
        let before = dfs
            .metrics()
            .counter(metrics_keys::BYTES_COPIED_RANGE)
            .get();
        let got = dfs.read_file_range_shared("/r", 900, 1500).unwrap();
        assert_eq!(got.as_slice(), &data[900..2400]);
        assert_eq!(
            dfs.metrics()
                .counter(metrics_keys::BYTES_COPIED_RANGE)
                .get(),
            before + 1500
        );
        // Out-of-bounds ranges error instead of truncating.
        assert!(dfs.read_file_range_shared("/r", 2999, 2).is_err());
        assert!(dfs.read_file_range_shared("/r", usize::MAX, 2).is_err());
    }

    #[test]
    fn file_availability_tracks_replicas_and_wipes() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 512,
            replication: 2,
            ..DfsConfig::default()
        });
        dfs.write_file_with_policy("/f", &payload(1500), &PinnedPlacement(0))
            .unwrap();
        assert!(dfs.file_available_excluding("/f", &[]));
        // Replicas live on nodes 0 and 1: losing either alone is fine,
        // losing both is not.
        assert!(dfs.file_available_excluding("/f", &[0]));
        assert!(dfs.file_available_excluding("/f", &[1]));
        assert!(!dfs.file_available_excluding("/f", &[0, 1]));
        // A silent wipe (metadata still lists the node) is detected by
        // probing storage.
        dfs.kill_node(1);
        assert!(!dfs.file_available_excluding("/f", &[0]));
        assert!(dfs.file_available_excluding("/f", &[1]));
        // Unknown files are unavailable.
        assert!(!dfs.file_available_excluding("/nope", &[]));
    }

    #[test]
    fn small_blocks_pack_into_extents() {
        let dir = store_dir("pack");
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 2,
            block_size: 1024,
            replication: 1,
            block_store_dir: Some(dir.clone()),
            pack_threshold: 512,
            ..DfsConfig::default()
        });
        // 12 files of 300 B each: all under the threshold.
        let mut datas = Vec::new();
        for i in 0..12 {
            let d: Vec<u8> = (0..300).map(|j| ((i * 7 + j) % 251) as u8).collect();
            dfs.write_file(&format!("/small-{i}"), &d).unwrap();
            datas.push(d);
        }
        assert_eq!(
            dfs.metrics().counter(metrics_keys::BLOCKS_PACKED).get(),
            12
        );
        // Far fewer inodes than blocks: one open extent per node.
        let files = blk_files(&dir);
        assert!(files <= 2, "12 packed blocks should share ≤2 extents, got {files}");
        // Packed blocks read back correctly, as mapped windows.
        for (i, d) in datas.iter().enumerate() {
            let path = format!("/small-{i}");
            assert_eq!(&dfs.read_file(&path).unwrap(), d);
            let shared = dfs.read_file_shared(&path).unwrap();
            assert!(shared.is_mapped(), "packed block must serve from the extent mapping");
        }
        // Blocks at or above the threshold still get their own inode.
        dfs.write_file("/big", &payload(600)).unwrap();
        assert_eq!(
            dfs.metrics().counter(metrics_keys::BLOCKS_PACKED).get(),
            12
        );
        assert_eq!(blk_files(&dir), files + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn packed_extents_roll_and_survive_failover() {
        let dir = store_dir("pack-roll");
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 2,
            block_size: 400 * 1024,
            replication: 2,
            block_store_dir: Some(dir.clone()),
            pack_threshold: 512 * 1024,
            ..DfsConfig::default()
        });
        // Four ~400 KiB packed blocks per node: the fourth append finds
        // the open extent past the 1 MiB roll point, forcing a second
        // extent per node.
        let data = payload(4 * 400 * 1024 - 17);
        dfs.write_file_with_policy("/p", &data, &PinnedPlacement(0))
            .unwrap();
        assert_eq!(dfs.metrics().counter(metrics_keys::BLOCKS_PACKED).get(), 8);
        assert!(blk_files(&dir) >= 4, "each node rolls to a second extent");
        assert_eq!(dfs.read_file("/p").unwrap(), data);
        // A failed node's packed replicas recover from the surviving
        // node's extents.
        dfs.fail_node(0);
        assert_eq!(dfs.read_file("/p").unwrap(), data);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_replica_is_quarantined_and_repaired_on_read() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 512,
            replication: 2,
            ..DfsConfig::default()
        });
        let data = payload(1500); // 3 blocks × 2 replicas
        dfs.write_file_with_policy("/c", &data, &PinnedPlacement(0))
            .unwrap();
        // Rot the primary replica of block 1.
        dfs.corrupt_block("/c", 1, 0).unwrap();
        // Reads never see the damage...
        assert_eq!(dfs.read_file("/c").unwrap(), data);
        let get = |k: &str| dfs.metrics().counter(k).get();
        // ...and the replica was quarantined and re-created elsewhere.
        assert_eq!(get(metrics_keys::BLOCKS_CORRUPT_DETECTED), 1);
        assert_eq!(get(metrics_keys::BLOCKS_CORRUPT_REPAIRED), 1);
        let info = dfs.stat("/c").unwrap();
        assert!(info.blocks.iter().all(|b| b.nodes.len() == 2));
        // The repaired replica verifies: a second full read is clean.
        assert_eq!(dfs.read_file("/c").unwrap(), data);
        assert_eq!(get(metrics_keys::BLOCKS_CORRUPT_DETECTED), 1);
    }

    #[test]
    fn stale_block_info_still_reads_after_repair() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 4,
            block_size: 1024,
            replication: 2,
            ..DfsConfig::default()
        });
        let data = payload(800);
        let info = dfs
            .write_file_with_policy("/s", &data, &PinnedPlacement(0))
            .unwrap();
        let stale = info.blocks[0].clone();
        dfs.corrupt_block("/s", 0, 0).unwrap();
        dfs.read_file("/s").unwrap(); // detect + repair; homes moved
        // A reader holding pre-repair metadata must still be served —
        // the read path re-resolves replica homes through the locator.
        assert_eq!(dfs.read_block(&stale).unwrap().as_slice(), &data[..]);
    }

    #[test]
    fn all_replicas_corrupt_is_a_typed_fatal_error() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 1024,
            replication: 2,
            ..DfsConfig::default()
        });
        dfs.write_file_with_policy("/c", &payload(600), &PinnedPlacement(0))
            .unwrap();
        dfs.corrupt_block("/c", 0, 0).unwrap();
        dfs.corrupt_block("/c", 0, 1).unwrap();
        let err = dfs.read_file("/c").unwrap_err();
        assert!(matches!(err, DfsError::Corrupt(_)), "got {err}");
        assert!(!err.is_retryable());
        assert_eq!(
            dfs.metrics()
                .counter(metrics_keys::BLOCKS_CORRUPT_DETECTED)
                .get(),
            2
        );
        // No survivor, so nothing could be repaired.
        assert_eq!(
            dfs.metrics()
                .counter(metrics_keys::BLOCKS_CORRUPT_REPAIRED)
                .get(),
            0
        );
    }

    #[test]
    fn flaky_reads_are_retried_with_backoff() {
        let dfs = small_dfs();
        let data = payload(700); // 1 block on one node
        let info = dfs.write_file("/f", &data).unwrap();
        let home = info.blocks[0].nodes[0];
        dfs.inject_flaky_reads(home, 2);
        assert_eq!(dfs.read_file("/f").unwrap(), data);
        assert_eq!(dfs.metrics().counter(metrics_keys::READS_RETRIED).get(), 2);
        // Once the injected failures are consumed, reads are clean.
        assert_eq!(dfs.read_file("/f").unwrap(), data);
        assert_eq!(dfs.metrics().counter(metrics_keys::READS_RETRIED).get(), 2);
    }

    #[test]
    fn retries_exhausted_is_retryable_deadline_is_timeout() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 1,
            block_size: 1024,
            replication: 1,
            read_retries: 2,
            ..DfsConfig::default()
        });
        let info = dfs.write_file("/f", &payload(100)).unwrap();
        dfs.inject_flaky_reads(0, 100);
        let err = dfs.read_block(&info.blocks[0]).unwrap_err();
        assert!(matches!(err, DfsError::Io(_)), "got {err}");
        assert!(err.is_retryable());
        // A deadline shorter than the first backoff pause times out.
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 1,
            block_size: 1024,
            replication: 1,
            retry_backoff_ms: 50,
            read_deadline_ms: 1,
            ..DfsConfig::default()
        });
        let info = dfs.write_file("/f", &payload(100)).unwrap();
        dfs.inject_flaky_reads(0, 100);
        let err = dfs.read_block(&info.blocks[0]).unwrap_err();
        assert!(matches!(err, DfsError::Timeout(_)), "got {err}");
        assert!(err.is_retryable());
    }

    #[test]
    fn slow_node_triggers_hedged_reads() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 2,
            block_size: 1024,
            replication: 2,
            hedge_after_micros: 2_000,
            ..DfsConfig::default()
        });
        let data = payload(900);
        let info = dfs
            .write_file_with_policy("/h", &data, &PinnedPlacement(0))
            .unwrap();
        dfs.inject_slow_node(0, 20);
        // First read is just slow — it seeds node 0's latency history.
        assert_eq!(dfs.read_file("/h").unwrap(), data);
        assert_eq!(dfs.metrics().counter(metrics_keys::READS_HEDGED).get(), 0);
        // Subsequent reads see a suspect primary and hedge to node 1,
        // which answers within the budget and wins.
        for _ in 0..3 {
            assert_eq!(dfs.read_file("/h").unwrap(), data);
        }
        let hedged = dfs.metrics().counter(metrics_keys::READS_HEDGED).get();
        let wins = dfs.metrics().counter(metrics_keys::READS_HEDGE_WINS).get();
        assert_eq!(hedged, 3);
        assert_eq!(wins, 3, "fast replica must win every race");
        assert_eq!(dfs.read_block(&info.blocks[0]).unwrap().as_slice(), &data[..]);
    }

    #[test]
    fn read_affinity_prefers_co_located_replica() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 1024,
            replication: 2,
            ..DfsConfig::default()
        });
        let data = payload(800);
        let info = dfs
            .write_file_with_policy("/aff", &data, &PinnedPlacement(0))
            .unwrap();
        let homes = info.blocks[0].nodes.clone();
        assert_eq!(homes.len(), 2);
        // Affinity on either replica home: all bytes served locally.
        for &n in &homes {
            let r = dfs
                .read_file_range_shared_at("/aff", 0, 800, ReadAffinity::node(n))
                .unwrap();
            assert_eq!(r.bytes.as_slice(), &data[..]);
            assert_eq!((r.local_bytes, r.remote_bytes), (800, 0), "node {n}");
        }
        // Affinity on the replica-less node, or no affinity at all:
        // same bytes, all remote.
        let stranger = (0..3).find(|n| !homes.contains(n)).unwrap();
        for aff in [ReadAffinity::node(stranger), ReadAffinity::NONE] {
            let r = dfs
                .read_file_range_shared_at("/aff", 0, 800, aff)
                .unwrap();
            assert_eq!(r.bytes.as_slice(), &data[..]);
            assert_eq!((r.local_bytes, r.remote_bytes), (0, 800));
        }
    }

    #[test]
    fn read_affinity_falls_back_when_local_replica_quarantined() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 1024,
            replication: 2,
            ..DfsConfig::default()
        });
        let data = payload(700);
        let info = dfs
            .write_file_with_policy("/q", &data, &PinnedPlacement(0))
            .unwrap();
        let homes = info.blocks[0].nodes.clone();
        // Corrupt the replica on the reader's own node: the read must
        // detect it, quarantine, and serve the survivor — correct bytes,
        // counted remote because the co-located copy was unusable.
        dfs.corrupt_block("/q", 0, 0).unwrap();
        let r = dfs
            .read_file_range_shared_at("/q", 0, 700, ReadAffinity::node(homes[0]))
            .unwrap();
        assert_eq!(r.bytes.as_slice(), &data[..]);
        assert_eq!((r.local_bytes, r.remote_bytes), (0, 700));
        assert_eq!(
            dfs.metrics()
                .counter(metrics_keys::BLOCKS_CORRUPT_DETECTED)
                .get(),
            1
        );
    }

    #[test]
    fn read_affinity_does_not_defeat_hedged_reads() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 2,
            block_size: 1024,
            replication: 2,
            hedge_after_micros: 2_000,
            ..DfsConfig::default()
        });
        let data = payload(900);
        dfs.write_file_with_policy("/ha", &data, &PinnedPlacement(0))
            .unwrap();
        dfs.inject_slow_node(0, 20);
        // Seed node 0's latency history (affinity pointed straight at
        // the slow node, so this read is served slowly by it).
        let r = dfs
            .read_file_range_shared_at("/ha", 0, 900, ReadAffinity::node(0))
            .unwrap();
        assert_eq!(r.bytes.as_slice(), &data[..]);
        assert_eq!(dfs.metrics().counter(metrics_keys::READS_HEDGED).get(), 0);
        // Now node 0 is suspect: even though affinity prefers it, the
        // read must hedge to node 1, which wins — affinity reorders
        // preference, it never disables the slow-node defence.
        for _ in 0..3 {
            let r = dfs
                .read_file_range_shared_at("/ha", 0, 900, ReadAffinity::node(0))
                .unwrap();
            assert_eq!(r.bytes.as_slice(), &data[..]);
            assert_eq!(
                (r.local_bytes, r.remote_bytes),
                (0, 900),
                "hedge winner is the remote replica"
            );
        }
        assert_eq!(dfs.metrics().counter(metrics_keys::READS_HEDGED).get(), 3);
        assert_eq!(
            dfs.metrics().counter(metrics_keys::READS_HEDGE_WINS).get(),
            3,
            "fast replica must win every race"
        );
    }

    #[test]
    fn corrupt_on_write_injection_matches_path_and_block() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 512,
            replication: 2,
            ..DfsConfig::default()
        });
        dfs.inject_corrupt_on_write("map-00001", 0, 0);
        let data = payload(400);
        dfs.write_file_with_policy("/j/map-00000.segs", &data, &PinnedPlacement(0))
            .unwrap();
        dfs.write_file_with_policy("/j/map-00001.segs", &data, &PinnedPlacement(1))
            .unwrap();
        // Non-matching file is untouched end to end.
        assert_eq!(dfs.read_file("/j/map-00000.segs").unwrap(), data);
        assert_eq!(
            dfs.metrics()
                .counter(metrics_keys::BLOCKS_CORRUPT_DETECTED)
                .get(),
            0
        );
        // Matching file was damaged on write, detected and healed on read.
        assert_eq!(dfs.read_file("/j/map-00001.segs").unwrap(), data);
        let get = |k: &str| dfs.metrics().counter(k).get();
        assert_eq!(get(metrics_keys::BLOCKS_CORRUPT_DETECTED), 1);
        assert_eq!(get(metrics_keys::BLOCKS_CORRUPT_REPAIRED), 1);
    }

    #[test]
    fn incremental_rereplication_restores_only_reported_blocks() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 4,
            block_size: 512,
            replication: 2,
            ..DfsConfig::default()
        });
        let data = payload(2000); // 4 blocks on nodes {0, 1}
        dfs.write_file_with_policy("/r", &data, &PinnedPlacement(0))
            .unwrap();
        dfs.write_file_with_policy("/other", &payload(512), &PinnedPlacement(2))
            .unwrap();
        let report = dfs.fail_node(0);
        assert_eq!(report.under_replicated.len(), 4);
        let created = dfs.re_replicate_blocks(&report.under_replicated);
        assert_eq!(created, 4);
        let get = |k: &str| dfs.metrics().counter(k).get();
        assert_eq!(get(metrics_keys::BLOCKS_REREPLICATED_INCREMENTAL), 4);
        assert_eq!(get(metrics_keys::REPLICAS_RESTORED), 4);
        let info = dfs.stat("/r").unwrap();
        assert!(info.blocks.iter().all(|b| b.nodes.len() == 2));
        assert!(info.blocks.iter().all(|b| !b.nodes.contains(&0)));
        assert_eq!(dfs.read_file("/r").unwrap(), data);
        // A follow-up full sweep finds nothing left to do.
        assert_eq!(dfs.re_replicate(), 0);
    }

    #[test]
    fn sweep_orphans_removes_only_shuffle_transit_files() {
        let dfs = small_dfs();
        dfs.write_file("/job/shuffle-3/map-00000.segs", &payload(10)).unwrap();
        dfs.write_file("/job/shuffle-3/map-00001.segs", &payload(10)).unwrap();
        dfs.write_file("/job/part-00000", &payload(10)).unwrap();
        dfs.write_file("/job/shuffle-log", &payload(10)).unwrap(); // not digits
        assert_eq!(dfs.sweep_orphans(), 2);
        assert_eq!(
            dfs.list("/job/"),
            vec!["/job/part-00000".to_string(), "/job/shuffle-log".to_string()]
        );
        assert_eq!(dfs.metrics().counter(metrics_keys::ORPHANS_SWEPT).get(), 2);
        // Idempotent.
        assert_eq!(dfs.sweep_orphans(), 0);
    }

    #[test]
    fn rereplication_never_copies_a_corrupt_source() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 1024,
            replication: 2,
            ..DfsConfig::default()
        });
        let data = payload(600);
        dfs.write_file_with_policy("/v", &data, &PinnedPlacement(0))
            .unwrap();
        // Rot node 1's replica, then lose node 0: the sweep must not
        // propagate the rotten copy. It quarantines it instead, so the
        // block has lost its last (honest) replica.
        dfs.corrupt_block("/v", 0, 1).unwrap();
        dfs.fail_node(0);
        assert_eq!(dfs.re_replicate(), 0);
        assert_eq!(
            dfs.metrics()
                .counter(metrics_keys::BLOCKS_CORRUPT_DETECTED)
                .get(),
            1
        );
        assert!(matches!(dfs.read_file("/v"), Err(DfsError::BlockMissing(_))));
    }

    #[test]
    fn failure_recovery_with_persisted_store() {
        let (dfs, dir) = persisted_dfs("recover", 2);
        let data = payload(2500);
        dfs.write_file_with_policy("/p", &data, &PinnedPlacement(0))
            .unwrap();
        let report = dfs.fail_node(0);
        assert!(report.blocks_lost.is_empty());
        let created = dfs.re_replicate();
        assert_eq!(created, report.under_replicated.len());
        assert_eq!(dfs.read_file("/p").unwrap(), data);
        // Every surviving replica is persisted somewhere on disk.
        assert_eq!(blk_files(&dir), 3 * 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pinned_file_refuses_delete_until_unpinned() {
        let dfs = small_dfs();
        dfs.write_file("/t/cas/a", &payload(100)).unwrap();
        dfs.pin("/t/cas/a").unwrap();
        dfs.pin("/t/cas/a").unwrap();
        assert_eq!(dfs.pin_count("/t/cas/a"), 2);
        assert!(matches!(dfs.delete("/t/cas/a"), Err(DfsError::Pinned(_))));
        dfs.unpin("/t/cas/a");
        assert!(matches!(dfs.delete("/t/cas/a"), Err(DfsError::Pinned(_))));
        dfs.unpin("/t/cas/a");
        assert_eq!(dfs.pin_count("/t/cas/a"), 0);
        dfs.delete("/t/cas/a").unwrap();
        // Pinning a missing path is an error; unpinning one is a no-op.
        assert!(matches!(dfs.pin("/t/cas/a"), Err(DfsError::FileNotFound(_))));
        dfs.unpin("/t/cas/a");
    }

    #[test]
    fn retention_sweep_skips_pinned_files_and_reports_them() {
        let dfs = small_dfs();
        dfs.write_file("/t/job/x", &payload(50)).unwrap();
        dfs.write_file("/t/job/y", &payload(50)).unwrap();
        dfs.write_file("/t/job/z", &payload(50)).unwrap();
        dfs.pin("/t/job/y").unwrap();
        let report = dfs.sweep_prefix_report("/t/job", SweepReason::Ttl);
        assert_eq!(report, SweepReport { swept: 2, pinned_skipped: 1 });
        assert!(dfs.exists("/t/job/y"), "pinned file must survive the sweep");
        assert!(dfs.any_pinned("/t/job"));
        assert_eq!(
            dfs.metrics().counter(metrics_keys::RETENTION_PIN_SKIPS).get(),
            1
        );
        assert_eq!(
            dfs.metrics()
                .counter(metrics_keys::RETENTION_SWEPT_TTL)
                .get(),
            2
        );
        dfs.unpin("/t/job/y");
        assert!(!dfs.any_pinned("/t/job"));
        let report = dfs.sweep_prefix_report("/t/job", SweepReason::Ttl);
        assert_eq!(report, SweepReport { swept: 1, pinned_skipped: 0 });
    }

    #[test]
    fn cas_put_is_idempotent_and_get_counts_hits() {
        let dfs = small_dfs();
        let key = 0xDEAD_BEEFu64;
        let bytes = SharedBytes::copy_from_slice(&payload(300));
        assert_eq!(dfs.cas_get("/t", key).unwrap(), None);
        let path = dfs.cas_put("/t", key, bytes.clone()).unwrap();
        assert_eq!(path, Dfs::cas_path("/t", key));
        // A second put of the same key degrades to a hit, not an error.
        let again = dfs.cas_put("/t", key, bytes.clone()).unwrap();
        assert_eq!(again, path);
        assert_eq!(
            dfs.cas_get("/t", key).unwrap().unwrap().as_slice(),
            bytes.as_slice()
        );
        let m = dfs.metrics();
        assert_eq!(m.counter(metrics_keys::CAS_PUTS).get(), 1);
        assert_eq!(m.counter(metrics_keys::CAS_MISSES).get(), 1);
        assert_eq!(m.counter(metrics_keys::CAS_HITS).get(), 2);
    }
}
