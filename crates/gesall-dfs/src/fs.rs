//! The distributed file system: name node + data nodes + client API.

use crate::placement::{BlockPlacementPolicy, DefaultPlacement};
use gesall_formats::SharedBytes;
use gesall_telemetry::MetricsRegistry;
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// DFS error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    FileNotFound(String),
    FileExists(String),
    BlockMissing(u64),
    BadPolicy(String),
    NoLiveNodes,
    /// Block-store I/O failed (persisting or mapping a block file).
    Io(String),
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::FileNotFound(p) => write!(f, "file not found: {p}"),
            DfsError::FileExists(p) => write!(f, "file already exists: {p}"),
            DfsError::BlockMissing(b) => write!(f, "block {b} missing from all replicas"),
            DfsError::BadPolicy(m) => write!(f, "bad placement: {m}"),
            DfsError::NoLiveNodes => write!(f, "no live data nodes remain"),
            DfsError::Io(m) => write!(f, "block store i/o: {m}"),
        }
    }
}

impl std::error::Error for DfsError {}

/// One block replica's location and identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    pub id: u64,
    /// Byte length of this block.
    pub len: usize,
    /// Data-node indices holding replicas.
    pub nodes: Vec<usize>,
}

/// Metadata of one stored file.
#[derive(Debug, Clone)]
pub struct FileInfo {
    pub path: String,
    pub len: usize,
    pub blocks: Vec<BlockInfo>,
}

impl FileInfo {
    /// The node holding the first replica of every block — `Some(node)` if
    /// a single node holds the whole file (a logical partition placed with
    /// the custom policy), `None` otherwise.
    pub fn single_home(&self) -> Option<usize> {
        let first = self.blocks.first()?.nodes.first().copied()?;
        self.blocks
            .iter()
            .all(|b| b.nodes.first() == Some(&first))
            .then_some(first)
    }
}

/// Per-data-node usage counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    pub blocks: usize,
    pub bytes: usize,
}

/// What a node failure cost the filesystem — returned by
/// [`Dfs::fail_node`] so the caller (typically the MapReduce engine's
/// node-death hook) can decide whether to re-replicate or re-run work.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureReport {
    /// The node that was declared dead.
    pub node: usize,
    /// Block ids whose **last** replica lived on the dead node — their
    /// data is gone and files containing them are unreadable.
    pub blocks_lost: Vec<u64>,
    /// Block ids that survive on other nodes but now hold fewer replicas
    /// than `DfsConfig::replication` — candidates for [`Dfs::re_replicate`].
    pub under_replicated: Vec<u64>,
}

/// DFS configuration.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    pub n_nodes: usize,
    /// Block size in bytes (HDFS default 128 MiB; tests use KiBs).
    pub block_size: usize,
    pub replication: usize,
    /// When set, every replica is persisted to
    /// `<dir>/node-<n>/block-<id>.blk` and served from a file mapping
    /// ([`SharedBytes::map_file`]): a block read is a refcount bump on
    /// the mapping and the kernel pages bytes in on demand. `None`
    /// (the default) keeps blocks heap-resident, sharing the writer's
    /// backing allocation.
    pub block_store_dir: Option<PathBuf>,
    /// Replicas smaller than this are appended to a shared per-node
    /// **extent file** (`<dir>/node-<n>/extent-<seq>.ext`) instead of
    /// getting a `.blk` inode of their own, and are served as mapped
    /// windows into the extent. Workloads that scatter many tiny files
    /// (a shuffle directory of per-map partition files) stop costing
    /// one inode per block. `0` (the default) disables packing; only
    /// meaningful with `block_store_dir` set. Counted under
    /// [`metrics_keys::BLOCKS_PACKED`].
    pub pack_threshold: usize,
}

impl Default for DfsConfig {
    fn default() -> DfsConfig {
        DfsConfig {
            n_nodes: 4,
            block_size: 128 * 1024 * 1024,
            replication: 1,
            block_store_dir: None,
            pack_threshold: 0,
        }
    }
}

/// An extent file keeps itself on disk for as long as any packed block
/// (or the node's open-extent slot) references it; the last reference
/// unlinks it. Existing mappings of an unlinked extent stay readable
/// until they drop.
pub struct ExtentFile {
    path: PathBuf,
}

impl Drop for ExtentFile {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// Per-node packing state: the extent currently accepting appends.
#[derive(Default)]
struct ExtentState {
    open: Option<OpenExtent>,
    next_seq: u64,
}

struct OpenExtent {
    file: Arc<ExtentFile>,
    len: usize,
}

/// Roll to a fresh extent file once the open one reaches this size, so
/// a single extent never grows without bound and fully-deleted extents
/// can actually be reclaimed.
const EXTENT_ROLL_BYTES: usize = 1 << 20;

/// How a stored replica holds its payload. Either way,
/// [`Dfs::read_block`] serves a zero-copy window — the variants differ
/// only in *whose* allocation is shared: the writer's heap backing, or
/// a read-only mapping of the persisted block file.
pub enum BlockBacking {
    /// Heap-resident: shares the writer's backing allocation.
    Resident(SharedBytes),
    /// Persisted to the node's block store and served via `mmap`
    /// (heap-read fallback off-unix); dropping the last reader unmaps.
    Mapped { bytes: SharedBytes, path: PathBuf },
    /// A small replica packed into a shared extent file: `bytes` is a
    /// mapped window onto the replica's range of the extent, and the
    /// `Arc` keeps the extent file alive until its last packed block is
    /// dropped.
    Packed {
        bytes: SharedBytes,
        extent: Arc<ExtentFile>,
    },
}

impl BlockBacking {
    fn bytes(&self) -> &SharedBytes {
        match self {
            BlockBacking::Resident(b) => b,
            BlockBacking::Mapped { bytes, .. } => bytes,
            BlockBacking::Packed { bytes, .. } => bytes,
        }
    }

    fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Remove the on-disk file behind a mapped replica (the mapping
    /// itself stays valid for existing readers until they drop). Packed
    /// replicas share their extent file with siblings; dropping the
    /// backing releases its `Arc` and the extent unlinks itself with
    /// the last reference.
    fn unlink(&self) {
        if let BlockBacking::Mapped { path, .. } = self {
            std::fs::remove_file(path).ok();
        }
    }
}

struct DataNode {
    blocks: RwLock<HashMap<u64, BlockBacking>>,
    /// The extent file currently accepting small-block appends
    /// (see [`DfsConfig::pack_threshold`]).
    extent: parking_lot::Mutex<ExtentState>,
}

struct NameNode {
    files: RwLock<HashMap<String, FileInfo>>,
}

/// The DFS handle. Cheap to clone (`Arc` inside); safe to share across
/// worker threads.
#[derive(Clone)]
pub struct Dfs {
    inner: Arc<DfsInner>,
}

struct DfsInner {
    config: DfsConfig,
    namenode: NameNode,
    datanodes: Vec<DataNode>,
    next_block: AtomicU64,
    /// Nodes declared dead via `fail_node`. Writes avoid them; they never
    /// come back (matching the engine's permanent node-death model).
    dead: RwLock<HashSet<usize>>,
    /// Block-level I/O counters (see [`metrics_keys`]).
    metrics: MetricsRegistry,
}

/// Counter names the DFS maintains on its [`MetricsRegistry`].
pub mod metrics_keys {
    /// Payload bytes memcpy'd inside the DFS (block materialization on
    /// write, multi-block concatenation on read). Same key as the
    /// engine-side gauge so a whole-pipeline total can be assembled.
    pub const BYTES_COPIED: &str = "mem.bytes.copied";
    /// Bytes stitched together by [`Dfs::read_file_range_shared`] when a
    /// requested range spans blocks. Kept apart from [`BYTES_COPIED`]:
    /// range reads serve the shuffle-transit fetch path, whose copy
    /// volume is accounted with the transit layer (`shuffle.bytes.dfs`
    /// et al.), not with the record path's zero-copy gauge.
    pub const BYTES_COPIED_RANGE: &str = "dfs.bytes.copied.range";
    /// Replicas written (block writes × replication).
    pub const BLOCKS_WRITTEN: &str = "dfs.blocks.written";
    /// Payload bytes written across all replicas.
    pub const BYTES_WRITTEN: &str = "dfs.bytes.written";
    /// Block reads served from a live replica.
    pub const BLOCKS_READ: &str = "dfs.blocks.read";
    /// Payload bytes read.
    pub const BYTES_READ: &str = "dfs.bytes.read";
    /// Nodes declared dead via `fail_node`.
    pub const NODE_FAILURES: &str = "dfs.node.failures";
    /// Replicas created by `re_replicate` sweeps.
    pub const REPLICAS_RESTORED: &str = "dfs.replicas.restored";
    /// Replicas persisted to the block store and served from a file
    /// mapping (only moves when `DfsConfig::block_store_dir` is set).
    pub const BLOCKS_MAPPED: &str = "dfs.blocks.mapped";
    /// Replicas below [`DfsConfig::pack_threshold`] appended to a
    /// shared per-node extent file instead of receiving their own
    /// `.blk` inode (a subset of [`BLOCKS_MAPPED`]).
    pub const BLOCKS_PACKED: &str = "dfs.blocks.packed";
}

impl Dfs {
    pub fn new(config: DfsConfig) -> Dfs {
        assert!(config.n_nodes > 0, "need at least one data node");
        assert!(config.block_size > 0, "block size must be positive");
        let datanodes = (0..config.n_nodes)
            .map(|_| DataNode {
                blocks: RwLock::new(HashMap::new()),
                extent: parking_lot::Mutex::new(ExtentState::default()),
            })
            .collect();
        Dfs {
            inner: Arc::new(DfsInner {
                config,
                namenode: NameNode {
                    files: RwLock::new(HashMap::new()),
                },
                datanodes,
                next_block: AtomicU64::new(1),
                dead: RwLock::new(HashSet::new()),
                metrics: MetricsRegistry::new(),
            }),
        }
    }

    pub fn config(&self) -> &DfsConfig {
        &self.inner.config
    }

    /// The registry holding this filesystem's I/O counters
    /// ([`metrics_keys`]). Clones share state.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Write a file with the default (spreading) placement.
    pub fn write_file(&self, path: &str, data: &[u8]) -> Result<FileInfo, DfsError> {
        self.write_file_with_policy(path, data, &DefaultPlacement)
    }

    /// Write a file, choosing replica homes with `policy`. This is the
    /// entry point the logical-partition uploader uses.
    ///
    /// The borrowed payload is materialized **once** into a shared
    /// backing (the only copy this path charges to `mem.bytes.copied`);
    /// the stored blocks are zero-copy windows into it. Callers that
    /// already own their bytes skip even that copy with
    /// [`Dfs::write_file_shared`].
    pub fn write_file_with_policy(
        &self,
        path: &str,
        data: &[u8],
        policy: &dyn BlockPlacementPolicy,
    ) -> Result<FileInfo, DfsError> {
        let shared = SharedBytes::copy_from_slice(data);
        self.inner
            .metrics
            .counter(metrics_keys::BYTES_COPIED)
            .add(shared.len() as u64);
        self.write_shared_with_policy(path, shared, policy)
    }

    /// Write an owned payload with the default placement, copying
    /// nothing: every stored block is a slice of the payload's backing.
    pub fn write_file_shared(&self, path: &str, data: SharedBytes) -> Result<FileInfo, DfsError> {
        self.write_shared_with_policy(path, data, &DefaultPlacement)
    }

    /// Zero-copy write: slice `data` into block-sized windows and hand
    /// each window to its replica homes. No payload byte is copied —
    /// all replicas of a block share one backing with the caller.
    pub fn write_shared_with_policy(
        &self,
        path: &str,
        data: SharedBytes,
        policy: &dyn BlockPlacementPolicy,
    ) -> Result<FileInfo, DfsError> {
        {
            let files = self.inner.namenode.files.read();
            if files.contains_key(path) {
                return Err(DfsError::FileExists(path.to_string()));
            }
        }
        let n_nodes = self.inner.config.n_nodes;
        let replication = self.inner.config.replication;
        let dead = self.inner.dead.read().clone();
        if dead.len() >= n_nodes {
            return Err(DfsError::NoLiveNodes);
        }
        let block_size = self.inner.config.block_size;
        let mut blocks = Vec::new();
        for bi in 0..data.len().div_ceil(block_size) {
            let chunk = data.slice(bi * block_size..((bi + 1) * block_size).min(data.len()));
            let nodes = policy.place(path, bi, n_nodes, replication);
            if nodes.is_empty() || nodes.iter().any(|&n| n >= n_nodes) {
                return Err(DfsError::BadPolicy(format!(
                    "policy returned invalid nodes {nodes:?}"
                )));
            }
            let nodes = remap_around_dead(nodes, &dead, n_nodes)?;
            let id = self.inner.next_block.fetch_add(1, Ordering::Relaxed);
            for &n in &nodes {
                self.store_replica(n, id, &chunk)?;
            }
            let m = &self.inner.metrics;
            m.counter(metrics_keys::BLOCKS_WRITTEN).add(nodes.len() as u64);
            m.counter(metrics_keys::BYTES_WRITTEN)
                .add((chunk.len() * nodes.len()) as u64);
            blocks.push(BlockInfo {
                id,
                len: chunk.len(),
                nodes,
            });
        }
        let info = FileInfo {
            path: path.to_string(),
            len: data.len(),
            blocks,
        };
        self.inner
            .namenode
            .files
            .write()
            .insert(path.to_string(), info.clone());
        Ok(info)
    }

    /// File metadata (block list + replica locations).
    pub fn stat(&self, path: &str) -> Result<FileInfo, DfsError> {
        self.inner
            .namenode
            .files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))
    }

    /// Does the file exist?
    pub fn exists(&self, path: &str) -> bool {
        self.inner.namenode.files.read().contains_key(path)
    }

    /// Store one replica on `node`: heap-resident sharing the writer's
    /// backing, or — with a block store configured — persisted to the
    /// node's directory and re-served through a file mapping. Replicas
    /// under the pack threshold append to the node's shared extent file
    /// rather than taking an inode each.
    fn store_replica(&self, node: usize, id: u64, chunk: &SharedBytes) -> Result<(), DfsError> {
        let io = |e: std::io::Error| DfsError::Io(format!("block {id} on node {node}: {e}"));
        let backing = match &self.inner.config.block_store_dir {
            Some(dir) => {
                let node_dir = dir.join(format!("node-{node}"));
                std::fs::create_dir_all(&node_dir).map_err(io)?;
                if !chunk.is_empty() && chunk.len() < self.inner.config.pack_threshold {
                    self.pack_replica(node, &node_dir, chunk).map_err(io)?
                } else {
                    let path = node_dir.join(format!("block-{id}.blk"));
                    std::fs::write(&path, chunk.as_slice()).map_err(io)?;
                    let bytes = SharedBytes::map_file(&path).map_err(io)?;
                    self.inner.metrics.counter(metrics_keys::BLOCKS_MAPPED).add(1);
                    BlockBacking::Mapped { bytes, path }
                }
            }
            None => BlockBacking::Resident(chunk.clone()),
        };
        self.inner.datanodes[node].blocks.write().insert(id, backing);
        Ok(())
    }

    /// Append a small replica to `node`'s open extent file (rolling to
    /// a fresh extent at [`EXTENT_ROLL_BYTES`]) and serve it as a
    /// mapped window onto its range.
    fn pack_replica(
        &self,
        node: usize,
        node_dir: &std::path::Path,
        chunk: &SharedBytes,
    ) -> std::io::Result<BlockBacking> {
        use std::io::Write;
        let mut state = self.inner.datanodes[node].extent.lock();
        let roll = match &state.open {
            Some(e) => e.len >= EXTENT_ROLL_BYTES,
            None => true,
        };
        if roll {
            let seq = state.next_seq;
            state.next_seq += 1;
            let path = node_dir.join(format!("extent-{seq}.ext"));
            std::fs::File::create(&path)?;
            state.open = Some(OpenExtent {
                file: Arc::new(ExtentFile { path }),
                len: 0,
            });
        }
        let open = state.open.as_mut().expect("open extent after roll");
        let offset = open.len;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&open.file.path)?;
        f.write_all(chunk.as_slice())?;
        drop(f);
        open.len += chunk.len();
        // Map the extent at its current length; the window only covers
        // bytes already flushed, so later appends don't disturb it.
        let mapping = SharedBytes::map_file(&open.file.path)?;
        let bytes = mapping.slice(offset..offset + chunk.len());
        let m = &self.inner.metrics;
        m.counter(metrics_keys::BLOCKS_MAPPED).add(1);
        m.counter(metrics_keys::BLOCKS_PACKED).add(1);
        Ok(BlockBacking::Packed {
            bytes,
            extent: open.file.clone(),
        })
    }

    /// Read one block from any live replica. Zero-copy: the returned
    /// handle is a window onto the stored block itself (the writer's
    /// backing, or the block file's mapping when persisted).
    pub fn read_block(&self, block: &BlockInfo) -> Result<SharedBytes, DfsError> {
        for &n in &block.nodes {
            if let Some(b) = self.inner.datanodes[n].blocks.read().get(&block.id) {
                let m = &self.inner.metrics;
                m.counter(metrics_keys::BLOCKS_READ).add(1);
                m.counter(metrics_keys::BYTES_READ).add(b.len() as u64);
                return Ok(b.bytes().clone());
            }
        }
        Err(DfsError::BlockMissing(block.id))
    }

    /// Read an entire file back into a fresh owned buffer (one counted
    /// copy). Prefer [`Dfs::read_file_shared`] where a borrowless view
    /// suffices.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, DfsError> {
        let info = self.stat(path)?;
        let mut out = Vec::with_capacity(info.len);
        for b in &info.blocks {
            out.extend_from_slice(&self.read_block(b)?);
        }
        self.inner
            .metrics
            .counter(metrics_keys::BYTES_COPIED)
            .add(out.len() as u64);
        Ok(out)
    }

    /// Read a whole file as shared bytes. A file that fits in one block
    /// is served zero-copy (the result shares the stored block's
    /// backing); multi-block files pay one counted concatenation.
    pub fn read_file_shared(&self, path: &str) -> Result<SharedBytes, DfsError> {
        let info = self.stat(path)?;
        match info.blocks.len() {
            0 => Ok(SharedBytes::new()),
            1 => self.read_block(&info.blocks[0]),
            _ => {
                let mut out = Vec::with_capacity(info.len);
                for b in &info.blocks {
                    out.extend_from_slice(&self.read_block(b)?);
                }
                self.inner
                    .metrics
                    .counter(metrics_keys::BYTES_COPIED)
                    .add(out.len() as u64);
                Ok(SharedBytes::from_vec(out))
            }
        }
    }

    /// Read `len` bytes of a file starting at `offset`, as shared
    /// bytes. A range that stays inside one block is served zero-copy —
    /// a window onto the stored block (for DFS-transit shuffle fetches
    /// this is the common case: one partition's frames out of a map
    /// output file). Ranges spanning blocks pay one counted
    /// concatenation of just the overlapped slices.
    pub fn read_file_range_shared(
        &self,
        path: &str,
        offset: usize,
        len: usize,
    ) -> Result<SharedBytes, DfsError> {
        let info = self.stat(path)?;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= info.len)
            .ok_or_else(|| {
                DfsError::Io(format!(
                    "range {offset}+{len} beyond {path} (len {})",
                    info.len
                ))
            })?;
        if len == 0 {
            return Ok(SharedBytes::new());
        }
        // Which slice of each block does the range overlap?
        let mut parts: Vec<(&BlockInfo, usize, usize)> = Vec::new();
        let mut block_start = 0usize;
        for b in &info.blocks {
            let block_end = block_start + b.len;
            if block_end > offset && block_start < end {
                let lo = offset.max(block_start) - block_start;
                let hi = end.min(block_end) - block_start;
                parts.push((b, lo, hi));
            }
            block_start = block_end;
            if block_start >= end {
                break;
            }
        }
        if let [(b, lo, hi)] = parts[..] {
            let block = self.read_block(b)?;
            return Ok(if lo == 0 && hi == block.len() {
                block
            } else {
                block.slice(lo..hi)
            });
        }
        let mut v = Vec::with_capacity(len);
        for (b, lo, hi) in parts {
            v.extend_from_slice(&self.read_block(b)?.slice(lo..hi));
        }
        debug_assert_eq!(v.len(), len);
        self.inner
            .metrics
            .counter(metrics_keys::BYTES_COPIED_RANGE)
            .add(v.len() as u64);
        Ok(SharedBytes::from_vec(v))
    }

    /// Would every block of `path` still be readable if the nodes in
    /// `excluded` disappeared? Probes actual data-node storage (not just
    /// metadata), so silently wiped replicas ([`Dfs::kill_node`]) don't
    /// count. This is the engine's reship-vs-rerun question: a map
    /// output that survives its home's death on some replica can be
    /// re-fetched instead of re-computed.
    pub fn file_available_excluding(&self, path: &str, excluded: &[usize]) -> bool {
        let Ok(info) = self.stat(path) else {
            return false;
        };
        info.blocks.iter().all(|b| {
            b.nodes.iter().any(|&n| {
                !excluded.contains(&n)
                    && !self.inner.dead.read().contains(&n)
                    && self.inner.datanodes[n].blocks.read().contains_key(&b.id)
            })
        })
    }

    /// Delete a file and free its replicas.
    pub fn delete(&self, path: &str) -> Result<(), DfsError> {
        let info = {
            let mut files = self.inner.namenode.files.write();
            files
                .remove(path)
                .ok_or_else(|| DfsError::FileNotFound(path.to_string()))?
        };
        for b in &info.blocks {
            for &n in &b.nodes {
                if let Some(backing) = self.inner.datanodes[n].blocks.write().remove(&b.id) {
                    backing.unlink();
                }
            }
        }
        Ok(())
    }

    /// All paths with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .inner
            .namenode
            .files
            .read()
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Per-node storage counters (data-locality accounting).
    pub fn node_stats(&self) -> Vec<NodeStats> {
        self.inner
            .datanodes
            .iter()
            .map(|dn| {
                let blocks = dn.blocks.read();
                NodeStats {
                    blocks: blocks.len(),
                    bytes: blocks.values().map(|b| b.len()).sum(),
                }
            })
            .collect()
    }

    /// Drop every replica a node holds **without** telling the name node.
    ///
    /// This is the raw storage-loss primitive (a disk wipe the cluster has
    /// not noticed yet): metadata still lists the node, reads skip the
    /// missing replicas, writes still target it. For a *detected* failure
    /// with metadata scrubbing and a damage report, use [`Dfs::fail_node`].
    pub fn kill_node(&self, node: usize) {
        self.wipe_node_storage(node);
    }

    /// Drop a node's replica map, unlinking any persisted block files.
    /// The node's open extent is released too, so extent files with no
    /// surviving packed blocks unlink themselves.
    fn wipe_node_storage(&self, node: usize) {
        let mut blocks = self.inner.datanodes[node].blocks.write();
        for backing in blocks.values() {
            backing.unlink();
        }
        blocks.clear();
        self.inner.datanodes[node].extent.lock().open = None;
    }

    /// Declare a node dead: drop its replicas, scrub it from every file's
    /// block locations, and exclude it from future writes.
    ///
    /// Returns a [`FailureReport`] listing blocks that lost their last
    /// replica and blocks that are now under-replicated. Calling it twice
    /// for the same node is a no-op reporting no further damage.
    pub fn fail_node(&self, node: usize) -> FailureReport {
        assert!(node < self.inner.config.n_nodes, "no such node: {node}");
        if !self.inner.dead.read().contains(&node) {
            self.inner.metrics.counter(metrics_keys::NODE_FAILURES).add(1);
        }
        self.inner.dead.write().insert(node);
        self.wipe_node_storage(node);
        let target = self.inner.config.replication;
        let mut report = FailureReport {
            node,
            ..FailureReport::default()
        };
        let mut files = self.inner.namenode.files.write();
        for info in files.values_mut() {
            for b in info.blocks.iter_mut() {
                if let Some(pos) = b.nodes.iter().position(|&n| n == node) {
                    b.nodes.remove(pos);
                    if b.nodes.is_empty() {
                        report.blocks_lost.push(b.id);
                    } else if b.nodes.len() < target {
                        report.under_replicated.push(b.id);
                    }
                }
            }
        }
        report.blocks_lost.sort_unstable();
        report.under_replicated.sort_unstable();
        report
    }

    /// Nodes declared dead via [`Dfs::fail_node`], sorted.
    pub fn dead_nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.inner.dead.read().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Has `node` been declared dead?
    pub fn is_node_dead(&self, node: usize) -> bool {
        self.inner.dead.read().contains(&node)
    }

    /// Copy surviving replicas of under-replicated blocks onto live nodes
    /// until every block reaches `min(replication, live nodes)` replicas —
    /// the name node's re-replication sweep after a failure. Targets are
    /// chosen least-loaded-first. Returns the number of replicas created.
    pub fn re_replicate(&self) -> usize {
        let dead = self.inner.dead.read().clone();
        let live: Vec<usize> = (0..self.inner.config.n_nodes)
            .filter(|n| !dead.contains(n))
            .collect();
        let effective = self.inner.config.replication.min(live.len());
        let mut created = 0;
        let mut files = self.inner.namenode.files.write();
        for info in files.values_mut() {
            for b in info.blocks.iter_mut() {
                while !b.nodes.is_empty() && b.nodes.len() < effective {
                    // A surviving replica to copy from (kill_node may have
                    // silently wiped some listed homes, so probe them all).
                    let Some(payload) = b.nodes.iter().find_map(|&n| {
                        self.inner.datanodes[n]
                            .blocks
                            .read()
                            .get(&b.id)
                            .map(|bb| bb.bytes().clone())
                    }) else {
                        break;
                    };
                    let Some(&dst) = live
                        .iter()
                        .filter(|n| !b.nodes.contains(n))
                        .min_by_key(|&&n| self.inner.datanodes[n].blocks.read().len())
                    else {
                        break;
                    };
                    if self.store_replica(dst, b.id, &payload).is_err() {
                        break;
                    }
                    b.nodes.push(dst);
                    created += 1;
                }
            }
        }
        if created > 0 {
            self.inner
                .metrics
                .counter(metrics_keys::REPLICAS_RESTORED)
                .add(created as u64);
        }
        created
    }
}

/// Substitute dead nodes in a placement with the next live node (cyclic
/// scan) not already chosen. If fewer live nodes exist than requested
/// replicas, the surplus replicas are dropped rather than doubled up.
fn remap_around_dead(
    nodes: Vec<usize>,
    dead: &HashSet<usize>,
    n_nodes: usize,
) -> Result<Vec<usize>, DfsError> {
    if dead.is_empty() {
        return Ok(nodes);
    }
    let mut out: Vec<usize> = Vec::with_capacity(nodes.len());
    for n in nodes {
        let mut cand = n;
        let mut steps = 0;
        while dead.contains(&cand) || out.contains(&cand) {
            cand = (cand + 1) % n_nodes;
            steps += 1;
            if steps > n_nodes {
                break;
            }
        }
        if steps <= n_nodes {
            out.push(cand);
        }
    }
    if out.is_empty() {
        return Err(DfsError::NoLiveNodes);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{LogicalPartitionPlacement, PinnedPlacement};

    fn small_dfs() -> Dfs {
        Dfs::new(DfsConfig {
            n_nodes: 4,
            block_size: 1024,
            replication: 1,
            ..DfsConfig::default()
        })
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let dfs = small_dfs();
        let data = payload(10_000);
        let info = dfs.write_file("/a", &data).unwrap();
        assert_eq!(info.len, 10_000);
        assert_eq!(info.blocks.len(), 10); // 10 × 1 KiB blocks (last partial? 10000/1024 → 9 full + 1 partial = 10)
        assert_eq!(dfs.read_file("/a").unwrap(), data);
    }

    #[test]
    fn block_splitting_sizes() {
        let dfs = small_dfs();
        let info = dfs.write_file("/b", &payload(2500)).unwrap();
        let sizes: Vec<usize> = info.blocks.iter().map(|b| b.len).collect();
        assert_eq!(sizes, vec![1024, 1024, 452]);
    }

    #[test]
    fn empty_file() {
        let dfs = small_dfs();
        let info = dfs.write_file("/empty", &[]).unwrap();
        assert!(info.blocks.is_empty());
        assert_eq!(dfs.read_file("/empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn duplicate_path_rejected() {
        let dfs = small_dfs();
        dfs.write_file("/a", &payload(10)).unwrap();
        assert!(matches!(
            dfs.write_file("/a", &payload(10)),
            Err(DfsError::FileExists(_))
        ));
    }

    #[test]
    fn missing_file_errors() {
        let dfs = small_dfs();
        assert!(matches!(
            dfs.read_file("/nope"),
            Err(DfsError::FileNotFound(_))
        ));
        assert!(dfs.delete("/nope").is_err());
    }

    #[test]
    fn delete_frees_replicas() {
        let dfs = small_dfs();
        dfs.write_file("/a", &payload(5000)).unwrap();
        assert!(dfs.node_stats().iter().any(|s| s.blocks > 0));
        dfs.delete("/a").unwrap();
        assert!(dfs.node_stats().iter().all(|s| s.blocks == 0));
        assert!(!dfs.exists("/a"));
    }

    #[test]
    fn default_placement_spreads_across_nodes() {
        let dfs = small_dfs();
        let info = dfs.write_file("/spread", &payload(8 * 1024)).unwrap();
        let homes: std::collections::HashSet<usize> = info
            .blocks
            .iter()
            .map(|b| b.nodes[0])
            .collect();
        assert_eq!(homes.len(), 4, "8 blocks over 4 nodes should use all");
        assert_eq!(info.single_home(), None);
    }

    #[test]
    fn logical_partition_placement_single_home() {
        let dfs = small_dfs();
        let info = dfs
            .write_file_with_policy("/part-00001", &payload(8 * 1024), &LogicalPartitionPlacement)
            .unwrap();
        let home = info.single_home();
        assert!(home.is_some(), "all blocks must share one home");
        // And the stats reflect that node holding everything.
        let stats = dfs.node_stats();
        assert_eq!(stats[home.unwrap()].bytes, 8 * 1024);
    }

    #[test]
    fn replication_survives_node_loss() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 512,
            replication: 2,
            ..DfsConfig::default()
        });
        let data = payload(4000);
        let info = dfs
            .write_file_with_policy("/r", &data, &PinnedPlacement(0))
            .unwrap();
        assert!(info.blocks.iter().all(|b| b.nodes.len() == 2));
        dfs.kill_node(0);
        assert_eq!(dfs.read_file("/r").unwrap(), data, "replica should serve");
        dfs.kill_node(1);
        assert!(matches!(
            dfs.read_file("/r"),
            Err(DfsError::BlockMissing(_))
        ));
    }

    #[test]
    fn fail_node_reports_under_replicated_blocks() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 512,
            replication: 2,
            ..DfsConfig::default()
        });
        let data = payload(2000); // 4 blocks, replicas on nodes {0, 1}
        let info = dfs
            .write_file_with_policy("/r", &data, &PinnedPlacement(0))
            .unwrap();
        let report = dfs.fail_node(0);
        assert_eq!(report.node, 0);
        assert!(report.blocks_lost.is_empty(), "replicas survive on node 1");
        assert_eq!(report.under_replicated.len(), info.blocks.len());
        // Metadata no longer lists the dead node.
        let info = dfs.stat("/r").unwrap();
        assert!(info.blocks.iter().all(|b| b.nodes == vec![1]));
        assert_eq!(dfs.read_file("/r").unwrap(), data);
        assert_eq!(dfs.dead_nodes(), vec![0]);
        assert!(dfs.is_node_dead(0) && !dfs.is_node_dead(1));
        // Failing the same node again reports no further damage.
        let again = dfs.fail_node(0);
        assert!(again.blocks_lost.is_empty() && again.under_replicated.is_empty());
    }

    #[test]
    fn fail_node_reports_lost_blocks_when_unreplicated() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 512,
            replication: 1,
            ..DfsConfig::default()
        });
        let info = dfs
            .write_file_with_policy("/r", &payload(1500), &PinnedPlacement(2))
            .unwrap();
        let report = dfs.fail_node(2);
        assert_eq!(report.blocks_lost.len(), info.blocks.len());
        assert!(report.under_replicated.is_empty());
        assert!(matches!(dfs.read_file("/r"), Err(DfsError::BlockMissing(_))));
    }

    #[test]
    fn re_replicate_restores_replication_factor() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 512,
            replication: 2,
            ..DfsConfig::default()
        });
        let data = payload(4000);
        dfs.write_file_with_policy("/r", &data, &PinnedPlacement(0))
            .unwrap();
        let report = dfs.fail_node(0);
        assert!(!report.under_replicated.is_empty());
        let created = dfs.re_replicate();
        assert_eq!(created, report.under_replicated.len());
        let info = dfs.stat("/r").unwrap();
        assert!(info.blocks.iter().all(|b| b.nodes.len() == 2));
        assert!(info.blocks.iter().all(|b| !b.nodes.contains(&0)));
        // The restored replication survives losing the other original home.
        dfs.fail_node(1);
        assert_eq!(dfs.read_file("/r").unwrap(), data);
        // Nothing left to do: only one live node remains, so effective
        // replication caps at 1 and a second sweep creates nothing.
        assert_eq!(dfs.re_replicate(), 0);
    }

    #[test]
    fn writes_avoid_dead_nodes() {
        let dfs = small_dfs();
        dfs.fail_node(2);
        let info = dfs
            .write_file_with_policy("/pinned", &payload(3000), &PinnedPlacement(2))
            .unwrap();
        assert!(
            info.blocks.iter().all(|b| !b.nodes.contains(&2)),
            "placement must be remapped off the dead node: {:?}",
            info.blocks
        );
        assert_eq!(dfs.read_file("/pinned").unwrap(), payload(3000));
        // Spreading writes also skip the dead node.
        let info = dfs.write_file("/spread", &payload(8 * 1024)).unwrap();
        assert!(info.blocks.iter().all(|b| !b.nodes.contains(&2)));
    }

    #[test]
    fn all_nodes_dead_rejects_writes() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 2,
            block_size: 512,
            replication: 1,
            ..DfsConfig::default()
        });
        dfs.fail_node(0);
        dfs.fail_node(1);
        assert!(matches!(
            dfs.write_file("/x", &payload(10)),
            Err(DfsError::NoLiveNodes)
        ));
    }

    #[test]
    fn list_by_prefix() {
        let dfs = small_dfs();
        dfs.write_file("/job/part-0", &payload(1)).unwrap();
        dfs.write_file("/job/part-1", &payload(1)).unwrap();
        dfs.write_file("/other", &payload(1)).unwrap();
        assert_eq!(
            dfs.list("/job/"),
            vec!["/job/part-0".to_string(), "/job/part-1".to_string()]
        );
        assert_eq!(dfs.list("").len(), 3);
    }

    #[test]
    fn metrics_track_block_io_and_recovery() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 512,
            replication: 2,
            ..DfsConfig::default()
        });
        let data = payload(1500); // 3 blocks × 2 replicas
        dfs.write_file_with_policy("/m", &data, &PinnedPlacement(0))
            .unwrap();
        let get = |k: &str| dfs.metrics().counter(k).get();
        assert_eq!(get(metrics_keys::BLOCKS_WRITTEN), 6);
        assert_eq!(get(metrics_keys::BYTES_WRITTEN), 3000);
        dfs.read_file("/m").unwrap();
        assert_eq!(get(metrics_keys::BLOCKS_READ), 3);
        assert_eq!(get(metrics_keys::BYTES_READ), 1500);
        dfs.fail_node(0);
        dfs.fail_node(0); // second declaration is not a new failure
        assert_eq!(get(metrics_keys::NODE_FAILURES), 1);
        let created = dfs.re_replicate();
        assert!(created > 0);
        assert_eq!(get(metrics_keys::REPLICAS_RESTORED), created as u64);
    }

    #[test]
    fn shared_write_is_zero_copy() {
        let dfs = small_dfs();
        let data = SharedBytes::from_vec(payload(3000));
        let info = dfs.write_file_shared("/z", data.clone()).unwrap();
        assert_eq!(info.blocks.len(), 3);
        // Stored blocks are windows into the caller's backing, not copies.
        for b in &info.blocks {
            assert!(dfs.read_block(b).unwrap().same_backing(&data));
        }
        assert_eq!(dfs.metrics().counter(metrics_keys::BYTES_COPIED).get(), 0);
        assert_eq!(dfs.read_file("/z").unwrap(), data.to_vec());
    }

    #[test]
    fn single_block_shared_read_is_zero_copy() {
        let dfs = small_dfs();
        dfs.write_file("/one", &payload(800)).unwrap();
        let after_write = dfs.metrics().counter(metrics_keys::BYTES_COPIED).get();
        let block0 = dfs.read_block(&dfs.stat("/one").unwrap().blocks[0]).unwrap();
        let got = dfs.read_file_shared("/one").unwrap();
        assert_eq!(got, payload(800));
        assert!(got.same_backing(&block0), "single-block read must not copy");
        assert_eq!(
            dfs.metrics().counter(metrics_keys::BYTES_COPIED).get(),
            after_write
        );
        // Multi-block files still concatenate (and count the copy).
        dfs.write_file("/many", &payload(3000)).unwrap();
        assert_eq!(dfs.read_file_shared("/many").unwrap(), payload(3000));
    }

    #[test]
    fn concurrent_writers() {
        let dfs = small_dfs();
        std::thread::scope(|s| {
            for t in 0..8 {
                let dfs = dfs.clone();
                s.spawn(move || {
                    for i in 0..20 {
                        dfs.write_file(&format!("/t{t}/f{i}"), &payload(700)).unwrap();
                    }
                });
            }
        });
        assert_eq!(dfs.list("/t").len(), 160);
        let total: usize = dfs.node_stats().iter().map(|s| s.bytes).sum();
        assert_eq!(total, 160 * 700);
    }

    fn store_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gesall-blockstore-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn persisted_dfs(name: &str, replication: usize) -> (Dfs, PathBuf) {
        let dir = store_dir(name);
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 1024,
            replication,
            block_store_dir: Some(dir.clone()),
            ..DfsConfig::default()
        });
        (dfs, dir)
    }

    fn blk_files(dir: &PathBuf) -> usize {
        let mut n = 0;
        for node in std::fs::read_dir(dir).unwrap().flatten() {
            if node.path().is_dir() {
                n += std::fs::read_dir(node.path()).unwrap().count();
            }
        }
        n
    }

    #[test]
    fn persisted_blocks_roundtrip_via_mapping() {
        let (dfs, dir) = persisted_dfs("roundtrip", 1);
        let data = payload(3000);
        let info = dfs.write_file("/p", &data).unwrap();
        assert_eq!(info.blocks.len(), 3);
        assert_eq!(blk_files(&dir), 3, "one file per replica");
        assert_eq!(
            dfs.metrics().counter(metrics_keys::BLOCKS_MAPPED).get(),
            3
        );
        assert_eq!(dfs.read_file("/p").unwrap(), data);
        // Two reads of the same block share the block file's mapping —
        // a refcount bump, not a re-read.
        let b0 = &dfs.stat("/p").unwrap().blocks[0];
        let r1 = dfs.read_block(b0).unwrap();
        let r2 = dfs.read_block(b0).unwrap();
        assert!(r1.is_mapped());
        assert!(r1.same_backing(&r2), "reads must share the mapping");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_unlinks_persisted_blocks() {
        let (dfs, dir) = persisted_dfs("delete", 2);
        dfs.write_file("/p", &payload(2048)).unwrap();
        assert_eq!(blk_files(&dir), 4); // 2 blocks × 2 replicas
        dfs.delete("/p").unwrap();
        assert_eq!(blk_files(&dir), 0, "delete must unlink block files");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn range_read_single_block_is_zero_copy() {
        let dfs = small_dfs();
        let data = payload(3000); // 3 × 1 KiB blocks
        dfs.write_file("/r", &data).unwrap();
        // Entirely inside block 1.
        let got = dfs.read_file_range_shared("/r", 1024 + 100, 300).unwrap();
        assert_eq!(got.as_slice(), &data[1124..1424]);
        let block1 = dfs.read_block(&dfs.stat("/r").unwrap().blocks[1]).unwrap();
        assert!(got.same_backing(&block1), "in-block range must not copy");
        // Exactly one whole block.
        let whole = dfs.read_file_range_shared("/r", 1024, 1024).unwrap();
        assert!(whole.same_backing(&block1));
        assert_eq!(whole.len(), 1024);
        // Empty range.
        assert!(dfs.read_file_range_shared("/r", 500, 0).unwrap().is_empty());
    }

    #[test]
    fn range_read_spanning_blocks_concatenates() {
        let dfs = small_dfs();
        let data = payload(3000);
        dfs.write_file("/r", &data).unwrap();
        let before = dfs
            .metrics()
            .counter(metrics_keys::BYTES_COPIED_RANGE)
            .get();
        let got = dfs.read_file_range_shared("/r", 900, 1500).unwrap();
        assert_eq!(got.as_slice(), &data[900..2400]);
        assert_eq!(
            dfs.metrics()
                .counter(metrics_keys::BYTES_COPIED_RANGE)
                .get(),
            before + 1500
        );
        // Out-of-bounds ranges error instead of truncating.
        assert!(dfs.read_file_range_shared("/r", 2999, 2).is_err());
        assert!(dfs.read_file_range_shared("/r", usize::MAX, 2).is_err());
    }

    #[test]
    fn file_availability_tracks_replicas_and_wipes() {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 512,
            replication: 2,
            ..DfsConfig::default()
        });
        dfs.write_file_with_policy("/f", &payload(1500), &PinnedPlacement(0))
            .unwrap();
        assert!(dfs.file_available_excluding("/f", &[]));
        // Replicas live on nodes 0 and 1: losing either alone is fine,
        // losing both is not.
        assert!(dfs.file_available_excluding("/f", &[0]));
        assert!(dfs.file_available_excluding("/f", &[1]));
        assert!(!dfs.file_available_excluding("/f", &[0, 1]));
        // A silent wipe (metadata still lists the node) is detected by
        // probing storage.
        dfs.kill_node(1);
        assert!(!dfs.file_available_excluding("/f", &[0]));
        assert!(dfs.file_available_excluding("/f", &[1]));
        // Unknown files are unavailable.
        assert!(!dfs.file_available_excluding("/nope", &[]));
    }

    #[test]
    fn small_blocks_pack_into_extents() {
        let dir = store_dir("pack");
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 2,
            block_size: 1024,
            replication: 1,
            block_store_dir: Some(dir.clone()),
            pack_threshold: 512,
        });
        // 12 files of 300 B each: all under the threshold.
        let mut datas = Vec::new();
        for i in 0..12 {
            let d: Vec<u8> = (0..300).map(|j| ((i * 7 + j) % 251) as u8).collect();
            dfs.write_file(&format!("/small-{i}"), &d).unwrap();
            datas.push(d);
        }
        assert_eq!(
            dfs.metrics().counter(metrics_keys::BLOCKS_PACKED).get(),
            12
        );
        // Far fewer inodes than blocks: one open extent per node.
        let files = blk_files(&dir);
        assert!(files <= 2, "12 packed blocks should share ≤2 extents, got {files}");
        // Packed blocks read back correctly, as mapped windows.
        for (i, d) in datas.iter().enumerate() {
            let path = format!("/small-{i}");
            assert_eq!(&dfs.read_file(&path).unwrap(), d);
            let shared = dfs.read_file_shared(&path).unwrap();
            assert!(shared.is_mapped(), "packed block must serve from the extent mapping");
        }
        // Blocks at or above the threshold still get their own inode.
        dfs.write_file("/big", &payload(600)).unwrap();
        assert_eq!(
            dfs.metrics().counter(metrics_keys::BLOCKS_PACKED).get(),
            12
        );
        assert_eq!(blk_files(&dir), files + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn packed_extents_roll_and_survive_failover() {
        let dir = store_dir("pack-roll");
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 2,
            block_size: 400 * 1024,
            replication: 2,
            block_store_dir: Some(dir.clone()),
            pack_threshold: 512 * 1024,
        });
        // Four ~400 KiB packed blocks per node: the fourth append finds
        // the open extent past the 1 MiB roll point, forcing a second
        // extent per node.
        let data = payload(4 * 400 * 1024 - 17);
        dfs.write_file_with_policy("/p", &data, &PinnedPlacement(0))
            .unwrap();
        assert_eq!(dfs.metrics().counter(metrics_keys::BLOCKS_PACKED).get(), 8);
        assert!(blk_files(&dir) >= 4, "each node rolls to a second extent");
        assert_eq!(dfs.read_file("/p").unwrap(), data);
        // A failed node's packed replicas recover from the surviving
        // node's extents.
        dfs.fail_node(0);
        assert_eq!(dfs.read_file("/p").unwrap(), data);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failure_recovery_with_persisted_store() {
        let (dfs, dir) = persisted_dfs("recover", 2);
        let data = payload(2500);
        dfs.write_file_with_policy("/p", &data, &PinnedPlacement(0))
            .unwrap();
        let report = dfs.fail_node(0);
        assert!(report.blocks_lost.is_empty());
        let created = dfs.re_replicate();
        assert_eq!(created, report.under_replicated.len());
        assert_eq!(dfs.read_file("/p").unwrap(), data);
        // Every surviving replica is persisted somewhere on disk.
        assert_eq!(blk_files(&dir), 3 * 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
