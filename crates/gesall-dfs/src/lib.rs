//! # gesall-dfs
//!
//! An HDFS-like distributed block store, in-process.
//!
//! Files are split into fixed-size blocks, replicated across data nodes,
//! and located through a name node — the storage substrate under
//! Gesall's genomic data layer (paper §3.1). Two features matter to the
//! paper and are first-class here:
//!
//! 1. **Arbitrary block splitting.** A file's byte stream is cut at
//!    block-size boundaries with no knowledge of record framing, so a
//!    BAM chunk may straddle two blocks; the platform's record reader
//!    must stitch them (handled in `gesall-core`).
//! 2. **Pluggable block placement.** The default policy spreads blocks;
//!    the custom [`placement::LogicalPartitionPlacement`] pins *all*
//!    blocks of a file to one node — how Gesall guarantees a logical
//!    partition is readable locally by a wrapped single-node program.

pub mod checksum;
pub mod fs;
pub mod placement;

pub use fs::{
    metrics_keys, BlockBacking, BlockInfo, Dfs, DfsConfig, DfsError, FailureReport, FileInfo,
    NodeStats, RangeRead, ReadAffinity, SweepReason, SweepReport,
};
pub use placement::{
    BlockPlacementPolicy, DefaultPlacement, LogicalPartitionPlacement, PinnedPlacement,
};
