//! Block placement policies.


/// Decides which data nodes receive each block of a file.
pub trait BlockPlacementPolicy: Send + Sync {
    /// Nodes (by index) that should hold replicas of block `block_index`
    /// of file `path`. Must return between 1 and `replication` distinct
    /// node indices `< n_nodes`.
    fn place(
        &self,
        path: &str,
        block_index: usize,
        n_nodes: usize,
        replication: usize,
    ) -> Vec<usize>;
}

/// HDFS-like default: stripe a file's blocks round-robin starting at a
/// node derived from the file path, replicas on the following nodes.
pub struct DefaultPlacement;

impl DefaultPlacement {
    pub fn new() -> DefaultPlacement {
        DefaultPlacement
    }
}

impl Default for DefaultPlacement {
    fn default() -> Self {
        Self::new()
    }
}

fn stable_hash(s: &str) -> usize {
    // FNV-1a; placement only needs stability, not cryptography.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h as usize
}

impl BlockPlacementPolicy for DefaultPlacement {
    fn place(
        &self,
        path: &str,
        block_index: usize,
        n_nodes: usize,
        replication: usize,
    ) -> Vec<usize> {
        let base = stable_hash(path);
        let r = replication.min(n_nodes).max(1);
        (0..r)
            .map(|k| (base + block_index + k) % n_nodes)
            .collect()
    }
}

/// The paper's custom policy (§3.1): every block of a logical-partition
/// file lands on **one** node, so a wrapped single-node program can read
/// the whole partition locally. The node is chosen by a stable hash of
/// the file path (replicas, if any, go to the following nodes).
pub struct LogicalPartitionPlacement;

impl BlockPlacementPolicy for LogicalPartitionPlacement {
    fn place(
        &self,
        path: &str,
        _block_index: usize,
        n_nodes: usize,
        replication: usize,
    ) -> Vec<usize> {
        let primary = stable_hash(path) % n_nodes;
        let r = replication.min(n_nodes).max(1);
        (0..r).map(|k| (primary + k) % n_nodes).collect()
    }
}

/// Pins all blocks of every file to an explicit node — used when the
/// runtime wants to steer a partition at a specific worker.
pub struct PinnedPlacement(pub usize);

impl BlockPlacementPolicy for PinnedPlacement {
    fn place(
        &self,
        _path: &str,
        _block_index: usize,
        n_nodes: usize,
        replication: usize,
    ) -> Vec<usize> {
        let r = replication.min(n_nodes).max(1);
        (0..r).map(|k| (self.0 + k) % n_nodes).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spreads_blocks() {
        let p = DefaultPlacement::new();
        let homes: Vec<usize> = (0..8).map(|b| p.place("f", b, 4, 1)[0]).collect();
        let mut distinct = homes.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 4, "blocks should stripe: {homes:?}");
    }

    #[test]
    fn default_replicas_are_distinct_nodes() {
        let p = DefaultPlacement::new();
        let nodes = p.place("f", 0, 5, 3);
        assert_eq!(nodes.len(), 3);
        let mut d = nodes.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn replication_capped_by_cluster_size() {
        let p = DefaultPlacement::new();
        assert_eq!(p.place("f", 0, 2, 3).len(), 2);
        assert_eq!(p.place("f", 0, 1, 3), vec![0]);
    }

    #[test]
    fn logical_partition_pins_all_blocks_to_one_node() {
        let p = LogicalPartitionPlacement;
        let first = p.place("part-00000", 0, 8, 1)[0];
        for b in 1..20 {
            assert_eq!(p.place("part-00000", b, 8, 1)[0], first);
        }
        // Different partitions generally land on different nodes.
        let homes: std::collections::HashSet<usize> = (0..32)
            .map(|i| p.place(&format!("part-{i:05}"), 0, 8, 1)[0])
            .collect();
        assert!(homes.len() > 3, "partitions too clustered: {homes:?}");
    }

    #[test]
    fn pinned_goes_where_told() {
        let p = PinnedPlacement(3);
        assert_eq!(p.place("anything", 7, 8, 1), vec![3]);
        assert_eq!(p.place("x", 0, 8, 2), vec![3, 4]);
    }
}
