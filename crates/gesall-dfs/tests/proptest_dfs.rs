//! Property-based tests of the DFS: files round-trip under any block
//! size, placement policies keep their promises, and verify-on-read
//! integrity holds under arbitrary corruption.

use gesall_dfs::{metrics_keys, Dfs, DfsConfig, LogicalPartitionPlacement};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn files_roundtrip_under_any_block_size(
        data in proptest::collection::vec(any::<u8>(), 0..20_000),
        block_size in 1usize..4096,
        n_nodes in 1usize..8,
        replication in 1usize..4,
    ) {
        let dfs = Dfs::new(DfsConfig { n_nodes, block_size, replication, ..DfsConfig::default() });
        let info = dfs.write_file("/f", &data).unwrap();
        prop_assert_eq!(info.len, data.len());
        let expected_blocks = data.len().div_ceil(block_size.max(1));
        prop_assert_eq!(info.blocks.len(), if data.is_empty() { 0 } else { expected_blocks });
        // Every block's replica count is min(replication, n_nodes).
        for b in &info.blocks {
            prop_assert_eq!(b.nodes.len(), replication.min(n_nodes));
        }
        prop_assert_eq!(dfs.read_file("/f").unwrap(), data);
    }

    #[test]
    fn logical_partitions_always_single_homed(
        data in proptest::collection::vec(any::<u8>(), 1..10_000),
        block_size in 64usize..512,
        n_nodes in 1usize..10,
        path_salt in 0u32..1000,
    ) {
        let dfs = Dfs::new(DfsConfig { n_nodes, block_size, replication: 1, ..DfsConfig::default() });
        let path = format!("/part-{path_salt}");
        let info = dfs
            .write_file_with_policy(&path, &data, &LogicalPartitionPlacement)
            .unwrap();
        prop_assert!(info.single_home().is_some());
        prop_assert_eq!(dfs.read_file(&path).unwrap(), data);
    }

    #[test]
    fn byte_accounting_is_exact(
        sizes in proptest::collection::vec(1usize..3000, 1..10),
        replication in 1usize..3,
    ) {
        let dfs = Dfs::new(DfsConfig { n_nodes: 4, block_size: 256, replication, ..DfsConfig::default() });
        let mut total = 0usize;
        for (i, size) in sizes.iter().enumerate() {
            let data = vec![i as u8; *size];
            dfs.write_file(&format!("/f{i}"), &data).unwrap();
            total += size * replication.min(4);
        }
        let stored: usize = dfs.node_stats().iter().map(|s| s.bytes).sum();
        prop_assert_eq!(stored, total);
    }

    /// Verify-on-read round-trips under any block size and range
    /// geometry: every range read equals the oracle slice, before and
    /// after an arbitrary replica is corrupted. A damaged replica is
    /// never served — the read heals it from a survivor instead.
    #[test]
    fn range_reads_survive_arbitrary_replica_corruption(
        data in proptest::collection::vec(any::<u8>(), 1..8_000),
        block_size in 64usize..1024,
        ranges in proptest::collection::vec((0u32..1000, 0u32..1000), 1..6),
        corrupt_at in 0u32..1000,
        corrupt_replica in 0usize..2,
    ) {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 4,
            block_size,
            replication: 2,
            ..DfsConfig::default()
        });
        let info = dfs.write_file("/f", &data).unwrap();
        let pick = |frac: u32, n: usize| (frac as usize * n / 1000).min(n - 1);
        let block = pick(corrupt_at, info.blocks.len());
        dfs.corrupt_block("/f", block, corrupt_replica).unwrap();
        for (off_frac, len_frac) in ranges {
            let offset = pick(off_frac, data.len() + 1).min(data.len());
            let len = pick(len_frac, data.len() - offset + 1);
            let got = dfs.read_file_range_shared("/f", offset, len).unwrap();
            prop_assert_eq!(got.as_slice(), &data[offset..offset + len]);
        }
        prop_assert_eq!(dfs.read_file("/f").unwrap(), data.clone());
        // Whatever was detected got repaired (a survivor always exists).
        let detected = dfs.metrics().counter(metrics_keys::BLOCKS_CORRUPT_DETECTED).get();
        let repaired = dfs.metrics().counter(metrics_keys::BLOCKS_CORRUPT_REPAIRED).get();
        prop_assert_eq!(detected, repaired);
        // And the namespace is back at full replication.
        let info = dfs.stat("/f").unwrap();
        prop_assert!(info.blocks.iter().all(|b| b.nodes.len() == 2));
    }
}
