//! A BAM-like binary container.
//!
//! A file is a sequence of *chunks*, each an independently-compressed frame:
//!
//! ```text
//! frame := [kind u8][comp_len u32][raw_len u32][crc32(raw) u32][comp bytes]
//! ```
//!
//! * Chunk 0 (`kind = 0`) holds the serialized [`SamHeader`] text.
//! * Every later chunk (`kind = 1`) holds a batch of wire-encoded
//!   [`SamRecord`]s whose raw size is capped near [`CHUNK_TARGET_RAW`].
//!
//! This mirrors real BAM/BGZF structurally: records are packed into
//! variable-length compressed chunks, so when the DFS splits the byte
//! stream into fixed-size blocks, a chunk may straddle a block boundary —
//! exactly the situation the paper's custom `RecordReader` handles (§3.1).
//! The [`ChunkScanner`] here does the frame arithmetic; the DFS-aware
//! record reader in `gesall-core` feeds it bytes from block lists.

use crate::compress::{compress, crc32, decompress};
use crate::error::{FormatError, Result};
use crate::sam::{SamHeader, SamRecord};
use crate::wire::Wire;

/// Target uncompressed payload per record chunk (bytes). Real BGZF blocks
/// cap at 64 KiB; we default to the same.
pub const CHUNK_TARGET_RAW: usize = 64 * 1024;

/// Frame header length in bytes: kind + comp_len + raw_len + crc.
pub const FRAME_HEADER_LEN: usize = 1 + 4 + 4 + 4;

/// Chunk kinds.
pub const KIND_HEADER: u8 = 0;
pub const KIND_RECORDS: u8 = 1;

/// A parsed chunk frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    pub kind: u8,
    pub comp_len: u32,
    pub raw_len: u32,
    pub crc: u32,
}

impl FrameHeader {
    /// Parse the 13-byte frame prefix.
    pub fn parse(bytes: &[u8]) -> Result<FrameHeader> {
        if bytes.len() < FRAME_HEADER_LEN {
            return Err(FormatError::Bam(format!(
                "frame header needs {FRAME_HEADER_LEN} bytes, got {}",
                bytes.len()
            )));
        }
        let kind = bytes[0];
        if kind != KIND_HEADER && kind != KIND_RECORDS {
            return Err(FormatError::Bam(format!("bad chunk kind {kind}")));
        }
        Ok(FrameHeader {
            kind,
            comp_len: u32::from_le_bytes(bytes[1..5].try_into().unwrap()),
            raw_len: u32::from_le_bytes(bytes[5..9].try_into().unwrap()),
            crc: u32::from_le_bytes(bytes[9..13].try_into().unwrap()),
        })
    }

    /// Total frame length including the header.
    pub fn frame_len(&self) -> usize {
        FRAME_HEADER_LEN + self.comp_len as usize
    }
}

/// One complete chunk: its kind plus the decompressed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    pub kind: u8,
    pub raw: Vec<u8>,
}

impl Chunk {
    /// Decode the records in a `KIND_RECORDS` chunk.
    pub fn records(&self) -> Result<Vec<SamRecord>> {
        if self.kind != KIND_RECORDS {
            return Err(FormatError::Bam("not a record chunk".into()));
        }
        Vec::<SamRecord>::from_wire_bytes(&self.raw)
    }

    /// Decode the header in a `KIND_HEADER` chunk.
    pub fn header(&self) -> Result<SamHeader> {
        if self.kind != KIND_HEADER {
            return Err(FormatError::Bam("not a header chunk".into()));
        }
        let text = String::from_utf8(self.raw.clone())
            .map_err(|_| FormatError::Bam("header chunk is not utf-8".into()))?;
        SamHeader::parse_text(&text)
    }
}

fn encode_frame(kind: u8, raw: &[u8]) -> Vec<u8> {
    let comp = compress(raw);
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + comp.len());
    out.push(kind);
    out.extend_from_slice(&(comp.len() as u32).to_le_bytes());
    out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(raw).to_le_bytes());
    out.extend_from_slice(&comp);
    out
}

/// Decode one frame starting at `data[0]`, returning the chunk and the
/// total frame length consumed.
pub fn decode_frame(data: &[u8]) -> Result<(Chunk, usize)> {
    let fh = FrameHeader::parse(data)?;
    let total = fh.frame_len();
    if data.len() < total {
        return Err(FormatError::Bam(format!(
            "truncated frame: need {total} bytes, have {}",
            data.len()
        )));
    }
    let raw = decompress(&data[FRAME_HEADER_LEN..total])?;
    if raw.len() != fh.raw_len as usize {
        return Err(FormatError::Bam("raw length mismatch".into()));
    }
    if crc32(&raw) != fh.crc {
        return Err(FormatError::Bam("crc mismatch (corrupt chunk)".into()));
    }
    Ok((
        Chunk {
            kind: fh.kind,
            raw,
        },
        total,
    ))
}

/// One entry of the coordinate index: a record chunk's byte span and the
/// coordinate range of the records inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkIndexEntry {
    /// Byte offset of the chunk frame within the file.
    pub offset: u64,
    /// Frame length in bytes.
    pub len: u64,
    /// Smallest (ref id, pos) coordinate key in the chunk.
    pub min_key: (i32, i64),
    /// Largest coordinate key in the chunk.
    pub max_key: (i32, i64),
}

/// The coordinate ("linear") index of a BAM file — what Round 4 of the
/// paper's pipeline builds alongside the sorted output so Round 5 can
/// seek to genomic regions without scanning the whole file.
///
/// Meaningful for coordinate-sorted files; built for any file (queries
/// then degrade to scans of overlapping entries).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BamIndex {
    pub entries: Vec<ChunkIndexEntry>,
}

/// Wire row for one index entry:
/// `(offset, (len, ((min_ref, min_pos), (max_ref, max_pos))))`.
type IndexRow = (u64, (u64, ((i64, i64), (i64, i64))));

impl BamIndex {
    /// Byte spans of the chunks that may hold records overlapping
    /// `[start, end]` on `ref_id`. Unmapped-record chunks (key
    /// `(i32::MAX, _)`) never match.
    pub fn chunks_for_region(&self, ref_id: i32, start: i64, end: i64) -> Vec<(u64, u64)> {
        let lo = (ref_id, start);
        let hi = (ref_id, end);
        self.entries
            .iter()
            .filter(|e| {
                // Overlap in coordinate-key space. A record at pos p
                // can extend rightward, so a chunk whose max_key is
                // slightly left of `start` may still overlap; widen by a
                // read-length margin.
                let margin = 1024;
                let widened_lo = (lo.0, lo.1 - margin);
                e.min_key <= hi && e.max_key >= widened_lo
            })
            .map(|e| (e.offset, e.len))
            .collect()
    }

    /// Serialize (for storing next to the BAM file).
    pub fn to_bytes(&self) -> Vec<u8> {
        use crate::wire::Wire;
        let rows: Vec<IndexRow> = self
            .entries
            .iter()
            .map(|e| {
                (
                    e.offset,
                    (
                        e.len,
                        (
                            (e.min_key.0 as i64, e.min_key.1),
                            (e.max_key.0 as i64, e.max_key.1),
                        ),
                    ),
                )
            })
            .collect();
        rows.to_wire_bytes()
    }

    /// Deserialize.
    pub fn from_bytes(data: &[u8]) -> Result<BamIndex> {
        use crate::wire::Wire;
        let rows = Vec::<IndexRow>::from_wire_bytes(data)?;
        Ok(BamIndex {
            entries: rows
                .into_iter()
                .map(|(offset, (len, ((rlo, plo), (rhi, phi))))| ChunkIndexEntry {
                    offset,
                    len,
                    min_key: (rlo as i32, plo),
                    max_key: (rhi as i32, phi),
                })
                .collect(),
        })
    }
}

/// Streaming writer that batches records into chunks.
pub struct BamWriter {
    out: Vec<u8>,
    pending: Vec<SamRecord>,
    pending_raw: usize,
    /// Byte offset of every emitted chunk (header chunk included) — the
    /// "chunk index" a DFS-aware reader uses to stitch blocks.
    chunk_offsets: Vec<u64>,
    records_written: u64,
    index: BamIndex,
}

impl BamWriter {
    /// Begin a file with its header chunk.
    pub fn new(header: &SamHeader) -> BamWriter {
        let mut w = BamWriter {
            out: Vec::new(),
            pending: Vec::new(),
            pending_raw: 0,
            chunk_offsets: Vec::new(),
            records_written: 0,
            index: BamIndex::default(),
        };
        w.chunk_offsets.push(0);
        let frame = encode_frame(KIND_HEADER, header.to_text().as_bytes());
        w.out.extend_from_slice(&frame);
        w
    }

    /// Append one record; flushes a chunk when the target raw size is hit.
    pub fn write_record(&mut self, rec: SamRecord) {
        // Rough raw-size estimate: wire size ≈ seq + qual + name + ~40.
        self.pending_raw += rec.seq.len() + rec.qual.len() + rec.name.len() + 40;
        self.pending.push(rec);
        self.records_written += 1;
        if self.pending_raw >= CHUNK_TARGET_RAW {
            self.flush_chunk();
        }
    }

    fn flush_chunk(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending);
        let min_key = batch
            .iter()
            .map(SamRecord::coordinate_key)
            .min()
            .expect("non-empty batch");
        let max_key = batch
            .iter()
            .map(SamRecord::coordinate_key)
            .max()
            .expect("non-empty batch");
        let raw = batch.to_wire_bytes();
        self.pending_raw = 0;
        let offset = self.out.len() as u64;
        self.chunk_offsets.push(offset);
        let frame = encode_frame(KIND_RECORDS, &raw);
        self.out.extend_from_slice(&frame);
        self.index.entries.push(ChunkIndexEntry {
            offset,
            len: frame.len() as u64,
            min_key,
            max_key,
        });
    }

    /// Finish the file, returning (bytes, chunk offsets, record count).
    pub fn finish(mut self) -> (Vec<u8>, Vec<u64>, u64) {
        self.flush_chunk();
        (self.out, self.chunk_offsets, self.records_written)
    }

    /// Finish, also returning the coordinate index (Round 4's "build the
    /// BAM file index").
    pub fn finish_indexed(mut self) -> (Vec<u8>, BamIndex, u64) {
        self.flush_chunk();
        (self.out, self.index, self.records_written)
    }
}

/// Serialize a header and records, returning the bytes plus the
/// coordinate index.
pub fn write_bam_indexed(header: &SamHeader, records: &[SamRecord]) -> (Vec<u8>, BamIndex) {
    let mut w = BamWriter::new(header);
    for r in records {
        w.write_record(r.clone());
    }
    let (bytes, index, _) = w.finish_indexed();
    (bytes, index)
}

/// Region query over an in-memory indexed BAM: all records overlapping
/// `[start, end]` (1-based inclusive) on `ref_id`, touching only the
/// chunks the index selects.
pub fn read_region(
    data: &[u8],
    index: &BamIndex,
    ref_id: i32,
    start: i64,
    end: i64,
) -> Result<Vec<SamRecord>> {
    let mut out = Vec::new();
    for (offset, len) in index.chunks_for_region(ref_id, start, end) {
        let frame = data
            .get(offset as usize..(offset + len) as usize)
            .ok_or_else(|| FormatError::Bam("index points past end of file".into()))?;
        let (chunk, _) = decode_frame(frame)?;
        for rec in chunk.records()? {
            if rec.overlaps(ref_id, start, end) {
                out.push(rec);
            }
        }
    }
    Ok(out)
}

/// Serialize a header and records into a complete BAM byte buffer.
pub fn write_bam(header: &SamHeader, records: &[SamRecord]) -> Vec<u8> {
    let mut w = BamWriter::new(header);
    for r in records {
        w.write_record(r.clone());
    }
    w.finish().0
}

/// Scanner over a contiguous BAM byte buffer, yielding chunks.
pub struct ChunkScanner<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ChunkScanner<'a> {
    pub fn new(data: &'a [u8]) -> ChunkScanner<'a> {
        ChunkScanner { data, pos: 0 }
    }

    /// Byte offset of the next frame.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Next chunk, or `Ok(None)` at end of buffer.
    pub fn next_chunk(&mut self) -> Result<Option<Chunk>> {
        if self.pos >= self.data.len() {
            return Ok(None);
        }
        let (chunk, consumed) = decode_frame(&self.data[self.pos..])?;
        self.pos += consumed;
        Ok(Some(chunk))
    }
}

/// Parse a complete BAM buffer into (header, records). The mirror of
/// [`write_bam`].
pub fn read_bam(data: &[u8]) -> Result<(SamHeader, Vec<SamRecord>)> {
    let mut scanner = ChunkScanner::new(data);
    let header = scanner
        .next_chunk()?
        .ok_or_else(|| FormatError::Bam("empty bam file".into()))?
        .header()?;
    let mut records = Vec::new();
    while let Some(chunk) = scanner.next_chunk()? {
        records.extend(chunk.records()?);
    }
    Ok((header, records))
}

/// The utility the paper describes in §3.1: given the header chunk's frame
/// plus an arbitrary *subset* of record-chunk frames (as handed out by the
/// DFS record reader), iterate the contained records with the header
/// available — "one-line modification" semantics for single-node programs.
pub struct ChunkSetReader {
    header: SamHeader,
    records: std::vec::IntoIter<SamRecord>,
}

impl ChunkSetReader {
    /// `frames` are raw frame byte strings (`Vec<u8>`, `SharedBytes`, or
    /// any other byte container); the first must be the header chunk of
    /// the file (fetched from the file's first block).
    pub fn new<T: AsRef<[u8]>>(frames: &[T]) -> Result<ChunkSetReader> {
        let first = frames
            .first()
            .ok_or_else(|| FormatError::Bam("no chunks supplied".into()))?;
        let (hc, _) = decode_frame(first.as_ref())?;
        let header = hc.header()?;
        let mut records = Vec::new();
        for frame in &frames[1..] {
            let (chunk, _) = decode_frame(frame.as_ref())?;
            records.extend(chunk.records()?);
        }
        Ok(ChunkSetReader {
            header,
            records: records.into_iter(),
        })
    }

    pub fn header(&self) -> &SamHeader {
        &self.header
    }
}

impl Iterator for ChunkSetReader {
    type Item = SamRecord;
    fn next(&mut self) -> Option<SamRecord> {
        self.records.next()
    }
}

/// Extract the raw frame byte strings of a BAM buffer (header frame first).
pub fn split_frames(data: &[u8]) -> Result<Vec<Vec<u8>>> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos < data.len() {
        let fh = FrameHeader::parse(&data[pos..])?;
        let end = pos + fh.frame_len();
        if end > data.len() {
            return Err(FormatError::Bam("truncated trailing frame".into()));
        }
        frames.push(data[pos..end].to_vec());
        pos = end;
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sam::header::ReferenceSeq;
    use crate::sam::{Cigar, Flags};

    fn header() -> SamHeader {
        SamHeader::new(vec![ReferenceSeq {
            name: "chr1".into(),
            len: 100_000,
        }])
    }

    fn records(n: usize) -> Vec<SamRecord> {
        (0..n)
            .map(|i| {
                let mut r = SamRecord::unmapped(
                    format!("read{i}"),
                    vec![b"ACGT"[i % 4]; 100],
                    vec![(i % 40) as u8; 100],
                );
                r.flags = Flags(Flags::PAIRED);
                r.flags.set(Flags::UNMAPPED, false);
                r.ref_id = 0;
                r.pos = (i as i64) * 37 + 1;
                r.cigar = Cigar::full_match(100);
                r.mapq = 60;
                r
            })
            .collect()
    }

    #[test]
    fn roundtrip_small() {
        let h = header();
        let recs = records(10);
        let bytes = write_bam(&h, &recs);
        let (h2, r2) = read_bam(&bytes).unwrap();
        assert_eq!(h2, h);
        assert_eq!(r2, recs);
    }

    #[test]
    fn roundtrip_multi_chunk() {
        let h = header();
        // ~240 bytes/record estimate → >64KiB needs ~300 records; use 2000
        // to force many chunks.
        let recs = records(2000);
        let bytes = write_bam(&h, &recs);
        let frames = split_frames(&bytes).unwrap();
        assert!(
            frames.len() > 3,
            "expected several chunks, got {}",
            frames.len()
        );
        let (_, r2) = read_bam(&bytes).unwrap();
        assert_eq!(r2, recs);
    }

    #[test]
    fn empty_record_set() {
        let h = header();
        let bytes = write_bam(&h, &[]);
        let (h2, r2) = read_bam(&bytes).unwrap();
        assert_eq!(h2, h);
        assert!(r2.is_empty());
    }

    #[test]
    fn chunk_offsets_match_frames() {
        let h = header();
        let mut w = BamWriter::new(&h);
        for r in records(1500) {
            w.write_record(r);
        }
        let (bytes, offsets, n) = w.finish();
        assert_eq!(n, 1500);
        let frames = split_frames(&bytes).unwrap();
        assert_eq!(offsets.len(), frames.len());
        // Every recorded offset is the start of a parseable frame.
        for &off in &offsets {
            FrameHeader::parse(&bytes[off as usize..]).unwrap();
        }
    }

    #[test]
    fn chunk_set_reader_over_subset() {
        let h = header();
        let recs = records(2000);
        let bytes = write_bam(&h, &recs);
        let frames = split_frames(&bytes).unwrap();
        // Take the header frame + only the 3rd record frame — a "logical
        // partition" of the file.
        let subset = vec![frames[0].clone(), frames[3].clone()];
        let reader = ChunkSetReader::new(&subset).unwrap();
        assert_eq!(reader.header(), &h);
        let got: Vec<SamRecord> = reader.collect();
        assert!(!got.is_empty());
        // Those records appear contiguously in the full set.
        let start = recs.iter().position(|r| r == &got[0]).unwrap();
        assert_eq!(&recs[start..start + got.len()], got.as_slice());
    }

    #[test]
    fn corruption_detected_by_crc() {
        let h = header();
        let recs = records(50);
        let mut bytes = write_bam(&h, &recs);
        // Flip a payload byte in the last frame.
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        assert!(read_bam(&bytes).is_err());
    }

    #[test]
    fn truncation_detected() {
        let h = header();
        let recs = records(50);
        let bytes = write_bam(&h, &recs);
        assert!(read_bam(&bytes[..bytes.len() - 3]).is_err());
        assert!(read_bam(&[]).is_err());
    }

    #[test]
    fn region_query_returns_exactly_the_overlapping_records() {
        let h = header();
        // Coordinate-sorted records 100 bases long at positions 1, 38, …
        let mut recs = records(3000);
        recs.sort_by_key(|r| r.coordinate_key());
        let (bytes, index) = write_bam_indexed(&h, &recs);
        assert!(index.entries.len() > 3, "want several chunks");
        for (start, end) in [(1i64, 500i64), (40_000, 41_000), (110_000, 120_000)] {
            let got = read_region(&bytes, &index, 0, start, end).unwrap();
            let expect: Vec<SamRecord> = recs
                .iter()
                .filter(|r| r.overlaps(0, start, end))
                .cloned()
                .collect();
            assert_eq!(got, expect, "region {start}..{end}");
        }
        // A region on a nonexistent chromosome matches nothing.
        assert!(read_region(&bytes, &index, 5, 1, 1000).unwrap().is_empty());
    }

    #[test]
    fn region_query_reads_fewer_chunks_than_full_scan() {
        let h = header();
        let mut recs = records(5000);
        recs.sort_by_key(|r| r.coordinate_key());
        let (_, index) = write_bam_indexed(&h, &recs);
        let touched = index.chunks_for_region(0, 1, 2000).len();
        assert!(
            touched * 3 < index.entries.len(),
            "a small region should touch a small fraction of chunks: {touched}/{}",
            index.entries.len()
        );
    }

    #[test]
    fn index_serialization_roundtrip() {
        let h = header();
        let (_, index) = write_bam_indexed(&h, &records(800));
        let back = BamIndex::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(back, index);
    }

    #[test]
    fn frame_header_rejects_bad_kind() {
        let mut frame = encode_frame(KIND_RECORDS, b"x");
        frame[0] = 9;
        assert!(FrameHeader::parse(&frame).is_err());
    }
}
