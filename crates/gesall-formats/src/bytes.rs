//! Shared, sliceable byte buffers — the zero-copy currency of the
//! record path (DESIGN.md §3⅞).
//!
//! A [`SharedBytes`] is a `[start, end)` window into an `Arc<[u8]>`
//! backing allocation. `clone` and [`SharedBytes::slice`] are O(1) and
//! never touch the payload, so a DFS block handed to a frame reader, a
//! map-output partition handed to a reducer, and a pipe chunk handed
//! across threads all reference the same allocation instead of
//! memcpy'ing it. [`SharedBytes::same_backing`] makes that property
//! testable: a fetch that claims to be zero-copy can assert pointer
//! identity with the buffer it was sliced from.

use crate::mapped::MappedRegion;
use std::io;
use std::ops::{Bound, Deref, RangeBounds};
use std::path::Path;
use std::sync::Arc;

/// What a [`SharedBytes`] window references: a heap allocation or a
/// file-mapped region (see [`crate::mapped`]). Both clone by refcount;
/// `same_backing` is pointer identity within a variant and never true
/// across variants.
#[derive(Clone)]
enum Backing {
    Heap(Arc<[u8]>),
    Mapped(Arc<MappedRegion>),
}

impl Backing {
    fn as_slice(&self) -> &[u8] {
        match self {
            Backing::Heap(a) => a,
            Backing::Mapped(m) => m.as_slice(),
        }
    }

    fn ptr_eq(&self, other: &Backing) -> bool {
        match (self, other) {
            (Backing::Heap(a), Backing::Heap(b)) => Arc::ptr_eq(a, b),
            (Backing::Mapped(a), Backing::Mapped(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Immutable, reference-counted byte range. `clone` and `slice` are
/// O(1); the payload is copied only at construction from a borrowed
/// slice ([`SharedBytes::copy_from_slice`]) — [`SharedBytes::from_vec`]
/// takes ownership without copying, and [`SharedBytes::map_file`]
/// doesn't even allocate: it windows a file mapping.
#[derive(Clone)]
pub struct SharedBytes {
    data: Backing,
    start: usize,
    end: usize,
}

impl SharedBytes {
    /// An empty buffer (no allocation shared with anything).
    pub fn new() -> SharedBytes {
        SharedBytes {
            data: Backing::Heap(Arc::from(&[][..])),
            start: 0,
            end: 0,
        }
    }

    /// Take ownership of `v` without copying the payload.
    pub fn from_vec(v: Vec<u8>) -> SharedBytes {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        let end = data.len();
        SharedBytes {
            data: Backing::Heap(data),
            start: 0,
            end,
        }
    }

    /// Copy `data` into a fresh backing allocation.
    pub fn copy_from_slice(data: &[u8]) -> SharedBytes {
        SharedBytes {
            data: Backing::Heap(Arc::from(data)),
            start: 0,
            end: data.len(),
        }
    }

    /// Map a file read-only and window the whole mapping: with the
    /// `mmap` feature on unix, the "read" is a page-table op and the
    /// kernel pages bytes in on demand; elsewhere this transparently
    /// falls back to a single heap read. Slices and clones share the
    /// mapping like any other backing.
    pub fn map_file(path: &Path) -> io::Result<SharedBytes> {
        Ok(SharedBytes::from_region(Arc::new(MappedRegion::map(path)?)))
    }

    /// Window an existing mapped region (shared, not re-mapped).
    pub fn from_region(region: Arc<MappedRegion>) -> SharedBytes {
        let end = region.len();
        SharedBytes {
            data: Backing::Mapped(region),
            start: 0,
            end,
        }
    }

    /// Is this window backed by a file mapping (including the heap
    /// fallback of a [`MappedRegion`]) rather than an owned allocation?
    pub fn is_mapped(&self) -> bool {
        matches!(self.data, Backing::Mapped(_))
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }

    /// O(1) sub-range sharing the same backing allocation.
    ///
    /// Panics if the range is out of bounds, like slice indexing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> SharedBytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of range for {len} bytes"
        );
        SharedBytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Do `self` and `other` reference the same backing allocation (or
    /// the same file mapping)? This is the zero-copy witness: a slice
    /// of a buffer, or a clone of it, shares its backing; any path that
    /// memcpy'd does not.
    pub fn same_backing(&self, other: &SharedBytes) -> bool {
        self.data.ptr_eq(&other.data)
    }

    /// Copy this range out into an owned vector (an explicit copy).
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for SharedBytes {
    fn default() -> SharedBytes {
        SharedBytes::new()
    }
}

impl Deref for SharedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for SharedBytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(v: Vec<u8>) -> SharedBytes {
        SharedBytes::from_vec(v)
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(v: &[u8]) -> SharedBytes {
        SharedBytes::copy_from_slice(v)
    }
}

impl PartialEq for SharedBytes {
    fn eq(&self, other: &SharedBytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedBytes {}

impl PartialEq<[u8]> for SharedBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for SharedBytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for SharedBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<SharedBytes> for Vec<u8> {
    fn eq(&self, other: &SharedBytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for SharedBytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for SharedBytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedBytes(b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "… {} bytes", self.len())?;
        }
        write!(f, "\")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_slice_share_backing() {
        let b = SharedBytes::from_vec((0u8..100).collect());
        let s = b.slice(10..20);
        assert_eq!(s.len(), 10);
        assert_eq!(&s[..], &(10u8..20).collect::<Vec<u8>>()[..]);
        assert!(s.same_backing(&b), "slice must not copy");
        assert!(b.clone().same_backing(&b), "clone must not copy");
        // A nested slice still shares the original backing.
        let s2 = s.slice(2..5);
        assert!(s2.same_backing(&b));
        assert_eq!(s2, vec![12u8, 13, 14]);
    }

    #[test]
    fn copies_do_not_share_backing() {
        let b = SharedBytes::from_vec(vec![1, 2, 3]);
        let c = SharedBytes::copy_from_slice(&b);
        assert_eq!(b, c);
        assert!(!b.same_backing(&c));
    }

    #[test]
    fn equality_against_vec_and_slices() {
        let b = SharedBytes::copy_from_slice(b"acgt");
        assert_eq!(b, b"acgt".to_vec());
        assert_eq!(b, *b"acgt");
        assert_eq!(b, &b"acgt"[..]);
        assert_eq!(b"acgt".to_vec(), b);
        assert!(b != SharedBytes::copy_from_slice(b"acga"));
    }

    #[test]
    fn empty_and_bounds() {
        let e = SharedBytes::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let b = SharedBytes::from_vec(vec![9; 5]);
        assert_eq!(b.slice(..).len(), 5);
        assert!(b.slice(5..5).is_empty());
        assert_eq!(b.slice(..=2).len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        SharedBytes::from_vec(vec![0; 4]).slice(2..6);
    }

    #[test]
    fn mapped_backing_slices_and_witnesses() {
        let data: Vec<u8> = (0u8..200).collect();
        let p = std::env::temp_dir().join(format!("gesall-bytes-map-{}", std::process::id()));
        std::fs::write(&p, &data).unwrap();
        let m = SharedBytes::map_file(&p).unwrap();
        assert!(m.is_mapped());
        assert_eq!(m, data);
        // Slices and clones share the mapping — refcount bumps only.
        let s = m.slice(50..100);
        assert!(s.same_backing(&m));
        assert_eq!(s, &data[50..100]);
        assert!(m.clone().same_backing(&m));
        // A heap copy of the same bytes is equal but not the same backing.
        let h = SharedBytes::copy_from_slice(&data);
        assert!(!h.is_mapped());
        assert_eq!(h, m);
        assert!(!h.same_backing(&m));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn concat_via_borrow() {
        let parts = [
            SharedBytes::copy_from_slice(b"ab"),
            SharedBytes::copy_from_slice(b"cd"),
        ];
        assert_eq!(parts.concat(), b"abcd");
    }
}
