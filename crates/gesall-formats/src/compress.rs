//! Block compression codec.
//!
//! Plays the role BGZF (for BAM chunks) and Snappy (for map-output
//! compression, §4.2) play in the paper's stack. It is a from-scratch
//! byte-oriented LZ77 variant:
//!
//! * greedy matching through a 4-byte-hash chain table;
//! * copies encoded as (varint length, varint distance);
//! * literal runs encoded as (varint length, raw bytes);
//! * a 1-byte header selects `Lz` or `Store` (used when compression
//!   would expand the data, e.g. random or already-compressed input).
//!
//! A CRC-32 of the uncompressed payload rides along in the BAM chunk frame
//! (see [`crate::bam`]), not here, so the codec itself stays minimal.

use crate::error::{FormatError, Result};

/// The codec a byte payload is encoded with — the tag that lets a
/// compressed window travel DFS → shuffle → reduce fetch *by reference*
/// (a refcount bump) when producer and consumer speak the same codec,
/// instead of paying a decode/re-encode hop at every boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// Uncompressed record bytes.
    Raw,
    /// This module's LZ77 container ([`compress`]/[`decompress`]).
    Lz,
    /// The genomic sequence codec ([`crate::seq_codec`]): 2-bit-packed
    /// bases, run-length binned qualities, delta-coded position runs,
    /// with leftover literals LZ-compressed as a backstop.
    Seq,
}

impl Codec {
    /// The codec registry, in tag order. Wire tags are append-only: a
    /// codec's tag, once shipped, is never reused or renumbered — a
    /// frame written by an old build must decode on a new one, and an
    /// unknown (future) tag must stay a typed [`FormatError::Compress`],
    /// never a panic. Prefer [`Codec::registry`] over spelling the
    /// array out at call sites.
    pub const ALL: [Codec; 3] = [Codec::Raw, Codec::Lz, Codec::Seq];

    /// Every registered codec, in stable tag order.
    pub fn registry() -> &'static [Codec] {
        &Self::ALL
    }

    /// Stable one-byte wire tag.
    pub fn tag(self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::Lz => 1,
            Codec::Seq => 2,
        }
    }

    pub fn from_tag(tag: u8) -> Result<Codec> {
        match tag {
            0 => Ok(Codec::Raw),
            1 => Ok(Codec::Lz),
            2 => Ok(Codec::Seq),
            other => Err(FormatError::Compress(format!("unknown codec tag {other}"))),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Codec::Raw => "raw",
            Codec::Lz => "lz",
            Codec::Seq => "seq",
        }
    }

    pub fn is_compressed(self) -> bool {
        self != Codec::Raw
    }

    /// Encode `input` with this codec, appending to `out`. `Raw` is the
    /// identity; compressed codecs append their self-describing
    /// container. The single dispatch point for segment writers — new
    /// codecs plug in here without touching the shuffle.
    pub fn encode_append(self, input: &[u8], out: &mut Vec<u8>) {
        match self {
            Codec::Raw => out.extend_from_slice(input),
            Codec::Lz => compress_append(input, out),
            Codec::Seq => crate::seq_codec::compress_append(input, out),
        }
    }

    /// Decode a payload encoded with this codec. The single dispatch
    /// point for segment readers (cursor activation, transcoding).
    pub fn decode(self, data: &[u8]) -> Result<Vec<u8>> {
        match self {
            Codec::Raw => Ok(data.to_vec()),
            Codec::Lz => decompress(data),
            Codec::Seq => crate::seq_codec::decompress(data),
        }
    }
}

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 1 << 16;
const HASH_BITS: u32 = 15;
const WINDOW: usize = 1 << 16;

/// Method byte values.
const METHOD_STORE: u8 = 0;
const METHOD_LZ: u8 = 1;

/// Token tags inside an LZ stream.
const TAG_LITERALS: u8 = 0;
const TAG_COPY: u8 = 1;

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

pub(crate) fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data
            .get(*pos)
            .ok_or_else(|| FormatError::Compress("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(FormatError::Compress("varint overflow".into()));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Compress `input`. The output always begins with a method byte followed
/// by a varint of the uncompressed length.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 10);
    compress_append(input, &mut out);
    out
}

/// Compress `input`, appending the container (method byte, varint raw
/// length, payload) to `out`. This is the single-backing spill path:
/// every partition of a map output compresses into one shared output
/// vector instead of a fresh allocation per segment.
pub fn compress_append(input: &[u8], out: &mut Vec<u8>) {
    let lz = compress_lz(input);
    if lz.len() < input.len() {
        out.reserve(lz.len() + 10);
        out.push(METHOD_LZ);
        put_varint(out, input.len() as u64);
        out.extend_from_slice(&lz);
    } else {
        out.reserve(input.len() + 10);
        out.push(METHOD_STORE);
        put_varint(out, input.len() as u64);
        out.extend_from_slice(input);
    }
}

fn compress_lz(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut literal_start = 0usize;

    let flush_literals = |out: &mut Vec<u8>, start: usize, end: usize| {
        if end > start {
            out.push(TAG_LITERALS);
            put_varint(out, (end - start) as u64);
            out.extend_from_slice(&input[start..end]);
        }
    };

    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let candidate = head[h];
        head[h] = i;
        let mut matched = 0usize;
        if candidate != usize::MAX
            && i - candidate <= WINDOW
            && input[candidate..candidate + MIN_MATCH] == input[i..i + MIN_MATCH]
        {
            // Extend the match.
            let max = (input.len() - i).min(MAX_MATCH);
            matched = MIN_MATCH;
            while matched < max && input[candidate + matched] == input[i + matched] {
                matched += 1;
            }
        }
        if matched >= MIN_MATCH {
            flush_literals(&mut out, literal_start, i);
            out.push(TAG_COPY);
            put_varint(&mut out, matched as u64);
            put_varint(&mut out, (i - candidate) as u64);
            // Insert hash entries inside the match (sparsely, for speed).
            let step = if matched > 64 { 7 } else { 1 };
            let mut j = i + 1;
            while j + MIN_MATCH <= input.len() && j < i + matched {
                head[hash4(&input[j..])] = j;
                j += step;
            }
            i += matched;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, literal_start, input.len());
    out
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    if data.is_empty() {
        return Err(FormatError::Compress("empty compressed buffer".into()));
    }
    let method = data[0];
    let mut pos = 1usize;
    let raw_len = get_varint(data, &mut pos)? as usize;
    match method {
        METHOD_STORE => {
            let payload = data
                .get(pos..)
                .ok_or_else(|| FormatError::Compress("truncated store block".into()))?;
            if payload.len() != raw_len {
                return Err(FormatError::Compress(format!(
                    "store block length mismatch: header {raw_len}, payload {}",
                    payload.len()
                )));
            }
            Ok(payload.to_vec())
        }
        METHOD_LZ => {
            let mut out = Vec::with_capacity(raw_len);
            while pos < data.len() {
                let tag = data[pos];
                pos += 1;
                match tag {
                    TAG_LITERALS => {
                        let n = get_varint(data, &mut pos)? as usize;
                        let lits = data.get(pos..pos + n).ok_or_else(|| {
                            FormatError::Compress("truncated literal run".into())
                        })?;
                        out.extend_from_slice(lits);
                        pos += n;
                    }
                    TAG_COPY => {
                        let len = get_varint(data, &mut pos)? as usize;
                        let dist = get_varint(data, &mut pos)? as usize;
                        if dist == 0 || dist > out.len() {
                            return Err(FormatError::Compress(format!(
                                "copy distance {dist} out of range (output {} bytes)",
                                out.len()
                            )));
                        }
                        if len > MAX_MATCH {
                            return Err(FormatError::Compress("copy too long".into()));
                        }
                        // Overlapping copies are legal (dist < len): copy
                        // byte by byte.
                        let start = out.len() - dist;
                        for k in 0..len {
                            let b = out[start + k];
                            out.push(b);
                        }
                    }
                    other => {
                        return Err(FormatError::Compress(format!("bad token tag {other}")));
                    }
                }
            }
            if out.len() != raw_len {
                return Err(FormatError::Compress(format!(
                    "decompressed {} bytes, header said {raw_len}",
                    out.len()
                )));
            }
            Ok(out)
        }
        other => Err(FormatError::Compress(format!("unknown method {other}"))),
    }
}

/// CRC-32 (IEEE 802.3 polynomial, bit-reflected) used to frame BAM chunks.
pub fn crc32(data: &[u8]) -> u32 {
    // Small table computed on first use.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data, "roundtrip failed for {} bytes", data.len());
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"A");
        roundtrip(b"ACG");
        roundtrip(b"ACGT");
    }

    #[test]
    fn roundtrip_repetitive_compresses_well() {
        let data: Vec<u8> = b"ACGTACGTACGT".repeat(1000);
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 4,
            "repetitive DNA should compress >4x, got {} -> {}",
            data.len(),
            c.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_overlapping_copy() {
        // "aaaa..." forces dist=1 overlapping copies.
        let data = vec![b'a'; 5000];
        roundtrip(&data);
    }

    #[test]
    fn incompressible_falls_back_to_store() {
        // Pseudo-random bytes via an LCG: no 4-byte repeats to speak of.
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(c[0], METHOD_STORE);
        assert!(c.len() <= data.len() + 10);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn sam_like_text_compresses() {
        let mut text = Vec::new();
        for i in 0..500 {
            text.extend_from_slice(
                format!("read{i}\t99\tchr1\t{}\t60\t100M\t=\t{}\t300\n", i * 7, i * 7 + 200)
                    .as_bytes(),
            );
        }
        let c = compress(&text);
        assert!(
            c.len() < text.len() * 3 / 5,
            "tab-separated records should compress well: {} -> {}",
            text.len(),
            c.len()
        );
        assert_eq!(decompress(&c).unwrap(), text);
    }

    #[test]
    fn corrupt_input_is_an_error_not_a_panic() {
        let data = b"the quick brown fox jumps over the lazy dog".repeat(20);
        let mut c = compress(&data);
        // Flip the method byte to garbage.
        c[0] = 7;
        assert!(decompress(&c).is_err());
        // Truncations.
        let c = compress(&data);
        for cut in [1, 2, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err() || decompress(&c[..cut]).unwrap() != data);
        }
        assert!(decompress(&[]).is_err());
    }

    #[test]
    fn compress_append_matches_compress_and_stacks() {
        let a = b"ACGTACGT".repeat(200);
        let b = b"the quick brown fox".repeat(50);
        let mut out = Vec::new();
        compress_append(&a, &mut out);
        let first_len = out.len();
        assert_eq!(out, compress(&a));
        compress_append(&b, &mut out);
        // Both containers decode from their slices of the shared buffer.
        assert_eq!(decompress(&out[..first_len]).unwrap(), a);
        assert_eq!(decompress(&out[first_len..]).unwrap(), b);
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }
}
