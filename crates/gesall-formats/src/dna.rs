//! Nucleotide alphabet utilities.
//!
//! Sequences are stored as ASCII bytes (`A`, `C`, `G`, `T`, `N`) throughout
//! the pipeline, matching the text formats; this module provides the
//! alphabet mapping, complementation, and the 2-bit packing used by the
//! FM-index.

/// The four nucleotides plus the ambiguity code `N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Base {
    A,
    C,
    G,
    T,
    /// Ambiguous / unknown base (sequencer no-call or reference gap).
    N,
}

impl Base {
    /// Parse an ASCII byte (case-insensitive). Anything outside `ACGT`
    /// maps to [`Base::N`], matching common aligner behaviour.
    #[inline]
    pub fn from_ascii(b: u8) -> Base {
        match b | 0x20 {
            b'a' => Base::A,
            b'c' => Base::C,
            b'g' => Base::G,
            b't' => Base::T,
            _ => Base::N,
        }
    }

    /// Upper-case ASCII representation.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
            Base::N => b'N',
        }
    }

    /// Watson–Crick complement; `N` complements to `N`.
    #[inline]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
            Base::N => Base::N,
        }
    }

    /// 2-bit code for `ACGT` (`A`=0 … `T`=3); `N` has no 2-bit code and
    /// returns 0 — callers that must distinguish `N` should check first.
    #[inline]
    pub fn code2(self) -> u8 {
        match self {
            Base::A => 0,
            Base::C => 1,
            Base::G => 2,
            Base::T => 3,
            Base::N => 0,
        }
    }
}

/// Map an ASCII base to its 2-bit code, or `None` for non-ACGT bytes.
#[inline]
pub fn ascii_code2(b: u8) -> Option<u8> {
    match b | 0x20 {
        b'a' => Some(0),
        b'c' => Some(1),
        b'g' => Some(2),
        b't' => Some(3),
        _ => None,
    }
}

/// Complement of an ASCII base byte (case preserved as upper-case).
#[inline]
pub fn complement_ascii(b: u8) -> u8 {
    match b | 0x20 {
        b'a' => b'T',
        b'c' => b'G',
        b'g' => b'C',
        b't' => b'A',
        _ => b'N',
    }
}

/// Reverse-complement an ASCII sequence in place.
pub fn reverse_complement_in_place(seq: &mut [u8]) {
    seq.reverse();
    for b in seq.iter_mut() {
        *b = complement_ascii(*b);
    }
}

/// Reverse-complement an ASCII sequence into a fresh vector.
pub fn reverse_complement(seq: &[u8]) -> Vec<u8> {
    let mut v = seq.to_vec();
    reverse_complement_in_place(&mut v);
    v
}

/// True when every byte is a valid (possibly ambiguous) base letter.
pub fn is_valid_sequence(seq: &[u8]) -> bool {
    seq.iter()
        .all(|&b| matches!(b | 0x20, b'a' | b'c' | b'g' | b't' | b'n'))
}

/// GC fraction of a sequence (`N`s excluded from the denominator).
/// Returns 0.0 for sequences with no called bases.
pub fn gc_content(seq: &[u8]) -> f64 {
    let mut gc = 0usize;
    let mut called = 0usize;
    for &b in seq {
        match b | 0x20 {
            b'g' | b'c' => {
                gc += 1;
                called += 1;
            }
            b'a' | b't' => called += 1,
            _ => {}
        }
    }
    if called == 0 {
        0.0
    } else {
        gc as f64 / called as f64
    }
}

/// A 2-bit packed DNA sequence. `N`s are not representable; the packer
/// records their positions separately so round-trips are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSeq {
    len: usize,
    words: Vec<u64>,
    /// Sorted positions that held `N` in the original sequence.
    n_positions: Vec<u32>,
}

impl PackedSeq {
    /// Pack an ASCII sequence. Positions holding anything other than
    /// `ACGT` are recorded as `N`.
    pub fn from_ascii(seq: &[u8]) -> PackedSeq {
        let mut words = vec![0u64; seq.len().div_ceil(32)];
        let mut n_positions = Vec::new();
        for (i, &b) in seq.iter().enumerate() {
            let code = match ascii_code2(b) {
                Some(c) => c,
                None => {
                    n_positions.push(i as u32);
                    0
                }
            };
            words[i / 32] |= (code as u64) << ((i % 32) * 2);
        }
        PackedSeq {
            len: seq.len(),
            words,
            n_positions,
        }
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base at position `i` as an ASCII byte.
    #[inline]
    pub fn get_ascii(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        if self.n_positions.binary_search(&(i as u32)).is_ok() {
            return b'N';
        }
        let code = (self.words[i / 32] >> ((i % 32) * 2)) & 0b11;
        [b'A', b'C', b'G', b'T'][code as usize]
    }

    /// 2-bit code at position `i` (`A`=0 … `T`=3). Positions that held
    /// `N` return 0 — callers that must distinguish `N` consult
    /// [`PackedSeq::n_positions`].
    #[inline]
    pub fn code_at(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        ((self.words[i / 32] >> ((i % 32) * 2)) & 0b11) as u8
    }

    /// The packed word array: 32 bases per `u64`, position `i` at bits
    /// `(i % 32) * 2 ..`. Trailing slots past `len` are zero. The raw
    /// substrate for bit-parallel kernels (XOR-splat + popcount rank).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Sorted positions that held `N` in the original sequence.
    #[inline]
    pub fn n_positions(&self) -> &[u32] {
        &self.n_positions
    }

    /// Unpack the whole sequence back to ASCII: one linear pass over the
    /// packed words, then splat the recorded `N`s (each list is already
    /// sorted, so the merge is a single walk — no per-base
    /// `binary_search`).
    pub fn to_ascii(&self) -> Vec<u8> {
        const LUT: [u8; 4] = [b'A', b'C', b'G', b'T'];
        let mut out = Vec::with_capacity(self.len);
        for (w, &word) in self.words.iter().enumerate() {
            let n = (self.len - w * 32).min(32);
            for i in 0..n {
                out.push(LUT[((word >> (i * 2)) & 0b11) as usize]);
            }
        }
        for &p in &self.n_positions {
            out[p as usize] = b'N';
        }
        out
    }

    /// Per-base histogram `[A, C, G, T, N]`, counted word-at-a-time with
    /// the XOR-splat + popcount trick (the same kernel the packed-BWT
    /// rank uses): positions recorded as `N` are packed as code 0, so
    /// they are subtracted from the `A` bucket afterwards.
    pub fn count_bases(&self) -> [usize; 5] {
        let mut counts = [0usize; 5];
        let mut remaining = self.len;
        for &word in &self.words {
            let n = remaining.min(32);
            remaining -= n;
            // Mask off the unused tail of the last word so its zero bits
            // don't count as `A`.
            let valid: u64 = if n == 32 { !0 } else { (1u64 << (n * 2)) - 1 };
            for code in 0..4u64 {
                counts[code as usize] += count_code_in_word(word, code, valid) as usize;
            }
        }
        counts[4] = self.n_positions.len();
        counts[0] -= self.n_positions.len();
        counts
    }

    /// Heap bytes used by the packed representation.
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 8 + self.n_positions.len() * 4
    }
}

/// Occurrences of 2-bit `code` among the base slots selected by the
/// `valid` bit-mask of `word` (mask must cover whole 2-bit slots). The
/// bit-parallel inner step shared by [`PackedSeq::count_bases`] and the
/// FM-index packed rank: XOR makes matching slots `00`, then
/// `!(x | x >> 1)` turns exactly those into a set low bit per slot.
#[inline]
pub fn count_code_in_word(word: u64, code: u64, valid: u64) -> u32 {
    debug_assert!(code < 4);
    let x = word ^ (code * 0x5555_5555_5555_5555);
    (!(x | (x >> 1)) & 0x5555_5555_5555_5555 & valid).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_roundtrip_and_complement() {
        for (c, comp) in [(b'A', b'T'), (b'C', b'G'), (b'G', b'C'), (b'T', b'A')] {
            assert_eq!(Base::from_ascii(c).to_ascii(), c);
            assert_eq!(Base::from_ascii(c).complement().to_ascii(), comp);
        }
        assert_eq!(Base::from_ascii(b'x'), Base::N);
        assert_eq!(Base::N.complement(), Base::N);
    }

    #[test]
    fn lowercase_accepted() {
        assert_eq!(Base::from_ascii(b'a'), Base::A);
        assert_eq!(complement_ascii(b'g'), b'C');
        assert_eq!(ascii_code2(b't'), Some(3));
    }

    #[test]
    fn reverse_complement_basic() {
        assert_eq!(reverse_complement(b"ACGTN"), b"NACGT".to_vec());
        assert_eq!(reverse_complement(b""), Vec::<u8>::new());
        // Reverse complement is an involution.
        let s = b"GATTACAGATTACA";
        assert_eq!(reverse_complement(&reverse_complement(s)), s.to_vec());
    }

    #[test]
    fn validity_and_gc() {
        assert!(is_valid_sequence(b"ACGTNacgtn"));
        assert!(!is_valid_sequence(b"ACGU"));
        assert!((gc_content(b"GGCC") - 1.0).abs() < 1e-12);
        assert!((gc_content(b"GCAT") - 0.5).abs() < 1e-12);
        assert_eq!(gc_content(b"NNN"), 0.0);
    }

    #[test]
    fn packed_seq_roundtrip() {
        let s = b"ACGTNTGCAACGTNNACGT";
        let p = PackedSeq::from_ascii(s);
        assert_eq!(p.len(), s.len());
        assert_eq!(p.to_ascii(), s.to_vec());
        assert_eq!(p.get_ascii(4), b'N');
        assert_eq!(p.get_ascii(0), b'A');
    }

    #[test]
    fn packed_seq_linear_unpack_matches_per_base() {
        let s = b"ACGTNTGCAACGTNNACGTACGTACGTACGTNACGTACGTN";
        let p = PackedSeq::from_ascii(s);
        let per_base: Vec<u8> = (0..p.len()).map(|i| p.get_ascii(i)).collect();
        assert_eq!(p.to_ascii(), per_base);
        assert_eq!(p.code_at(0), 0);
        assert_eq!(p.code_at(3), 3);
        assert_eq!(p.n_positions()[0], 4);
    }

    #[test]
    fn count_bases_histogram() {
        let s = b"AACGTNNTTT";
        let p = PackedSeq::from_ascii(s);
        assert_eq!(p.count_bases(), [2, 1, 1, 4, 2]);
        // Word-boundary stress: 100 bases, deterministic pattern + Ns.
        let long: Vec<u8> = (0..100)
            .map(|i| if i % 17 == 0 { b'N' } else { b"ACGT"[i % 4] })
            .collect();
        let p = PackedSeq::from_ascii(&long);
        let mut expect = [0usize; 5];
        for &b in &long {
            let idx = match b {
                b'A' => 0,
                b'C' => 1,
                b'G' => 2,
                b'T' => 3,
                _ => 4,
            };
            expect[idx] += 1;
        }
        assert_eq!(p.count_bases(), expect);
        assert_eq!(p.count_bases().iter().sum::<usize>(), 100);
    }

    #[test]
    fn packed_seq_long() {
        // Longer than one word to exercise word boundaries.
        let s: Vec<u8> = (0..1000)
            .map(|i| b"ACGT"[(i * 7 + i / 3) % 4])
            .collect();
        let p = PackedSeq::from_ascii(&s);
        assert_eq!(p.to_ascii(), s);
        assert!(p.packed_bytes() < s.len());
    }
}
