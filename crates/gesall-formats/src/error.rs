//! Error type shared by every parser/serializer in this crate.

use std::fmt;

/// Errors produced while parsing or serializing genomic data formats.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A FASTQ stanza was malformed (wrong marker line, truncated record,
    /// or mismatched sequence/quality lengths).
    Fastq(String),
    /// A SAM text line or field could not be parsed.
    Sam(String),
    /// A CIGAR string was syntactically or semantically invalid.
    Cigar(String),
    /// A binary BAM-like chunk was corrupt (bad magic, CRC mismatch,
    /// truncated payload).
    Bam(String),
    /// A compressed block failed to decode.
    Compress(String),
    /// A VCF line could not be parsed.
    Vcf(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "i/o error: {e}"),
            FormatError::Fastq(m) => write!(f, "fastq: {m}"),
            FormatError::Sam(m) => write!(f, "sam: {m}"),
            FormatError::Cigar(m) => write!(f, "cigar: {m}"),
            FormatError::Bam(m) => write!(f, "bam: {m}"),
            FormatError::Compress(m) => write!(f, "compress: {m}"),
            FormatError::Vcf(m) => write!(f, "vcf: {m}"),
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FormatError {
    fn from(e: std::io::Error) -> Self {
        FormatError::Io(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, FormatError>;
