//! FASTA — the reference-genome interchange format.

use crate::error::{FormatError, Result};

/// One FASTA sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Sequence name (the first token after `>`).
    pub name: String,
    /// Bases, upper-cased.
    pub seq: Vec<u8>,
}

/// Serialize sequences as FASTA text with 70-column wrapping.
pub fn to_text(records: &[FastaRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push('>');
        out.push_str(&r.name);
        out.push('\n');
        for line in r.seq.chunks(70) {
            out.push_str(&String::from_utf8_lossy(line));
            out.push('\n');
        }
    }
    out
}

/// Parse FASTA text.
pub fn from_text(text: &str) -> Result<Vec<FastaRecord>> {
    let mut records: Vec<FastaRecord> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix('>') {
            let name = h
                .split_whitespace()
                .next()
                .ok_or_else(|| FormatError::Sam(format!("line {}: empty FASTA header", lineno + 1)))?
                .to_string();
            records.push(FastaRecord {
                name,
                seq: Vec::new(),
            });
        } else {
            let rec = records.last_mut().ok_or_else(|| {
                FormatError::Sam(format!("line {}: sequence before any header", lineno + 1))
            })?;
            for &b in line.as_bytes() {
                let up = b.to_ascii_uppercase();
                if !matches!(up, b'A' | b'C' | b'G' | b'T' | b'N') {
                    return Err(FormatError::Sam(format!(
                        "line {}: invalid base {:?}",
                        lineno + 1,
                        b as char
                    )));
                }
                rec.seq.push(up);
            }
        }
    }
    if records.is_empty() {
        return Err(FormatError::Sam("empty FASTA".into()));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let recs = vec![
            FastaRecord {
                name: "chr1".into(),
                seq: b"ACGT".repeat(40),
            },
            FastaRecord {
                name: "chr2".into(),
                seq: b"TTTAAA".to_vec(),
            },
        ];
        let text = to_text(&recs);
        assert!(text.starts_with(">chr1\n"));
        // 160 bases wrap at 70 columns: 3 lines.
        assert_eq!(text.lines().filter(|l| !l.starts_with('>')).count(), 4);
        assert_eq!(from_text(&text).unwrap(), recs);
    }

    #[test]
    fn header_description_dropped_and_case_folded() {
        let parsed = from_text(">seq1 some description\nacgtn\n").unwrap();
        assert_eq!(parsed[0].name, "seq1");
        assert_eq!(parsed[0].seq, b"ACGTN");
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_text("ACGT\n").is_err()); // no header
        assert!(from_text(">x\nACGU\n").is_err()); // bad base
        assert!(from_text("").is_err());
    }
}
