//! FASTQ — the raw sequencer output format.
//!
//! Each record is four lines:
//!
//! ```text
//! @<read name> [description]
//! <bases>
//! +
//! <Phred+33 qualities>
//! ```
//!
//! Paired-end data arrives either as two parallel files (`_1.fastq` /
//! `_2.fastq`, same read names in the same order) or as a single
//! *interleaved* file alternating mate 1 and mate 2. Gesall's alignment
//! round consumes the interleaved layout so that a logical partition always
//! contains both reads of a pair (paper §3.2, Group Partitioning).

use crate::error::{FormatError, Result};
use crate::quality::{decode_phred33, encode_phred33};
use std::io::{BufRead, Write};

/// One sequencing read: name, bases (ASCII), and raw Phred scores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read name without the leading `@`; paired reads share a name.
    pub name: String,
    /// Base calls as ASCII `ACGTN`.
    pub seq: Vec<u8>,
    /// Raw Phred scores (not ASCII-offset), one per base.
    pub qual: Vec<u8>,
}

impl FastqRecord {
    /// Construct a record, checking the seq/qual length invariant.
    pub fn new(name: impl Into<String>, seq: Vec<u8>, qual: Vec<u8>) -> Result<FastqRecord> {
        if seq.len() != qual.len() {
            return Err(FormatError::Fastq(format!(
                "sequence length {} != quality length {}",
                seq.len(),
                qual.len()
            )));
        }
        Ok(FastqRecord {
            name: name.into(),
            seq,
            qual,
        })
    }

    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True for a zero-length read.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// A pair of reads from one DNA fragment: forward (`r1`) and reverse (`r2`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadPair {
    pub r1: FastqRecord,
    pub r2: FastqRecord,
}

impl ReadPair {
    /// Pair two records, enforcing the shared-read-name invariant.
    pub fn new(r1: FastqRecord, r2: FastqRecord) -> Result<ReadPair> {
        if r1.name != r2.name {
            return Err(FormatError::Fastq(format!(
                "paired reads have different names: {:?} vs {:?}",
                r1.name, r2.name
            )));
        }
        Ok(ReadPair { r1, r2 })
    }

    /// The shared read name.
    pub fn name(&self) -> &str {
        &self.r1.name
    }
}

impl crate::wire::Wire for FastqRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        self.seq.encode(buf);
        self.qual.encode(buf);
    }

    fn decode(cur: &mut crate::wire::Cursor<'_>) -> Result<Self> {
        let name = String::decode(cur)?;
        let seq = Vec::<u8>::decode(cur)?;
        let qual = Vec::<u8>::decode(cur)?;
        FastqRecord::new(name, seq, qual)
    }
}

impl crate::wire::Wire for ReadPair {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.r1.encode(buf);
        self.r2.encode(buf);
    }

    fn decode(cur: &mut crate::wire::Cursor<'_>) -> Result<Self> {
        let r1 = FastqRecord::decode(cur)?;
        let r2 = FastqRecord::decode(cur)?;
        ReadPair::new(r1, r2)
    }
}

/// Streaming FASTQ reader over any [`BufRead`] source.
pub struct FastqReader<R: BufRead> {
    inner: R,
    line_no: u64,
    buf: String,
}

impl<R: BufRead> FastqReader<R> {
    pub fn new(inner: R) -> FastqReader<R> {
        FastqReader {
            inner,
            line_no: 0,
            buf: String::new(),
        }
    }

    fn next_line(&mut self) -> Result<Option<&str>> {
        self.buf.clear();
        let n = self.inner.read_line(&mut self.buf)?;
        if n == 0 {
            return Ok(None);
        }
        self.line_no += 1;
        Ok(Some(self.buf.trim_end_matches(['\n', '\r'])))
    }

    /// Read the next record, or `Ok(None)` at clean end-of-file.
    pub fn read_record(&mut self) -> Result<Option<FastqRecord>> {
        let header = match self.next_line()? {
            None => return Ok(None),
            Some("") => return Ok(None),
            Some(l) => l.to_string(),
        };
        if !header.starts_with('@') {
            return Err(FormatError::Fastq(format!(
                "line {}: expected '@', found {:?}",
                self.line_no, header
            )));
        }
        // Name is the first whitespace-delimited token after '@'.
        let name = header[1..]
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_string();
        let seq = self
            .next_line()?
            .ok_or_else(|| FormatError::Fastq("truncated record: missing sequence".into()))?
            .as_bytes()
            .to_vec();
        let plus = self
            .next_line()?
            .ok_or_else(|| FormatError::Fastq("truncated record: missing '+' line".into()))?
            .to_string();
        if !plus.starts_with('+') {
            return Err(FormatError::Fastq(format!(
                "line {}: expected '+', found {:?}",
                self.line_no, plus
            )));
        }
        let qual_ascii = self
            .next_line()?
            .ok_or_else(|| FormatError::Fastq("truncated record: missing qualities".into()))?
            .as_bytes()
            .to_vec();
        let qual = decode_phred33(&qual_ascii).ok_or_else(|| {
            FormatError::Fastq(format!("line {}: invalid quality bytes", self.line_no))
        })?;
        if seq.len() != qual.len() {
            return Err(FormatError::Fastq(format!(
                "line {}: seq len {} != qual len {}",
                self.line_no,
                seq.len(),
                qual.len()
            )));
        }
        Ok(Some(FastqRecord { name, seq, qual }))
    }

    /// Drain all remaining records.
    pub fn read_all(&mut self) -> Result<Vec<FastqRecord>> {
        let mut out = Vec::new();
        while let Some(r) = self.read_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Write one FASTQ record to `w`.
pub fn write_record<W: Write>(w: &mut W, rec: &FastqRecord) -> Result<()> {
    w.write_all(b"@")?;
    w.write_all(rec.name.as_bytes())?;
    w.write_all(b"\n")?;
    w.write_all(&rec.seq)?;
    w.write_all(b"\n+\n")?;
    w.write_all(&encode_phred33(&rec.qual))?;
    w.write_all(b"\n")?;
    Ok(())
}

/// Serialize records to an in-memory FASTQ byte buffer.
pub fn to_bytes(records: &[FastqRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    for r in records {
        write_record(&mut buf, r).expect("writing to Vec cannot fail");
    }
    buf
}

/// Parse an in-memory FASTQ buffer.
pub fn from_bytes(data: &[u8]) -> Result<Vec<FastqRecord>> {
    FastqReader::new(data).read_all()
}

/// Merge two mate files (sorted identically by read name, as sequencers
/// emit them) into a single interleaved stream of [`ReadPair`]s — the
/// preprocessing step Gesall performs before loading logical partitions
/// into the DFS (paper §3.2, Alignment).
pub fn interleave(r1s: Vec<FastqRecord>, r2s: Vec<FastqRecord>) -> Result<Vec<ReadPair>> {
    if r1s.len() != r2s.len() {
        return Err(FormatError::Fastq(format!(
            "mate files have different record counts: {} vs {}",
            r1s.len(),
            r2s.len()
        )));
    }
    r1s.into_iter()
        .zip(r2s)
        .map(|(a, b)| ReadPair::new(a, b))
        .collect()
}

/// Serialize pairs into an interleaved FASTQ byte buffer (r1 then r2 for
/// each fragment). The inverse of [`pairs_from_interleaved_bytes`].
pub fn pairs_to_interleaved_bytes(pairs: &[ReadPair]) -> Vec<u8> {
    let mut buf = Vec::new();
    for p in pairs {
        write_record(&mut buf, &p.r1).expect("writing to Vec cannot fail");
        write_record(&mut buf, &p.r2).expect("writing to Vec cannot fail");
    }
    buf
}

/// Parse an interleaved FASTQ buffer back into pairs, verifying the
/// pairing invariant.
pub fn pairs_from_interleaved_bytes(data: &[u8]) -> Result<Vec<ReadPair>> {
    let recs = from_bytes(data)?;
    if recs.len() % 2 != 0 {
        return Err(FormatError::Fastq(format!(
            "interleaved file holds an odd number of records ({})",
            recs.len()
        )));
    }
    let mut pairs = Vec::with_capacity(recs.len() / 2);
    let mut it = recs.into_iter();
    while let (Some(a), Some(b)) = (it.next(), it.next()) {
        pairs.push(ReadPair::new(a, b)?);
    }
    Ok(pairs)
}

/// Split interleaved pairs into `n` logical partitions of (nearly) equal
/// pair counts, never splitting a pair — the logical-partitioning criterion
/// for Bwa (paper §3.2).
pub fn split_pairs_into_partitions(pairs: Vec<ReadPair>, n: usize) -> Vec<Vec<ReadPair>> {
    assert!(n > 0, "partition count must be positive");
    let total = pairs.len();
    let base = total / n;
    let extra = total % n;
    let mut out = Vec::with_capacity(n);
    let mut it = pairs.into_iter();
    for i in 0..n {
        let take = base + usize::from(i < extra);
        out.push(it.by_ref().take(take).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, seq: &[u8]) -> FastqRecord {
        FastqRecord::new(name, seq.to_vec(), vec![30; seq.len()]).unwrap()
    }

    #[test]
    fn roundtrip_single_record() {
        let r = rec("read/1", b"ACGTACGT");
        let bytes = to_bytes(std::slice::from_ref(&r));
        let parsed = from_bytes(&bytes).unwrap();
        assert_eq!(parsed, vec![r]);
    }

    #[test]
    fn name_stops_at_whitespace() {
        let data = b"@r1 extra description\nACGT\n+\nIIII\n";
        let parsed = from_bytes(data).unwrap();
        assert_eq!(parsed[0].name, "r1");
        assert_eq!(parsed[0].qual, vec![40; 4]);
    }

    #[test]
    fn rejects_bad_marker_lines() {
        assert!(from_bytes(b"rX\nACGT\n+\nIIII\n").is_err());
        assert!(from_bytes(b"@rX\nACGT\n-\nIIII\n").is_err());
    }

    #[test]
    fn rejects_length_mismatch() {
        assert!(from_bytes(b"@rX\nACGT\n+\nIII\n").is_err());
        assert!(FastqRecord::new("x", b"AC".to_vec(), vec![1]).is_err());
    }

    #[test]
    fn truncation_detected() {
        assert!(from_bytes(b"@rX\nACGT\n").is_err());
        assert!(from_bytes(b"@rX\nACGT\n+\n").is_err());
    }

    #[test]
    fn interleave_pairs_roundtrip() {
        let r1s = vec![rec("a", b"AAAA"), rec("b", b"CCCC")];
        let r2s = vec![rec("a", b"TTTT"), rec("b", b"GGGG")];
        let pairs = interleave(r1s, r2s).unwrap();
        assert_eq!(pairs.len(), 2);
        let bytes = pairs_to_interleaved_bytes(&pairs);
        let back = pairs_from_interleaved_bytes(&bytes).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn interleave_rejects_mismatches() {
        assert!(interleave(vec![rec("a", b"A")], vec![]).is_err());
        assert!(interleave(vec![rec("a", b"A")], vec![rec("b", b"A")]).is_err());
    }

    #[test]
    fn partition_split_never_splits_pairs() {
        let pairs: Vec<ReadPair> = (0..10)
            .map(|i| {
                let name = format!("p{i}");
                ReadPair::new(rec(&name, b"ACGT"), rec(&name, b"TTTT")).unwrap()
            })
            .collect();
        let parts = split_pairs_into_partitions(pairs.clone(), 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 10);
        // Sizes differ by at most one.
        let max = parts.iter().map(Vec::len).max().unwrap();
        let min = parts.iter().map(Vec::len).min().unwrap();
        assert!(max - min <= 1);
        // Order preserved.
        let flat: Vec<_> = parts.concat();
        assert_eq!(flat, pairs);
    }

    #[test]
    fn partition_split_more_parts_than_pairs() {
        let pairs = vec![ReadPair::new(rec("a", b"A"), rec("a", b"T")).unwrap()];
        let parts = split_pairs_into_partitions(pairs, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 1);
    }
}
