//! # gesall-formats
//!
//! Genomic data formats for the Gesall-RS platform.
//!
//! This crate implements every on-disk/in-flight data representation the
//! paper's pipeline touches:
//!
//! * [`fastq`] — the text format sequencers emit (read name, bases, per-base
//!   Phred quality), including the interleaved paired-read layout Gesall's
//!   Round 1 consumes.
//! * [`sam`] — the Sequence Alignment/Map record model: flags, CIGAR,
//!   mapping positions, mate information, and the derived *5′ unclipped end*
//!   attribute MarkDuplicates partitions on (paper Fig. 3).
//! * [`bam`] — a BAM-like binary container: SAM records serialized and
//!   packed into independently-compressed variable-length chunks, so chunks
//!   can straddle DFS block boundaries exactly as §3.1 of the paper requires.
//! * [`compress`] — the from-scratch LZ block codec that plays the role of
//!   BGZF/Snappy compression (map-output compression in the shuffle), and
//!   the tag-stable [`Codec`] registry segment frames name codecs by.
//! * [`seq_codec`] — the genomic sequence codec (`Codec::Seq`): 2-bit
//!   packed bases, run-length binned qualities, delta-coded positions,
//!   LZ-backstopped literals.
//! * [`bytes`] — [`SharedBytes`], the `Arc`-backed sliceable byte range
//!   the zero-copy record path is built on (DFS blocks, map-output
//!   segments, streaming pipe chunks all share backing allocations).
//! * [`vcf`] — variant-call records plus the quality annotations
//!   (MQ, DP, FS, AB) used by the error-diagnosis study (Tables 8–10).
//!
//! The container is *structurally* equivalent to BAM (variable-length
//! compressed chunks with virtual offsets) but deliberately not
//! byte-compatible with htslib; see `DESIGN.md` §6.

pub mod bam;
pub mod bytes;
pub mod compress;
pub mod dna;
pub mod error;
pub mod fasta;
pub mod fastq;
pub mod mapped;
pub mod quality;
pub mod sam;
pub mod seq_codec;
pub mod vcf;
pub mod wire;

pub use bytes::SharedBytes;
pub use compress::Codec;
pub use error::{FormatError, Result};
pub use mapped::MappedRegion;
