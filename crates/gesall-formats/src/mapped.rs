//! File-mapped byte regions — the backing store behind
//! [`SharedBytes::map_file`](crate::bytes::SharedBytes::map_file).
//!
//! With the `mmap` feature on a unix target, [`MappedRegion::map`] maps
//! the file read-only with `mmap(2)` (declared directly against libc —
//! the workspace vendors no FFI crate), so "reading" a DFS block that
//! lives on disk is a page-table operation: no heap allocation, no
//! payload copy, and the kernel pages data in on demand. Everywhere
//! else the same API reads the file into a heap buffer, so callers
//! never branch on platform or feature.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// Real mapping support is compiled in on unix with the `mmap` feature.
pub const MMAP_COMPILED: bool = cfg!(all(unix, feature = "mmap"));

#[cfg(all(unix, feature = "mmap"))]
mod sys {
    use std::ffi::c_void;

    // Prototypes straight from POSIX; std already links libc on unix,
    // so the symbols resolve without a vendored `libc` crate.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// An immutable byte region backed by a file mapping (or, on fallback,
/// by a heap buffer read from the file). `Drop` unmaps.
pub struct MappedRegion {
    /// Non-null, immutable for the region's lifetime.
    ptr: *const u8,
    len: usize,
    /// Heap fallback storage; when `Some`, `ptr` points into it and
    /// there is nothing to munmap.
    heap: Option<Vec<u8>>,
}

// The region is read-only after construction, so shared references are
// safe to send and share across threads.
unsafe impl Send for MappedRegion {}
unsafe impl Sync for MappedRegion {}

impl MappedRegion {
    /// Map `path` read-only. Empty files (and non-mmap builds) use the
    /// heap fallback; [`MappedRegion::is_real_mmap`] tells them apart.
    pub fn map(path: &Path) -> io::Result<MappedRegion> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        #[cfg(all(unix, feature = "mmap"))]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr != sys::map_failed() {
                return Ok(MappedRegion {
                    ptr: ptr as *const u8,
                    len,
                    heap: None,
                });
            }
            // mmap refused (exotic filesystem, rlimit): fall through to
            // the heap read rather than failing the caller.
        }
        MappedRegion::from_heap_read(&mut file, len)
    }

    fn from_heap_read(file: &mut File, len: usize) -> io::Result<MappedRegion> {
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(MappedRegion {
            ptr: buf.as_ptr(),
            len: buf.len(),
            heap: Some(buf),
        })
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is this an actual kernel mapping (vs. the heap fallback)?
    pub fn is_real_mmap(&self) -> bool {
        self.heap.is_none()
    }

    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // Safety: `ptr` points at `len` mapped (or heap-owned) bytes
        // that live as long as `self` and are never written.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for MappedRegion {
    fn drop(&mut self) {
        #[cfg(all(unix, feature = "mmap"))]
        if self.heap.is_none() && self.len > 0 {
            unsafe {
                sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
            }
        }
    }
}

impl std::fmt::Debug for MappedRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MappedRegion({} bytes, {})",
            self.len,
            if self.is_real_mmap() { "mmap" } else { "heap" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str, data: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("gesall-mapped-{}-{name}", std::process::id()));
        std::fs::write(&p, data).unwrap();
        p
    }

    #[test]
    fn maps_file_contents() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let p = tmp_file("contents", &data);
        let m = MappedRegion::map(&p).unwrap();
        assert_eq!(m.len(), data.len());
        assert_eq!(m.as_slice(), &data[..]);
        if MMAP_COMPILED {
            assert!(m.is_real_mmap(), "non-empty file must really map");
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_file_uses_heap_fallback() {
        let p = tmp_file("empty", b"");
        let m = MappedRegion::map(&p).unwrap();
        assert!(m.is_empty());
        assert!(!m.is_real_mmap());
        assert_eq!(m.as_slice(), b"");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(MappedRegion::map(Path::new("/no/such/gesall/file")).is_err());
    }

    #[test]
    fn mapping_shared_across_threads() {
        let data = vec![42u8; 4096];
        let p = tmp_file("threads", &data);
        let m = std::sync::Arc::new(MappedRegion::map(&p).unwrap());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || assert!(m.as_slice().iter().all(|&b| b == 42)));
            }
        });
        std::fs::remove_file(&p).ok();
    }
}
