//! Phred base-quality utilities.
//!
//! A Phred score `q` encodes an error probability `10^(-q/10)`. FASTQ and
//! SAM text store qualities as ASCII with a +33 offset ("Phred+33"); the
//! in-memory representation everywhere in this workspace is the raw score
//! (0–93).

/// ASCII offset used by Phred+33 encoding.
pub const PHRED_OFFSET: u8 = 33;

/// Maximum representable Phred score in Phred+33 ASCII ('~' - '!').
pub const MAX_PHRED: u8 = 93;

/// Convert a raw Phred score to its error probability.
#[inline]
pub fn phred_to_error_prob(q: u8) -> f64 {
    10f64.powf(-(q as f64) / 10.0)
}

/// Convert an error probability to the nearest Phred score, clamped to
/// `[0, MAX_PHRED]`. Probabilities ≤ 0 saturate at `MAX_PHRED`.
#[inline]
pub fn error_prob_to_phred(p: f64) -> u8 {
    if p <= 0.0 {
        return MAX_PHRED;
    }
    let q = -10.0 * p.log10();
    q.round().clamp(0.0, MAX_PHRED as f64) as u8
}

/// Encode raw scores as Phred+33 ASCII.
pub fn encode_phred33(quals: &[u8]) -> Vec<u8> {
    quals
        .iter()
        .map(|&q| q.min(MAX_PHRED) + PHRED_OFFSET)
        .collect()
}

/// Decode Phred+33 ASCII to raw scores. Returns `None` if any byte is
/// outside the printable Phred+33 range.
pub fn decode_phred33(ascii: &[u8]) -> Option<Vec<u8>> {
    ascii
        .iter()
        .map(|&c| {
            if (PHRED_OFFSET..=PHRED_OFFSET + MAX_PHRED).contains(&c) {
                Some(c - PHRED_OFFSET)
            } else {
                None
            }
        })
        .collect()
}

/// Sum of base qualities at or above a threshold — PicardTools'
/// MarkDuplicates uses this (threshold 15) to pick the best pair among
/// duplicates.
pub fn quality_sum(quals: &[u8], min_quality: u8) -> u64 {
    quals
        .iter()
        .filter(|&&q| q >= min_quality)
        .map(|&q| q as u64)
        .sum()
}

/// Mean quality of a read, 0.0 when empty.
pub fn mean_quality(quals: &[u8]) -> f64 {
    if quals.is_empty() {
        return 0.0;
    }
    quals.iter().map(|&q| q as f64).sum::<f64>() / quals.len() as f64
}

/// A generalized-logistic weighting function over quality scores, as used
/// by the paper's error-diagnosis toolkit (§4.5.2): weight 0 at or below
/// `lo`, weight 1 at or above `hi`, and a logistic ramp in between.
///
/// For alignment the paper instantiates it with `lo = 30`, `hi = 55`
/// (mapping quality); a second instance covers variant quality scores.
#[derive(Debug, Clone, Copy)]
pub struct LogisticWeight {
    lo: f64,
    hi: f64,
    steepness: f64,
}

impl LogisticWeight {
    /// Build a weighting function saturating at `lo` (weight 0) and `hi`
    /// (weight 1). `lo < hi` is required.
    pub fn new(lo: f64, hi: f64) -> LogisticWeight {
        assert!(lo < hi, "logistic weight needs lo < hi");
        // Choose steepness so the logistic is ~0.006 at lo and ~0.994 at
        // hi; we then clamp the tails to exactly 0 and 1.
        let steepness = 10.0 / (hi - lo);
        LogisticWeight { lo, hi, steepness }
    }

    /// The paper's mapping-quality instance: 0 below mapq 30, 1 above 55.
    pub fn mapq_default() -> LogisticWeight {
        LogisticWeight::new(30.0, 55.0)
    }

    /// Weight for a quality score `q` in `[0, 1]`.
    pub fn weight(&self, q: f64) -> f64 {
        if q <= self.lo {
            return 0.0;
        }
        if q >= self.hi {
            return 1.0;
        }
        let mid = (self.lo + self.hi) / 2.0;
        1.0 / (1.0 + (-self.steepness * (q - mid)).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phred_error_prob_roundtrip() {
        for q in [0u8, 10, 20, 30, 60, 93] {
            let p = phred_to_error_prob(q);
            assert_eq!(error_prob_to_phred(p), q);
        }
        assert_eq!(error_prob_to_phred(0.0), MAX_PHRED);
        assert_eq!(error_prob_to_phred(1.0), 0);
    }

    #[test]
    fn phred33_encoding() {
        let raw = vec![0u8, 20, 40, 93];
        let enc = encode_phred33(&raw);
        assert_eq!(enc, vec![b'!', b'5', b'I', b'~']);
        assert_eq!(decode_phred33(&enc).unwrap(), raw);
        assert!(decode_phred33(&[0x1f]).is_none());
    }

    #[test]
    fn quality_sum_thresholded() {
        // Picard counts only bases >= 15.
        assert_eq!(quality_sum(&[10, 15, 20, 30], 15), 65);
        assert_eq!(quality_sum(&[], 15), 0);
        assert_eq!(quality_sum(&[14, 14], 15), 0);
    }

    #[test]
    fn logistic_weight_saturation() {
        let w = LogisticWeight::mapq_default();
        assert_eq!(w.weight(0.0), 0.0);
        assert_eq!(w.weight(30.0), 0.0);
        assert_eq!(w.weight(55.0), 1.0);
        assert_eq!(w.weight(60.0), 1.0);
        let mid = w.weight(42.5);
        assert!((mid - 0.5).abs() < 1e-9, "midpoint should be 0.5, was {mid}");
        // Monotone on the ramp.
        assert!(w.weight(35.0) < w.weight(45.0));
    }

    #[test]
    fn mean_quality_basic() {
        assert_eq!(mean_quality(&[]), 0.0);
        assert!((mean_quality(&[10, 20, 30]) - 20.0).abs() < 1e-12);
    }
}
