//! CIGAR strings — per-base mapping detail including clipping.
//!
//! The 5′-unclipped-end computation in [`Cigar`] is the derived attribute
//! MarkDuplicates keys on (paper §3.2): the aligner may soft-clip
//! low-quality read ends to improve the alignment of the remainder, so two
//! reads from the same original fragment can have different `POS` values;
//! undoing the clips recovers the true fragment endpoint.

use crate::error::{FormatError, Result};
use std::fmt;

/// One CIGAR operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CigarOp {
    /// Alignment match or mismatch (consumes query and reference).
    Match(u32),
    /// Insertion to the reference (consumes query only).
    Ins(u32),
    /// Deletion from the reference (consumes reference only).
    Del(u32),
    /// Soft clip: bases present in SEQ but not aligned (query only).
    SoftClip(u32),
    /// Hard clip: bases removed from SEQ entirely (consumes neither).
    HardClip(u32),
    /// Skipped reference region, e.g. introns (reference only).
    Skip(u32),
}

impl CigarOp {
    pub fn len(self) -> u32 {
        match self {
            CigarOp::Match(n)
            | CigarOp::Ins(n)
            | CigarOp::Del(n)
            | CigarOp::SoftClip(n)
            | CigarOp::HardClip(n)
            | CigarOp::Skip(n) => n,
        }
    }

    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    pub fn consumes_query(self) -> bool {
        matches!(
            self,
            CigarOp::Match(_) | CigarOp::Ins(_) | CigarOp::SoftClip(_)
        )
    }

    pub fn consumes_reference(self) -> bool {
        matches!(self, CigarOp::Match(_) | CigarOp::Del(_) | CigarOp::Skip(_))
    }

    pub fn code(self) -> u8 {
        match self {
            CigarOp::Match(_) => b'M',
            CigarOp::Ins(_) => b'I',
            CigarOp::Del(_) => b'D',
            CigarOp::SoftClip(_) => b'S',
            CigarOp::HardClip(_) => b'H',
            CigarOp::Skip(_) => b'N',
        }
    }

    pub fn with_len(code: u8, n: u32) -> Result<CigarOp> {
        Ok(match code {
            b'M' => CigarOp::Match(n),
            b'I' => CigarOp::Ins(n),
            b'D' => CigarOp::Del(n),
            b'S' => CigarOp::SoftClip(n),
            b'H' => CigarOp::HardClip(n),
            b'N' => CigarOp::Skip(n),
            other => {
                return Err(FormatError::Cigar(format!(
                    "unknown cigar op {:?}",
                    other as char
                )))
            }
        })
    }
}

/// A full CIGAR string: a sequence of operations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Cigar(pub Vec<CigarOp>);

impl Cigar {
    /// The `*` CIGAR of an unmapped read.
    pub fn unmapped() -> Cigar {
        Cigar(Vec::new())
    }

    /// A pure `<n>M` alignment.
    pub fn full_match(n: u32) -> Cigar {
        Cigar(vec![CigarOp::Match(n)])
    }

    pub fn is_unmapped(&self) -> bool {
        self.0.is_empty()
    }

    /// Parse a text CIGAR (`"3S97M"`, or `"*"` for unmapped).
    pub fn parse(s: &str) -> Result<Cigar> {
        if s == "*" {
            return Ok(Cigar::unmapped());
        }
        let mut ops = Vec::new();
        let mut n: u64 = 0;
        let mut have_digit = false;
        for c in s.bytes() {
            if c.is_ascii_digit() {
                n = n * 10 + (c - b'0') as u64;
                if n > u32::MAX as u64 {
                    return Err(FormatError::Cigar(format!("op length overflow in {s:?}")));
                }
                have_digit = true;
            } else {
                if !have_digit {
                    return Err(FormatError::Cigar(format!("op without length in {s:?}")));
                }
                ops.push(CigarOp::with_len(c, n as u32)?);
                n = 0;
                have_digit = false;
            }
        }
        if have_digit {
            return Err(FormatError::Cigar(format!("trailing digits in {s:?}")));
        }
        if ops.is_empty() {
            return Err(FormatError::Cigar("empty cigar".into()));
        }
        Ok(Cigar(ops))
    }

    /// Length of the text form (`Display`) without rendering it — the
    /// wire encoding stores CIGARs as text, so record-size accounting
    /// (`Wire::encoded_len`) needs this cheaply.
    pub fn text_len(&self) -> usize {
        if self.is_unmapped() {
            return 1; // "*"
        }
        self.0
            .iter()
            .map(|op| op.len().checked_ilog10().unwrap_or(0) as usize + 2)
            .sum()
    }

    /// Number of query bases the alignment covers (length of SEQ for
    /// records without hard clips).
    pub fn query_len(&self) -> u32 {
        self.0
            .iter()
            .filter(|op| op.consumes_query())
            .map(|op| op.len())
            .sum()
    }

    /// Number of reference bases the alignment spans.
    pub fn reference_len(&self) -> u32 {
        self.0
            .iter()
            .filter(|op| op.consumes_reference())
            .map(|op| op.len())
            .sum()
    }

    /// Soft+hard clipped bases at the start of the record.
    pub fn leading_clip(&self) -> u32 {
        let mut total = 0;
        for op in &self.0 {
            match op {
                CigarOp::SoftClip(n) | CigarOp::HardClip(n) => total += n,
                _ => break,
            }
        }
        total
    }

    /// Soft+hard clipped bases at the end of the record.
    pub fn trailing_clip(&self) -> u32 {
        let mut total = 0;
        for op in self.0.iter().rev() {
            match op {
                CigarOp::SoftClip(n) | CigarOp::HardClip(n) => total += n,
                _ => break,
            }
        }
        total
    }

    /// The *unclipped start*: the reference position the first base of the
    /// original (unclipped) read would occupy. `pos` is the 1-based
    /// leftmost mapping position (SAM `POS`).
    pub fn unclipped_start(&self, pos: i64) -> i64 {
        pos - self.leading_clip() as i64
    }

    /// The *unclipped end*: the reference position the last base of the
    /// original read would occupy.
    pub fn unclipped_end(&self, pos: i64) -> i64 {
        pos + self.reference_len() as i64 - 1 + self.trailing_clip() as i64
    }

    /// Structural validity: no zero-length ops, clips only at the ends
    /// (hard outside soft), and at least one query-consuming op.
    pub fn validate(&self) -> Result<()> {
        if self.is_unmapped() {
            return Ok(());
        }
        if self.0.iter().any(|op| op.is_empty()) {
            return Err(FormatError::Cigar("zero-length op".into()));
        }
        // Clips may appear only as a prefix/suffix.
        let is_clip = |op: &CigarOp| matches!(op, CigarOp::SoftClip(_) | CigarOp::HardClip(_));
        let core: Vec<&CigarOp> = self.0.iter().skip_while(|o| is_clip(o)).collect();
        let core: Vec<&&CigarOp> = core.iter().take_while(|o| !is_clip(o)).collect();
        let n_clips = self.0.iter().filter(|o| is_clip(o)).count();
        if core.len() + n_clips != self.0.len() {
            return Err(FormatError::Cigar(format!(
                "clips must be terminal in {self}"
            )));
        }
        if self.query_len() == 0 {
            return Err(FormatError::Cigar("no query-consuming op".into()));
        }
        Ok(())
    }
}

impl fmt::Display for Cigar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unmapped() {
            return write!(f, "*");
        }
        for op in &self.0 {
            write!(f, "{}{}", op.len(), op.code() as char)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["100M", "3S97M", "50M2I48M", "10H5S80M5S", "20M1000N30M", "*"] {
            let c = Cigar::parse(s).unwrap();
            assert_eq!(c.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Cigar::parse("M").is_err());
        assert!(Cigar::parse("10").is_err());
        assert!(Cigar::parse("10X10M").is_err()); // X unsupported here
        assert!(Cigar::parse("").is_err());
        assert!(Cigar::parse("99999999999M").is_err());
    }

    #[test]
    fn lengths() {
        let c = Cigar::parse("3S50M2I10D45M2S").unwrap();
        assert_eq!(c.query_len(), 3 + 50 + 2 + 45 + 2);
        assert_eq!(c.reference_len(), 50 + 10 + 45);
        assert_eq!(c.leading_clip(), 3);
        assert_eq!(c.trailing_clip(), 2);
    }

    #[test]
    fn unclipped_ends() {
        // A 100M alignment at pos 1000 spans 1000..=1099.
        let c = Cigar::parse("100M").unwrap();
        assert_eq!(c.unclipped_start(1000), 1000);
        assert_eq!(c.unclipped_end(1000), 1099);
        // Soft clips push the unclipped ends outward.
        let c = Cigar::parse("5S90M5S").unwrap();
        assert_eq!(c.unclipped_start(1000), 995);
        assert_eq!(c.unclipped_end(1000), 1000 + 90 - 1 + 5);
        // Hard clips count too (bases existed on the fragment).
        let c = Cigar::parse("5H95M").unwrap();
        assert_eq!(c.unclipped_start(1000), 995);
    }

    #[test]
    fn unclipped_end_with_indels() {
        // Deletions extend the reference span; insertions do not.
        let c = Cigar::parse("50M10D50M").unwrap();
        assert_eq!(c.unclipped_end(100), 100 + 110 - 1);
        let c = Cigar::parse("50M10I40M").unwrap();
        assert_eq!(c.unclipped_end(100), 100 + 90 - 1);
    }

    #[test]
    fn text_len_matches_display() {
        for s in ["*", "100M", "3S50M2I10D45M2S", "1M", "9M10M99M100M"] {
            let c = if s == "*" { Cigar::unmapped() } else { Cigar::parse(s).unwrap() };
            assert_eq!(c.text_len(), c.to_string().len(), "{s}");
        }
    }

    #[test]
    fn validate_catches_internal_clips() {
        let bad = Cigar(vec![
            CigarOp::Match(10),
            CigarOp::SoftClip(5),
            CigarOp::Match(10),
        ]);
        assert!(bad.validate().is_err());
        let good = Cigar::parse("5S20M5H").unwrap();
        assert!(good.validate().is_ok());
        assert!(Cigar::unmapped().validate().is_ok());
    }

    #[test]
    fn validate_catches_zero_len() {
        let bad = Cigar(vec![CigarOp::Match(0)]);
        assert!(bad.validate().is_err());
    }
}
