//! The SAM FLAG bitfield.

/// SAM alignment flags, bit-compatible with the SAM specification's FLAG
/// column. Only the bits this pipeline uses are given named accessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags(pub u16);

impl Flags {
    pub const PAIRED: u16 = 0x1;
    pub const PROPER_PAIR: u16 = 0x2;
    pub const UNMAPPED: u16 = 0x4;
    pub const MATE_UNMAPPED: u16 = 0x8;
    pub const REVERSE: u16 = 0x10;
    pub const MATE_REVERSE: u16 = 0x20;
    pub const FIRST_IN_PAIR: u16 = 0x40;
    pub const SECOND_IN_PAIR: u16 = 0x80;
    pub const SECONDARY: u16 = 0x100;
    pub const QC_FAIL: u16 = 0x200;
    pub const DUPLICATE: u16 = 0x400;
    pub const SUPPLEMENTARY: u16 = 0x800;

    /// Empty flag set.
    pub fn new() -> Flags {
        Flags(0)
    }

    #[inline]
    pub fn contains(self, bit: u16) -> bool {
        self.0 & bit != 0
    }

    #[inline]
    pub fn set(&mut self, bit: u16, on: bool) {
        if on {
            self.0 |= bit;
        } else {
            self.0 &= !bit;
        }
    }

    pub fn is_paired(self) -> bool {
        self.contains(Self::PAIRED)
    }
    pub fn is_proper_pair(self) -> bool {
        self.contains(Self::PROPER_PAIR)
    }
    pub fn is_unmapped(self) -> bool {
        self.contains(Self::UNMAPPED)
    }
    pub fn is_mate_unmapped(self) -> bool {
        self.contains(Self::MATE_UNMAPPED)
    }
    pub fn is_reverse(self) -> bool {
        self.contains(Self::REVERSE)
    }
    pub fn is_mate_reverse(self) -> bool {
        self.contains(Self::MATE_REVERSE)
    }
    pub fn is_first_in_pair(self) -> bool {
        self.contains(Self::FIRST_IN_PAIR)
    }
    pub fn is_second_in_pair(self) -> bool {
        self.contains(Self::SECOND_IN_PAIR)
    }
    pub fn is_secondary(self) -> bool {
        self.contains(Self::SECONDARY)
    }
    pub fn is_duplicate(self) -> bool {
        self.contains(Self::DUPLICATE)
    }
    pub fn is_supplementary(self) -> bool {
        self.contains(Self::SUPPLEMENTARY)
    }

    /// Primary alignments are neither secondary nor supplementary; only
    /// they participate in duplicate marking and variant calling.
    pub fn is_primary(self) -> bool {
        !self.is_secondary() && !self.is_supplementary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_query() {
        let mut f = Flags::new();
        assert!(!f.is_paired());
        f.set(Flags::PAIRED, true);
        f.set(Flags::REVERSE, true);
        assert!(f.is_paired());
        assert!(f.is_reverse());
        assert_eq!(f.0, 0x11);
        f.set(Flags::REVERSE, false);
        assert!(!f.is_reverse());
        assert!(f.is_paired());
    }

    #[test]
    fn primary_classification() {
        let mut f = Flags::new();
        assert!(f.is_primary());
        f.set(Flags::SECONDARY, true);
        assert!(!f.is_primary());
        let mut g = Flags::new();
        g.set(Flags::SUPPLEMENTARY, true);
        assert!(!g.is_primary());
    }

    #[test]
    fn spec_bit_values() {
        // Bit positions must match the SAM spec for interop with the text
        // serialization round-trip.
        assert_eq!(Flags::PAIRED, 1);
        assert_eq!(Flags::DUPLICATE, 1024);
        assert_eq!(Flags::SUPPLEMENTARY, 2048);
    }
}
