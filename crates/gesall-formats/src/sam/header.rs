//! SAM header: reference dictionary, read groups, sort order, programs.

use crate::error::{FormatError, Result};
use std::fmt;

/// Declared sort order of a SAM/BAM dataset (`@HD SO:` tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortOrder {
    #[default]
    Unknown,
    Unsorted,
    /// Sorted by read name — the arrangement Fix Mate Info needs.
    QueryName,
    /// Sorted by (reference id, position) — required by variant callers.
    Coordinate,
}

impl SortOrder {
    pub fn as_str(self) -> &'static str {
        match self {
            SortOrder::Unknown => "unknown",
            SortOrder::Unsorted => "unsorted",
            SortOrder::QueryName => "queryname",
            SortOrder::Coordinate => "coordinate",
        }
    }

    pub fn parse(s: &str) -> SortOrder {
        match s {
            "unsorted" => SortOrder::Unsorted,
            "queryname" => SortOrder::QueryName,
            "coordinate" => SortOrder::Coordinate,
            _ => SortOrder::Unknown,
        }
    }
}

/// One reference sequence (`@SQ` line): a chromosome of the reference
/// genome with its length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceSeq {
    pub name: String,
    pub len: u64,
}

/// One read group (`@RG` line). AddReplaceReadGroups stamps every record
/// with one of these ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadGroup {
    pub id: String,
    pub sample: String,
    pub library: String,
    pub platform: String,
}

impl ReadGroup {
    pub fn new(id: impl Into<String>, sample: impl Into<String>) -> ReadGroup {
        ReadGroup {
            id: id.into(),
            sample: sample.into(),
            library: "lib1".into(),
            platform: "SYNTH".into(),
        }
    }
}

/// The SAM header. Carried in the first chunk of every BAM-like container
/// so that Gesall's record reader can fetch it before iterating chunk
/// subsets (paper §3.1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SamHeader {
    pub sort_order: SortOrder,
    pub references: Vec<ReferenceSeq>,
    pub read_groups: Vec<ReadGroup>,
    /// Program chain (`@PG` lines): every pipeline step appends itself.
    pub programs: Vec<String>,
}

impl SamHeader {
    pub fn new(references: Vec<ReferenceSeq>) -> SamHeader {
        SamHeader {
            sort_order: SortOrder::Unsorted,
            references,
            read_groups: Vec::new(),
            programs: Vec::new(),
        }
    }

    /// Resolve a reference name to its id (index into `references`).
    pub fn reference_id(&self, name: &str) -> Option<usize> {
        self.references.iter().position(|r| r.name == name)
    }

    /// Name of reference `id`, or `*` when out of range (unmapped).
    pub fn reference_name(&self, id: i32) -> &str {
        if id < 0 {
            return "*";
        }
        self.references
            .get(id as usize)
            .map(|r| r.name.as_str())
            .unwrap_or("*")
    }

    /// Total reference length across all chromosomes.
    pub fn genome_len(&self) -> u64 {
        self.references.iter().map(|r| r.len).sum()
    }

    /// Serialize to SAM text header lines.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("@HD\tVN:1.6\tSO:{}\n", self.sort_order.as_str()));
        for r in &self.references {
            out.push_str(&format!("@SQ\tSN:{}\tLN:{}\n", r.name, r.len));
        }
        for rg in &self.read_groups {
            out.push_str(&format!(
                "@RG\tID:{}\tSM:{}\tLB:{}\tPL:{}\n",
                rg.id, rg.sample, rg.library, rg.platform
            ));
        }
        for p in &self.programs {
            out.push_str(&format!("@PG\tID:{p}\n"));
        }
        out
    }

    /// Parse SAM text header lines (every line must start with `@`).
    pub fn parse_text(text: &str) -> Result<SamHeader> {
        let mut h = SamHeader::default();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split('\t');
            let tag = fields
                .next()
                .ok_or_else(|| FormatError::Sam("empty header line".into()))?;
            let kv = |f: &str| -> Option<(String, String)> {
                f.split_once(':').map(|(k, v)| (k.into(), v.into()))
            };
            match tag {
                "@HD" => {
                    for f in fields {
                        if let Some((k, v)) = kv(f) {
                            if k == "SO" {
                                h.sort_order = SortOrder::parse(&v);
                            }
                        }
                    }
                }
                "@SQ" => {
                    let mut name = None;
                    let mut len = None;
                    for f in fields {
                        if let Some((k, v)) = kv(f) {
                            match k.as_str() {
                                "SN" => name = Some(v),
                                "LN" => {
                                    len = Some(v.parse::<u64>().map_err(|_| {
                                        FormatError::Sam(format!("bad @SQ LN {v:?}"))
                                    })?)
                                }
                                _ => {}
                            }
                        }
                    }
                    match (name, len) {
                        (Some(name), Some(len)) => h.references.push(ReferenceSeq { name, len }),
                        _ => return Err(FormatError::Sam("incomplete @SQ line".into())),
                    }
                }
                "@RG" => {
                    let mut rg = ReadGroup::new("", "");
                    for f in fields {
                        if let Some((k, v)) = kv(f) {
                            match k.as_str() {
                                "ID" => rg.id = v,
                                "SM" => rg.sample = v,
                                "LB" => rg.library = v,
                                "PL" => rg.platform = v,
                                _ => {}
                            }
                        }
                    }
                    h.read_groups.push(rg);
                }
                "@PG" => {
                    for f in fields {
                        if let Some((k, v)) = kv(f) {
                            if k == "ID" {
                                h.programs.push(v);
                            }
                        }
                    }
                }
                other => {
                    return Err(FormatError::Sam(format!("unknown header tag {other:?}")));
                }
            }
        }
        Ok(h)
    }
}

impl fmt::Display for SamHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> SamHeader {
        let mut h = SamHeader::new(vec![
            ReferenceSeq {
                name: "chr1".into(),
                len: 1_000_000,
            },
            ReferenceSeq {
                name: "chr2".into(),
                len: 800_000,
            },
        ]);
        h.sort_order = SortOrder::Coordinate;
        h.read_groups.push(ReadGroup::new("rg1", "NA12878"));
        h.programs.push("bwa-rs".into());
        h
    }

    #[test]
    fn text_roundtrip() {
        let h = sample_header();
        let parsed = SamHeader::parse_text(&h.to_text()).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn reference_lookup() {
        let h = sample_header();
        assert_eq!(h.reference_id("chr2"), Some(1));
        assert_eq!(h.reference_id("chrX"), None);
        assert_eq!(h.reference_name(0), "chr1");
        assert_eq!(h.reference_name(-1), "*");
        assert_eq!(h.reference_name(99), "*");
        assert_eq!(h.genome_len(), 1_800_000);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(SamHeader::parse_text("@SQ\tSN:chr1").is_err());
        assert!(SamHeader::parse_text("@SQ\tSN:chr1\tLN:abc").is_err());
        assert!(SamHeader::parse_text("@ZZ\tfoo").is_err());
    }

    #[test]
    fn sort_order_strings() {
        for so in [
            SortOrder::Unknown,
            SortOrder::Unsorted,
            SortOrder::QueryName,
            SortOrder::Coordinate,
        ] {
            assert_eq!(SortOrder::parse(so.as_str()), so);
        }
    }
}
