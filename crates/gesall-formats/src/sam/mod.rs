//! SAM — the Sequence Alignment/Map record model.
//!
//! A SAM dataset is a header (reference sequence dictionary, read groups,
//! sort order, program lines) followed by one record per *alignment* of a
//! read: a read mapped to `m` reference locations contributes `m` records
//! (one primary, `m-1` secondary). The attributes the paper's partitioning
//! toolkit relies on (Fig. 3) are first-class here:
//!
//! * `QNAME` — read name, shared by both mates of a pair;
//! * `POS` — leftmost mapping position;
//! * `PNEXT` — mate's mapping position;
//! * `CIGAR` — per-base mapping detail including soft/hard clips;
//! * the derived **5′ unclipped end**, computed from `POS` + `CIGAR`, on
//!   which MarkDuplicates' compound partitioning is keyed.

pub mod cigar;
pub mod flags;
pub mod header;
pub mod record;
pub mod text;

pub use cigar::{Cigar, CigarOp};
pub use flags::Flags;
pub use header::{ReadGroup, ReferenceSeq, SamHeader, SortOrder};
pub use record::SamRecord;
