//! The SAM alignment record.

use crate::error::{FormatError, Result};
use crate::sam::cigar::Cigar;
use crate::sam::flags::Flags;
use crate::wire::{self, Cursor, Wire};

/// Sentinel reference id for unmapped reads (`RNAME *`).
pub const NO_REF: i32 = -1;

/// One alignment of one read. A read mapped to `m` positions has `m`
/// records sharing `name`; exactly one is primary.
///
/// Positions are 1-based (SAM convention); `pos == 0` means unavailable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamRecord {
    /// `QNAME`: read name, shared with the mate.
    pub name: String,
    /// `FLAG` bitfield.
    pub flags: Flags,
    /// `RNAME` as an index into the header's reference dictionary
    /// ([`NO_REF`] when unmapped).
    pub ref_id: i32,
    /// `POS`: 1-based leftmost mapping position (0 when unmapped).
    pub pos: i64,
    /// `MAPQ`: log-scaled probability the mapping is wrong, 0–60;
    /// 255 = unavailable.
    pub mapq: u8,
    /// `CIGAR`.
    pub cigar: Cigar,
    /// `RNEXT`: mate's reference id ([`NO_REF`] when unavailable).
    pub mate_ref_id: i32,
    /// `PNEXT`: mate's 1-based mapping position (0 when unavailable).
    pub mate_pos: i64,
    /// `TLEN`: signed observed template (fragment) length.
    pub tlen: i64,
    /// `SEQ` as ASCII bases.
    pub seq: Vec<u8>,
    /// `QUAL` as raw Phred scores.
    pub qual: Vec<u8>,
    /// `RG:Z` tag: read-group id ("" = absent).
    pub read_group: String,
    /// `AS:i` tag: alignment score from the aligner.
    pub alignment_score: i32,
    /// `NM:i` tag: edit distance to the reference.
    pub edit_distance: u32,
}

impl SamRecord {
    /// A fresh unmapped, unpaired record for the given read.
    pub fn unmapped(name: impl Into<String>, seq: Vec<u8>, qual: Vec<u8>) -> SamRecord {
        let mut flags = Flags::new();
        flags.set(Flags::UNMAPPED, true);
        SamRecord {
            name: name.into(),
            flags,
            ref_id: NO_REF,
            pos: 0,
            mapq: 0,
            cigar: Cigar::unmapped(),
            mate_ref_id: NO_REF,
            mate_pos: 0,
            tlen: 0,
            seq,
            qual,
            read_group: String::new(),
            alignment_score: 0,
            edit_distance: 0,
        }
    }

    /// True when this record represents a mapped alignment.
    pub fn is_mapped(&self) -> bool {
        !self.flags.is_unmapped()
    }

    /// 1-based inclusive reference end position of the aligned part.
    pub fn end_pos(&self) -> i64 {
        if !self.is_mapped() {
            return 0;
        }
        self.pos + self.cigar.reference_len() as i64 - 1
    }

    /// The derived **5′ unclipped end** (paper Fig. 3): for a forward-strand
    /// read this is the unclipped *start*; for a reverse-strand read the
    /// sequencer read the fragment from the other side, so the 5′ end is
    /// the unclipped *end*. MarkDuplicates keys on this value.
    pub fn unclipped_5p_end(&self) -> i64 {
        if self.flags.is_reverse() {
            self.cigar.unclipped_end(self.pos)
        } else {
            self.cigar.unclipped_start(self.pos)
        }
    }

    /// Orientation byte used in duplicate keys: `b'F'` or `b'R'`.
    pub fn strand(&self) -> u8 {
        if self.flags.is_reverse() {
            b'R'
        } else {
            b'F'
        }
    }

    /// Sum of base qualities ≥ 15, Picard's record-quality proxy for
    /// picking the representative among duplicates.
    pub fn quality_sum(&self) -> u64 {
        crate::quality::quality_sum(&self.qual, 15)
    }

    /// Whether this read overlaps the 1-based inclusive reference interval
    /// `[start, end]` on `ref_id`.
    pub fn overlaps(&self, ref_id: i32, start: i64, end: i64) -> bool {
        self.is_mapped() && self.ref_id == ref_id && self.pos <= end && self.end_pos() >= start
    }

    /// Structural invariants: seq/qual same length; mapped records have a
    /// CIGAR whose query length matches SEQ; unmapped records carry no
    /// position.
    pub fn validate(&self) -> Result<()> {
        if self.seq.len() != self.qual.len() {
            return Err(FormatError::Sam(format!(
                "{}: seq len {} != qual len {}",
                self.name,
                self.seq.len(),
                self.qual.len()
            )));
        }
        if self.is_mapped() {
            self.cigar.validate()?;
            if self.pos <= 0 {
                return Err(FormatError::Sam(format!(
                    "{}: mapped read with pos {}",
                    self.name, self.pos
                )));
            }
            if self.ref_id < 0 {
                return Err(FormatError::Sam(format!(
                    "{}: mapped read without reference",
                    self.name
                )));
            }
            // Soft-clipped bases stay in SEQ (query_len counts them);
            // hard-clipped bases are gone from SEQ and from query_len.
            let expect = self.cigar.query_len();
            if !self.seq.is_empty() && self.seq.len() as u32 != expect {
                return Err(FormatError::Sam(format!(
                    "{}: cigar query len {} != seq len {}",
                    self.name,
                    expect,
                    self.seq.len()
                )));
            }
        }
        Ok(())
    }

    /// Coordinate sort key: unmapped reads sort last.
    pub fn coordinate_key(&self) -> (i32, i64) {
        if self.is_mapped() {
            (self.ref_id, self.pos)
        } else {
            (i32::MAX, i64::MAX)
        }
    }
}

impl Wire for SamRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        (self.flags.0 as u32).encode(buf);
        ((self.ref_id as i64 + 1) as u64).encode(buf);
        self.pos.encode(buf);
        (self.mapq as u32).encode(buf);
        self.cigar.to_string().encode(buf);
        ((self.mate_ref_id as i64 + 1) as u64).encode(buf);
        self.mate_pos.encode(buf);
        self.tlen.encode(buf);
        self.seq.encode(buf);
        self.qual.encode(buf);
        self.read_group.encode(buf);
        (self.alignment_score as i64).encode(buf);
        self.edit_distance.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        let cigar_text = self.cigar.text_len();
        self.name.encoded_len()
            + (self.flags.0 as u32).encoded_len()
            + ((self.ref_id as i64 + 1) as u64).encoded_len()
            + self.pos.encoded_len()
            + (self.mapq as u32).encoded_len()
            + wire::varint_len(cigar_text as u64)
            + cigar_text
            + ((self.mate_ref_id as i64 + 1) as u64).encoded_len()
            + self.mate_pos.encoded_len()
            + self.tlen.encoded_len()
            + self.seq.encoded_len()
            + self.qual.encoded_len()
            + self.read_group.encoded_len()
            + (self.alignment_score as i64).encoded_len()
            + self.edit_distance.encoded_len()
    }

    /// Alignment-record streams are dominated by SEQ/QUAL/positions —
    /// exactly what the genomic sequence codec packs.
    fn codec_hint() -> Option<crate::compress::Codec> {
        Some(crate::compress::Codec::Seq)
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<SamRecord> {
        let name = String::decode(cur)?;
        let flags = Flags(u32::decode(cur)? as u16);
        let ref_id = (u64::decode(cur)? as i64 - 1) as i32;
        let pos = i64::decode(cur)?;
        let mapq = u32::decode(cur)? as u8;
        let cigar = Cigar::parse(&String::decode(cur)?)?;
        let mate_ref_id = (u64::decode(cur)? as i64 - 1) as i32;
        let mate_pos = i64::decode(cur)?;
        let tlen = i64::decode(cur)?;
        let seq = Vec::<u8>::decode(cur)?;
        let qual = Vec::<u8>::decode(cur)?;
        let read_group = String::decode(cur)?;
        let alignment_score = i64::decode(cur)? as i32;
        let edit_distance = u32::decode(cur)?;
        Ok(SamRecord {
            name,
            flags,
            ref_id,
            pos,
            mapq,
            cigar,
            mate_ref_id,
            mate_pos,
            tlen,
            seq,
            qual,
            read_group,
            alignment_score,
            edit_distance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sam::cigar::CigarOp;

    pub(crate) fn mapped_record(name: &str, ref_id: i32, pos: i64, cigar: &str) -> SamRecord {
        let cigar = Cigar::parse(cigar).unwrap();
        let qlen = cigar.query_len() as usize;
        let mut r = SamRecord::unmapped(name, vec![b'A'; qlen], vec![30; qlen]);
        r.flags.set(Flags::UNMAPPED, false);
        r.ref_id = ref_id;
        r.pos = pos;
        r.mapq = 60;
        r.cigar = cigar;
        r
    }

    #[test]
    fn wire_roundtrip() {
        let mut r = mapped_record("readX", 2, 12345, "5S90M5S");
        r.flags.set(Flags::PAIRED, true);
        r.flags.set(Flags::REVERSE, true);
        r.mate_ref_id = 2;
        r.mate_pos = 12000;
        r.tlen = -445;
        r.read_group = "rg1".into();
        r.alignment_score = 87;
        r.edit_distance = 3;
        let bytes = r.to_wire_bytes();
        assert_eq!(SamRecord::from_wire_bytes(&bytes).unwrap(), r);
        assert_eq!(r.encoded_len(), bytes.len(), "closed-form length must be exact");
    }

    #[test]
    fn wire_roundtrip_unmapped() {
        let r = SamRecord::unmapped("u1", b"ACGT".to_vec(), vec![2; 4]);
        let bytes = r.to_wire_bytes();
        let back = SamRecord::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.ref_id, NO_REF);
        assert_eq!(r.encoded_len(), bytes.len());
    }

    #[test]
    fn unclipped_5p_forward_vs_reverse() {
        let mut r = mapped_record("r", 0, 1000, "5S90M5S");
        assert_eq!(r.unclipped_5p_end(), 995);
        r.flags.set(Flags::REVERSE, true);
        // end = 1000 + 90 - 1 + 5 trailing clip
        assert_eq!(r.unclipped_5p_end(), 1094);
    }

    #[test]
    fn end_pos_and_overlap() {
        let r = mapped_record("r", 1, 100, "50M");
        assert_eq!(r.end_pos(), 149);
        assert!(r.overlaps(1, 149, 200));
        assert!(r.overlaps(1, 50, 100));
        assert!(!r.overlaps(1, 150, 200));
        assert!(!r.overlaps(0, 100, 200));
        let u = SamRecord::unmapped("u", vec![], vec![]);
        assert!(!u.overlaps(1, 0, i64::MAX));
    }

    #[test]
    fn coordinate_key_orders_unmapped_last() {
        let a = mapped_record("a", 0, 5, "10M");
        let b = mapped_record("b", 1, 1, "10M");
        let u = SamRecord::unmapped("u", vec![], vec![]);
        let mut v = [u.clone(), b.clone(), a.clone()];
        v.sort_by_key(|r| r.coordinate_key());
        assert_eq!(v[0].name, "a");
        assert_eq!(v[1].name, "b");
        assert_eq!(v[2].name, "u");
    }

    #[test]
    fn validate_checks_lengths() {
        let mut r = mapped_record("r", 0, 10, "10M");
        assert!(r.validate().is_ok());
        r.seq.pop();
        assert!(r.validate().is_err()); // seq/qual mismatch
        r.qual.pop();
        assert!(r.validate().is_err()); // cigar/seq mismatch
        r.cigar = Cigar(vec![CigarOp::Match(9)]);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn validate_rejects_mapped_without_pos() {
        let mut r = mapped_record("r", 0, 10, "10M");
        r.pos = 0;
        assert!(r.validate().is_err());
        r.pos = 10;
        r.ref_id = NO_REF;
        assert!(r.validate().is_err());
    }

    #[test]
    fn quality_sum_threshold() {
        let mut r = mapped_record("r", 0, 10, "4M");
        r.qual = vec![10, 15, 20, 40];
        assert_eq!(r.quality_sum(), 75);
    }
}
