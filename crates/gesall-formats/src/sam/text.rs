//! Text SAM serialization — the human-readable interchange form that the
//! "external programs" in the streaming wrapper read and write (paper
//! Fig. 8: Bwa emits text SAM into a pipe, SamToBam converts it to the
//! binary container).

use crate::error::{FormatError, Result};
use crate::quality::{decode_phred33, encode_phred33};
use crate::sam::cigar::Cigar;
use crate::sam::flags::Flags;
use crate::sam::header::SamHeader;
use crate::sam::record::{SamRecord, NO_REF};

/// Serialize one record as a SAM text line (no trailing newline).
pub fn record_to_line(rec: &SamRecord, header: &SamHeader) -> String {
    let rname = header.reference_name(rec.ref_id);
    let rnext = if rec.mate_ref_id == rec.ref_id && rec.ref_id != NO_REF {
        "=".to_string()
    } else {
        header.reference_name(rec.mate_ref_id).to_string()
    };
    let seq = if rec.seq.is_empty() {
        "*".to_string()
    } else {
        String::from_utf8_lossy(&rec.seq).into_owned()
    };
    let qual = if rec.qual.is_empty() {
        "*".to_string()
    } else {
        String::from_utf8_lossy(&encode_phred33(&rec.qual)).into_owned()
    };
    let mut line = format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        rec.name,
        rec.flags.0,
        rname,
        rec.pos,
        rec.mapq,
        rec.cigar,
        rnext,
        rec.mate_pos,
        rec.tlen,
        seq,
        qual
    );
    if !rec.read_group.is_empty() {
        line.push_str(&format!("\tRG:Z:{}", rec.read_group));
    }
    line.push_str(&format!(
        "\tAS:i:{}\tNM:i:{}",
        rec.alignment_score, rec.edit_distance
    ));
    line
}

/// Parse one SAM text line into a record, resolving reference names via
/// the header.
pub fn line_to_record(line: &str, header: &SamHeader) -> Result<SamRecord> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() < 11 {
        return Err(FormatError::Sam(format!(
            "sam line has {} fields, need 11",
            fields.len()
        )));
    }
    let parse_i64 = |s: &str, what: &str| -> Result<i64> {
        s.parse::<i64>()
            .map_err(|_| FormatError::Sam(format!("bad {what}: {s:?}")))
    };
    let name = fields[0].to_string();
    let flags = Flags(
        fields[1]
            .parse::<u16>()
            .map_err(|_| FormatError::Sam(format!("bad flags {:?}", fields[1])))?,
    );
    let ref_id = if fields[2] == "*" {
        NO_REF
    } else {
        header
            .reference_id(fields[2])
            .ok_or_else(|| FormatError::Sam(format!("unknown reference {:?}", fields[2])))?
            as i32
    };
    let pos = parse_i64(fields[3], "pos")?;
    let mapq = fields[4]
        .parse::<u8>()
        .map_err(|_| FormatError::Sam(format!("bad mapq {:?}", fields[4])))?;
    let cigar = Cigar::parse(fields[5])?;
    let mate_ref_id = match fields[6] {
        "*" => NO_REF,
        "=" => ref_id,
        other => header
            .reference_id(other)
            .ok_or_else(|| FormatError::Sam(format!("unknown mate reference {other:?}")))?
            as i32,
    };
    let mate_pos = parse_i64(fields[7], "pnext")?;
    let tlen = parse_i64(fields[8], "tlen")?;
    let seq = if fields[9] == "*" {
        Vec::new()
    } else {
        fields[9].as_bytes().to_vec()
    };
    let qual = if fields[10] == "*" {
        Vec::new()
    } else {
        decode_phred33(fields[10].as_bytes())
            .ok_or_else(|| FormatError::Sam("invalid quality string".into()))?
    };
    let mut rec = SamRecord {
        name,
        flags,
        ref_id,
        pos,
        mapq,
        cigar,
        mate_ref_id,
        mate_pos,
        tlen,
        seq,
        qual,
        read_group: String::new(),
        alignment_score: 0,
        edit_distance: 0,
    };
    // Optional tags.
    for tag in &fields[11..] {
        if let Some(v) = tag.strip_prefix("RG:Z:") {
            rec.read_group = v.to_string();
        } else if let Some(v) = tag.strip_prefix("AS:i:") {
            rec.alignment_score = v
                .parse()
                .map_err(|_| FormatError::Sam(format!("bad AS tag {v:?}")))?;
        } else if let Some(v) = tag.strip_prefix("NM:i:") {
            rec.edit_distance = v
                .parse()
                .map_err(|_| FormatError::Sam(format!("bad NM tag {v:?}")))?;
        }
        // Unknown tags are ignored, as real parsers do.
    }
    Ok(rec)
}

/// Serialize a whole dataset (header + records) as SAM text.
pub fn to_text(header: &SamHeader, records: &[SamRecord]) -> String {
    let mut out = header.to_text();
    for r in records {
        out.push_str(&record_to_line(r, header));
        out.push('\n');
    }
    out
}

/// Parse SAM text into (header, records).
pub fn from_text(text: &str) -> Result<(SamHeader, Vec<SamRecord>)> {
    let mut header_text = String::new();
    let mut records = Vec::new();
    let mut header: Option<SamHeader> = None;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if line.starts_with('@') {
            if header.is_some() {
                return Err(FormatError::Sam(
                    "header line after alignment records".into(),
                ));
            }
            header_text.push_str(line);
            header_text.push('\n');
        } else {
            if header.is_none() {
                header = Some(SamHeader::parse_text(&header_text)?);
            }
            records.push(line_to_record(line, header.as_ref().unwrap())?);
        }
    }
    let header = match header {
        Some(h) => h,
        None => SamHeader::parse_text(&header_text)?,
    };
    Ok((header, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sam::header::ReferenceSeq;

    fn header() -> SamHeader {
        SamHeader::new(vec![
            ReferenceSeq {
                name: "chr1".into(),
                len: 10_000,
            },
            ReferenceSeq {
                name: "chr2".into(),
                len: 8_000,
            },
        ])
    }

    fn record() -> SamRecord {
        let mut r = SamRecord::unmapped("r1", b"ACGTACGTAC".to_vec(), vec![35; 10]);
        r.flags = Flags(Flags::PAIRED | Flags::FIRST_IN_PAIR);
        r.ref_id = 0;
        r.pos = 100;
        r.mapq = 47;
        r.cigar = Cigar::parse("10M").unwrap();
        r.mate_ref_id = 0;
        r.mate_pos = 350;
        r.tlen = 260;
        r.read_group = "rg9".into();
        r.alignment_score = 10;
        r.edit_distance = 1;
        r
    }

    #[test]
    fn line_roundtrip() {
        let h = header();
        let r = record();
        let line = record_to_line(&r, &h);
        assert!(line.contains("\t=\t"), "same-ref mate shown as '=': {line}");
        let back = line_to_record(&line, &h).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn cross_chromosome_mate_named_explicitly() {
        let h = header();
        let mut r = record();
        r.mate_ref_id = 1;
        let line = record_to_line(&r, &h);
        assert!(line.contains("\tchr2\t"));
        assert_eq!(line_to_record(&line, &h).unwrap(), r);
    }

    #[test]
    fn unmapped_record_roundtrip() {
        let h = header();
        let r = SamRecord::unmapped("u", b"ACG".to_vec(), vec![2; 3]);
        let line = record_to_line(&r, &h);
        assert!(line.contains("\t*\t0\t"));
        let back = line_to_record(&line, &h).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn dataset_roundtrip() {
        let h = header();
        let recs = vec![record(), SamRecord::unmapped("u", b"A".to_vec(), vec![3])];
        let text = to_text(&h, &recs);
        let (h2, r2) = from_text(&text).unwrap();
        assert_eq!(h2, h);
        assert_eq!(r2, recs);
    }

    #[test]
    fn rejects_unknown_reference_and_short_lines() {
        let h = header();
        assert!(line_to_record("r\t0\tchr9\t1\t0\t1M\t*\t0\t0\tA\tI", &h).is_err());
        assert!(line_to_record("r\t0\tchr1", &h).is_err());
    }

    #[test]
    fn unknown_tags_ignored() {
        let h = header();
        let line = "r\t0\tchr1\t5\t60\t3M\t*\t0\t0\tACG\tIII\tXX:Z:whatever\tAS:i:3";
        let r = line_to_record(line, &h).unwrap();
        assert_eq!(r.alignment_score, 3);
    }

    #[test]
    fn header_after_records_rejected() {
        let text = "@SQ\tSN:chr1\tLN:100\nr\t4\t*\t0\t0\t*\t*\t0\t0\tA\tI\n@PG\tID:x\n";
        assert!(from_text(text).is_err());
    }
}
