//! The genomic sequence codec (`Codec::Seq`).
//!
//! Generic LZ77 treats an alignment-record stream as opaque bytes and
//! leaves most of the sequence field on the table: random-ish DNA has
//! few byte-level repeats, yet every base fits in 2 bits. Following the
//! FASTA/Q-aware Hadoop codecs (PAPERS.md, arXiv:2007.13673) this codec
//! recognises the three shapes that dominate shuffled genomic records
//! and encodes each with a domain-specific token, falling back to
//! LZ-compressed literals for everything else:
//!
//! * **BASES** — a run of ACGT ASCII bytes, 2-bit packed in the same
//!   LSB-first word layout as [`crate::dna::PackedSeq`] (base `i` lives
//!   in bit-lane `(i % 4) * 2` of byte `i / 4`, i.e. the little-endian
//!   serialization of PackedSeq's `u64` words) — 4 bases per byte.
//! * **RUN** — a run of one repeated byte, stored as (value, length).
//!   Covers binned quality strings, homopolymers, and N-runs.
//! * **DELTA** — a run of canonical LEB128 varints (sorted positions),
//!   stored as the first value plus zigzag-encoded deltas. Only emitted
//!   when the encoder proves the token re-expands byte-identically and
//!   is strictly smaller than the raw varints.
//! * **LIT** — everything else. Literal bytes are pulled out of line
//!   into one blob and LZ-compressed together, so read names and
//!   quality strings sit next to their cross-record twins instead of
//!   being interleaved with incompressible bases.
//!
//! The container is self-describing and *lossless for arbitrary input*
//! (the round-trip property the format proptests enforce): a method
//! byte selects `Store` when tokenisation would expand the data, so the
//! worst case degenerates to the LZ store path plus one byte.
//!
//! Container layout:
//!
//! ```text
//! [method u8]               0 = store, 2 = seq
//! [varint raw_len]
//! store: [raw bytes]
//! seq:   [varint token_len] [tokens] [lz container of the literal blob]
//! ```

use crate::compress::{self, get_varint, put_varint};
use crate::error::{FormatError, Result};

const METHOD_STORE: u8 = 0;
const METHOD_SEQ: u8 = 2;

/// Token opcodes inside a seq stream.
const TOK_BASES: u8 = 0;
const TOK_RUN: u8 = 1;
const TOK_LIT: u8 = 2;
const TOK_DELTA: u8 = 3;

/// Shortest same-byte run worth a RUN token (break-even is 3–4 bytes;
/// below this a run packs better as bases or literals).
const RUN_MIN: usize = 6;
/// Shortest ACGT stretch worth a BASES token. Short stretches (flag
/// bytes that happen to be letters, "ACGT" inside a read name) stay
/// literal so the LZ backstop can match them across records.
const BASES_MIN: usize = 16;
/// Shortest canonical-varint run worth *attempting* a DELTA token.
const DELTA_MIN: usize = 4;

#[inline]
fn base_code(b: u8) -> Option<u8> {
    match b {
        b'A' => Some(0),
        b'C' => Some(1),
        b'G' => Some(2),
        b'T' => Some(3),
        _ => None,
    }
}

const BASE_ASCII: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Compress `input` into a fresh container.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 3 + 16);
    compress_append(input, &mut out);
    out
}

/// Compress `input`, appending the container to `out`.
pub fn compress_append(input: &[u8], out: &mut Vec<u8>) {
    let mut tokens = Vec::with_capacity(input.len() / 16 + 8);
    let mut lits = Vec::new();
    tokenize(input, &mut tokens, &mut lits);
    let lz_lits = compress::compress(&lits);

    // Self-describing sizes: pick whichever container is smaller. The
    // store arm keeps pathological inputs within one byte of raw.
    let mut header = Vec::with_capacity(12);
    put_varint(&mut header, input.len() as u64);
    let mut token_len = Vec::with_capacity(6);
    put_varint(&mut token_len, tokens.len() as u64);
    let seq_total = 1 + header.len() + token_len.len() + tokens.len() + lz_lits.len();
    let store_total = 1 + header.len() + input.len();
    if seq_total >= store_total {
        out.push(METHOD_STORE);
        out.extend_from_slice(&header);
        out.extend_from_slice(input);
    } else {
        out.push(METHOD_SEQ);
        out.extend_from_slice(&header);
        out.extend_from_slice(&token_len);
        out.extend_from_slice(&tokens);
        out.extend_from_slice(&lz_lits);
    }
}

/// Split `input` into tokens; literal bytes go to `lits`.
fn tokenize(input: &[u8], tokens: &mut Vec<u8>, lits: &mut Vec<u8>) {
    let mut i = 0;
    // Start of the literal stretch not yet flushed as a LIT token.
    let mut lit_from = 0;
    let flush_lits = |tokens: &mut Vec<u8>, lits: &mut Vec<u8>, from: usize, to: usize| {
        if to > from {
            tokens.push(TOK_LIT);
            put_varint(tokens, (to - from) as u64);
            lits.extend_from_slice(&input[from..to]);
        }
    };
    while i < input.len() {
        // RUN first: a homopolymer is also a bases run, but at RUN_MIN+
        // lengths the (value, length) pair is strictly smaller.
        let b = input[i];
        let mut run = 1;
        while i + run < input.len() && input[i + run] == b {
            run += 1;
        }
        if run >= RUN_MIN {
            flush_lits(tokens, lits, lit_from, i);
            tokens.push(TOK_RUN);
            tokens.push(b);
            put_varint(tokens, run as u64);
            i += run;
            lit_from = i;
            continue;
        }
        // BASES next: ACGT bytes are also single-byte varints, so this
        // must win over DELTA.
        if base_code(b).is_some() {
            let mut n = 1;
            while i + n < input.len() && base_code(input[i + n]).is_some() {
                n += 1;
            }
            if n >= BASES_MIN {
                flush_lits(tokens, lits, lit_from, i);
                tokens.push(TOK_BASES);
                put_varint(tokens, n as u64);
                let start = tokens.len();
                tokens.resize(start + n.div_ceil(4), 0);
                for (k, &base) in input[i..i + n].iter().enumerate() {
                    let code = base_code(base).expect("scanned as ACGT");
                    tokens[start + k / 4] |= code << ((k % 4) * 2);
                }
                i += n;
                lit_from = i;
                continue;
            }
        }
        // DELTA: a run of canonical varints that shrinks under
        // first + zigzag deltas (sorted genomic positions).
        if let Some((consumed, token)) = try_delta(&input[i..]) {
            flush_lits(tokens, lits, lit_from, i);
            tokens.extend_from_slice(&token);
            i += consumed;
            lit_from = i;
            continue;
        }
        i += 1;
    }
    flush_lits(tokens, lits, lit_from, input.len());
}

/// Parse canonical varints at the head of `data`; if at least
/// [`DELTA_MIN`] of them delta-encode strictly smaller than their raw
/// bytes, return `(bytes consumed, encoded DELTA token)`.
///
/// Canonical means the value re-encodes to the exact same bytes (no
/// overlong encodings), which is what makes the decoder's re-encode
/// byte-identical. Deltas wrap in `u64` space, so any value sequence is
/// representable.
fn try_delta(data: &[u8]) -> Option<(usize, Vec<u8>)> {
    // Fast reject: a run of single-byte varints (quality scores, ASCII
    // text — any bytes < 0x80) costs at least one token byte per
    // consumed byte and so can never repay the token header — yet it
    // *parses* as a valid varint stream, so without this check every
    // literal byte of a noisy payload would trigger a full 255-value
    // probe, making the tokenizer quadratic. A profitable delta run
    // must lead with a multi-byte varint (continuation bit set).
    if data.first().is_none_or(|&b| b < 0x80) {
        return None;
    }
    let mut values = Vec::new();
    let mut pos = 0;
    while values.len() < 255 {
        let start = pos;
        let mut p = start;
        let Ok(v) = get_varint(data, &mut p) else { break };
        // Reject non-canonical encodings: the value must re-encode to
        // the exact same bytes. Length alone is not enough — a 10-byte
        // varint can silently drop bits past u64 and re-encode to the
        // same length with a different final byte.
        let mut canon = Vec::with_capacity(10);
        put_varint(&mut canon, v);
        if canon[..] != data[start..p] {
            break;
        }
        values.push(v);
        pos = p;
    }
    if values.len() < DELTA_MIN {
        return None;
    }
    // Greedy: take the longest run, then check profitability.
    let mut token = Vec::with_capacity(pos / 2 + 4);
    token.push(TOK_DELTA);
    put_varint(&mut token, values.len() as u64);
    put_varint(&mut token, values[0]);
    for w in values.windows(2) {
        let delta = w[1].wrapping_sub(w[0]) as i64;
        put_varint(&mut token, zigzag(delta));
    }
    if token.len() + 2 <= pos {
        Some((pos, token))
    } else {
        None
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Decompress a container produced by [`compress`]/[`compress_append`].
/// Corrupt input is a typed [`FormatError::Compress`], never a panic.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    let mut pos = 0;
    let method = *data
        .get(pos)
        .ok_or_else(|| FormatError::Compress("empty seq container".into()))?;
    pos += 1;
    let raw_len = get_varint(data, &mut pos)? as usize;
    match method {
        METHOD_STORE => {
            let payload = data
                .get(pos..pos + raw_len)
                .ok_or_else(|| FormatError::Compress("truncated seq store payload".into()))?;
            if pos + raw_len != data.len() {
                return Err(FormatError::Compress("trailing bytes after store".into()));
            }
            Ok(payload.to_vec())
        }
        METHOD_SEQ => {
            let token_len = get_varint(data, &mut pos)? as usize;
            let tokens = data
                .get(pos..pos + token_len)
                .ok_or_else(|| FormatError::Compress("truncated seq token stream".into()))?;
            let lits = compress::decompress(&data[pos + token_len..])?;
            expand_tokens(tokens, &lits, raw_len)
        }
        other => Err(FormatError::Compress(format!(
            "unknown seq method byte {other}"
        ))),
    }
}

fn expand_tokens(tokens: &[u8], lits: &[u8], raw_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 0;
    let mut lit_pos = 0;
    let need = |n: usize, out: &Vec<u8>| -> Result<()> {
        if out.len() + n > raw_len {
            Err(FormatError::Compress("seq tokens overflow raw length".into()))
        } else {
            Ok(())
        }
    };
    while pos < tokens.len() {
        let op = tokens[pos];
        pos += 1;
        match op {
            TOK_BASES => {
                let n = get_varint(tokens, &mut pos)? as usize;
                need(n, &out)?;
                let packed = tokens
                    .get(pos..pos + n.div_ceil(4))
                    .ok_or_else(|| FormatError::Compress("truncated BASES token".into()))?;
                for k in 0..n {
                    let code = (packed[k / 4] >> ((k % 4) * 2)) & 0b11;
                    out.push(BASE_ASCII[code as usize]);
                }
                pos += n.div_ceil(4);
            }
            TOK_RUN => {
                let value = *tokens
                    .get(pos)
                    .ok_or_else(|| FormatError::Compress("truncated RUN token".into()))?;
                pos += 1;
                let n = get_varint(tokens, &mut pos)? as usize;
                need(n, &out)?;
                out.resize(out.len() + n, value);
            }
            TOK_LIT => {
                let n = get_varint(tokens, &mut pos)? as usize;
                need(n, &out)?;
                let chunk = lits
                    .get(lit_pos..lit_pos + n)
                    .ok_or_else(|| FormatError::Compress("literal blob underrun".into()))?;
                out.extend_from_slice(chunk);
                lit_pos += n;
            }
            TOK_DELTA => {
                let count = get_varint(tokens, &mut pos)? as usize;
                if count == 0 {
                    return Err(FormatError::Compress("empty DELTA token".into()));
                }
                let mut v = get_varint(tokens, &mut pos)?;
                need(1, &out)?; // at least one varint lands
                put_varint(&mut out, v);
                for _ in 1..count {
                    let delta = unzigzag(get_varint(tokens, &mut pos)?);
                    v = v.wrapping_add(delta as u64);
                    put_varint(&mut out, v);
                }
                if out.len() > raw_len {
                    return Err(FormatError::Compress("seq tokens overflow raw length".into()));
                }
            }
            other => {
                return Err(FormatError::Compress(format!(
                    "unknown seq token opcode {other}"
                )))
            }
        }
    }
    if out.len() != raw_len {
        return Err(FormatError::Compress(format!(
            "seq expanded {} bytes, container promised {raw_len}",
            out.len()
        )));
    }
    if lit_pos != lits.len() {
        return Err(FormatError::Compress("unconsumed literal bytes".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let c = compress(data);
        decompress(&c).expect("roundtrip")
    }

    #[test]
    fn roundtrips_empty_and_tiny() {
        assert_eq!(roundtrip(b""), b"");
        assert_eq!(roundtrip(b"x"), b"x");
        assert_eq!(roundtrip(b"ACGT"), b"ACGT");
    }

    #[test]
    fn packs_dna_four_to_one() {
        // Pseudo-random bases: no long byte-level repeats for LZ to
        // exploit, but still exactly 2 bits of alphabet per byte.
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let seq: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                BASE_ASCII[(x >> 33) as usize % 4]
            })
            .collect();
        let c = compress(&seq);
        assert_eq!(decompress(&c).unwrap(), seq);
        // 2 bits per base plus container overhead — far below LZ on the
        // same data, the whole point of the codec.
        assert!(
            c.len() < seq.len() / 3,
            "expected ~4x packing, got {} for {}",
            c.len(),
            seq.len()
        );
        let lz = compress::compress(&seq);
        assert!(c.len() < lz.len(), "seq {} must beat lz {}", c.len(), lz.len());
    }

    #[test]
    fn bases_layout_matches_packed_seq_words() {
        // The BASES payload is the little-endian serialization of
        // PackedSeq's words: verify against the kernel type directly.
        let seq = b"ACGTTGCAACGTACGTACGTTGCAACGTACGTACGT".to_vec();
        let packed = crate::dna::PackedSeq::from_ascii(&seq);
        let c = compress(&seq);
        // Container: [2][raw_len][token_len][TOK_BASES][n][payload...]
        assert_eq!(c[0], METHOD_SEQ);
        let mut pos = 1;
        let raw_len = get_varint(&c, &mut pos).unwrap() as usize;
        assert_eq!(raw_len, seq.len());
        let _token_len = get_varint(&c, &mut pos).unwrap();
        assert_eq!(c[pos], TOK_BASES);
        pos += 1;
        let n = get_varint(&c, &mut pos).unwrap() as usize;
        assert_eq!(n, seq.len());
        let payload = &c[pos..pos + n.div_ceil(4)];
        let mut expect = Vec::new();
        for w in packed.words() {
            expect.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(payload, &expect[..payload.len()]);
    }

    #[test]
    fn rle_covers_binned_quals_and_n_runs() {
        let mut data = Vec::new();
        for _ in 0..32 {
            data.extend_from_slice(&[37u8; 60]);
            data.extend_from_slice(&[28u8; 30]);
            data.extend_from_slice(&[2u8; 10]);
        }
        data.extend_from_slice(&[b'N'; 500]);
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        // 3 tokens of ~3 bytes per 100-byte record: ~12x.
        assert!(c.len() < data.len() / 10, "RLE should crush runs: {}", c.len());
    }

    #[test]
    fn delta_token_fires_on_sorted_positions() {
        // A run of ascending multi-byte varints — the sorted-position
        // shape — must delta down and round-trip byte-identically.
        let mut data = Vec::new();
        let mut pos = 1_000_000_000u64;
        for i in 0..200u64 {
            pos += 1 + (i * 37) % 50;
            put_varint(&mut data, pos);
        }
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(
            c.len() < data.len() / 2,
            "deltas should at least halve sorted varints: {} vs {}",
            c.len(),
            data.len()
        );
    }

    #[test]
    fn incompressible_input_degrades_to_store() {
        // Pseudo-random bytes: no runs, no bases, no varint wins. The
        // container must fall back to store within a byte or two of raw.
        let mut x = 0x9E3779B97F4A7C15u64;
        let data: Vec<u8> = (0..2048)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() <= data.len() + 4, "store fallback: {}", c.len());
    }

    #[test]
    fn corrupt_input_is_an_error_not_a_panic() {
        let good = compress(b"ACGTACGTACGTACGTACGTACGTACGT quality 333333333333");
        for cut in 0..good.len() {
            let _ = decompress(&good[..cut]); // must not panic
        }
        let mut bad = good.clone();
        bad[0] = 9; // unknown method
        assert!(decompress(&bad).is_err());
        for i in 0..good.len() {
            let mut mutated = good.clone();
            mutated[i] ^= 0x55;
            let _ = decompress(&mutated); // arbitrary corruption: Ok-or-Err, never panic
        }
        assert!(decompress(&[]).is_err());
    }

    #[test]
    fn via_codec_registry_dispatch() {
        use crate::compress::Codec;
        let data = b"ACGTACGTACGTACGTACGTACGTACGTNNNNNNNNNNNN".to_vec();
        for &codec in Codec::registry() {
            let mut enc = Vec::new();
            codec.encode_append(&data, &mut enc);
            let dec = if codec.is_compressed() {
                codec.decode(&enc).unwrap()
            } else {
                enc.clone()
            };
            assert_eq!(dec, data, "{} must roundtrip through dispatch", codec.name());
        }
        assert_eq!(Codec::from_tag(2).unwrap(), Codec::Seq);
        assert!(Codec::from_tag(250).is_err());
    }
}
