//! VCF — variant call records.
//!
//! The pipeline's final output (paper Table 2, steps v1/v2) and the
//! currency of the accuracy study: D-impact (Table 8) diffs variant sets,
//! and Tables 9/10 report per-set quality metrics (MQ, DP, FS, AB, Ti/Tv,
//! Het/Hom). Those annotations are first-class fields here.

use crate::error::{FormatError, Result};
use std::fmt;

/// Diploid genotype of a called variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Genotype {
    /// One reference and one alternate allele (`0/1`).
    Het,
    /// Two alternate alleles (`1/1`).
    HomAlt,
}

impl Genotype {
    pub fn as_str(self) -> &'static str {
        match self {
            Genotype::Het => "0/1",
            Genotype::HomAlt => "1/1",
        }
    }

    pub fn parse(s: &str) -> Result<Genotype> {
        match s {
            "0/1" | "0|1" | "1|0" => Ok(Genotype::Het),
            "1/1" | "1|1" => Ok(Genotype::HomAlt),
            other => Err(FormatError::Vcf(format!("unsupported genotype {other:?}"))),
        }
    }
}

/// Variant class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariantKind {
    /// Single-nucleotide polymorphism.
    Snp,
    /// Insertion (alt longer than ref).
    Insertion,
    /// Deletion (ref longer than alt).
    Deletion,
}

/// One variant call.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantRecord {
    /// Chromosome name.
    pub chrom: String,
    /// 1-based position of the first reference base affected.
    pub pos: i64,
    /// Reference allele.
    pub ref_allele: String,
    /// Alternate allele.
    pub alt_allele: String,
    /// Variant quality (Phred-scaled confidence the site is variant).
    pub qual: f64,
    /// Genotype call.
    pub genotype: Genotype,
    /// `DP`: read depth at the site.
    pub depth: u32,
    /// `MQ`: RMS mapping quality of reads at the site.
    pub mapping_quality: f64,
    /// `FS`: Phred-scaled strand-bias Fisher's-exact score (0 = none).
    pub fisher_strand: f64,
    /// `AB`: allele balance, fraction of ALT-supporting reads.
    pub allele_balance: f64,
}

impl VariantRecord {
    /// Site identity: what D-count / D-impact comparisons key on.
    pub fn site_key(&self) -> (String, i64, String, String) {
        (
            self.chrom.clone(),
            self.pos,
            self.ref_allele.clone(),
            self.alt_allele.clone(),
        )
    }

    /// Classify the variant.
    pub fn kind(&self) -> VariantKind {
        use std::cmp::Ordering;
        match self.alt_allele.len().cmp(&self.ref_allele.len()) {
            Ordering::Equal => VariantKind::Snp,
            Ordering::Greater => VariantKind::Insertion,
            Ordering::Less => VariantKind::Deletion,
        }
    }

    /// For SNPs: is the substitution a transition (A<->G, C<->T)?
    /// Transversions are everything else; indels return `None`.
    pub fn is_transition(&self) -> Option<bool> {
        if self.kind() != VariantKind::Snp || self.ref_allele.len() != 1 {
            return None;
        }
        let r = self.ref_allele.as_bytes()[0].to_ascii_uppercase();
        let a = self.alt_allele.as_bytes()[0].to_ascii_uppercase();
        let transition = matches!(
            (r, a),
            (b'A', b'G') | (b'G', b'A') | (b'C', b'T') | (b'T', b'C')
        );
        Some(transition)
    }
}

/// Serialize records as VCF-like text (header + one line per call).
pub fn to_text(records: &[VariantRecord]) -> String {
    let mut out = String::from(
        "##fileformat=VCFv4.2\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tSAMPLE\n",
    );
    for r in records {
        out.push_str(&format!(
            "{}\t{}\t.\t{}\t{}\t{:.2}\t.\tDP={};MQ={:.2};FS={:.3};AB={:.3}\tGT\t{}\n",
            r.chrom,
            r.pos,
            r.ref_allele,
            r.alt_allele,
            r.qual,
            r.depth,
            r.mapping_quality,
            r.fisher_strand,
            r.allele_balance,
            r.genotype.as_str()
        ));
    }
    out
}

/// Parse VCF-like text produced by [`to_text`].
pub fn from_text(text: &str) -> Result<Vec<VariantRecord>> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() < 10 {
            return Err(FormatError::Vcf(format!(
                "vcf line has {} fields, need 10",
                f.len()
            )));
        }
        let pos = f[1]
            .parse::<i64>()
            .map_err(|_| FormatError::Vcf(format!("bad pos {:?}", f[1])))?;
        let qual = f[5]
            .parse::<f64>()
            .map_err(|_| FormatError::Vcf(format!("bad qual {:?}", f[5])))?;
        let mut depth = 0u32;
        let mut mq = 0f64;
        let mut fs = 0f64;
        let mut ab = 0f64;
        for item in f[7].split(';') {
            let Some((k, v)) = item.split_once('=') else {
                continue;
            };
            match k {
                "DP" => {
                    depth = v
                        .parse()
                        .map_err(|_| FormatError::Vcf(format!("bad DP {v:?}")))?
                }
                "MQ" => {
                    mq = v
                        .parse()
                        .map_err(|_| FormatError::Vcf(format!("bad MQ {v:?}")))?
                }
                "FS" => {
                    fs = v
                        .parse()
                        .map_err(|_| FormatError::Vcf(format!("bad FS {v:?}")))?
                }
                "AB" => {
                    ab = v
                        .parse()
                        .map_err(|_| FormatError::Vcf(format!("bad AB {v:?}")))?
                }
                _ => {}
            }
        }
        out.push(VariantRecord {
            chrom: f[0].to_string(),
            pos,
            ref_allele: f[3].to_string(),
            alt_allele: f[4].to_string(),
            qual,
            genotype: Genotype::parse(f[9])?,
            depth,
            mapping_quality: mq,
            fisher_strand: fs,
            allele_balance: ab,
        });
    }
    Ok(out)
}

impl crate::wire::Wire for VariantRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.chrom.encode(buf);
        self.pos.encode(buf);
        self.ref_allele.encode(buf);
        self.alt_allele.encode(buf);
        buf.extend_from_slice(&self.qual.to_le_bytes());
        buf.push(match self.genotype {
            Genotype::Het => 0,
            Genotype::HomAlt => 1,
        });
        self.depth.encode(buf);
        buf.extend_from_slice(&self.mapping_quality.to_le_bytes());
        buf.extend_from_slice(&self.fisher_strand.to_le_bytes());
        buf.extend_from_slice(&self.allele_balance.to_le_bytes());
    }

    fn decode(cur: &mut crate::wire::Cursor<'_>) -> crate::error::Result<Self> {
        let chrom = String::decode(cur)?;
        let pos = i64::decode(cur)?;
        let ref_allele = String::decode(cur)?;
        let alt_allele = String::decode(cur)?;
        let f64_of = |cur: &mut crate::wire::Cursor<'_>| -> crate::error::Result<f64> {
            Ok(f64::from_bits(cur.get_u64()?))
        };
        let qual = f64_of(cur)?;
        let gt_byte = u32::decode(cur)? as u8;
        let genotype = if gt_byte == 0 {
            Genotype::Het
        } else {
            Genotype::HomAlt
        };
        let depth = u32::decode(cur)?;
        let mapping_quality = f64_of(cur)?;
        let fisher_strand = f64_of(cur)?;
        let allele_balance = f64_of(cur)?;
        Ok(VariantRecord {
            chrom,
            pos,
            ref_allele,
            alt_allele,
            qual,
            genotype,
            depth,
            mapping_quality,
            fisher_strand,
            allele_balance,
        })
    }
}

impl fmt::Display for VariantRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {}>{} q{:.0} {}",
            self.chrom,
            self.pos,
            self.ref_allele,
            self.alt_allele,
            self.qual,
            self.genotype.as_str()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(chrom: &str, pos: i64, r: &str, a: &str) -> VariantRecord {
        VariantRecord {
            chrom: chrom.into(),
            pos,
            ref_allele: r.into(),
            alt_allele: a.into(),
            qual: 55.5,
            genotype: Genotype::Het,
            depth: 30,
            mapping_quality: 58.2,
            fisher_strand: 1.25,
            allele_balance: 0.48,
        }
    }

    #[test]
    fn text_roundtrip() {
        let recs = vec![var("chr1", 100, "A", "G"), var("chr2", 5, "AT", "A")];
        let text = to_text(&recs);
        let back = from_text(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].chrom, "chr1");
        assert_eq!(back[0].depth, 30);
        assert!((back[0].mapping_quality - 58.2).abs() < 0.01);
        assert!((back[1].qual - 55.5).abs() < 0.01);
        assert_eq!(back[1].kind(), VariantKind::Deletion);
    }

    #[test]
    fn kind_classification() {
        assert_eq!(var("c", 1, "A", "G").kind(), VariantKind::Snp);
        assert_eq!(var("c", 1, "A", "AGG").kind(), VariantKind::Insertion);
        assert_eq!(var("c", 1, "AGG", "A").kind(), VariantKind::Deletion);
    }

    #[test]
    fn transition_transversion() {
        assert_eq!(var("c", 1, "A", "G").is_transition(), Some(true));
        assert_eq!(var("c", 1, "C", "T").is_transition(), Some(true));
        assert_eq!(var("c", 1, "A", "C").is_transition(), Some(false));
        assert_eq!(var("c", 1, "A", "T").is_transition(), Some(false));
        assert_eq!(var("c", 1, "AT", "A").is_transition(), None);
    }

    #[test]
    fn genotype_parse() {
        assert_eq!(Genotype::parse("0/1").unwrap(), Genotype::Het);
        assert_eq!(Genotype::parse("1|1").unwrap(), Genotype::HomAlt);
        assert!(Genotype::parse("2/1").is_err());
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(from_text("chr1\t100\t.\tA").is_err());
        assert!(from_text("chr1\tX\t.\tA\tG\t50\t.\tDP=1\tGT\t0/1").is_err());
    }

    #[test]
    fn wire_roundtrip() {
        use crate::wire::Wire as _;
        let v = var("chr2", 12345, "AT", "A");
        let bytes = v.to_wire_bytes();
        let back = VariantRecord::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back, v);
        let mut h = var("chr1", 7, "A", "G");
        h.genotype = Genotype::HomAlt;
        assert_eq!(
            VariantRecord::from_wire_bytes(&h.to_wire_bytes()).unwrap(),
            h
        );
    }

    #[test]
    fn site_key_distinguishes_alleles() {
        assert_ne!(
            var("c", 1, "A", "G").site_key(),
            var("c", 1, "A", "T").site_key()
        );
        assert_eq!(
            var("c", 1, "A", "G").site_key(),
            var("c", 1, "A", "G").site_key()
        );
    }
}
