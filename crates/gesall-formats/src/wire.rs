//! Minimal byte-level encode/decode helpers shared by the BAM container,
//! the MapReduce shuffle (spill files, byte accounting), and the DFS.
//!
//! Everything is little-endian. Variable-length integers use LEB128-style
//! 7-bit groups.

use crate::error::{FormatError, Result};

/// Append a `u32` (little-endian).
#[inline]
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (little-endian).
#[inline]
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` (little-endian).
#[inline]
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encoded length of a varint, without encoding it.
#[inline]
pub fn varint_len(v: u64) -> usize {
    // ceil(bits/7), with 0 taking one byte.
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Append a varint (LEB128, unsigned).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append a length-prefixed byte slice (varint length).
pub fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_varint(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Cursor for decoding.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(FormatError::Bam(format!(
                "truncated buffer: wanted {n} bytes, had {}",
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .take(1)?
                .first()
                .expect("take(1) returned a 1-byte slice");
            if shift >= 64 {
                return Err(FormatError::Bam("varint overflow".into()));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.get_varint()? as usize;
        self.take(n)
    }

    pub fn get_str(&mut self) -> Result<String> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| FormatError::Bam("invalid utf-8 in string field".into()))
    }
}

/// Types with a stable byte encoding — used for BAM records, shuffle keys
/// and values, and spill files.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decode one value from the cursor.
    fn decode(cur: &mut Cursor<'_>) -> Result<Self>;

    /// Exact length `encode` would append, without touching a buffer.
    ///
    /// The default measures by encoding into a scratch vector; hot types
    /// (integers, strings, records on the shuffle path) override it with
    /// a closed form so the sort buffer can account record sizes without
    /// serializing anything (the zero-copy `emit` path).
    fn encoded_len(&self) -> usize {
        let mut scratch = Vec::new();
        self.encode(&mut scratch);
        scratch.len()
    }

    /// Convenience: encode to a fresh vector.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf
    }

    /// A `u64` whose unsigned order is consistent with the type's `Ord`:
    /// `a < b` implies `a.sort_prefix() <= b.sort_prefix()`. The radix
    /// spill sort orders records by this prefix and only falls back to
    /// full comparison inside equal-prefix runs, so a discriminating
    /// prefix makes the sort near-linear while the default (constant 0)
    /// merely degenerates to the comparison path — never to a wrong
    /// order.
    fn sort_prefix(&self) -> u64 {
        0
    }

    /// The compressed codec best suited to streams of this type, or
    /// `None` to defer to the job-level default. Genomic record types
    /// whose bytes are dominated by bases/qualities/positions hint
    /// [`Codec::Seq`](crate::compress::Codec::Seq); generic types leave
    /// the default (LZ) in place. A hint never changes *whether* a
    /// segment compresses — only which registered codec is used when it
    /// does — so output stays byte-identical after decode either way.
    fn codec_hint() -> Option<crate::compress::Codec> {
        None
    }

    /// Convenience: decode from a full buffer, requiring it be consumed.
    fn from_wire_bytes(data: &[u8]) -> Result<Self> {
        let mut cur = Cursor::new(data);
        let v = Self::decode(&mut cur)?;
        if !cur.is_empty() {
            return Err(FormatError::Bam(format!(
                "{} trailing bytes after decode",
                cur.remaining()
            )));
        }
        Ok(v)
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, *self);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self> {
        cur.get_varint()
    }
    fn encoded_len(&self) -> usize {
        varint_len(*self)
    }
    fn sort_prefix(&self) -> u64 {
        *self
    }
}

impl Wire for i64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        // zigzag
        put_varint(buf, ((*self << 1) ^ (*self >> 63)) as u64);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self> {
        let z = cur.get_varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }
    fn encoded_len(&self) -> usize {
        varint_len(((*self << 1) ^ (*self >> 63)) as u64)
    }
    fn sort_prefix(&self) -> u64 {
        // Flip the sign bit: maps i64::MIN..=i64::MAX monotonically onto
        // 0..=u64::MAX.
        (*self as u64) ^ (1 << 63)
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, *self as u64);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self> {
        let v = cur.get_varint()?;
        u32::try_from(v).map_err(|_| FormatError::Bam("u32 overflow".into()))
    }
    fn encoded_len(&self) -> usize {
        varint_len(*self as u64)
    }
    fn sort_prefix(&self) -> u64 {
        *self as u64
    }
}

/// First 8 bytes big-endian, zero-padded — consistent with
/// lexicographic byte order: a shorter string padded with zeros never
/// outranks one it is a prefix of.
#[inline]
fn bytes_sort_prefix(b: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = b.len().min(8);
    buf[..n].copy_from_slice(&b[..n]);
    u64::from_be_bytes(buf)
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_str(buf, self);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self> {
        cur.get_str()
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
    fn sort_prefix(&self) -> u64 {
        bytes_sort_prefix(self.as_bytes())
    }
}

impl Wire for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_bytes(buf, self);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self> {
        Ok(cur.get_bytes()?.to_vec())
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
    fn sort_prefix(&self) -> u64 {
        bytes_sort_prefix(self)
    }
}

impl Wire for crate::bytes::SharedBytes {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_bytes(buf, self);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self> {
        Ok(crate::bytes::SharedBytes::copy_from_slice(cur.get_bytes()?))
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self> {
        Ok((A::decode(cur)?, B::decode(cur)?))
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
    fn sort_prefix(&self) -> u64 {
        // Lexicographic tuple order starts with `A`, so `A`'s prefix
        // alone is order-consistent; `B` is resolved by the fallback.
        self.0.sort_prefix()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.iter().map(Wire::encoded_len).sum::<usize>()
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self> {
        let n = cur.get_varint()? as usize;
        // Defensive cap to avoid OOM on corrupt input.
        if n > cur.remaining() {
            return Err(FormatError::Bam(format!(
                "vec length {n} exceeds remaining bytes"
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(cur)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let vals = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &vals {
            put_varint(&mut buf, v);
        }
        let mut cur = Cursor::new(&buf);
        for &v in &vals {
            assert_eq!(cur.get_varint().unwrap(), v);
        }
        assert!(cur.is_empty());
    }

    #[test]
    fn zigzag_i64_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, -123456789] {
            let bytes = v.to_wire_bytes();
            assert_eq!(i64::from_wire_bytes(&bytes).unwrap(), v);
        }
    }

    #[test]
    fn string_and_bytes_roundtrip() {
        let s = "read/1 αβγ".to_string();
        assert_eq!(String::from_wire_bytes(&s.to_wire_bytes()).unwrap(), s);
        let b = vec![0u8, 255, 3, 7];
        assert_eq!(Vec::<u8>::from_wire_bytes(&b.to_wire_bytes()).unwrap(), b);
    }

    #[test]
    fn tuple_and_vec_roundtrip() {
        let v: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), 2)];
        let bytes = v.to_wire_bytes();
        assert_eq!(Vec::<(String, u64)>::from_wire_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn truncation_is_an_error() {
        let s = "hello".to_string().to_wire_bytes();
        assert!(String::from_wire_bytes(&s[..s.len() - 1]).is_err());
        // Trailing garbage too.
        let mut padded = s.clone();
        padded.push(0);
        assert!(String::from_wire_bytes(&padded).is_err());
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [0u64, 1, 127, 128, 16383, 16384, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(varint_len(v), buf.len(), "varint_len({v})");
        }
    }

    #[test]
    fn encoded_len_is_exact_for_every_impl() {
        fn check<T: Wire>(v: T) {
            let bytes = v.to_wire_bytes();
            assert_eq!(v.encoded_len(), bytes.len());
        }
        check(0u64);
        check(u64::MAX);
        check(-123456789i64);
        check(i64::MIN);
        check(u32::MAX);
        check("read/1 αβγ".to_string());
        check(String::new());
        check(vec![0u8, 255, 3]);
        check(("key".to_string(), 42u64));
        check(vec![("a".to_string(), 1u64), ("bb".to_string(), 300)]);
    }

    #[test]
    fn sort_prefix_is_order_consistent() {
        fn check<T: Wire + Ord + Clone + std::fmt::Debug>(mut vals: Vec<T>) {
            vals.sort();
            for w in vals.windows(2) {
                assert!(
                    w[0].sort_prefix() <= w[1].sort_prefix(),
                    "prefix order violated between {:?} and {:?}",
                    w[0],
                    w[1]
                );
            }
        }
        check(vec![0u64, 1, 255, 256, u64::MAX, 42, 1 << 40]);
        check(vec![0i64, -1, 1, i64::MIN, i64::MAX, -255, 1 << 40]);
        check(vec![0u32, 7, u32::MAX, 300]);
        check(vec![
            String::new(),
            "a".into(),
            "ab".into(),
            "ab\0".into(),
            "abcdefghij".into(),
            "abcdefghiz".into(),
            "z".into(),
        ]);
        check(vec![
            Vec::<u8>::new(),
            vec![0],
            vec![0, 0],
            vec![255u8; 12],
            vec![1, 2, 3],
        ]);
        check(vec![(1u64, 9u64), (1, 10), (2, 0), (0, u64::MAX)]);
    }

    #[test]
    fn corrupt_vec_length_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 40); // absurd element count
        assert!(Vec::<u64>::from_wire_bytes(&buf).is_err());
    }
}
