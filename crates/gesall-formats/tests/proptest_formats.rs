//! Property-based tests of the format layer's core invariants:
//! every serializer/deserializer pair must round-trip arbitrary inputs,
//! and the codec must never corrupt data regardless of content.

use gesall_formats::bam;
use gesall_formats::compress::{compress, crc32, decompress, Codec};
use gesall_formats::seq_codec;
use gesall_formats::fastq::{self, FastqRecord, ReadPair};
use gesall_formats::sam::cigar::{Cigar, CigarOp};
use gesall_formats::sam::header::{ReferenceSeq, SamHeader};
use gesall_formats::sam::{Flags, SamRecord};
use gesall_formats::wire::Wire;
use proptest::prelude::*;

fn arb_dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')], 1..max_len)
}

fn arb_qual(len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..60, len..=len)
}

prop_compose! {
    fn arb_read()(seq in arb_dna(200))(
        qual in arb_qual(seq.len()),
        seq in Just(seq),
        name in "[a-zA-Z0-9_:/]{1,30}",
    ) -> FastqRecord {
        FastqRecord { name, seq, qual }
    }
}

fn arb_cigar_ops() -> impl Strategy<Value = Vec<CigarOp>> {
    // Structurally valid: optional clips around a M/I/D core starting
    // and ending with M.
    (
        proptest::option::of(1u32..30),
        proptest::collection::vec((1u32..50, 0u8..3), 1..6),
        proptest::option::of(1u32..30),
    )
        .prop_map(|(lead, core, trail)| {
            let mut ops = Vec::new();
            if let Some(n) = lead {
                ops.push(CigarOp::SoftClip(n));
            }
            ops.push(CigarOp::Match(10));
            for (n, kind) in core {
                match kind {
                    0 => ops.push(CigarOp::Match(n)),
                    1 => {
                        ops.push(CigarOp::Ins(n));
                        ops.push(CigarOp::Match(1));
                    }
                    _ => {
                        ops.push(CigarOp::Del(n));
                        ops.push(CigarOp::Match(1));
                    }
                }
            }
            if let Some(n) = trail {
                ops.push(CigarOp::SoftClip(n));
            }
            ops
        })
}

prop_compose! {
    fn arb_sam_record()(
        cigar_ops in arb_cigar_ops(),
        name in "[a-zA-Z0-9_]{1,24}",
        pos in 1i64..1_000_000,
        mapq in 0u8..=60,
        flag_bits in 0u16..0x400,
        rg in proptest::option::of("[a-z0-9]{1,8}"),
        score in -50i32..200,
        nm in 0u32..30,
    ) -> SamRecord {
        let cigar = Cigar(cigar_ops);
        let qlen = cigar.query_len() as usize;
        let mut r = SamRecord::unmapped(name, vec![b'A'; qlen], vec![30; qlen]);
        // Keep it mapped & primary-paired-ish but fuzz other flags.
        let mut flags = Flags(flag_bits & !(Flags::UNMAPPED | Flags::SECONDARY | Flags::SUPPLEMENTARY));
        flags.set(Flags::UNMAPPED, false);
        r.flags = flags;
        r.ref_id = 0;
        r.pos = pos;
        r.mapq = mapq;
        r.cigar = cigar;
        r.read_group = rg.unwrap_or_default();
        r.alignment_score = score;
        r.edit_distance = nm;
        r
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn codec_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let c = compress(&data);
        let d = decompress(&c).unwrap();
        prop_assert_eq!(d, data);
    }

    #[test]
    fn seq_codec_roundtrips_any_records(
        // Arbitrary record-shaped streams: bases (with N stretches),
        // quality strings (possibly empty), varint position runs, and
        // raw junk, concatenated in random order.
        chunks in proptest::collection::vec(
            prop_oneof![
                // Base stretch, N-contaminated.
                (arb_dna(300), proptest::collection::vec(0usize..4096, 0..8))
                    .prop_map(|(mut seq, ns)| {
                        let len = seq.len();
                        for ix in ns {
                            seq[ix % len] = b'N';
                        }
                        seq
                    }),
                // Quality string: binned or noisy, possibly empty.
                proptest::collection::vec(0u8..60, 0..200),
                // Sorted-ish position run, varint encoded.
                (1u64..1_000_000_000, proptest::collection::vec(0u64..10_000, 0..40))
                    .prop_map(|(start, deltas)| {
                        let mut buf = Vec::new();
                        let mut pos = start;
                        for d in deltas {
                            pos = pos.wrapping_add(d);
                            gesall_formats::wire::put_varint(&mut buf, pos);
                        }
                        buf
                    }),
                // Arbitrary bytes.
                proptest::collection::vec(any::<u8>(), 0..120),
            ],
            0..12,
        )
    ) {
        let data: Vec<u8> = chunks.concat();
        let c = seq_codec::compress(&data);
        prop_assert_eq!(seq_codec::decompress(&c).unwrap(), data.clone());
        // And through the registry dispatch every codec must agree.
        for &codec in Codec::registry() {
            let mut enc = Vec::new();
            codec.encode_append(&data, &mut enc);
            let dec = if codec.is_compressed() { codec.decode(&enc).unwrap() } else { enc };
            prop_assert_eq!(dec, data.clone());
        }
    }

    #[test]
    fn codec_roundtrips_repetitive_dna(unit in arb_dna(40), reps in 1usize..200) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn crc_detects_single_bit_flips(data in proptest::collection::vec(any::<u8>(), 1..512), bit in 0usize..4096) {
        let mut mutated = data.clone();
        let i = (bit / 8) % mutated.len();
        mutated[i] ^= 1 << (bit % 8);
        // A single flipped bit must change the CRC.
        prop_assert_ne!(crc32(&data), crc32(&mutated));
    }

    #[test]
    fn sam_record_wire_roundtrip(rec in arb_sam_record()) {
        let bytes = rec.to_wire_bytes();
        let back = SamRecord::from_wire_bytes(&bytes).unwrap();
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn cigar_text_roundtrip(ops in arb_cigar_ops()) {
        let c = Cigar(ops);
        let parsed = Cigar::parse(&c.to_string()).unwrap();
        prop_assert_eq!(&parsed, &c);
        // Derived attributes are consistent.
        prop_assert_eq!(
            c.unclipped_start(1000) + c.leading_clip() as i64,
            1000
        );
        prop_assert!(c.unclipped_end(1000) >= 1000);
    }

    #[test]
    fn fastq_text_roundtrip(reads in proptest::collection::vec(arb_read(), 1..20)) {
        let bytes = fastq::to_bytes(&reads);
        let parsed = fastq::from_bytes(&bytes).unwrap();
        prop_assert_eq!(parsed, reads);
    }

    #[test]
    fn interleaved_pairs_roundtrip(reads in proptest::collection::vec(arb_read(), 1..12)) {
        let pairs: Vec<ReadPair> = reads
            .into_iter()
            .map(|r| {
                let mut r2 = r.clone();
                r2.seq.reverse();
                r2.qual.reverse();
                ReadPair::new(r, r2).unwrap()
            })
            .collect();
        let bytes = fastq::pairs_to_interleaved_bytes(&pairs);
        let back = fastq::pairs_from_interleaved_bytes(&bytes).unwrap();
        prop_assert_eq!(back, pairs);
    }

    #[test]
    fn bam_roundtrip_preserves_records(records in proptest::collection::vec(arb_sam_record(), 0..60)) {
        let header = SamHeader::new(vec![ReferenceSeq { name: "chr1".into(), len: 2_000_000 }]);
        let bytes = bam::write_bam(&header, &records);
        let (h2, r2) = bam::read_bam(&bytes).unwrap();
        prop_assert_eq!(h2, header);
        prop_assert_eq!(r2, records);
    }

    #[test]
    fn partition_split_is_a_partition(n_pairs in 0usize..200, parts in 1usize..16) {
        let pairs: Vec<ReadPair> = (0..n_pairs)
            .map(|i| {
                let r = FastqRecord { name: format!("p{i}"), seq: b"ACGT".to_vec(), qual: vec![30; 4] };
                ReadPair::new(r.clone(), r).unwrap()
            })
            .collect();
        let split = fastq::split_pairs_into_partitions(pairs.clone(), parts);
        prop_assert_eq!(split.len(), parts);
        let flat: Vec<ReadPair> = split.concat();
        prop_assert_eq!(flat, pairs); // order-preserving, lossless
    }
}
