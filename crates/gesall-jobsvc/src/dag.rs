//! DAG execution on the job service: submit a stage graph once and a
//! coordinator thread dispatches each stage the moment its parents
//! commit, so ready siblings run concurrently under the ordinary
//! capacity / borrowing machinery. A failed stage fails exactly its
//! descendants — typed [`JobSvcError::UpstreamFailed`] naming the
//! root-cause stage — and never its cousins: independent branches run
//! to completion regardless.
//!
//! Graph validation reuses `gesall_core::dag` (the same Kahn walk the
//! pipeline executor uses), so duplicate names, unknown parents, and
//! cycles are rejected synchronously at submit with
//! [`JobSvcError::InvalidDag`] instead of hanging the coordinator.

use std::collections::HashMap;
use std::thread::JoinHandle;

use gesall_core::dag::{DagSpec, StageSpec};
use gesall_telemetry::MetricsRegistry;

use crate::service::{JobHandle, JobOutput, JobSpec, JobSvcError};
use crate::keys;

/// One node of a service DAG: a named [`JobSpec`] plus the names of the
/// stages whose completion it requires.
pub struct DagNodeSpec {
    pub name: String,
    pub parents: Vec<String>,
    pub spec: JobSpec,
}

impl DagNodeSpec {
    pub fn new(name: impl Into<String>, parents: &[&str], spec: JobSpec) -> DagNodeSpec {
        DagNodeSpec {
            name: name.into(),
            parents: parents.iter().map(|p| p.to_string()).collect(),
            spec,
        }
    }
}

/// Where one stage of a submitted DAG stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageStatus {
    /// Parents have not all committed yet.
    Waiting,
    /// Handed to the scheduler (queued or running).
    Submitted,
    Completed,
    /// The stage's own job failed (or was rejected at submit).
    Failed(JobSvcError),
    /// A transitive parent failed; this stage never ran. `upstream`
    /// names the root-cause stage.
    UpstreamFailed { upstream: String },
}

impl StageStatus {
    fn is_terminal(&self) -> bool {
        !matches!(self, StageStatus::Waiting | StageStatus::Submitted)
    }
}

struct NodeState {
    status: StageStatus,
    /// Held until the [`DagHandle`] goes away, so stage namespaces stay
    /// under retention while the caller may still read outputs.
    handle: Option<JobHandle>,
    output: Option<JobOutput>,
}

pub(crate) type SubmitFn = Box<dyn Fn(JobSpec) -> Result<JobHandle, JobSvcError> + Send>;

/// Handle to a submitted DAG. Dropping it joins the coordinator (the
/// DAG runs to its terminal state) and then releases every stage job's
/// retention.
pub struct DagHandle {
    nodes: std::sync::Arc<parking_lot::Mutex<HashMap<String, NodeState>>>,
    order: Vec<String>,
    coordinator: Option<JoinHandle<()>>,
}

impl DagHandle {
    /// Block until every stage is terminal. Returns the first failure
    /// in topological order — which is always a root cause, since a
    /// stage's own failure precedes its descendants' `UpstreamFailed`.
    pub fn wait(&mut self) -> Result<(), JobSvcError> {
        if let Some(j) = self.coordinator.take() {
            let _ = j.join();
        }
        let nodes = self.nodes.lock();
        for name in &self.order {
            match &nodes[name].status {
                StageStatus::Failed(e) => return Err(e.clone()),
                StageStatus::UpstreamFailed { upstream } => {
                    return Err(JobSvcError::UpstreamFailed {
                        stage: name.clone(),
                        upstream: upstream.clone(),
                    })
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The named stage's current status (`None` for an unknown name).
    pub fn stage_status(&self, name: &str) -> Option<StageStatus> {
        self.nodes.lock().get(name).map(|n| n.status.clone())
    }

    /// Take a completed stage's output (once).
    pub fn take_output(&self, name: &str) -> Option<JobOutput> {
        self.nodes.lock().get_mut(name).and_then(|n| n.output.take())
    }

    /// Stage names in the validated topological order.
    pub fn order(&self) -> &[String] {
        &self.order
    }
}

impl Drop for DagHandle {
    fn drop(&mut self) {
        if let Some(j) = self.coordinator.take() {
            let _ = j.join();
        }
    }
}

impl std::fmt::Debug for DagHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nodes = self.nodes.lock();
        let mut d = f.debug_map();
        for name in &self.order {
            d.entry(&name, &nodes[name].status);
        }
        d.finish()
    }
}

/// Validate the graph and spawn its coordinator. `submit` is the
/// service's tenant-bound submission closure; `registry`/`tenant` feed
/// the `jobsvc.dag.*` counters.
pub(crate) fn launch(
    nodes: Vec<DagNodeSpec>,
    submit: SubmitFn,
    registry: MetricsRegistry,
    tenant: String,
) -> Result<DagHandle, JobSvcError> {
    let spec = DagSpec {
        stages: nodes
            .iter()
            .map(|n| StageSpec {
                name: n.name.clone(),
                parents: n.parents.clone(),
                code_version: 1,
                config_fp: 0,
            })
            .collect(),
    };
    let order = spec
        .topo_order()
        .map_err(|e| JobSvcError::InvalidDag(e.to_string()))?;

    let mut specs: HashMap<String, JobSpec> = HashMap::new();
    let mut states: HashMap<String, NodeState> = HashMap::new();
    for n in nodes {
        states.insert(
            n.name.clone(),
            NodeState {
                status: StageStatus::Waiting,
                handle: None,
                output: None,
            },
        );
        specs.insert(n.name, n.spec);
    }
    let states = std::sync::Arc::new(parking_lot::Mutex::new(states));

    let coordinator = {
        let states = states.clone();
        let order = order.clone();
        std::thread::Builder::new()
            .name("jobsvc-dag".into())
            .spawn(move || coordinate(spec, order, specs, states, submit, registry, tenant))
            .expect("spawn jobsvc dag coordinator")
    };
    Ok(DagHandle {
        nodes: states,
        order,
        coordinator: Some(coordinator),
    })
}

fn coordinate(
    spec: DagSpec,
    order: Vec<String>,
    mut specs: HashMap<String, JobSpec>,
    states: std::sync::Arc<parking_lot::Mutex<HashMap<String, NodeState>>>,
    submit: SubmitFn,
    registry: MetricsRegistry,
    tenant: String,
) {
    // Marks `failed`'s not-yet-terminal descendants UpstreamFailed,
    // attributing all of them to the root cause. Descendants of an
    // already-UpstreamFailed stage keep their original attribution
    // (first failure wins).
    let fail_downstream = |failed: &str| {
        let descendants = spec.descendants(failed);
        let mut st = states.lock();
        let mut n_failed = 0u64;
        for d in &descendants {
            let node = st.get_mut(d).expect("descendant exists");
            if !node.status.is_terminal() {
                node.status = StageStatus::UpstreamFailed {
                    upstream: failed.to_string(),
                };
                n_failed += 1;
            }
        }
        if n_failed > 0 {
            registry
                .counter(keys::DAG_STAGES_UPSTREAM_FAILED)
                .add(n_failed);
            registry
                .counter(&format!("{}.{}", keys::DAG_STAGES_UPSTREAM_FAILED, tenant))
                .add(n_failed);
        }
    };

    loop {
        // Phase 1: submit every waiting stage whose parents have all
        // committed — all ready siblings are in the scheduler's hands
        // before the coordinator blocks, so they contend for slots
        // concurrently like any other jobs.
        for name in &order {
            let ready = {
                let st = states.lock();
                matches!(st[name].status, StageStatus::Waiting)
                    && spec
                        .stage(name)
                        .expect("stage exists")
                        .parents
                        .iter()
                        .all(|p| matches!(st[p].status, StageStatus::Completed))
            };
            if !ready {
                continue;
            }
            let job_spec = specs.remove(name).expect("spec not yet submitted");
            match submit(job_spec) {
                Ok(h) => {
                    let mut st = states.lock();
                    let node = st.get_mut(name).expect("stage exists");
                    node.status = StageStatus::Submitted;
                    node.handle = Some(h);
                }
                Err(e) => {
                    states.lock().get_mut(name).expect("stage exists").status =
                        StageStatus::Failed(e);
                    fail_downstream(name);
                }
            }
        }

        // Phase 2: block on the topologically-first in-flight stage.
        // Its completion is what can unblock new work; later in-flight
        // siblings keep running while we wait.
        let next = order.iter().find(|n| {
            matches!(states.lock()[n.as_str()].status, StageStatus::Submitted)
        });
        let Some(name) = next else {
            // Nothing in flight: every stage is terminal or
            // permanently blocked (which fail_downstream prevents), so
            // the DAG is done.
            return;
        };
        // Take the handle out so the blocking wait holds no lock
        // (stage_status / take_output stay responsive), then put it
        // back — it must outlive the DAG so retention holds until the
        // DagHandle goes away.
        let handle = states
            .lock()
            .get_mut(name.as_str())
            .expect("stage exists")
            .handle
            .take()
            .expect("submitted stage has a handle");
        let result = handle.wait();
        let mut st = states.lock();
        let node = st.get_mut(name.as_str()).expect("stage exists");
        match result {
            Ok(()) => {
                node.output = handle.take_output();
                node.status = StageStatus::Completed;
            }
            Err(e) => {
                node.status = StageStatus::Failed(e);
            }
        }
        node.handle = Some(handle);
        let failed = matches!(st[name.as_str()].status, StageStatus::Failed(_));
        drop(st);
        if failed {
            fail_downstream(name);
        }
    }
}
