//! # gesall-jobsvc
//!
//! The multi-tenant job service: the YARN resource-manager layer the
//! paper's platform runs under, actually exercised. A long-lived
//! [`JobService`] owns a `GesallPlatform` (engine + DFS) and serves
//! many tenants concurrently:
//!
//! * **Submission API** — [`JobService::submit`]`(tenant, JobSpec) ->`
//!   [`JobHandle`] with status / wait / cancel, backed by a
//!   condvar-parked dispatcher thread (the same discipline as the
//!   engine's scheduler loops: no busy-polling, every state change
//!   notifies).
//! * **Capacity scheduler** — each tenant holds a configured *share* of
//!   the cluster's container slots. Idle capacity is borrowed
//!   elastically (a job may run wider than its tenant's share while
//!   nobody else wants the slots); when an under-share tenant queues
//!   work the scheduler shrinks borrowers' [`SlotLease`] grants and
//!   hands the freed slots over as running attempts drain —
//!   preemption-free reclaim. Within a tenant, queued jobs are ordered
//!   by accrued deficit (jobs passed over build priority), degrading to
//!   FIFO for equal demands.
//! * **Admission control** — per-tenant quotas on queued jobs and
//!   in-flight container slots, rejected with typed
//!   [`JobSvcError::QuotaExceeded`] / [`JobSvcError::TenantUnknown`].
//! * **Live retention** — every job runs inside its own DFS namespace
//!   (`/{tenant}/{job}/…`, shuffle transit at
//!   `/{tenant}/{job}/shuffle-{run}/…`). The namespace is swept with
//!   `Dfs::sweep_prefix` when the job is cancelled
//!   (`dfs.retention.swept.cancelled`), when its handle is dropped, or
//!   when its TTL lapses (`dfs.retention.swept.ttl`) — the runtime
//!   counterpart of the startup-only `sweep_orphans` crash sweep.
//!
//! Everything is observable through a [`MetricsRegistry`]: see [`keys`]
//! for the `jobsvc.*` counter/gauge/histogram families.
//!
//! Determinism: job identifiers are monotone per tenant (never
//! wall-clock derived), scheduling decisions break ties on integer
//! cross-products and lexicographic tenant names, and the engine
//! underneath keeps its seeded `FaultPlan` guarantees — reruns of the
//! same seed produce the same transit paths and attempt histories.

pub mod dag;
pub mod sched;
pub mod service;

pub use dag::{DagHandle, DagNodeSpec, StageStatus};
pub use service::{
    JobCtx, JobHandle, JobOutput, JobService, JobSpec, JobStatus, JobSvcConfig, JobSvcError,
    TenantConfig,
};

pub use gesall_mapreduce::lease::{LeasePermit, SlotLease};
pub use gesall_telemetry::MetricsRegistry;

/// Metric names the job service maintains on its registry. Per-tenant
/// variants append `.{tenant}` to the listed name.
pub mod keys {
    /// Gauge: jobs currently queued (not yet dispatched), service-wide;
    /// `jobsvc.queue.depth.{tenant}` tracks one tenant's depth.
    pub const QUEUE_DEPTH: &str = "jobsvc.queue.depth";
    /// Histogram of submit→dispatch latency in nanoseconds;
    /// `jobsvc.queue.wait.nanos.{tenant}` is the per-tenant histogram
    /// the fairness gate reads p90 from.
    pub const QUEUE_WAIT_NANOS: &str = "jobsvc.queue.wait.nanos";
    /// Container slots granted to dispatched jobs (initial grants and
    /// elastic growth).
    pub const SLOTS_GRANTED: &str = "jobsvc.slots.granted";
    /// Slots granted beyond the receiving tenant's fair entitlement —
    /// idle capacity borrowed YARN-style.
    pub const SLOTS_BORROWED: &str = "jobsvc.slots.borrowed";
    /// Slots harvested back after a lease shrink drained — the
    /// preemption-free reclaim path.
    pub const SLOTS_RECLAIMED: &str = "jobsvc.slots.reclaimed";
    /// Jobs accepted by admission control.
    pub const JOBS_ADMITTED: &str = "jobsvc.jobs.admitted";
    /// Jobs rejected (quota or unknown tenant).
    pub const JOBS_REJECTED: &str = "jobsvc.jobs.rejected";
    /// Jobs cancelled (queued or running).
    pub const JOBS_CANCELLED: &str = "jobsvc.jobs.cancelled";
    /// Jobs that ran to successful completion.
    pub const JOBS_COMPLETED: &str = "jobsvc.jobs.completed";
    /// Jobs whose work function failed (error or panic).
    pub const JOBS_FAILED: &str = "jobsvc.jobs.failed";
    /// Stage DAGs accepted by [`JobService::submit_dag`]
    /// (`crate::JobService::submit_dag`).
    pub const DAGS_SUBMITTED: &str = "jobsvc.dags.submitted";
    /// DAG stages that never ran because a transitive upstream stage
    /// failed.
    pub const DAG_STAGES_UPSTREAM_FAILED: &str = "jobsvc.dag.stages.upstream_failed";
}
