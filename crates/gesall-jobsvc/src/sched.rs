//! Capacity-scheduler arithmetic, kept pure so fairness properties are
//! unit-testable without threads.
//!
//! The model is YARN's capacity scheduler reduced to its essentials:
//! every *active* tenant (one with queued or running work) is entitled
//! to `share / Σ shares × total_slots` container slots. A tenant using
//! fewer is *under share*; slots it isn't using may be borrowed by
//! others, but the moment it queues work the borrowers are shrunk back
//! toward their entitlement and the draining slots flow to it.
//!
//! All comparisons are integer cross-products with lexicographic
//! tie-breaks — no floats, no hash-order, so a given state always
//! schedules the same way.

use std::collections::BTreeMap;

/// One tenant's scheduling-relevant state, as the picker sees it.
#[derive(Debug, Clone)]
pub struct TenantView {
    pub name: String,
    /// Configured share weight (> 0).
    pub share: u32,
    /// Container slots currently granted to the tenant's running jobs.
    pub inflight: usize,
    /// Whether the tenant has queued work.
    pub has_queued: bool,
    /// Slots the tenant may still be granted before hitting its
    /// in-flight quota.
    pub quota_room: usize,
}

/// Fair entitlement of each active tenant: `share / Σ shares × total`,
/// floored, but never below 1 (a tenant with work always deserves one
/// container). Inactive tenants are entitled to nothing — their unused
/// share is what others borrow.
pub fn entitlements(total_slots: usize, active: &[(&str, u32)]) -> BTreeMap<String, usize> {
    let sum: u64 = active.iter().map(|&(_, s)| s as u64).sum();
    let mut out = BTreeMap::new();
    if sum == 0 {
        return out;
    }
    for &(name, share) in active {
        let ent = ((share as u64 * total_slots as u64) / sum) as usize;
        out.insert(name.to_string(), ent.max(1));
    }
    out
}

/// Pick the tenant whose queued work should be served next: the one
/// with the lowest share-normalized usage (`inflight / share`), i.e.
/// the most under-share — exactly "queued jobs from an under-share
/// tenant get the next freed slots". Tenants without queued work or
/// without quota room are not candidates. Ties break on name, so the
/// decision is total.
pub fn pick_tenant(tenants: &[TenantView]) -> Option<&TenantView> {
    tenants
        .iter()
        .filter(|t| t.has_queued && t.quota_room > 0 && t.share > 0)
        .min_by(|a, b| {
            // a.inflight/a.share < b.inflight/b.share, cross-multiplied.
            let lhs = a.inflight as u64 * b.share as u64;
            let rhs = b.inflight as u64 * a.share as u64;
            lhs.cmp(&rhs).then_with(|| a.name.cmp(&b.name))
        })
}

/// How many of the `grant` slots about to be handed to a tenant sit
/// beyond its fair entitlement — the borrowed portion, charged to
/// `jobsvc.slots.borrowed`.
pub fn borrowed_delta(inflight_before: usize, grant: usize, entitlement: usize) -> usize {
    let over_after = (inflight_before + grant).saturating_sub(entitlement);
    let over_before = inflight_before.saturating_sub(entitlement);
    over_after - over_before.min(over_after)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str, share: u32, inflight: usize, has_queued: bool, room: usize) -> TenantView {
        TenantView {
            name: name.into(),
            share,
            inflight,
            has_queued,
            quota_room: room,
        }
    }

    #[test]
    fn entitlements_split_by_share_with_floor_one() {
        let e = entitlements(8, &[("a", 3), ("b", 1)]);
        assert_eq!(e["a"], 6);
        assert_eq!(e["b"], 2);
        // A sliver tenant still gets one slot.
        let e = entitlements(4, &[("a", 100), ("b", 1)]);
        assert_eq!(e["b"], 1);
        assert!(entitlements(4, &[]).is_empty());
    }

    #[test]
    fn picks_most_under_share_tenant() {
        // b uses 1 of share 1 (normalized 1.0); a uses 1 of share 4
        // (0.25) — a is more under-share.
        let ts = vec![t("b", 1, 1, true, 10), t("a", 4, 1, true, 10)];
        assert_eq!(pick_tenant(&ts).unwrap().name, "a");
        // Equal normalized usage → lexicographic.
        let ts = vec![t("b", 1, 2, true, 10), t("a", 2, 4, true, 10)];
        assert_eq!(pick_tenant(&ts).unwrap().name, "a");
    }

    #[test]
    fn quota_and_queue_filter_candidates() {
        let ts = vec![
            t("a", 1, 0, true, 0),  // no quota room
            t("b", 1, 9, true, 5),  // eligible despite heavy usage
            t("c", 1, 0, false, 5), // nothing queued
        ];
        assert_eq!(pick_tenant(&ts).unwrap().name, "b");
        assert!(pick_tenant(&[t("a", 1, 0, false, 5)]).is_none());
    }

    #[test]
    fn borrowed_counts_only_beyond_entitlement() {
        // Entitled to 4: first 4 granted slots are owed, the rest borrowed.
        assert_eq!(borrowed_delta(0, 4, 4), 0);
        assert_eq!(borrowed_delta(0, 6, 4), 2);
        assert_eq!(borrowed_delta(4, 3, 4), 3);
        assert_eq!(borrowed_delta(5, 2, 4), 2);
        assert_eq!(borrowed_delta(2, 1, 4), 0);
    }
}
