//! The long-lived job service: submission API, dispatcher thread,
//! capacity scheduling over [`SlotLease`]s, admission control, and
//! live shuffle retention.
//!
//! # Architecture
//!
//! One dispatcher thread owns all scheduling decisions; it parks on a
//! condvar and is woken by submissions, job completions, cancellation,
//! and — crucially — by every [`LeasePermit`](crate::LeasePermit) drop
//! inside running jobs (the lease's `on_release` hook), which is how a
//! shrunk lease's draining slots flow to queued work without
//! preempting any running attempt.
//!
//! Each rebalance pass runs four phases under the service lock:
//!
//! 1. **harvest** — slots a shrunk lease has actually drained
//!    (`granted − max(target, active)`) return to the free pool
//!    (`jobsvc.slots.reclaimed`).
//! 2. **dispatch** — while free slots remain, [`sched::pick_tenant`]
//!    chooses the most under-share tenant with queued work; within the
//!    tenant the job with the highest accrued deficit (FIFO on ties)
//!    is started with `min(want, quota_room, free)` slots. Jobs passed
//!    over age their deficit by their tenant's share.
//! 3. **grow** — still-free slots widen running jobs below their
//!    requested width, most under-share tenant first; growth beyond
//!    the tenant's entitlement counts as `jobsvc.slots.borrowed`.
//! 4. **shrink** — if work is queued and nothing is free, tenants
//!    running beyond their entitlement have their jobs' lease limits
//!    cut toward the entitlement (never below one slot). Nothing stops
//!    running; the next permit releases simply aren't re-acquired, and
//!    phase 1 of a later pass harvests them.
//!
//! # Lock order
//!
//! `Svc::state` before any `JobShared::cell`. Lease hooks only notify
//! the condvar and never take either lock, so firing them while
//! holding `state` (e.g. from `set_limit` during shrink) is safe.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gesall_core::{GesallPlatform, RunOptions};
use gesall_dfs::{Dfs, SweepReason};
use gesall_mapreduce::lease::SlotLease;
use gesall_mapreduce::{GesallError, JobConfig};
use gesall_telemetry::MetricsRegistry;
use parking_lot::{Condvar, Mutex};

use crate::keys;
use crate::sched::{self, TenantView};

/// Whatever a job's work function chooses to return; downcast it back
/// with [`JobHandle::take_output`].
pub type JobOutput = Box<dyn Any + Send>;

type Work = Box<dyn FnOnce(&JobCtx) -> Result<JobOutput, GesallError> + Send + 'static>;

/// One tenant's registration: its share of the cluster and its
/// admission quotas.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    pub name: String,
    /// Fair-share weight; entitlement is `share / Σ shares × slots`.
    pub share: u32,
    /// Max jobs waiting in the queue before submits are rejected.
    pub max_queued: usize,
    /// Max container slots the tenant's running jobs may hold at once.
    pub max_inflight_slots: usize,
}

impl TenantConfig {
    pub fn new(name: impl Into<String>, share: u32) -> TenantConfig {
        TenantConfig {
            name: name.into(),
            share: share.max(1),
            max_queued: 1024,
            // Effectively unbounded, but finite so quota arithmetic
            // can't overflow.
            max_inflight_slots: usize::MAX / 2,
        }
    }

    pub fn max_queued(mut self, n: usize) -> TenantConfig {
        self.max_queued = n;
        self
    }

    pub fn max_inflight_slots(mut self, n: usize) -> TenantConfig {
        self.max_inflight_slots = n;
        self
    }
}

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct JobSvcConfig {
    pub tenants: Vec<TenantConfig>,
    /// Container slots the scheduler divides among tenants. Defaults to
    /// the platform cluster's `total_slots(1 vcore, 1 GiB)`.
    pub total_slots: Option<usize>,
    /// How long a finished job's DFS namespace is retained for
    /// inspection before the TTL sweep deletes it. Dropping the
    /// [`JobHandle`] releases retention early.
    pub retention_ttl: Duration,
}

impl Default for JobSvcConfig {
    fn default() -> JobSvcConfig {
        JobSvcConfig {
            tenants: Vec::new(),
            total_slots: None,
            retention_ttl: Duration::from_secs(300),
        }
    }
}

/// A unit of work submitted to the service.
pub struct JobSpec {
    pub name: String,
    /// Container slots the job wants (clamped to `[1, total_slots]`).
    pub slots: usize,
    /// Per-job retention TTL override.
    pub ttl: Option<Duration>,
    work: Work,
}

impl JobSpec {
    pub fn new(
        name: impl Into<String>,
        slots: usize,
        work: impl FnOnce(&JobCtx) -> Result<JobOutput, GesallError> + Send + 'static,
    ) -> JobSpec {
        JobSpec {
            name: name.into(),
            slots,
            ttl: None,
            work: Box::new(work),
        }
    }

    pub fn ttl(mut self, ttl: Duration) -> JobSpec {
        self.ttl = Some(ttl);
        self
    }
}

impl fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("slots", &self.slots)
            .field("ttl", &self.ttl)
            .finish_non_exhaustive()
    }
}

/// Typed submission / wait errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSvcError {
    /// Admission control rejected the submit. `quota` names which
    /// quota tripped (`"queued-jobs"` or `"inflight-slots"`).
    QuotaExceeded {
        tenant: String,
        quota: &'static str,
        limit: usize,
    },
    /// The tenant was never registered with the service.
    TenantUnknown(String),
    /// The job was cancelled before completing.
    Cancelled,
    /// The service is shutting down and no longer admits work.
    ShuttingDown,
    /// The job's work function returned an error or panicked.
    Failed(String),
    /// A DAG stage never ran because a transitive upstream stage
    /// failed. `upstream` names the root-cause stage.
    UpstreamFailed { stage: String, upstream: String },
    /// A submitted DAG was malformed: empty, duplicate stage names, an
    /// unknown parent, or a cycle.
    InvalidDag(String),
}

impl fmt::Display for JobSvcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobSvcError::QuotaExceeded {
                tenant,
                quota,
                limit,
            } => write!(f, "tenant {tenant} exceeded {quota} quota (limit {limit})"),
            JobSvcError::TenantUnknown(t) => write!(f, "unknown tenant {t}"),
            JobSvcError::Cancelled => write!(f, "job cancelled"),
            JobSvcError::ShuttingDown => write!(f, "job service shutting down"),
            JobSvcError::Failed(msg) => write!(f, "job failed: {msg}"),
            JobSvcError::UpstreamFailed { stage, upstream } => {
                write!(f, "stage {stage} not run: upstream stage {upstream} failed")
            }
            JobSvcError::InvalidDag(msg) => write!(f, "invalid dag: {msg}"),
        }
    }
}

impl std::error::Error for JobSvcError {}

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    Queued,
    Running,
    Completed,
    Failed,
    Cancelled,
}

struct StatusCell {
    status: JobStatus,
    output: Option<JobOutput>,
    error: Option<String>,
}

/// State shared between a job's handle, its runner thread, and the
/// scheduler.
struct JobShared {
    id: String,
    tenant: String,
    namespace: String,
    cell: Mutex<StatusCell>,
    done: Condvar,
    cancel: AtomicBool,
    /// Set when the handle is dropped: retention is released and the
    /// namespace may be swept as soon as the job is off the cluster.
    retention_released: AtomicBool,
    /// 0 until dispatched; then the global dispatch ordinal (1-based).
    dispatch_seq: AtomicU64,
}

struct QueuedJob {
    shared: Arc<JobShared>,
    want: usize,
    ttl: Duration,
    /// Accrued priority: aged by the tenant's share each rebalance pass
    /// the job sits queued, so passed-over work rises.
    deficit: u64,
    enqueued: Instant,
    work: Work,
}

struct RunningJob {
    shared: Arc<JobShared>,
    lease: SlotLease,
    /// Slots currently charged to the tenant (harvest shrinks this).
    granted: usize,
    /// The lease limit the scheduler last set (grow raises, shrink cuts).
    target: usize,
    /// The job's requested width — grow never exceeds it.
    want: usize,
    ttl: Duration,
}

#[derive(Debug)]
struct TenantRt {
    share: u32,
    max_queued: usize,
    max_inflight: usize,
    queued: usize,
    inflight: usize,
    /// Monotonic submission counter; job ids derive from it, never
    /// from the wall clock.
    submitted: u64,
}

struct Retirement {
    namespace: String,
    deadline: Instant,
}

struct SvcState {
    queued: Vec<QueuedJob>,
    running: Vec<RunningJob>,
    rt: BTreeMap<String, TenantRt>,
    free: usize,
    dispatch_seq: u64,
    retired: Vec<Retirement>,
    runners: Vec<JoinHandle<()>>,
    shutdown: bool,
}

struct Svc {
    platform: Arc<GesallPlatform>,
    total_slots: usize,
    retention_ttl: Duration,
    registry: MetricsRegistry,
    state: Mutex<SvcState>,
    wake: Condvar,
}

/// Handed to each job's work function: the shared platform plus the
/// job's lease and DFS namespace, pre-wired into engine/pipeline
/// configs.
pub struct JobCtx {
    platform: Arc<GesallPlatform>,
    lease: SlotLease,
    shared: Arc<JobShared>,
}

impl JobCtx {
    pub fn platform(&self) -> &GesallPlatform {
        &self.platform
    }

    pub fn dfs(&self) -> &Dfs {
        &self.platform.dfs
    }

    /// The job's private DFS prefix (`/{tenant}/{job-id}`). Everything
    /// written under it is swept by retention.
    pub fn namespace(&self) -> &str {
        &self.shared.namespace
    }

    pub fn lease(&self) -> &SlotLease {
        &self.lease
    }

    /// True once [`JobHandle::cancel`] was called. Long work functions
    /// should poll this (or call [`JobCtx::checkpoint`]) between
    /// stages; the service marks the job `Cancelled` regardless of
    /// what the function returns after the flag is set.
    pub fn cancelled(&self) -> bool {
        self.shared.cancel.load(Ordering::SeqCst)
    }

    /// Cooperative cancellation point: errors out if the job was
    /// cancelled, so `work` can simply `ctx.checkpoint()?` between
    /// stages.
    pub fn checkpoint(&self) -> Result<(), GesallError> {
        if self.cancelled() {
            Err(GesallError::Streaming(format!(
                "job {} cancelled",
                self.shared.id
            )))
        } else {
            Ok(())
        }
    }

    /// An engine [`JobConfig`] wired to this job's slot lease and
    /// shuffle namespace (transit lands under
    /// `{namespace}/shuffle-{run}/`).
    pub fn job_config(&self, name: &str, n_reducers: usize) -> JobConfig {
        JobConfig {
            name: format!("{}-{}", self.shared.id, name),
            n_reducers,
            slot_lease: Some(self.lease.clone()),
            shuffle_namespace: Some(self.shared.namespace.clone()),
            ..JobConfig::default()
        }
    }

    /// Pipeline [`RunOptions`] carrying the same lease + namespace.
    /// The content-addressed intermediate store points at the *tenant*
    /// prefix (`/{tenant}/cas/…`), not the job's own namespace, so
    /// successive jobs of one tenant hit each other's stage cache while
    /// tenants stay isolated from each other.
    pub fn run_options(&self) -> RunOptions {
        RunOptions {
            slot_lease: Some(self.lease.clone()),
            namespace: Some(self.shared.namespace.clone()),
            cas_root: Some(format!("/{}", self.shared.tenant)),
        }
    }
}

/// Handle to a submitted job. Dropping it releases retention: the
/// job's DFS namespace is swept as soon as the job is finished (or
/// immediately, if it already is).
pub struct JobHandle {
    svc: Weak<Svc>,
    job: Arc<JobShared>,
}

impl JobHandle {
    pub fn id(&self) -> &str {
        &self.job.id
    }

    pub fn tenant(&self) -> &str {
        &self.job.tenant
    }

    pub fn namespace(&self) -> &str {
        &self.job.namespace
    }

    pub fn status(&self) -> JobStatus {
        self.job.cell.lock().status
    }

    /// The global dispatch ordinal (1-based) once the scheduler has
    /// started the job; `None` while still queued.
    pub fn dispatch_seq(&self) -> Option<u64> {
        match self.job.dispatch_seq.load(Ordering::SeqCst) {
            0 => None,
            n => Some(n),
        }
    }

    /// Block until the job reaches a terminal state.
    pub fn wait(&self) -> Result<(), JobSvcError> {
        let mut cell = self.job.cell.lock();
        loop {
            match cell.status {
                JobStatus::Completed => return Ok(()),
                JobStatus::Cancelled => return Err(JobSvcError::Cancelled),
                JobStatus::Failed => {
                    return Err(JobSvcError::Failed(
                        cell.error.clone().unwrap_or_default(),
                    ))
                }
                JobStatus::Queued | JobStatus::Running => self.job.done.wait(&mut cell),
            }
        }
    }

    /// Take the completed job's output (once).
    pub fn take_output(&self) -> Option<JobOutput> {
        self.job.cell.lock().output.take()
    }

    /// Cancel the job. Queued jobs are removed and swept immediately;
    /// running jobs get the cooperative flag and are marked cancelled
    /// (and swept) when their work function returns. Returns `false`
    /// if the job had already finished.
    pub fn cancel(&self) -> bool {
        match self.svc.upgrade() {
            Some(svc) => svc.cancel(&self.job),
            None => false,
        }
    }
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        if let Some(svc) = self.svc.upgrade() {
            svc.release_retention(&self.job);
        }
    }
}

impl fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.job.id)
            .field("status", &self.status())
            .finish()
    }
}

/// The multi-tenant job service. See the [crate docs](crate) for the
/// full contract.
pub struct JobService {
    svc: Arc<Svc>,
    dispatcher: Option<JoinHandle<()>>,
}

impl JobService {
    pub fn new(platform: GesallPlatform, config: JobSvcConfig) -> JobService {
        let platform = Arc::new(platform);
        let total_slots = config
            .total_slots
            .unwrap_or_else(|| platform.engine.cluster().total_slots(1, 1024))
            .max(1);
        let mut rt = BTreeMap::new();
        for t in &config.tenants {
            rt.insert(
                t.name.clone(),
                TenantRt {
                    share: t.share,
                    max_queued: t.max_queued,
                    max_inflight: t.max_inflight_slots,
                    queued: 0,
                    inflight: 0,
                    submitted: 0,
                },
            );
        }
        let svc = Arc::new(Svc {
            platform,
            total_slots,
            retention_ttl: config.retention_ttl,
            registry: MetricsRegistry::new(),
            state: Mutex::new(SvcState {
                queued: Vec::new(),
                running: Vec::new(),
                rt,
                free: total_slots,
                dispatch_seq: 0,
                retired: Vec::new(),
                runners: Vec::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let dispatcher = {
            let svc = svc.clone();
            std::thread::Builder::new()
                .name("jobsvc-dispatcher".into())
                .spawn(move || Svc::dispatcher(svc))
                .expect("spawn jobsvc dispatcher")
        };
        JobService {
            svc,
            dispatcher: Some(dispatcher),
        }
    }

    /// Submit a job for `tenant`. Admission control runs synchronously;
    /// on acceptance the job queues and the dispatcher picks it up by
    /// capacity order.
    pub fn submit(&self, tenant: &str, spec: JobSpec) -> Result<JobHandle, JobSvcError> {
        self.svc.submit(tenant, spec)
    }

    /// Submit a stage DAG for `tenant`. Validation is synchronous —
    /// typed [`JobSvcError::InvalidDag`] on duplicates, unknown
    /// parents, or cycles — and execution is asynchronous: a
    /// coordinator thread submits each stage the moment its parents
    /// commit, so ready siblings contend for slots concurrently under
    /// the ordinary capacity machinery, and a failed stage fails
    /// exactly its descendants ([`JobSvcError::UpstreamFailed`]).
    pub fn submit_dag(
        &self,
        tenant: &str,
        nodes: Vec<crate::dag::DagNodeSpec>,
    ) -> Result<crate::dag::DagHandle, JobSvcError> {
        {
            let st = self.svc.state.lock();
            if st.shutdown {
                return Err(JobSvcError::ShuttingDown);
            }
            if !st.rt.contains_key(tenant) {
                return Err(JobSvcError::TenantUnknown(tenant.to_string()));
            }
        }
        let svc = self.svc.clone();
        let tenant_owned = tenant.to_string();
        let submit: crate::dag::SubmitFn =
            Box::new(move |spec| svc.submit(&tenant_owned, spec));
        let h = crate::dag::launch(
            nodes,
            submit,
            self.svc.registry.clone(),
            tenant.to_string(),
        )?;
        self.svc.count(keys::DAGS_SUBMITTED, tenant, 1);
        Ok(h)
    }

    /// The service's `jobsvc.*` / `dfs.retention.*`-adjacent metrics.
    /// (DFS retention counters live on the platform DFS's registry.)
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.svc.registry
    }

    pub fn platform(&self) -> &GesallPlatform {
        &self.svc.platform
    }

    /// Total container slots the scheduler is dividing.
    pub fn total_slots(&self) -> usize {
        self.svc.total_slots
    }

    /// Stop admitting work, drain queued + running jobs, sweep any
    /// namespaces still under retention, and join all threads.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        let Some(dispatcher) = self.dispatcher.take() else {
            return;
        };
        {
            let mut st = self.svc.state.lock();
            st.shutdown = true;
        }
        self.svc.wake.notify_all();
        let _ = dispatcher.join();
        let runners: Vec<_> = self.svc.state.lock().runners.drain(..).collect();
        for r in runners {
            let _ = r.join();
        }
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

impl fmt::Debug for JobService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.svc.state.lock();
        f.debug_struct("JobService")
            .field("total_slots", &self.svc.total_slots)
            .field("queued", &st.queued.len())
            .field("running", &st.running.len())
            .finish()
    }
}

impl Svc {
    fn submit(self: &Arc<Self>, tenant: &str, spec: JobSpec) -> Result<JobHandle, JobSvcError> {
        let mut st = self.state.lock();
        if st.shutdown {
            return Err(JobSvcError::ShuttingDown);
        }
        if !st.rt.contains_key(tenant) {
            self.registry.counter(keys::JOBS_REJECTED).add(1);
            return Err(JobSvcError::TenantUnknown(tenant.to_string()));
        }
        let rt = st.rt.get_mut(tenant).expect("tenant present");
        if rt.queued >= rt.max_queued {
            let limit = rt.max_queued;
            drop(st);
            self.count(keys::JOBS_REJECTED, tenant, 1);
            return Err(JobSvcError::QuotaExceeded {
                tenant: tenant.to_string(),
                quota: "queued-jobs",
                limit,
            });
        }
        // YARN-style "request exceeds queue maximum": a job asking for
        // more slots than the tenant may ever hold in flight is
        // rejected at admission rather than silently truncated.
        if spec.slots.clamp(1, self.total_slots) > rt.max_inflight {
            let limit = rt.max_inflight;
            drop(st);
            self.count(keys::JOBS_REJECTED, tenant, 1);
            return Err(JobSvcError::QuotaExceeded {
                tenant: tenant.to_string(),
                quota: "inflight-slots",
                limit,
            });
        }
        rt.submitted += 1;
        let id = format!("{}-job{:04}", tenant, rt.submitted);
        let namespace = format!("/{}/{}", tenant, id);
        let shared = Arc::new(JobShared {
            id,
            tenant: tenant.to_string(),
            namespace,
            cell: Mutex::new(StatusCell {
                status: JobStatus::Queued,
                output: None,
                error: None,
            }),
            done: Condvar::new(),
            cancel: AtomicBool::new(false),
            retention_released: AtomicBool::new(false),
            dispatch_seq: AtomicU64::new(0),
        });
        rt.queued += 1;
        let ttl = spec.ttl.unwrap_or(self.retention_ttl);
        st.queued.push(QueuedJob {
            shared: shared.clone(),
            want: spec.slots.clamp(1, self.total_slots),
            ttl,
            deficit: 0,
            enqueued: Instant::now(),
            work: spec.work,
        });
        self.set_queue_gauges(&st);
        drop(st);
        self.count(keys::JOBS_ADMITTED, tenant, 1);
        self.wake.notify_all();
        Ok(JobHandle {
            svc: Arc::downgrade(self),
            job: shared,
        })
    }

    /// Bump a counter in both its global and `.{tenant}` variants.
    fn count(&self, key: &str, tenant: &str, delta: u64) {
        self.registry.counter(key).add(delta);
        self.registry.counter(&format!("{key}.{tenant}")).add(delta);
    }

    fn set_queue_gauges(&self, st: &SvcState) {
        self.registry
            .gauge(keys::QUEUE_DEPTH)
            .set(st.queued.len() as i64);
        for (name, rt) in &st.rt {
            self.registry
                .gauge(&format!("{}.{}", keys::QUEUE_DEPTH, name))
                .set(rt.queued as i64);
        }
    }

    /// Entitlements over every registered tenant — the configured fair
    /// split. Usage beyond this is *borrowed* capacity (someone else's
    /// idle share), even if nobody currently wants it back.
    fn configured_entitlements(&self, st: &SvcState) -> BTreeMap<String, usize> {
        let all: Vec<(&str, u32)> = st.rt.iter().map(|(n, t)| (n.as_str(), t.share)).collect();
        sched::entitlements(self.total_slots, &all)
    }

    /// Entitlements over tenants that currently have work — what
    /// `shrink` pulls borrowers back toward. Idle tenants' shares stay
    /// borrowable; the moment one queues work it joins this set and
    /// the split tightens.
    fn active_entitlements(&self, st: &SvcState) -> BTreeMap<String, usize> {
        let active: Vec<(&str, u32)> = st
            .rt
            .iter()
            .filter(|(_, t)| t.queued > 0 || t.inflight > 0)
            .map(|(n, t)| (n.as_str(), t.share))
            .collect();
        sched::entitlements(self.total_slots, &active)
    }

    fn dispatcher(svc: Arc<Svc>) {
        let mut st = svc.state.lock();
        loop {
            svc.sweep_due_retirements(&mut st);
            svc.rebalance(&mut st);
            if st.shutdown && st.queued.is_empty() && st.running.is_empty() {
                // Final retention pass: the service owns these
                // namespaces; nobody is left to sweep them later.
                let leftover: Vec<Retirement> = st.retired.drain(..).collect();
                for r in leftover {
                    svc.platform.dfs.sweep_prefix(&r.namespace, SweepReason::Ttl);
                }
                return;
            }
            let now = Instant::now();
            let next_deadline = st
                .retired
                .iter()
                .map(|r| r.deadline.saturating_duration_since(now))
                .min();
            match next_deadline {
                Some(d) => {
                    svc.wake
                        .wait_for(&mut st, d.max(Duration::from_millis(1)));
                }
                None => svc.wake.wait(&mut st),
            }
        }
    }

    fn sweep_due_retirements(&self, st: &mut SvcState) {
        let now = Instant::now();
        let mut due = Vec::new();
        st.retired.retain(|r| {
            if r.deadline <= now {
                due.push(r.namespace.clone());
                false
            } else {
                true
            }
        });
        for ns in due {
            self.sweep_or_defer(st, ns, SweepReason::Ttl);
        }
    }

    /// Sweep a retired namespace, pin-aware: files under the prefix
    /// with live CAS pins refuse deletion (a dependent stage may still
    /// be range-reading them), so instead of silently dropping the
    /// namespace from retention the sweep is re-queued on a short
    /// deadline and the dispatcher retries until the last pin is
    /// released. Everything unpinned under the prefix is swept
    /// immediately either way.
    fn sweep_or_defer(&self, st: &mut SvcState, namespace: String, reason: SweepReason) {
        let report = self.platform.dfs.sweep_prefix_report(&namespace, reason);
        if report.pinned_skipped > 0 {
            st.retired.push(Retirement {
                namespace,
                deadline: Instant::now() + Duration::from_millis(50),
            });
            self.wake.notify_all();
        }
    }

    /// One scheduling pass: harvest → dispatch → grow → shrink, looped
    /// to a fixpoint. The loop matters because a shrink can free
    /// capacity *immediately* (a job holding fewer permits than its
    /// grant drains without waiting), and the dispatcher must hand
    /// those slots out in the same pass — a condvar notify fired while
    /// the dispatcher itself is running would be lost.
    fn rebalance(self: &Arc<Self>, st: &mut SvcState) {
        loop {
            self.harvest(st);
            self.dispatch_queued(st);
            self.grow(st);
            if !self.shrink(st) {
                break;
            }
        }
        // Age the jobs still waiting so they out-rank later arrivals
        // from the same tenant even across quota stalls.
        let shares: BTreeMap<String, u64> = st
            .rt
            .iter()
            .map(|(n, t)| (n.clone(), t.share as u64))
            .collect();
        for q in st.queued.iter_mut() {
            q.deficit += shares.get(&q.shared.tenant).copied().unwrap_or(1);
        }
    }

    /// Dispatch queued jobs to free slots, most under-share tenant
    /// first. Each iteration dispatches exactly one job, so the loop
    /// terminates.
    fn dispatch_queued(self: &Arc<Self>, st: &mut SvcState) {
        loop {
            if st.free == 0 || st.queued.is_empty() {
                break;
            }
            let views: Vec<TenantView> = st
                .rt
                .iter()
                .map(|(name, t)| TenantView {
                    name: name.clone(),
                    share: t.share,
                    inflight: t.inflight,
                    has_queued: t.queued > 0,
                    quota_room: t.max_inflight.saturating_sub(t.inflight),
                })
                .collect();
            let Some(pick) = sched::pick_tenant(&views) else {
                break;
            };
            let tenant = pick.name.clone();
            let quota_room = pick.quota_room;
            // Within the tenant: highest deficit wins, FIFO on ties.
            let idx = st
                .queued
                .iter()
                .enumerate()
                .filter(|(_, q)| q.shared.tenant == tenant)
                .max_by(|(ia, qa), (ib, qb)| qa.deficit.cmp(&qb.deficit).then(ib.cmp(ia)))
                .map(|(i, _)| i)
                .expect("picked tenant has queued work");
            let want = st.queued[idx].want;
            let grant = want.min(quota_room).min(st.free);
            if grant == 0 {
                break;
            }
            self.dispatch(st, idx, grant);
        }
    }

    /// Return drained slots from shrunk leases to the free pool. A
    /// slot is drained once the lease's limit has been cut below the
    /// granted width *and* the running attempts have actually fallen
    /// to the new limit — `granted − max(target, active)` is what the
    /// tenant no longer holds.
    fn harvest(&self, st: &mut SvcState) {
        let SvcState {
            running, rt, free, ..
        } = st;
        for job in running.iter_mut() {
            let floor = job.target.max(job.lease.active());
            let reclaim = job.granted.saturating_sub(floor);
            if reclaim > 0 {
                job.granted -= reclaim;
                let t = rt.get_mut(&job.shared.tenant).expect("tenant present");
                t.inflight -= reclaim;
                *free += reclaim;
                self.count(keys::SLOTS_RECLAIMED, &job.shared.tenant, reclaim as u64);
            }
        }
    }

    /// Widen running jobs into idle capacity.
    fn grow(&self, st: &mut SvcState) {
        loop {
            if st.free == 0 {
                break;
            }
            let ents = self.configured_entitlements(st);
            // Most under-share tenant's growable job first; ties keep
            // dispatch order (earliest running entry).
            let mut best: Option<usize> = None;
            for (i, job) in st.running.iter().enumerate() {
                let t = &st.rt[&job.shared.tenant];
                if job.granted >= job.want || t.inflight >= t.max_inflight {
                    continue;
                }
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        let bj = &st.running[b];
                        let bt = &st.rt[&bj.shared.tenant];
                        let lhs = t.inflight as u64 * bt.share as u64;
                        let rhs = bt.inflight as u64 * t.share as u64;
                        if lhs < rhs {
                            best = Some(i);
                        }
                    }
                }
            }
            let Some(i) = best else { break };
            let tenant = st.running[i].shared.tenant.clone();
            let ent = ents.get(&tenant).copied().unwrap_or(0);
            let SvcState {
                running, rt, free, ..
            } = st;
            let t = rt.get_mut(&tenant).expect("tenant present");
            let job = &mut running[i];
            let g = (job.want - job.granted)
                .min(t.max_inflight - t.inflight)
                .min(*free);
            if g == 0 {
                break;
            }
            let borrowed = sched::borrowed_delta(t.inflight, g, ent);
            job.granted += g;
            job.target = job.granted;
            job.lease.set_limit(job.target);
            t.inflight += g;
            *free -= g;
            self.count(keys::SLOTS_GRANTED, &tenant, g as u64);
            if borrowed > 0 {
                self.count(keys::SLOTS_BORROWED, &tenant, borrowed as u64);
            }
        }
    }

    /// Cut over-entitled tenants' lease limits toward their entitlement
    /// when queued work is starved. No attempt is killed: the lease
    /// simply stops re-admitting work, and `harvest` reclaims each slot
    /// as it drains. Overage is measured against current *targets* (not
    /// grants), so a repeated pass is idempotent — the first cut
    /// already brought the tenant's targets to its entitlement and a
    /// slow drain doesn't provoke deeper cuts. Returns whether anything
    /// was cut (the caller reruns harvest/dispatch to pick up slots
    /// that drained instantly).
    fn shrink(&self, st: &mut SvcState) -> bool {
        // Only shrink for demand that dispatch could actually serve: a
        // queued job whose tenant still has quota room. Shrinking for
        // quota-blocked work would just churn (grow hands the slots
        // straight back).
        let starved = st.free == 0
            && st
                .rt
                .values()
                .any(|t| t.queued > 0 && t.inflight < t.max_inflight);
        if !starved {
            return false;
        }
        let ents = self.active_entitlements(st);
        let mut target_sum: BTreeMap<&str, usize> = BTreeMap::new();
        for job in &st.running {
            *target_sum.entry(job.shared.tenant.as_str()).or_default() += job.target;
        }
        let mut over: BTreeMap<String, usize> = BTreeMap::new();
        for (name, sum) in target_sum {
            let ent = ents.get(name).copied().unwrap_or(0);
            let o = sum.saturating_sub(ent);
            if o > 0 {
                over.insert(name.to_string(), o);
            }
        }
        let mut cut_any = false;
        for job in st.running.iter_mut() {
            let Some(o) = over.get_mut(&job.shared.tenant) else {
                continue;
            };
            if *o == 0 {
                continue;
            }
            // Never cut a running job below one slot — that would
            // stall it forever (the engine's waves need at least one
            // admitted attempt to make progress).
            let cut = (*o).min(job.target.saturating_sub(1));
            if cut > 0 {
                job.target -= cut;
                job.lease.set_limit(job.target);
                *o -= cut;
                cut_any = true;
            }
        }
        cut_any
    }

    /// Start the queued job at `idx` with `grant` slots.
    fn dispatch(self: &Arc<Self>, st: &mut SvcState, idx: usize, grant: usize) {
        let q = st.queued.remove(idx);
        let tenant = q.shared.tenant.clone();
        let ents = self.configured_entitlements(st);
        let SvcState {
            rt,
            free,
            dispatch_seq,
            ..
        } = st;
        let t = rt.get_mut(&tenant).expect("tenant present");
        t.queued -= 1;
        *dispatch_seq += 1;
        q.shared.dispatch_seq.store(*dispatch_seq, Ordering::SeqCst);

        let waited = q.enqueued.elapsed().as_nanos() as u64;
        self.registry.histogram(keys::QUEUE_WAIT_NANOS).record(waited);
        self.registry
            .histogram(&format!("{}.{}", keys::QUEUE_WAIT_NANOS, tenant))
            .record(waited);

        let ent = ents.get(&tenant).copied().unwrap_or(0);
        let borrowed = sched::borrowed_delta(t.inflight, grant, ent);
        t.inflight += grant;
        *free -= grant;
        self.count(keys::SLOTS_GRANTED, &tenant, grant as u64);
        if borrowed > 0 {
            self.count(keys::SLOTS_BORROWED, &tenant, borrowed as u64);
        }
        self.set_queue_gauges(st);

        let lease = SlotLease::new(grant);
        {
            // Every permit release inside the job is a scheduling
            // event: a shrunk lease drains one slot at a time, and the
            // dispatcher should notice each one. The hook only
            // notifies — it must not lock state (it can fire while the
            // dispatcher holds it, e.g. from `set_limit` in `shrink`).
            let weak = Arc::downgrade(self);
            lease.on_release(move || {
                if let Some(svc) = weak.upgrade() {
                    svc.wake.notify_all();
                }
            });
        }

        {
            let mut cell = q.shared.cell.lock();
            cell.status = JobStatus::Running;
        }

        st.running.push(RunningJob {
            shared: q.shared.clone(),
            lease: lease.clone(),
            granted: grant,
            target: grant,
            want: q.want,
            ttl: q.ttl,
        });

        let svc = self.clone();
        let shared = q.shared.clone();
        let platform = self.platform.clone();
        let work = q.work;
        let runner = std::thread::Builder::new()
            .name(format!("jobsvc-{}", shared.id))
            .spawn(move || {
                let ctx = JobCtx {
                    platform,
                    lease,
                    shared: shared.clone(),
                };
                let result = catch_unwind(AssertUnwindSafe(|| (work)(&ctx)));
                svc.finish_job(&shared, result);
            })
            .expect("spawn jobsvc runner");
        st.runners.push(runner);
    }

    fn finish_job(
        self: &Arc<Self>,
        shared: &Arc<JobShared>,
        result: std::thread::Result<Result<JobOutput, GesallError>>,
    ) {
        let mut st = self.state.lock();
        let pos = st
            .running
            .iter()
            .position(|r| Arc::ptr_eq(&r.shared, shared))
            .expect("finished job is running");
        let job = st.running.remove(pos);
        {
            let t = st.rt.get_mut(&shared.tenant).expect("tenant present");
            t.inflight -= job.granted;
        }
        st.free += job.granted;

        let cancelled = shared.cancel.load(Ordering::SeqCst);
        let (status, output, error) = if cancelled {
            (JobStatus::Cancelled, None, None)
        } else {
            match result {
                Ok(Ok(out)) => (JobStatus::Completed, Some(out), None),
                Ok(Err(e)) => (JobStatus::Failed, None, Some(e.to_string())),
                Err(payload) => (JobStatus::Failed, None, Some(panic_text(&*payload))),
            }
        };
        match status {
            JobStatus::Completed => self.count(keys::JOBS_COMPLETED, &shared.tenant, 1),
            JobStatus::Cancelled => self.count(keys::JOBS_CANCELLED, &shared.tenant, 1),
            _ => self.count(keys::JOBS_FAILED, &shared.tenant, 1),
        }

        // Retention: cancelled jobs sweep now; finished jobs whose
        // handle is already gone sweep now; otherwise the namespace
        // lives until its TTL or the handle drop.
        if cancelled {
            self.sweep_or_defer(&mut st, shared.namespace.clone(), SweepReason::Cancelled);
        } else if shared.retention_released.load(Ordering::SeqCst) {
            self.sweep_or_defer(&mut st, shared.namespace.clone(), SweepReason::Ttl);
        } else {
            st.retired.push(Retirement {
                namespace: shared.namespace.clone(),
                deadline: Instant::now() + job.ttl,
            });
        }

        {
            let mut cell = shared.cell.lock();
            cell.status = status;
            cell.output = output;
            cell.error = error;
        }
        shared.done.notify_all();
        self.wake.notify_all();
    }

    fn cancel(self: &Arc<Self>, shared: &Arc<JobShared>) -> bool {
        let mut st = self.state.lock();
        if let Some(pos) = st
            .queued
            .iter()
            .position(|q| Arc::ptr_eq(&q.shared, shared))
        {
            let q = st.queued.remove(pos);
            {
                let t = st.rt.get_mut(&shared.tenant).expect("tenant present");
                t.queued -= 1;
            }
            self.set_queue_gauges(&st);
            shared.cancel.store(true, Ordering::SeqCst);
            {
                let mut cell = q.shared.cell.lock();
                cell.status = JobStatus::Cancelled;
            }
            drop(st);
            self.count(keys::JOBS_CANCELLED, &shared.tenant, 1);
            self.platform
                .dfs
                .sweep_prefix(&shared.namespace, SweepReason::Cancelled);
            shared.done.notify_all();
            self.wake.notify_all();
            return true;
        }
        if st.running.iter().any(|r| Arc::ptr_eq(&r.shared, shared)) {
            // Cooperative: the flag is observed by `JobCtx::cancelled`
            // / `checkpoint`; `finish_job` turns whatever the work
            // function returns into `Cancelled` and sweeps.
            shared.cancel.store(true, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Handle dropped: sweep now if the job is finished and still
    /// retained, otherwise flag it so `finish_job` sweeps immediately.
    /// "Now" is still pin-aware — a dropped handle must not yank a
    /// namespace out from under a dependent stage that holds live CAS
    /// pins into it; those entries stay until the pins release.
    fn release_retention(self: &Arc<Self>, shared: &Arc<JobShared>) {
        shared.retention_released.store(true, Ordering::SeqCst);
        let mut st = self.state.lock();
        if let Some(pos) = st
            .retired
            .iter()
            .position(|r| r.namespace == shared.namespace)
        {
            let r = st.retired.remove(pos);
            self.sweep_or_defer(&mut st, r.namespace, SweepReason::Ttl);
        }
    }
}

fn panic_text(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_core::PlatformConfig;
    use gesall_dfs::DfsConfig;
    use gesall_mapreduce::{ClusterResources, MapReduceEngine};

    fn service(total: usize, tenants: Vec<TenantConfig>) -> JobService {
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 2,
            block_size: 64 * 1024,
            replication: 1,
            ..DfsConfig::default()
        });
        let engine = MapReduceEngine::new(ClusterResources::uniform(2, 2, 4096));
        let platform = GesallPlatform::new(dfs, engine, PlatformConfig::default());
        JobService::new(
            platform,
            JobSvcConfig {
                tenants,
                total_slots: Some(total),
                // Long default so tests control sweeps explicitly via
                // per-job TTLs or handle drops.
                retention_ttl: Duration::from_secs(600),
            },
        )
    }

    /// Releases a blocker job even if the test panics first, so
    /// `JobService`'s draining drop can't hang a failing test.
    struct SetOnDrop(Arc<AtomicBool>);
    impl Drop for SetOnDrop {
        fn drop(&mut self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }

    fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_millis(deadline_ms);
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        cond()
    }

    #[test]
    fn submit_wait_output_roundtrip() {
        let svc = service(4, vec![TenantConfig::new("a", 1)]);
        let h = svc
            .submit("a", JobSpec::new("answer", 2, |_ctx| Ok(Box::new(42usize))))
            .unwrap();
        h.wait().unwrap();
        assert_eq!(h.status(), JobStatus::Completed);
        let out = h.take_output().unwrap().downcast::<usize>().unwrap();
        assert_eq!(*out, 42);
        assert_eq!(h.dispatch_seq(), Some(1));
        assert_eq!(h.id(), "a-job0001");
        assert_eq!(h.namespace(), "/a/a-job0001");
        assert_eq!(svc.metrics().counter(keys::JOBS_ADMITTED).get(), 1);
        assert_eq!(svc.metrics().counter(keys::JOBS_COMPLETED).get(), 1);
        assert_eq!(svc.metrics().counter("jobsvc.jobs.completed.a").get(), 1);
        svc.shutdown();
    }

    #[test]
    fn failures_surface_typed_with_message() {
        let svc = service(2, vec![TenantConfig::new("a", 1)]);
        let err = svc
            .submit(
                "a",
                JobSpec::new("bad", 1, |_ctx| {
                    Err(GesallError::Streaming("boom".into()))
                }),
            )
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, JobSvcError::Failed(ref m) if m.contains("boom")));
        // Panics are contained and reported, not propagated.
        let err = svc
            .submit("a", JobSpec::new("panics", 1, |_ctx| panic!("kapow")))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, JobSvcError::Failed(ref m) if m.contains("kapow")));
        assert_eq!(svc.metrics().counter(keys::JOBS_FAILED).get(), 2);
        svc.shutdown();
    }

    #[test]
    fn admission_control_rejects_typed() {
        let svc = service(1, vec![TenantConfig::new("a", 1).max_queued(1)]);
        assert!(matches!(
            svc.submit("ghost", JobSpec::new("x", 1, |_ctx| Ok(Box::new(())))),
            Err(JobSvcError::TenantUnknown(_))
        ));
        let release = Arc::new(AtomicBool::new(false));
        let _guard = SetOnDrop(release.clone());
        let r = release.clone();
        let blocker = svc
            .submit(
                "a",
                JobSpec::new("blocker", 1, move |_ctx| {
                    while !r.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Ok(Box::new(()))
                }),
            )
            .unwrap();
        assert!(wait_until(2000, || blocker.status() == JobStatus::Running));
        // One slot total and it's held → this queues.
        let queued = svc
            .submit("a", JobSpec::new("waits", 1, |_ctx| Ok(Box::new(()))))
            .unwrap();
        // Queue quota is 1 → the next submit is rejected, typed.
        match svc.submit("a", JobSpec::new("over", 1, |_ctx| Ok(Box::new(())))) {
            Err(JobSvcError::QuotaExceeded {
                tenant,
                quota,
                limit,
            }) => {
                assert_eq!(tenant, "a");
                assert_eq!(quota, "queued-jobs");
                assert_eq!(limit, 1);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // The rejection didn't disturb the jobs already admitted.
        release.store(true, Ordering::SeqCst);
        blocker.wait().unwrap();
        queued.wait().unwrap();
        assert_eq!(svc.metrics().counter(keys::JOBS_REJECTED).get(), 2);
        svc.shutdown();
    }

    #[test]
    fn cancel_queued_job_is_typed_and_counted() {
        let svc = service(1, vec![TenantConfig::new("a", 1)]);
        let release = Arc::new(AtomicBool::new(false));
        let _guard = SetOnDrop(release.clone());
        let r = release.clone();
        let blocker = svc
            .submit(
                "a",
                JobSpec::new("blocker", 1, move |_ctx| {
                    while !r.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Ok(Box::new(()))
                }),
            )
            .unwrap();
        assert!(wait_until(2000, || blocker.status() == JobStatus::Running));
        let victim = svc
            .submit("a", JobSpec::new("victim", 1, |_ctx| Ok(Box::new(()))))
            .unwrap();
        assert!(victim.cancel());
        assert_eq!(victim.wait().unwrap_err(), JobSvcError::Cancelled);
        assert!(victim.dispatch_seq().is_none());
        assert_eq!(svc.metrics().counter(keys::JOBS_CANCELLED).get(), 1);
        release.store(true, Ordering::SeqCst);
        blocker.wait().unwrap();
        svc.shutdown();
    }

    #[test]
    fn retention_sweeps_on_handle_drop_and_ttl() {
        let svc = service(2, vec![TenantConfig::new("a", 1)]);
        let write_scratch = |ctx: &JobCtx| {
            ctx.dfs()
                .write_file(&format!("{}/scratch/part-0", ctx.namespace()), b"tmp")
                .unwrap();
            Ok(Box::new(()) as JobOutput)
        };
        // Drop path: finished job's namespace survives until the handle
        // goes away, then is swept immediately.
        let h = svc.submit("a", JobSpec::new("w", 1, write_scratch)).unwrap();
        h.wait().unwrap();
        let ns = h.namespace().to_string();
        let dfs = svc.platform().dfs.clone();
        assert_eq!(dfs.list(&ns).len(), 1, "retained while handle is live");
        drop(h);
        assert!(dfs.list(&ns).is_empty(), "swept on handle drop");
        // TTL path: keep the handle; the dispatcher's timer sweeps
        // after the job's 40ms TTL lapses.
        let h = svc
            .submit(
                "a",
                JobSpec::new("w2", 1, write_scratch).ttl(Duration::from_millis(40)),
            )
            .unwrap();
        h.wait().unwrap();
        let ns2 = h.namespace().to_string();
        assert!(
            wait_until(2000, || dfs.list(&ns2).is_empty()),
            "TTL sweep did not fire"
        );
        assert!(
            dfs.metrics()
                .counter(gesall_dfs::fs::metrics_keys::RETENTION_SWEPT_TTL)
                .get()
                >= 2
        );
        svc.shutdown();
    }

    #[test]
    fn elastic_borrow_then_reclaim_for_late_tenant() {
        // Tenant a's job wants the whole cluster and gets it (borrowing
        // past its 50% entitlement) while b is idle; when b submits,
        // a's lease is shrunk and b runs with reclaimed slots — without
        // killing anything of a's.
        let svc = service(
            4,
            vec![TenantConfig::new("a", 1), TenantConfig::new("b", 1)],
        );
        let stop_a = Arc::new(AtomicBool::new(false));
        let _guard = SetOnDrop(stop_a.clone());
        let sa = stop_a.clone();
        let a = svc
            .submit(
                "a",
                JobSpec::new("wide", 4, move |ctx| {
                    // Hold permits like engine workers would: acquire up
                    // to the limit, drop + reacquire so shrinks drain.
                    let mut held = Vec::new();
                    while !sa.load(Ordering::SeqCst) {
                        while let Some(p) = ctx.lease().try_acquire() {
                            held.push(p);
                        }
                        let limit = ctx.lease().limit();
                        while held.len() > limit {
                            held.pop();
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Ok(Box::new(()))
                }),
            )
            .unwrap();
        let m = svc.metrics();
        let a_running = wait_until(2000, || a.status() == JobStatus::Running);
        // Half the cluster is a's configured entitlement (equal shares);
        // its 4-slot grant borrows b's idle half.
        let borrowed = wait_until(2000, || m.counter("jobsvc.slots.borrowed.a").get() >= 2);
        let b = svc
            .submit("b", JobSpec::new("late", 2, |_ctx| Ok(Box::new(()))))
            .unwrap();
        let b_result = b.wait();
        // Stop a before asserting anything, so a failed expectation
        // can't hang the draining shutdown.
        stop_a.store(true, Ordering::SeqCst);
        let a_result = a.wait();
        assert!(a_running);
        assert!(borrowed, "a never borrowed b's idle share");
        b_result.unwrap();
        a_result.unwrap();
        assert!(
            m.counter(keys::SLOTS_RECLAIMED).get() >= 1,
            "b ran on slots reclaimed from a's shrunk lease"
        );
        svc.shutdown();
    }

    #[test]
    fn dag_runs_ready_siblings_concurrently() {
        use crate::dag::{DagNodeSpec, StageStatus};
        use std::sync::atomic::AtomicUsize;

        let svc = service(4, vec![TenantConfig::new("a", 1)]);
        // Diamond: a → {b, c} → d. The rendezvous proves b and c were
        // on the cluster at the same time: each blocks until both have
        // arrived, so the DAG can only finish if the coordinator
        // submitted both siblings before waiting on either.
        let arrived = Arc::new(AtomicUsize::new(0));
        let rendezvous = |arrived: Arc<AtomicUsize>| {
            move |_ctx: &JobCtx| {
                arrived.fetch_add(1, Ordering::SeqCst);
                let deadline = Instant::now() + Duration::from_secs(10);
                while arrived.load(Ordering::SeqCst) < 2 {
                    if Instant::now() > deadline {
                        return Err(GesallError::Streaming("sibling never arrived".into()));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(Box::new(()) as JobOutput)
            }
        };
        let mut dag = svc
            .submit_dag(
                "a",
                vec![
                    DagNodeSpec::new("a", &[], JobSpec::new("root", 1, |_| Ok(Box::new(7usize)))),
                    DagNodeSpec::new(
                        "b",
                        &["a"],
                        JobSpec::new("left", 1, rendezvous(arrived.clone())),
                    ),
                    DagNodeSpec::new(
                        "c",
                        &["a"],
                        JobSpec::new("right", 1, rendezvous(arrived.clone())),
                    ),
                    DagNodeSpec::new(
                        "d",
                        &["b", "c"],
                        JobSpec::new("join", 1, |_| Ok(Box::new(()))),
                    ),
                ],
            )
            .unwrap();
        dag.wait().unwrap();
        for stage in ["a", "b", "c", "d"] {
            assert_eq!(dag.stage_status(stage), Some(StageStatus::Completed));
        }
        let root = dag.take_output("a").unwrap().downcast::<usize>().unwrap();
        assert_eq!(*root, 7);
        assert_eq!(svc.metrics().counter(keys::DAGS_SUBMITTED).get(), 1);
        svc.shutdown();
    }

    #[test]
    fn dag_failure_fails_exactly_its_descendants() {
        use crate::dag::{DagNodeSpec, StageStatus};

        let svc = service(2, vec![TenantConfig::new("a", 1)]);
        // a fails → b and c (its chain) are UpstreamFailed with a as
        // the root cause; independent d completes untouched.
        let mut dag = svc
            .submit_dag(
                "a",
                vec![
                    DagNodeSpec::new(
                        "a",
                        &[],
                        JobSpec::new("bad", 1, |_| {
                            Err(GesallError::Streaming("boom".into()))
                        }),
                    ),
                    DagNodeSpec::new("b", &["a"], JobSpec::new("mid", 1, |_| Ok(Box::new(())))),
                    DagNodeSpec::new("c", &["b"], JobSpec::new("leaf", 1, |_| Ok(Box::new(())))),
                    DagNodeSpec::new("d", &[], JobSpec::new("island", 1, |_| Ok(Box::new(())))),
                ],
            )
            .unwrap();
        // The first error in topo order is the root cause itself.
        let err = dag.wait().unwrap_err();
        assert!(matches!(err, JobSvcError::Failed(ref m) if m.contains("boom")));
        assert!(matches!(
            dag.stage_status("a"),
            Some(StageStatus::Failed(JobSvcError::Failed(_)))
        ));
        // Transitive attribution: c's upstream is a, not b — b never
        // failed, it just never ran.
        for stage in ["b", "c"] {
            assert_eq!(
                dag.stage_status(stage),
                Some(StageStatus::UpstreamFailed {
                    upstream: "a".to_string()
                }),
                "stage {stage}"
            );
        }
        assert_eq!(dag.stage_status("d"), Some(StageStatus::Completed));
        assert_eq!(
            svc.metrics().counter(keys::DAG_STAGES_UPSTREAM_FAILED).get(),
            2
        );
        svc.shutdown();
    }

    #[test]
    fn malformed_dags_are_rejected_typed() {
        use crate::dag::DagNodeSpec;

        let svc = service(2, vec![TenantConfig::new("a", 1)]);
        let cyclic = vec![
            DagNodeSpec::new("x", &["y"], JobSpec::new("x", 1, |_| Ok(Box::new(())))),
            DagNodeSpec::new("y", &["x"], JobSpec::new("y", 1, |_| Ok(Box::new(())))),
        ];
        assert!(matches!(
            svc.submit_dag("a", cyclic),
            Err(JobSvcError::InvalidDag(_))
        ));
        assert!(matches!(
            svc.submit_dag("ghost", vec![]),
            Err(JobSvcError::TenantUnknown(_))
        ));
        assert_eq!(svc.metrics().counter(keys::DAGS_SUBMITTED).get(), 0);
        svc.shutdown();
    }

    #[test]
    fn pinned_cas_entries_defer_namespace_sweep() {
        let svc = service(2, vec![TenantConfig::new("a", 1)]);
        let h = svc
            .submit(
                "a",
                JobSpec::new("w", 1, |ctx: &JobCtx| {
                    ctx.dfs()
                        .write_file(
                            &format!("{}/cas/0000000000000001", ctx.namespace()),
                            b"entry",
                        )
                        .unwrap();
                    Ok(Box::new(()) as JobOutput)
                }),
            )
            .unwrap();
        h.wait().unwrap();
        let ns = h.namespace().to_string();
        let dfs = svc.platform().dfs.clone();
        let path = format!("{ns}/cas/0000000000000001");
        // A dependent stage still range-reading the entry holds a pin.
        dfs.pin(&path).unwrap();
        // Handle drop releases retention — but the pinned entry must
        // survive the release sweep instead of racing the reader.
        drop(h);
        assert!(
            !wait_until(100, || dfs.list(&ns).is_empty()),
            "pinned CAS entry was swept by the handle-drop release"
        );
        assert!(
            dfs.metrics()
                .counter(gesall_dfs::fs::metrics_keys::RETENTION_PIN_SKIPS)
                .get()
                >= 1
        );
        // Pin released → the deferred retirement catches up and sweeps.
        dfs.unpin(&path);
        assert!(
            wait_until(2000, || dfs.list(&ns).is_empty()),
            "deferred sweep never fired after the pin was released"
        );
        svc.shutdown();
    }
}
