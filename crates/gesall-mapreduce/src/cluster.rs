//! YARN-like resource model: nodes offer (vcores, memory); tasks request
//! containers; the slots-per-node arithmetic decides how many mappers or
//! reducers run concurrently on each node — the "degree of parallelism"
//! knob the paper tunes throughout §4 (e.g. "each mapper needs 13 GB so
//! we can run 16 concurrent mappers per node").

/// Resources of one worker node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeResources {
    pub vcores: usize,
    pub memory_mb: usize,
}

/// The cluster a job runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterResources {
    pub nodes: Vec<NodeResources>,
}

impl ClusterResources {
    /// A uniform cluster of `n` nodes.
    pub fn uniform(n: usize, vcores: usize, memory_mb: usize) -> ClusterResources {
        ClusterResources {
            nodes: vec![NodeResources { vcores, memory_mb }; n],
        }
    }

    /// Paper Table 3, Cluster A (research): 15 data nodes, 24 cores,
    /// 64 GB each.
    pub fn cluster_a() -> ClusterResources {
        ClusterResources::uniform(15, 24, 64 * 1024)
    }

    /// Paper Table 3, Cluster B (NYGC production): 4 data nodes, 16
    /// cores (hyper-threading off per §4.5.1), 256 GB each.
    pub fn cluster_b() -> ClusterResources {
        ClusterResources::uniform(4, 16, 256 * 1024)
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Container slots node `i` can host for a task demanding
    /// (`task_vcores`, `task_memory_mb`).
    pub fn slots_on(&self, node: usize, task_vcores: usize, task_memory_mb: usize) -> usize {
        let n = &self.nodes[node];
        let by_cpu = n.vcores / task_vcores.max(1);
        let by_mem = n.memory_mb / task_memory_mb.max(1);
        by_cpu.min(by_mem)
    }

    /// Total slots across the cluster for a task shape.
    pub fn total_slots(&self, task_vcores: usize, task_memory_mb: usize) -> usize {
        (0..self.nodes.len())
            .map(|i| self.slots_on(i, task_vcores, task_memory_mb))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_shapes() {
        let a = ClusterResources::cluster_a();
        assert_eq!(a.n_nodes(), 15);
        // §4.2: "each mapper/reducer must be given 10GB ... 6 tasks are
        // the most we can run on one node" (memory-bound).
        assert_eq!(a.slots_on(0, 1, 10 * 1024), 6);
        assert_eq!(a.total_slots(1, 10 * 1024), 90); // "90 parallel tasks"

        let b = ClusterResources::cluster_b();
        assert_eq!(b.n_nodes(), 4);
        // §4.5.1: 13 GB per mapper ⇒ 16 concurrent mappers per node
        // (capped by 16 cores).
        assert_eq!(b.slots_on(0, 1, 13 * 1024), 16);
    }

    #[test]
    fn cpu_bound_slots() {
        let c = ClusterResources::uniform(2, 8, 1 << 20);
        assert_eq!(c.slots_on(0, 4, 1), 2); // cpu-bound
        assert_eq!(c.total_slots(4, 1), 4);
    }

    #[test]
    fn zero_demands_treated_as_one() {
        let c = ClusterResources::uniform(1, 4, 4096);
        assert_eq!(c.slots_on(0, 0, 0), 4);
    }
}
