//! Job counters — the numbers the paper's analysis keeps citing
//! ("72 million more records than the input are shuffled", "1.92× the
//! input data", spill counts, merge passes).
//!
//! The bag itself now lives in `gesall-telemetry`, backed by its
//! [`MetricsRegistry`](gesall_telemetry::MetricsRegistry): every `add`
//! is a lock-free atomic increment, and snapshots/`Debug` output are
//! deterministically sorted by key. This module keeps the well-known
//! key names and re-exports the type so engine code is unchanged.

pub use gesall_telemetry::Counters;

/// Well-known counter names.
pub mod keys {
    pub const MAP_INPUT_RECORDS: &str = "map.input.records";
    pub const MAP_OUTPUT_RECORDS: &str = "map.output.records";
    pub const MAP_OUTPUT_BYTES: &str = "map.output.bytes";
    pub const MAP_SPILLS: &str = "map.spills";
    pub const MAP_MERGE_SEGMENTS: &str = "map.merge.segments";
    pub const SHUFFLE_RECORDS: &str = "shuffle.records";
    pub const SHUFFLE_BYTES: &str = "shuffle.bytes";
    pub const SHUFFLE_BYTES_RAW: &str = "shuffle.bytes.raw";
    pub const REDUCE_INPUT_GROUPS: &str = "reduce.input.groups";
    pub const REDUCE_OUTPUT_RECORDS: &str = "reduce.output.records";
    pub const REDUCE_MERGE_PASSES: &str = "reduce.merge.passes";
    pub const REDUCE_MERGE_BYTES: &str = "reduce.merge.bytes";
    /// Nanoseconds spent converting between framework records and
    /// external-program bytes (the Fig. 6a overhead).
    pub const DATA_TRANSFORM_NANOS: &str = "wrapper.transform.nanos";
    /// Nanoseconds spent inside wrapped external programs.
    pub const EXTERNAL_PROGRAM_NANOS: &str = "wrapper.external.nanos";
    /// Payload bytes memcpy'd inside the streaming pipes (writer buffer
    /// fills, chunk churn, reader copy-outs). Kept under the `wrapper.`
    /// prefix because, like the wrapper timers, the bag it accumulates on
    /// is pipeline-cumulative rather than per-job.
    pub const WRAPPER_BYTES_COPIED: &str = "wrapper.bytes.copied";
    /// Task attempts that panicked and were retried (or aborted the job).
    pub const FAILED_ATTEMPTS: &str = "fault.failed.attempts";
    /// Speculative (backup) attempts launched for stragglers.
    pub const SPECULATIVE_LAUNCHED: &str = "fault.speculative.launched";
    /// Attempts whose committed-too-late results were discarded after a
    /// speculative race.
    pub const SPECULATIVE_WASTED: &str = "fault.speculative.wasted";
    /// Completed map tasks re-executed because the node holding their
    /// shuffle output died.
    pub const MAPS_RERUN_ON_NODE_LOSS: &str = "fault.maps.rerun.on.node.loss";
    /// Payload bytes memcpy'd on the record path (spill encode, compress,
    /// decompress, decode, segment fetch). The honest "bytes moved"
    /// gauge the zero-copy refactor is measured by.
    pub const BYTES_COPIED: &str = gesall_telemetry::mem_keys::BYTES_COPIED;
    /// Spill-scratch buffers handed out by the arena, total.
    pub const SPILL_ALLOCS: &str = gesall_telemetry::mem_keys::SPILL_ALLOCS;
    /// Spill-scratch buffers that were recycled rather than freshly
    /// allocated.
    pub const SPILL_REUSED: &str = gesall_telemetry::mem_keys::SPILL_REUSED;
    /// Released spill-scratch buffers dropped because the arena's
    /// free-list was already at its cap.
    pub const SPILL_EVICTED: &str = gesall_telemetry::mem_keys::SPILL_EVICTED;
    /// Spill batches handed to the background encoder pool.
    pub const SPILL_POOL_JOBS: &str = "spill.pool.jobs";
    /// Nanoseconds the spill-encoder pool spent executing jobs — divided
    /// by map wall-clock this is the bench-smoke overlap metric.
    pub const SPILL_POOL_BUSY_NANOS: &str = "spill.pool.busy.nanos";
    /// Spill submissions that blocked on the pool's bounded queue
    /// (backpressure events).
    pub const SPILL_POOL_SUBMIT_WAITS: &str = "spill.pool.submit.waits";
    /// Nanoseconds map tasks spent in the finish() drain barrier waiting
    /// for their outstanding async spills.
    pub const SPILL_POOL_DRAIN_WAIT_NANOS: &str = "spill.pool.drain.wait.nanos";
    /// Encoder workers the pool grew in response to sustained
    /// submit-wait pressure (autoscaling events).
    pub const SPILL_POOL_WORKERS_GROWN: &str = "spill.pool.workers.grown";
    /// Shuffle wire bytes a reducer fetched out of a DFS-transit map
    /// output (frames sliced from stored blocks). Disjoint from
    /// [`SHUFFLE_BYTES_MEMORY`]: with `shuffle_via_dfs` on, every
    /// shuffled byte should land here and the memory key should stay 0.
    pub const SHUFFLE_BYTES_DFS: &str = "shuffle.bytes.dfs";
    /// Shuffle wire bytes handed to a reducer as an in-memory refcount
    /// bump (the pre-DFS path, kept for `shuffle_via_dfs = false`).
    pub const SHUFFLE_BYTES_MEMORY: &str = "shuffle.bytes.memory";
    /// Payload bytes memcpy'd while assembling a map output's transit
    /// file for the DFS (the one deliberate durability copy of the
    /// DFS-transit shuffle). Tracked apart from [`BYTES_COPIED`] so the
    /// zero-copy record-path gauge keeps measuring the record path, not
    /// the transit layer's by-design write.
    pub const SHUFFLE_SHIP_BYTES_COPIED: &str = "shuffle.ship.bytes.copied";
    /// Peak decoded-side resident bytes of the streaming reduce merge:
    /// decompression scratch charged on cursor activation plus the head
    /// records under the merge heap, released as runs exhaust. Bounded
    /// by `merge_factor` × source-run size, not input size — the memory
    /// contract the streaming merge exists to provide. Summed across
    /// reducers on merge.
    pub const REDUCE_PEAK_RESIDENT: &str = gesall_telemetry::mem_keys::REDUCE_PEAK_RESIDENT;
    /// Completed map tasks whose shuffle-output home died but whose
    /// DFS-shipped output survived on a replica: the reducers re-fetch
    /// instead of the engine re-running the map.
    pub const MAPS_RESHIPPED_FROM_DFS: &str = "fault.maps.reshipped.from.dfs";
    /// Shuffle fetches re-attempted at the engine level after a
    /// retryable DFS error survived the DFS's own internal retries —
    /// the second tier of the gray-failure defence.
    pub const SHUFFLE_FETCH_RETRIES: &str = "shuffle.fetch.retries";
    /// Shuffle fetch bytes served by a replica on the reducer's own
    /// node (the locality-aware replica selection hit its affinity).
    pub const SHUFFLE_FETCH_BYTES_LOCAL: &str = "shuffle.fetch.bytes.local";
    /// Shuffle fetch bytes shipped from another node — an affinity
    /// miss, a hedge win on the remote replica, or a reducer with no
    /// co-located replica at all.
    pub const SHUFFLE_FETCH_BYTES_REMOTE: &str = "shuffle.fetch.bytes.remote";
    /// Map-output partition fetches that were already resident when the
    /// reduce merge asked for them — the bounded prefetch pipeline ran
    /// ahead of the loser-tree drain.
    pub const SHUFFLE_FETCH_PREFETCHED: &str = "shuffle.fetch.prefetched";
    /// Map-output segments that travelled the shuffle uncompressed.
    pub const SHUFFLE_SEGMENTS_RAW: &str = "shuffle.segments.raw";
    /// Map-output segments that travelled the shuffle compressed (shipped
    /// by reference, decoded once at the reduce-side merge).
    pub const SHUFFLE_SEGMENTS_COMPRESSED: &str = "shuffle.segments.compressed";
    /// Scheduler worker-loop iterations triggered by a condvar
    /// notification (work actually arrived or state changed).
    pub const SCHED_WAKEUPS: &str = "sched.wakeups";
    /// Scheduler worker-loop iterations triggered by the wait timing out
    /// with nothing to do (the old busy-poll, now counted).
    pub const SCHED_IDLE_TIMEOUTS: &str = "sched.idle.timeouts";
    /// Bit-parallel kernel telemetry (DESIGN.md §5): packed-rank words
    /// popcounted, banded-SW hits/fallbacks, radix passes. Re-exported so
    /// engine code reads kernel counters from the same keys module as
    /// everything else.
    pub use gesall_telemetry::kernel_keys::{
        OCC_WORDS_POPCOUNTED, SORT_COMPARISON_FALLBACKS, SORT_RADIX_PASSES, SW_BANDED_HITS,
        SW_FULL_FALLBACKS,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Behavior tests for the bag itself live in gesall-telemetry; this
    // checks the re-export keeps the engine-facing contract.
    #[test]
    fn reexported_counters_keep_engine_contract() {
        let c = Counters::new();
        c.add(keys::MAP_INPUT_RECORDS, 5);
        c.add(keys::MAP_INPUT_RECORDS, 2);
        c.add(keys::MAP_SPILLS, 1);
        assert_eq!(c.get(keys::MAP_INPUT_RECORDS), 7);
        let snap = c.snapshot();
        let mut sorted = snap.clone();
        sorted.sort();
        assert_eq!(snap, sorted, "snapshot must be key-sorted");
        let other = Counters::new();
        other.add(keys::MAP_SPILLS, 3);
        c.merge(&other);
        assert_eq!(c.get(keys::MAP_SPILLS), 4);
    }
}
