//! Job counters — the numbers the paper's analysis keeps citing
//! ("72 million more records than the input are shuffled", "1.92× the
//! input data", spill counts, merge passes).

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Well-known counter names.
pub mod keys {
    pub const MAP_INPUT_RECORDS: &str = "map.input.records";
    pub const MAP_OUTPUT_RECORDS: &str = "map.output.records";
    pub const MAP_OUTPUT_BYTES: &str = "map.output.bytes";
    pub const MAP_SPILLS: &str = "map.spills";
    pub const MAP_MERGE_SEGMENTS: &str = "map.merge.segments";
    pub const SHUFFLE_RECORDS: &str = "shuffle.records";
    pub const SHUFFLE_BYTES: &str = "shuffle.bytes";
    pub const SHUFFLE_BYTES_RAW: &str = "shuffle.bytes.raw";
    pub const REDUCE_INPUT_GROUPS: &str = "reduce.input.groups";
    pub const REDUCE_OUTPUT_RECORDS: &str = "reduce.output.records";
    pub const REDUCE_MERGE_PASSES: &str = "reduce.merge.passes";
    pub const REDUCE_MERGE_BYTES: &str = "reduce.merge.bytes";
    /// Nanoseconds spent converting between framework records and
    /// external-program bytes (the Fig. 6a overhead).
    pub const DATA_TRANSFORM_NANOS: &str = "wrapper.transform.nanos";
    /// Nanoseconds spent inside wrapped external programs.
    pub const EXTERNAL_PROGRAM_NANOS: &str = "wrapper.external.nanos";
    /// Task attempts that panicked and were retried (or aborted the job).
    pub const FAILED_ATTEMPTS: &str = "fault.failed.attempts";
    /// Speculative (backup) attempts launched for stragglers.
    pub const SPECULATIVE_LAUNCHED: &str = "fault.speculative.launched";
    /// Attempts whose committed-too-late results were discarded after a
    /// speculative race.
    pub const SPECULATIVE_WASTED: &str = "fault.speculative.wasted";
    /// Completed map tasks re-executed because the node holding their
    /// shuffle output died.
    pub const MAPS_RERUN_ON_NODE_LOSS: &str = "fault.maps.rerun.on.node.loss";
}

/// A concurrent bag of named `u64` counters.
#[derive(Clone, Default)]
pub struct Counters {
    inner: Arc<Mutex<BTreeMap<String, u64>>>,
}

impl Counters {
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Add `delta` to counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        let mut m = self.inner.lock();
        *m.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.inner.lock().get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Merge another counter bag into this one.
    pub fn merge(&self, other: &Counters) {
        let other = other.inner.lock().clone();
        let mut m = self.inner.lock();
        for (k, v) in other {
            *m.entry(k).or_insert(0) += v;
        }
    }
}

impl std::fmt::Debug for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.snapshot()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_snapshot() {
        let c = Counters::new();
        c.add("a", 5);
        c.add("a", 2);
        c.add("b", 1);
        assert_eq!(c.get("a"), 7);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(
            c.snapshot(),
            vec![("a".to_string(), 7), ("b".to_string(), 1)]
        );
    }

    #[test]
    fn merge_sums() {
        let a = Counters::new();
        let b = Counters::new();
        a.add("x", 1);
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn concurrent_adds() {
        let c = Counters::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add("n", 1);
                    }
                });
            }
        });
        assert_eq!(c.get("n"), 8000);
    }
}
