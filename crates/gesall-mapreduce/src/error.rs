//! Job-level errors surfaced by the fault-tolerant runtime.

use crate::runtime::TaskKind;
use std::fmt;

/// Why a job could not produce a result.
///
/// Task *attempts* failing is normal and handled by retry; these errors
/// mean the runtime exhausted its recovery options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GesallError {
    /// A task failed `attempts` times (the configured `max_attempts`),
    /// so the job was aborted. `last_error` is the panic message of the
    /// final attempt.
    TaskFailed {
        kind: TaskKind,
        task_id: usize,
        attempts: usize,
        last_error: String,
    },
    /// Every node in the cluster died while `pending_tasks` tasks still
    /// had no committed result.
    NoHealthyNodes { pending_tasks: usize },
    /// A streaming (external-program) pipeline failed outside any task —
    /// e.g. a wrapper thread panicked.
    Streaming(String),
    /// The runtime itself (not a task body) panicked.
    Runtime(String),
}

impl fmt::Display for GesallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GesallError::TaskFailed {
                kind,
                task_id,
                attempts,
                last_error,
            } => write!(
                f,
                "{kind:?} task {task_id} failed after {attempts} attempts: {last_error}"
            ),
            GesallError::NoHealthyNodes { pending_tasks } => write!(
                f,
                "no healthy nodes left with {pending_tasks} tasks outstanding"
            ),
            GesallError::Streaming(msg) => write!(f, "streaming pipeline failed: {msg}"),
            GesallError::Runtime(msg) => write!(f, "runtime failure: {msg}"),
        }
    }
}

impl std::error::Error for GesallError {}

/// Render a caught panic payload as a message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}
