//! Deterministic fault injection for the MapReduce runtime.
//!
//! A [`FaultPlan`] describes, ahead of time, which task attempts panic,
//! which run artificially slowly, and which nodes die when. Rate-based
//! panics are derived from a pure hash of `(seed, kind, task, attempt)`,
//! so the same plan injects the same faults on every run regardless of
//! thread interleaving — the property the seed-determinism tests assert.

use crate::runtime::TaskKind;
use std::collections::{HashMap, HashSet};

/// A scheduled node loss: `node` dies once `after_completed_maps`
/// map-task commits have happened (0 = before the first map commits).
/// Deaths fire during map waves, under the same scheduler lock as the
/// triggering commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeDeath {
    pub node: usize,
    pub after_completed_maps: usize,
}

/// A scheduled storage corruption: when a shuffle write's path contains
/// `path_contains`, flip a byte of the stored payload of its `block`-th
/// block's `replica`-th home. The block's checksum (computed before the
/// flip) stays honest, so the DFS detects the damage on first read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptBlockFault {
    pub path_contains: String,
    pub block: usize,
    pub replica: usize,
}

/// Storage-layer gray failures — lies, limps, and flakes rather than
/// clean deaths. Armed on the engine's shuffle DFS when a job starts
/// (see `MapReduceEngine::run_job`), so the whole matrix runs under the
/// same seeded, deterministic harness as task-level faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DfsFaults {
    pub corrupt_blocks: Vec<CorruptBlockFault>,
    /// `(node, fail_first_n)`: the node's next n replica reads fail
    /// with a retryable transient error.
    pub flaky_reads: Vec<(usize, u64)>,
    /// `(node, ms)`: every replica read served by the node sleeps
    /// first — hedged reads are the countermeasure under test.
    pub slow_nodes: Vec<(usize, u64)>,
}

impl DfsFaults {
    pub fn is_empty(&self) -> bool {
        self.corrupt_blocks.is_empty() && self.flaky_reads.is_empty() && self.slow_nodes.is_empty()
    }
}

/// A deterministic, seeded description of the faults to inject.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    map_panic_rate: f64,
    reduce_panic_rate: f64,
    /// Rate-based panics are only injected for attempt indices below this
    /// bound, so a task with enough retry budget always eventually
    /// succeeds (models transient faults). Explicit panics ignore it.
    panic_max_attempt: usize,
    explicit_panics: HashSet<(TaskKind, usize, usize)>,
    slowdowns: HashMap<(TaskKind, usize, usize), u64>,
    node_deaths: Vec<NodeDeath>,
    dfs_faults: DfsFaults,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::seeded(0)
    }
}

impl FaultPlan {
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            map_panic_rate: 0.0,
            reduce_panic_rate: 0.0,
            panic_max_attempt: 2,
            explicit_panics: HashSet::new(),
            slowdowns: HashMap::new(),
            node_deaths: Vec::new(),
            dfs_faults: DfsFaults::default(),
        }
    }

    /// Fraction of map attempts (with attempt index below the retry
    /// safety bound) that panic.
    pub fn with_map_panic_rate(mut self, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate));
        self.map_panic_rate = rate;
        self
    }

    /// Fraction of reduce attempts that panic.
    pub fn with_reduce_panic_rate(mut self, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate));
        self.reduce_panic_rate = rate;
        self
    }

    /// Rate-based panics only hit attempts with index `< bound`.
    pub fn with_panic_max_attempt(mut self, bound: usize) -> FaultPlan {
        self.panic_max_attempt = bound;
        self
    }

    /// Unconditionally panic one specific attempt.
    pub fn panic_on(mut self, kind: TaskKind, task: usize, attempt: usize) -> FaultPlan {
        self.explicit_panics.insert((kind, task, attempt));
        self
    }

    /// Stretch one specific attempt by `ms` of injected sleep before its
    /// body runs (a straggler; speculative execution's prey).
    pub fn slow_down(mut self, kind: TaskKind, task: usize, attempt: usize, ms: u64) -> FaultPlan {
        self.slowdowns.insert((kind, task, attempt), ms);
        self
    }

    /// Schedule `node` to die once `n` map commits have happened.
    pub fn kill_node_after_maps(mut self, node: usize, n: usize) -> FaultPlan {
        self.node_deaths.push(NodeDeath {
            node,
            after_completed_maps: n,
        });
        self
    }

    pub fn node_deaths(&self) -> &[NodeDeath] {
        &self.node_deaths
    }

    /// Corrupt a stored shuffle block: any write whose path contains
    /// `path_contains` (e.g. `"map-00002"`) gets the payload of its
    /// `block`-th block's `replica`-th home bit-flipped after the write
    /// lands. Verify-on-read must detect, quarantine, and repair it.
    pub fn corrupt_block(mut self, path_contains: &str, block: usize, replica: usize) -> FaultPlan {
        self.dfs_faults.corrupt_blocks.push(CorruptBlockFault {
            path_contains: path_contains.to_string(),
            block,
            replica,
        });
        self
    }

    /// Make `node`'s next `fail_first_n` replica reads fail with a
    /// retryable transient error (a flaking disk or NIC).
    pub fn flaky_read(mut self, node: usize, fail_first_n: u64) -> FaultPlan {
        self.dfs_faults.flaky_reads.push((node, fail_first_n));
        self
    }

    /// Make every replica read served by `node` sleep `ms` first — a
    /// limping-but-alive node, the prey of hedged reads.
    pub fn slow_node(mut self, node: usize, ms: u64) -> FaultPlan {
        self.dfs_faults.slow_nodes.push((node, ms));
        self
    }

    /// The storage-layer gray failures this plan injects.
    pub fn dfs_faults(&self) -> &DfsFaults {
        &self.dfs_faults
    }

    /// Deterministic: does this attempt panic?
    pub fn should_panic(&self, kind: TaskKind, task: usize, attempt: usize) -> bool {
        if self.explicit_panics.contains(&(kind, task, attempt)) {
            return true;
        }
        let rate = match kind {
            TaskKind::Map => self.map_panic_rate,
            TaskKind::Reduce => self.reduce_panic_rate,
        };
        if rate <= 0.0 || attempt >= self.panic_max_attempt {
            return false;
        }
        let h = mix(self.seed, kind as u64, task as u64, attempt as u64);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < rate
    }

    /// Injected slowdown for this attempt, if any.
    pub fn slowdown_ms(&self, kind: TaskKind, task: usize, attempt: usize) -> Option<u64> {
        self.slowdowns.get(&(kind, task, attempt)).copied()
    }

    /// The panic message injected for an attempt — deterministic, so
    /// job histories are byte-identical across runs of the same plan.
    pub fn panic_message(kind: TaskKind, task: usize, attempt: usize) -> String {
        format!("injected panic: {kind:?} task {task} attempt {attempt}")
    }
}

/// splitmix64-style avalanche of the four fault coordinates.
fn mix(seed: u64, kind: u64, task: u64, attempt: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(kind.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(task.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(attempt.wrapping_mul(0x2545_F491_4F6C_DD1D));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_zero_never_panics() {
        let p = FaultPlan::seeded(1);
        for t in 0..100 {
            assert!(!p.should_panic(TaskKind::Map, t, 0));
        }
    }

    #[test]
    fn rate_is_deterministic_and_roughly_calibrated() {
        let p = FaultPlan::seeded(42).with_map_panic_rate(0.3);
        let q = FaultPlan::seeded(42).with_map_panic_rate(0.3);
        let hits = (0..2000)
            .filter(|&t| {
                assert_eq!(
                    p.should_panic(TaskKind::Map, t, 0),
                    q.should_panic(TaskKind::Map, t, 0)
                );
                p.should_panic(TaskKind::Map, t, 0)
            })
            .count();
        assert!((400..=800).contains(&hits), "30% of 2000 ≈ 600, got {hits}");
    }

    #[test]
    fn retry_bound_shields_later_attempts() {
        let p = FaultPlan::seeded(7).with_map_panic_rate(1.0).with_panic_max_attempt(2);
        assert!(p.should_panic(TaskKind::Map, 0, 0));
        assert!(p.should_panic(TaskKind::Map, 0, 1));
        assert!(!p.should_panic(TaskKind::Map, 0, 2));
    }

    #[test]
    fn explicit_panics_ignore_bound_and_kind_rates() {
        let p = FaultPlan::seeded(7).panic_on(TaskKind::Reduce, 3, 5);
        assert!(p.should_panic(TaskKind::Reduce, 3, 5));
        assert!(!p.should_panic(TaskKind::Reduce, 3, 4));
        assert!(!p.should_panic(TaskKind::Map, 3, 5));
    }

    #[test]
    fn dfs_gray_failures_recorded() {
        let p = FaultPlan::seeded(0);
        assert!(p.dfs_faults().is_empty());
        let p = p
            .corrupt_block("map-00002", 0, 1)
            .flaky_read(1, 3)
            .slow_node(2, 25);
        let f = p.dfs_faults();
        assert!(!f.is_empty());
        assert_eq!(
            f.corrupt_blocks,
            vec![CorruptBlockFault {
                path_contains: "map-00002".to_string(),
                block: 0,
                replica: 1
            }]
        );
        assert_eq!(f.flaky_reads, vec![(1, 3)]);
        assert_eq!(f.slow_nodes, vec![(2, 25)]);
    }

    #[test]
    fn slowdowns_and_deaths_recorded() {
        let p = FaultPlan::seeded(0)
            .slow_down(TaskKind::Map, 2, 0, 250)
            .kill_node_after_maps(1, 3);
        assert_eq!(p.slowdown_ms(TaskKind::Map, 2, 0), Some(250));
        assert_eq!(p.slowdown_ms(TaskKind::Map, 2, 1), None);
        assert_eq!(
            p.node_deaths(),
            &[NodeDeath { node: 1, after_completed_maps: 3 }]
        );
    }
}
