//! Container-slot leases: the contract between a capacity scheduler
//! (gesall-jobsvc) and the engine.
//!
//! A [`SlotLease`] is a grant of concurrent container slots for one
//! job. The engine's wave workers take a [`LeasePermit`] before running
//! each task attempt and release it after, so at any instant a job runs
//! at most `limit` attempts regardless of how many worker threads its
//! waves spawned. The grant is *elastic*: the scheduler may grow it
//! (borrowing idle cluster capacity) or shrink it at any time with
//! [`SlotLease::set_limit`]. Shrinking never interrupts a running
//! attempt — workers holding a permit finish normally and the permit
//! count drains below the new limit as they complete. That is the
//! preemption-free reclaim YARN's capacity scheduler performs when an
//! under-share queue needs containers back.
//!
//! Without a lease (`JobConfig::slot_lease = None`) the engine behaves
//! as before: every spawned worker may run an attempt, i.e. the job may
//! use the whole cluster.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct LeaseInner {
    /// Current grant: attempts that may run concurrently. Always ≥ 1 —
    /// a zero grant would park every worker of a wave forever.
    limit: AtomicUsize,
    /// Permits held right now.
    active: AtomicUsize,
    /// High-water mark of `active` over the lease's lifetime.
    peak: AtomicUsize,
    /// Called after every permit release and limit change — the job
    /// service hooks its slot-harvesting wakeup here.
    on_release: RwLock<Option<Arc<dyn Fn() + Send + Sync>>>,
}

/// A cheaply clonable handle to one job's slot grant; clones share
/// state. See the module docs for the protocol.
#[derive(Clone)]
pub struct SlotLease {
    inner: Arc<LeaseInner>,
}

impl SlotLease {
    /// A lease granting `limit` concurrent slots (clamped to ≥ 1).
    pub fn new(limit: usize) -> SlotLease {
        SlotLease {
            inner: Arc::new(LeaseInner {
                limit: AtomicUsize::new(limit.max(1)),
                active: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                on_release: RwLock::new(None),
            }),
        }
    }

    /// Current grant.
    pub fn limit(&self) -> usize {
        self.inner.limit.load(Ordering::SeqCst)
    }

    /// Re-set the grant (clamped to ≥ 1). Growing takes effect on the
    /// next permit acquisition; shrinking drains preemption-free as
    /// running attempts release their permits.
    pub fn set_limit(&self, limit: usize) {
        self.inner.limit.store(limit.max(1), Ordering::SeqCst);
        self.notify();
    }

    /// Permits held right now.
    pub fn active(&self) -> usize {
        self.inner.active.load(Ordering::SeqCst)
    }

    /// Most permits ever held at once — the witness that a leased job
    /// actually ran concurrently (or was truly capped).
    pub fn peak_active(&self) -> usize {
        self.inner.peak.load(Ordering::SeqCst)
    }

    /// Register the release hook (replacing any previous one). Fired
    /// after every permit release and limit change, outside all locks.
    pub fn on_release(&self, hook: impl Fn() + Send + Sync + 'static) {
        *self.inner.on_release.write() = Some(Arc::new(hook));
    }

    /// Try to take a permit; `None` when the grant is saturated.
    pub fn try_acquire(&self) -> Option<LeasePermit> {
        let inner = &self.inner;
        let mut cur = inner.active.load(Ordering::SeqCst);
        loop {
            if cur >= inner.limit.load(Ordering::SeqCst) {
                return None;
            }
            match inner.active.compare_exchange(
                cur,
                cur + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    inner.peak.fetch_max(cur + 1, Ordering::SeqCst);
                    return Some(LeasePermit {
                        inner: inner.clone(),
                    });
                }
                Err(seen) => cur = seen,
            }
        }
    }

    fn notify(&self) {
        let hook = self.inner.on_release.read().clone();
        if let Some(hook) = hook {
            hook();
        }
    }
}

impl std::fmt::Debug for SlotLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotLease")
            .field("limit", &self.limit())
            .field("active", &self.active())
            .field("peak", &self.peak_active())
            .finish()
    }
}

/// RAII permit for one running attempt; releasing (dropping) it frees
/// the slot and fires the lease's release hook.
pub struct LeasePermit {
    inner: Arc<LeaseInner>,
}

impl Drop for LeasePermit {
    fn drop(&mut self) {
        self.inner.active.fetch_sub(1, Ordering::SeqCst);
        let hook = self.inner.on_release.read().clone();
        if let Some(hook) = hook {
            hook();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn permits_cap_at_limit_and_release() {
        let lease = SlotLease::new(2);
        let a = lease.try_acquire().expect("slot 1");
        let _b = lease.try_acquire().expect("slot 2");
        assert!(lease.try_acquire().is_none(), "grant saturated");
        assert_eq!(lease.active(), 2);
        drop(a);
        assert_eq!(lease.active(), 1);
        assert!(lease.try_acquire().is_some());
        assert_eq!(lease.peak_active(), 2);
    }

    #[test]
    fn zero_limit_clamps_to_one() {
        let lease = SlotLease::new(0);
        assert_eq!(lease.limit(), 1);
        lease.set_limit(0);
        assert_eq!(lease.limit(), 1);
        assert!(lease.try_acquire().is_some());
    }

    #[test]
    fn shrink_drains_without_revoking() {
        let lease = SlotLease::new(3);
        let a = lease.try_acquire().unwrap();
        let b = lease.try_acquire().unwrap();
        let c = lease.try_acquire().unwrap();
        lease.set_limit(1);
        // Held permits survive the shrink (preemption-free)…
        assert_eq!(lease.active(), 3);
        // …but no new permit is granted until active < limit.
        assert!(lease.try_acquire().is_none());
        drop(a);
        drop(b);
        assert!(lease.try_acquire().is_none(), "2 active ≥ limit 1");
        drop(c);
        assert!(lease.try_acquire().is_some());
    }

    #[test]
    fn release_hook_fires_on_drop_and_set_limit() {
        let lease = SlotLease::new(2);
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        lease.on_release(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        let p = lease.try_acquire().unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        drop(p);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        lease.set_limit(4);
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }
}
