//! # gesall-mapreduce
//!
//! An in-process MapReduce engine with Hadoop's performance-relevant
//! anatomy, executing real work on real threads:
//!
//! * [`task`] — `Mapper` / `Reducer` traits over typed, wire-encodable
//!   key-value records;
//! * [`shuffle`] — the map-side **sort buffer** (`io.sort.mb`) with
//!   spill-and-merge, partitioned map output, optional map-output
//!   compression, and the reduce-side **multipass merge** — the machinery
//!   behind the paper's Fig. 5(b), Fig. 10, and Table 7 observations;
//! * [`cluster`] — a YARN-like resource model: nodes × (vcores, memory)
//!   ⇒ container slots per node; tasks run in waves when slots are
//!   scarce;
//! * [`runtime`] — the job driver: input splits with locality
//!   preferences, map wave, shuffle accounting, reduce wave, per-task
//!   history events (the raw material of task-progress plots, Fig. 7);
//! * [`streaming`] — the Hadoop-Streaming analogue: byte pipes with
//!   bounded 64 KiB buffers connecting the framework to "external"
//!   programs, with the data-transformation steps separately timed
//!   (Fig. 6a/6b);
//! * [`counters`] — job counters (records/bytes shuffled, spills, merge
//!   passes, transformation time).
//!
//! Scale note: this engine runs *mini-scale* workloads for correctness
//! and accuracy experiments. Paper-scale timing behaviour (220 GB input,
//! 15 nodes) is modelled by `gesall-sim` using the same phase structure.

pub mod cluster;
pub mod counters;
pub mod error;
pub mod fault;
pub mod lease;
pub mod runtime;
pub mod shipping;
pub mod shuffle;
pub mod spillpool;
pub mod streaming;
pub mod task;

pub use cluster::{ClusterResources, NodeResources};
pub use counters::Counters;
pub use error::GesallError;
pub use fault::{FaultPlan, NodeDeath};
pub use lease::{LeasePermit, SlotLease};
pub use runtime::{
    AttemptOutcome, InputSplit, JobConfig, JobResult, MapReduceEngine, TaskEvent, TaskKind,
};
pub use shipping::ShipError;
pub use shuffle::{CodecPolicy, Segment};
pub use spillpool::SpillPool;
pub use task::{HashPartitioner, MapContext, Mapper, Partitioner, ReduceContext, Reducer};

// Tracing types engine users need (`MapReduceEngine::with_recorder`).
pub use gesall_telemetry::{OpenSpan, Phase, Recorder, Span, SpanId, SpanKind};
