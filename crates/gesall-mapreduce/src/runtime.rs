//! The job driver: input splits → map wave → shuffle → reduce wave.

use crate::cluster::ClusterResources;
use crate::counters::{keys, Counters};
use crate::shuffle::{reduce_merge, Segment, SortSpillBuffer};
use crate::task::{MapContext, Mapper, Partitioner, ReduceContext, Reducer};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Per-job configuration (the Hadoop parameters the paper tunes).
#[derive(Debug, Clone)]
pub struct JobConfig {
    pub name: String,
    pub n_reducers: usize,
    /// Map-side sort buffer (`mapreduce.task.io.sort.mb`), in bytes here.
    pub io_sort_bytes: usize,
    /// Reduce-side merge fan-in.
    pub merge_factor: usize,
    /// Compress map output (the paper's Snappy setting).
    pub compress_map_output: bool,
    /// `mapreduce.job.reduce.slowstart.completedmaps` — fraction of maps
    /// that must finish before reducers are scheduled. The in-process
    /// engine always barriers maps before reduces; the value is recorded
    /// in the result for the cost model (gesall-sim) to consume.
    pub slowstart_completed_maps: f64,
    pub map_vcores: usize,
    pub map_memory_mb: usize,
    pub reduce_vcores: usize,
    pub reduce_memory_mb: usize,
}

impl Default for JobConfig {
    fn default() -> JobConfig {
        JobConfig {
            name: "job".into(),
            n_reducers: 1,
            io_sort_bytes: 64 * 1024 * 1024,
            merge_factor: 10,
            compress_map_output: true,
            slowstart_completed_maps: 0.05,
            map_vcores: 1,
            map_memory_mb: 1024,
            reduce_vcores: 1,
            reduce_memory_mb: 1024,
        }
    }
}

/// One unit of map input: typed records plus a locality preference
/// (the node holding the logical partition's blocks).
#[derive(Debug, Clone)]
pub struct InputSplit<K, V> {
    pub label: String,
    pub preferred_node: Option<usize>,
    pub records: Vec<(K, V)>,
}

impl<K, V> InputSplit<K, V> {
    pub fn new(label: impl Into<String>, records: Vec<(K, V)>) -> InputSplit<K, V> {
        InputSplit {
            label: label.into(),
            preferred_node: None,
            records,
        }
    }

    pub fn at_node(mut self, node: usize) -> InputSplit<K, V> {
        self.preferred_node = Some(node);
        self
    }
}

/// Map task or reduce task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    Map,
    Reduce,
}

/// A completed task's history record — the raw material for Fig. 7-style
/// progress plots.
#[derive(Debug, Clone)]
pub struct TaskEvent {
    pub kind: TaskKind,
    pub task_id: usize,
    pub node: usize,
    /// Milliseconds since job start.
    pub start_ms: f64,
    pub end_ms: f64,
    /// Whether the task ran on its preferred (data-local) node.
    pub data_local: bool,
}

/// Everything a finished job reports.
#[derive(Debug)]
pub struct JobResult<K, V> {
    /// One output vector per reducer (or per map task for map-only jobs).
    pub outputs: Vec<Vec<(K, V)>>,
    pub counters: Counters,
    pub events: Vec<TaskEvent>,
    pub wall_ms: f64,
    pub config: JobConfig,
}

/// The engine: a cluster's worth of worker threads.
pub struct MapReduceEngine {
    cluster: ClusterResources,
}

struct TaskQueue {
    /// (task index, preferred node).
    pending: Mutex<Vec<(usize, Option<usize>)>>,
}

impl TaskQueue {
    fn new(tasks: Vec<(usize, Option<usize>)>) -> TaskQueue {
        TaskQueue {
            pending: Mutex::new(tasks),
        }
    }

    /// Pop a task local to `node` (preferred node matches, or no
    /// preference).
    fn pop_local(&self, node: usize) -> Option<usize> {
        let mut q = self.pending.lock();
        let pos = q
            .iter()
            .position(|&(_, pref)| pref == Some(node) || pref.is_none())?;
        Some(q.remove(pos).0)
    }

    /// Pop any task (a remote steal); returns (task index, was_local).
    fn pop_any(&self, node: usize) -> Option<(usize, bool)> {
        let mut q = self.pending.lock();
        if q.is_empty() {
            None
        } else {
            let (t, pref) = q.remove(0);
            Some((t, pref.is_none() || pref == Some(node)))
        }
    }

    fn is_empty(&self) -> bool {
        self.pending.lock().is_empty()
    }
}

impl MapReduceEngine {
    pub fn new(cluster: ClusterResources) -> MapReduceEngine {
        MapReduceEngine { cluster }
    }

    /// A single-node engine with `slots` concurrent tasks.
    pub fn local(slots: usize) -> MapReduceEngine {
        MapReduceEngine::new(ClusterResources::uniform(1, slots.max(1), usize::MAX / 2))
    }

    pub fn cluster(&self) -> &ClusterResources {
        &self.cluster
    }

    /// Run a full map + shuffle + reduce job.
    pub fn run_job<M, R>(
        &self,
        config: JobConfig,
        mapper: &M,
        reducer: &R,
        partitioner: &dyn Partitioner<M::OutKey>,
        splits: Vec<InputSplit<M::InKey, M::InValue>>,
    ) -> JobResult<R::OutKey, R::OutValue>
    where
        M: Mapper,
        R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
    {
        let counters = Counters::new();
        let events: Arc<Mutex<Vec<TaskEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let t0 = Instant::now();
        let n_maps = splits.len();
        let n_reducers = config.n_reducers.max(1);

        // ---- Map wave -------------------------------------------------
        let splits: Vec<Mutex<Option<InputSplit<M::InKey, M::InValue>>>> =
            splits.into_iter().map(|s| Mutex::new(Some(s))).collect();
        let map_outputs: Vec<Mutex<Option<Vec<Segment>>>> =
            (0..n_maps).map(|_| Mutex::new(None)).collect();
        let queue = TaskQueue::new(
            (0..n_maps)
                .map(|i| (i, splits[i].lock().as_ref().unwrap().preferred_node))
                .collect(),
        );

        self.run_wave(
            config.map_vcores,
            config.map_memory_mb,
            &queue,
            |task_id, node, local| {
                let split = splits[task_id]
                    .lock()
                    .take()
                    .expect("split taken exactly once");
                let start_ms = t0.elapsed().as_secs_f64() * 1e3;
                counters.add(keys::MAP_INPUT_RECORDS, split.records.len() as u64);
                let mut buf = SortSpillBuffer::new(
                    config.io_sort_bytes,
                    n_reducers,
                    partitioner,
                    config.compress_map_output,
                    counters.clone(),
                );
                {
                    let mut sink = |k: M::OutKey, v: M::OutValue| buf.emit(k, v);
                    let mut ctx = MapContext { sink: &mut sink };
                    for (k, v) in split.records {
                        mapper.map(k, v, &mut ctx);
                    }
                    mapper.finish(&mut ctx);
                }
                *map_outputs[task_id].lock() = Some(buf.finish());
                events.lock().push(TaskEvent {
                    kind: TaskKind::Map,
                    task_id,
                    node,
                    start_ms,
                    end_ms: t0.elapsed().as_secs_f64() * 1e3,
                    data_local: local,
                });
            },
        );

        // ---- Shuffle + reduce wave ------------------------------------
        let map_outputs: Vec<Vec<Segment>> = map_outputs
            .into_iter()
            .map(|m| m.into_inner().expect("map output present"))
            .collect();
        let reduce_outputs: Vec<Mutex<Vec<(R::OutKey, R::OutValue)>>> =
            (0..n_reducers).map(|_| Mutex::new(Vec::new())).collect();
        let queue = TaskQueue::new((0..n_reducers).map(|i| (i, None)).collect());

        self.run_wave(
            config.reduce_vcores,
            config.reduce_memory_mb,
            &queue,
            |partition, node, local| {
                let start_ms = t0.elapsed().as_secs_f64() * 1e3;
                let segments: Vec<Segment> = map_outputs
                    .iter()
                    .map(|per_map| per_map[partition].clone())
                    .collect();
                let grouped = reduce_merge::<M::OutKey, M::OutValue>(
                    segments,
                    config.merge_factor,
                    config.compress_map_output,
                    &counters,
                );
                let mut out = Vec::new();
                {
                    let mut ctx = ReduceContext { out: &mut out };
                    for (k, vs) in grouped {
                        reducer.reduce(k, vs, &mut ctx);
                    }
                    reducer.finish(&mut ctx);
                }
                counters.add(keys::REDUCE_OUTPUT_RECORDS, out.len() as u64);
                *reduce_outputs[partition].lock() = out;
                events.lock().push(TaskEvent {
                    kind: TaskKind::Reduce,
                    task_id: partition,
                    node,
                    start_ms,
                    end_ms: t0.elapsed().as_secs_f64() * 1e3,
                    data_local: local,
                });
            },
        );

        let outputs = reduce_outputs.into_iter().map(|m| m.into_inner()).collect();
        let mut events = Arc::try_unwrap(events)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone());
        events.sort_by(|a, b| {
            (a.kind == TaskKind::Reduce, a.task_id).cmp(&(b.kind == TaskKind::Reduce, b.task_id))
        });
        JobResult {
            outputs,
            counters,
            events,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            config,
        }
    }

    /// Run a map-only job (the paper's Round 1): each map task's emitted
    /// records come back in emission order, one output per split.
    pub fn run_map_only<M>(
        &self,
        config: JobConfig,
        mapper: &M,
        splits: Vec<InputSplit<M::InKey, M::InValue>>,
    ) -> JobResult<M::OutKey, M::OutValue>
    where
        M: Mapper,
    {
        let counters = Counters::new();
        let events: Arc<Mutex<Vec<TaskEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let t0 = Instant::now();
        let n_maps = splits.len();
        let splits: Vec<Mutex<Option<InputSplit<M::InKey, M::InValue>>>> =
            splits.into_iter().map(|s| Mutex::new(Some(s))).collect();
        let outputs: Vec<Mutex<Vec<(M::OutKey, M::OutValue)>>> =
            (0..n_maps).map(|_| Mutex::new(Vec::new())).collect();
        let queue = TaskQueue::new(
            (0..n_maps)
                .map(|i| (i, splits[i].lock().as_ref().unwrap().preferred_node))
                .collect(),
        );
        self.run_wave(
            config.map_vcores,
            config.map_memory_mb,
            &queue,
            |task_id, node, local| {
                let split = splits[task_id].lock().take().expect("split taken once");
                let start_ms = t0.elapsed().as_secs_f64() * 1e3;
                counters.add(keys::MAP_INPUT_RECORDS, split.records.len() as u64);
                let mut out = Vec::new();
                {
                    let mut sink = |k, v| out.push((k, v));
                    let mut ctx = MapContext { sink: &mut sink };
                    for (k, v) in split.records {
                        mapper.map(k, v, &mut ctx);
                    }
                    mapper.finish(&mut ctx);
                }
                counters.add(keys::MAP_OUTPUT_RECORDS, out.len() as u64);
                *outputs[task_id].lock() = out;
                events.lock().push(TaskEvent {
                    kind: TaskKind::Map,
                    task_id,
                    node,
                    start_ms,
                    end_ms: t0.elapsed().as_secs_f64() * 1e3,
                    data_local: local,
                });
            },
        );
        let outputs = outputs.into_iter().map(|m| m.into_inner()).collect();
        let mut events = Arc::try_unwrap(events)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone());
        events.sort_by_key(|e| e.task_id);
        JobResult {
            outputs,
            counters,
            events,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            config,
        }
    }

    /// Execute one wave of tasks with per-node container slots.
    fn run_wave<F>(&self, task_vcores: usize, task_memory_mb: usize, queue: &TaskQueue, body: F)
    where
        F: Fn(usize, usize, bool) + Send + Sync,
    {
        crossbeam::thread::scope(|s| {
            for node in 0..self.cluster.n_nodes() {
                let slots = self.cluster.slots_on(node, task_vcores, task_memory_mb);
                for _ in 0..slots.max(if node == 0 { 1 } else { 0 }) {
                    let body = &body;
                    s.spawn(move |_| loop {
                        // Delay scheduling: prefer local tasks; wait one
                        // beat before stealing a remote one.
                        if let Some(task) = queue.pop_local(node) {
                            body(task, node, true);
                            continue;
                        }
                        if queue.is_empty() {
                            break;
                        }
                        std::thread::sleep(std::time::Duration::from_micros(500));
                        if let Some(task) = queue.pop_local(node) {
                            body(task, node, true);
                        } else if let Some((task, local)) = queue.pop_any(node) {
                            body(task, node, local);
                        } else {
                            break;
                        }
                    });
                }
            }
        })
        .expect("task wave panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::HashPartitioner;

    /// Word-count: the canonical smoke test.
    struct Tokenize;
    impl Mapper for Tokenize {
        type InKey = u64;
        type InValue = String;
        type OutKey = String;
        type OutValue = u64;
        fn map(&self, _k: u64, line: String, ctx: &mut MapContext<'_, String, u64>) {
            for w in line.split_whitespace() {
                ctx.emit(w.to_string(), 1);
            }
        }
    }
    struct Sum;
    impl Reducer for Sum {
        type InKey = String;
        type InValue = u64;
        type OutKey = String;
        type OutValue = u64;
        fn reduce(&self, k: String, vs: Vec<u64>, ctx: &mut ReduceContext<'_, String, u64>) {
            ctx.emit(k, vs.iter().sum());
        }
    }

    fn word_splits(n_splits: usize, lines_per: usize) -> Vec<InputSplit<u64, String>> {
        (0..n_splits)
            .map(|s| {
                let records = (0..lines_per)
                    .map(|i| {
                        (
                            i as u64,
                            format!("alpha beta w{} alpha", (s * lines_per + i) % 13),
                        )
                    })
                    .collect();
                InputSplit::new(format!("split-{s}"), records)
            })
            .collect()
    }

    #[test]
    fn word_count_end_to_end() {
        let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096));
        let cfg = JobConfig {
            n_reducers: 4,
            io_sort_bytes: 512, // force spills
            map_memory_mb: 1024,
            reduce_memory_mb: 1024,
            ..JobConfig::default()
        };
        let res = engine.run_job(cfg, &Tokenize, &Sum, &HashPartitioner, word_splits(6, 50));
        let mut all: Vec<(String, u64)> = res.outputs.into_iter().flatten().collect();
        all.sort();
        let alpha = all.iter().find(|(k, _)| k == "alpha").unwrap();
        assert_eq!(alpha.1, 2 * 6 * 50);
        let beta = all.iter().find(|(k, _)| k == "beta").unwrap();
        assert_eq!(beta.1, 6 * 50);
        // 13 w-words + alpha + beta.
        assert_eq!(all.len(), 15);
        // Counters sane.
        assert_eq!(res.counters.get(keys::MAP_INPUT_RECORDS), 300);
        assert_eq!(res.counters.get(keys::MAP_OUTPUT_RECORDS), 1200);
        assert!(res.counters.get(keys::MAP_SPILLS) >= 6);
        assert_eq!(res.counters.get(keys::SHUFFLE_RECORDS), 1200);
        assert_eq!(res.counters.get(keys::REDUCE_OUTPUT_RECORDS), 15);
        // Events: 6 maps + 4 reduces.
        assert_eq!(
            res.events.iter().filter(|e| e.kind == TaskKind::Map).count(),
            6
        );
        assert_eq!(
            res.events
                .iter()
                .filter(|e| e.kind == TaskKind::Reduce)
                .count(),
            4
        );
    }

    #[test]
    fn deterministic_across_runs_and_cluster_shapes() {
        let splits = || word_splits(5, 40);
        let run = |nodes: usize, slots: usize, reducers: usize| {
            let engine = MapReduceEngine::new(ClusterResources::uniform(nodes, slots, 8192));
            let cfg = JobConfig {
                n_reducers: reducers,
                io_sort_bytes: 1024,
                ..JobConfig::default()
            };
            let mut res = engine
                .run_job(cfg, &Tokenize, &Sum, &HashPartitioner, splits())
                .outputs;
            for o in &mut res {
                o.sort();
            }
            res
        };
        let a = run(1, 1, 3);
        let b = run(4, 4, 3);
        assert_eq!(a, b, "output must not depend on physical parallelism");
    }

    #[test]
    fn map_only_preserves_order_per_split() {
        struct Identity;
        impl Mapper for Identity {
            type InKey = u64;
            type InValue = String;
            type OutKey = u64;
            type OutValue = String;
            fn map(&self, k: u64, v: String, ctx: &mut MapContext<'_, u64, String>) {
                ctx.emit(k, v);
            }
        }
        let engine = MapReduceEngine::local(4);
        let splits = vec![
            InputSplit::new("a", vec![(3u64, "x".to_string()), (1, "y".into())]),
            InputSplit::new("b", vec![(9u64, "z".to_string())]),
        ];
        let res = engine.run_map_only(JobConfig::default(), &Identity, splits);
        assert_eq!(res.outputs.len(), 2);
        assert_eq!(res.outputs[0], vec![(3, "x".to_string()), (1, "y".into())]);
        assert_eq!(res.outputs[1], vec![(9, "z".to_string())]);
    }

    #[test]
    fn locality_preference_honored_when_slots_free() {
        let engine = MapReduceEngine::new(ClusterResources::uniform(4, 2, 4096));
        struct Nop;
        impl Mapper for Nop {
            type InKey = u64;
            type InValue = u64;
            type OutKey = u64;
            type OutValue = u64;
            fn map(&self, k: u64, v: u64, ctx: &mut MapContext<'_, u64, u64>) {
                ctx.emit(k, v);
            }
        }
        let splits: Vec<InputSplit<u64, u64>> = (0..4)
            .map(|i| InputSplit::new(format!("s{i}"), vec![(i as u64, 0)]).at_node(i))
            .collect();
        let res = engine.run_map_only(JobConfig::default(), &Nop, splits);
        let local = res.events.iter().filter(|e| e.data_local).count();
        assert!(
            local >= 3,
            "most tasks should run data-local: {:?}",
            res.events
        );
    }

    #[test]
    fn single_reducer_gets_everything_sorted_by_key() {
        struct KeyEcho;
        impl Mapper for KeyEcho {
            type InKey = u64;
            type InValue = u64;
            type OutKey = u64;
            type OutValue = u64;
            fn map(&self, k: u64, v: u64, ctx: &mut MapContext<'_, u64, u64>) {
                ctx.emit(k, v);
            }
        }
        struct CollectOrdered;
        impl Reducer for CollectOrdered {
            type InKey = u64;
            type InValue = u64;
            type OutKey = u64;
            type OutValue = u64;
            fn reduce(&self, k: u64, vs: Vec<u64>, ctx: &mut ReduceContext<'_, u64, u64>) {
                for v in vs {
                    ctx.emit(k, v);
                }
            }
        }
        let engine = MapReduceEngine::local(3);
        let splits: Vec<InputSplit<u64, u64>> = (0..3)
            .map(|s| {
                InputSplit::new(
                    format!("s{s}"),
                    (0..100u64).rev().map(|i| (i * 7 % 50, i)).collect(),
                )
            })
            .collect();
        let cfg = JobConfig {
            n_reducers: 1,
            ..JobConfig::default()
        };
        let res = engine.run_job(cfg, &KeyEcho, &CollectOrdered, &HashPartitioner, splits);
        let keys: Vec<u64> = res.outputs[0].iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "reduce input must arrive key-sorted");
        assert_eq!(keys.len(), 300);
    }

    #[test]
    fn empty_job() {
        let engine = MapReduceEngine::local(2);
        let res = engine.run_job(
            JobConfig::default(),
            &Tokenize,
            &Sum,
            &HashPartitioner,
            Vec::new(),
        );
        assert_eq!(res.outputs.len(), 1);
        assert!(res.outputs[0].is_empty());
    }
}
